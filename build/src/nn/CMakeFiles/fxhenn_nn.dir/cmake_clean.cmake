file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_nn.dir/layers.cpp.o"
  "CMakeFiles/fxhenn_nn.dir/layers.cpp.o.d"
  "CMakeFiles/fxhenn_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/fxhenn_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/fxhenn_nn.dir/network.cpp.o"
  "CMakeFiles/fxhenn_nn.dir/network.cpp.o.d"
  "CMakeFiles/fxhenn_nn.dir/network_io.cpp.o"
  "CMakeFiles/fxhenn_nn.dir/network_io.cpp.o.d"
  "CMakeFiles/fxhenn_nn.dir/tensor.cpp.o"
  "CMakeFiles/fxhenn_nn.dir/tensor.cpp.o.d"
  "libfxhenn_nn.a"
  "libfxhenn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
