# Empty dependencies file for fxhenn_nn.
# This may be replaced when dependencies are built.
