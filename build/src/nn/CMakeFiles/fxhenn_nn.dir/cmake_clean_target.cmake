file(REMOVE_RECURSE
  "libfxhenn_nn.a"
)
