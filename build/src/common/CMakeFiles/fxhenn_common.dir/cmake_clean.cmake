file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_common.dir/parallel.cpp.o"
  "CMakeFiles/fxhenn_common.dir/parallel.cpp.o.d"
  "CMakeFiles/fxhenn_common.dir/rng.cpp.o"
  "CMakeFiles/fxhenn_common.dir/rng.cpp.o.d"
  "CMakeFiles/fxhenn_common.dir/table_printer.cpp.o"
  "CMakeFiles/fxhenn_common.dir/table_printer.cpp.o.d"
  "libfxhenn_common.a"
  "libfxhenn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
