# Empty compiler generated dependencies file for fxhenn_common.
# This may be replaced when dependencies are built.
