file(REMOVE_RECURSE
  "libfxhenn_common.a"
)
