file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_hecnn.dir/compiler.cpp.o"
  "CMakeFiles/fxhenn_hecnn.dir/compiler.cpp.o.d"
  "CMakeFiles/fxhenn_hecnn.dir/plan.cpp.o"
  "CMakeFiles/fxhenn_hecnn.dir/plan.cpp.o.d"
  "CMakeFiles/fxhenn_hecnn.dir/plan_io.cpp.o"
  "CMakeFiles/fxhenn_hecnn.dir/plan_io.cpp.o.d"
  "CMakeFiles/fxhenn_hecnn.dir/plan_printer.cpp.o"
  "CMakeFiles/fxhenn_hecnn.dir/plan_printer.cpp.o.d"
  "CMakeFiles/fxhenn_hecnn.dir/runtime.cpp.o"
  "CMakeFiles/fxhenn_hecnn.dir/runtime.cpp.o.d"
  "CMakeFiles/fxhenn_hecnn.dir/stats.cpp.o"
  "CMakeFiles/fxhenn_hecnn.dir/stats.cpp.o.d"
  "CMakeFiles/fxhenn_hecnn.dir/verify.cpp.o"
  "CMakeFiles/fxhenn_hecnn.dir/verify.cpp.o.d"
  "libfxhenn_hecnn.a"
  "libfxhenn_hecnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_hecnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
