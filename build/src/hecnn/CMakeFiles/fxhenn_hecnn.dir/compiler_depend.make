# Empty compiler generated dependencies file for fxhenn_hecnn.
# This may be replaced when dependencies are built.
