
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hecnn/compiler.cpp" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/compiler.cpp.o" "gcc" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/compiler.cpp.o.d"
  "/root/repo/src/hecnn/plan.cpp" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/plan.cpp.o" "gcc" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/plan.cpp.o.d"
  "/root/repo/src/hecnn/plan_io.cpp" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/plan_io.cpp.o" "gcc" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/plan_io.cpp.o.d"
  "/root/repo/src/hecnn/plan_printer.cpp" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/plan_printer.cpp.o" "gcc" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/plan_printer.cpp.o.d"
  "/root/repo/src/hecnn/runtime.cpp" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/runtime.cpp.o" "gcc" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/runtime.cpp.o.d"
  "/root/repo/src/hecnn/stats.cpp" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/stats.cpp.o" "gcc" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/stats.cpp.o.d"
  "/root/repo/src/hecnn/verify.cpp" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/verify.cpp.o" "gcc" "src/hecnn/CMakeFiles/fxhenn_hecnn.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ckks/CMakeFiles/fxhenn_ckks.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fxhenn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/fxhenn_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/modarith/CMakeFiles/fxhenn_modarith.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fxhenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
