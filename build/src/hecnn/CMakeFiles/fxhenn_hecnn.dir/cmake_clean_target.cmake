file(REMOVE_RECURSE
  "libfxhenn_hecnn.a"
)
