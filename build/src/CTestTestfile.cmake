# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("modarith")
subdirs("rns")
subdirs("ckks")
subdirs("nn")
subdirs("hecnn")
subdirs("fpga")
subdirs("dse")
subdirs("fxhenn")
