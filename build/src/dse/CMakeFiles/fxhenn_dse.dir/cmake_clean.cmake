file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_dse.dir/baseline.cpp.o"
  "CMakeFiles/fxhenn_dse.dir/baseline.cpp.o.d"
  "CMakeFiles/fxhenn_dse.dir/explorer.cpp.o"
  "CMakeFiles/fxhenn_dse.dir/explorer.cpp.o.d"
  "CMakeFiles/fxhenn_dse.dir/pareto.cpp.o"
  "CMakeFiles/fxhenn_dse.dir/pareto.cpp.o.d"
  "libfxhenn_dse.a"
  "libfxhenn_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
