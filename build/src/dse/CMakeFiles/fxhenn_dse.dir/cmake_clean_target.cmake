file(REMOVE_RECURSE
  "libfxhenn_dse.a"
)
