# Empty dependencies file for fxhenn_dse.
# This may be replaced when dependencies are built.
