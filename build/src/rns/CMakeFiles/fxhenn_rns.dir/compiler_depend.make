# Empty compiler generated dependencies file for fxhenn_rns.
# This may be replaced when dependencies are built.
