file(REMOVE_RECURSE
  "libfxhenn_rns.a"
)
