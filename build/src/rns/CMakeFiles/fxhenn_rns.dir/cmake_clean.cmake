file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_rns.dir/crt.cpp.o"
  "CMakeFiles/fxhenn_rns.dir/crt.cpp.o.d"
  "CMakeFiles/fxhenn_rns.dir/rns_basis.cpp.o"
  "CMakeFiles/fxhenn_rns.dir/rns_basis.cpp.o.d"
  "CMakeFiles/fxhenn_rns.dir/rns_poly.cpp.o"
  "CMakeFiles/fxhenn_rns.dir/rns_poly.cpp.o.d"
  "libfxhenn_rns.a"
  "libfxhenn_rns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
