# Empty dependencies file for fxhenn_fpga.
# This may be replaced when dependencies are built.
