file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_fpga.dir/device.cpp.o"
  "CMakeFiles/fxhenn_fpga.dir/device.cpp.o.d"
  "CMakeFiles/fxhenn_fpga.dir/layer_model.cpp.o"
  "CMakeFiles/fxhenn_fpga.dir/layer_model.cpp.o.d"
  "CMakeFiles/fxhenn_fpga.dir/ntt_sim.cpp.o"
  "CMakeFiles/fxhenn_fpga.dir/ntt_sim.cpp.o.d"
  "CMakeFiles/fxhenn_fpga.dir/op_model.cpp.o"
  "CMakeFiles/fxhenn_fpga.dir/op_model.cpp.o.d"
  "CMakeFiles/fxhenn_fpga.dir/pipeline_sim.cpp.o"
  "CMakeFiles/fxhenn_fpga.dir/pipeline_sim.cpp.o.d"
  "libfxhenn_fpga.a"
  "libfxhenn_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
