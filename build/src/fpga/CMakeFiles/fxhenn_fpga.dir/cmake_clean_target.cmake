file(REMOVE_RECURSE
  "libfxhenn_fpga.a"
)
