file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_modarith.dir/modulus.cpp.o"
  "CMakeFiles/fxhenn_modarith.dir/modulus.cpp.o.d"
  "CMakeFiles/fxhenn_modarith.dir/ntt.cpp.o"
  "CMakeFiles/fxhenn_modarith.dir/ntt.cpp.o.d"
  "CMakeFiles/fxhenn_modarith.dir/primes.cpp.o"
  "CMakeFiles/fxhenn_modarith.dir/primes.cpp.o.d"
  "libfxhenn_modarith.a"
  "libfxhenn_modarith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_modarith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
