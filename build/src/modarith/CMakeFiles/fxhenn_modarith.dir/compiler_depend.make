# Empty compiler generated dependencies file for fxhenn_modarith.
# This may be replaced when dependencies are built.
