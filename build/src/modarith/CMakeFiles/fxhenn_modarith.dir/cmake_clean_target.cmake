file(REMOVE_RECURSE
  "libfxhenn_modarith.a"
)
