
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modarith/modulus.cpp" "src/modarith/CMakeFiles/fxhenn_modarith.dir/modulus.cpp.o" "gcc" "src/modarith/CMakeFiles/fxhenn_modarith.dir/modulus.cpp.o.d"
  "/root/repo/src/modarith/ntt.cpp" "src/modarith/CMakeFiles/fxhenn_modarith.dir/ntt.cpp.o" "gcc" "src/modarith/CMakeFiles/fxhenn_modarith.dir/ntt.cpp.o.d"
  "/root/repo/src/modarith/primes.cpp" "src/modarith/CMakeFiles/fxhenn_modarith.dir/primes.cpp.o" "gcc" "src/modarith/CMakeFiles/fxhenn_modarith.dir/primes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fxhenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
