
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckks/context.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/context.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/context.cpp.o.d"
  "/root/repo/src/ckks/decryptor.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/decryptor.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/decryptor.cpp.o.d"
  "/root/repo/src/ckks/encoder.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/encoder.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/encoder.cpp.o.d"
  "/root/repo/src/ckks/encryptor.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/encryptor.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/encryptor.cpp.o.d"
  "/root/repo/src/ckks/evaluator.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/evaluator.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/evaluator.cpp.o.d"
  "/root/repo/src/ckks/keygen.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/keygen.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/keygen.cpp.o.d"
  "/root/repo/src/ckks/noise.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/noise.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/noise.cpp.o.d"
  "/root/repo/src/ckks/params.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/params.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/params.cpp.o.d"
  "/root/repo/src/ckks/serialization.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/serialization.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/serialization.cpp.o.d"
  "/root/repo/src/ckks/size_model.cpp" "src/ckks/CMakeFiles/fxhenn_ckks.dir/size_model.cpp.o" "gcc" "src/ckks/CMakeFiles/fxhenn_ckks.dir/size_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rns/CMakeFiles/fxhenn_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/modarith/CMakeFiles/fxhenn_modarith.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fxhenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
