# Empty compiler generated dependencies file for fxhenn_ckks.
# This may be replaced when dependencies are built.
