file(REMOVE_RECURSE
  "libfxhenn_ckks.a"
)
