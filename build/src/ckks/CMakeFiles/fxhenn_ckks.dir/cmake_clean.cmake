file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_ckks.dir/context.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/context.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/decryptor.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/decryptor.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/encoder.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/encoder.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/encryptor.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/encryptor.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/evaluator.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/evaluator.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/keygen.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/keygen.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/noise.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/noise.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/params.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/params.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/serialization.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/serialization.cpp.o.d"
  "CMakeFiles/fxhenn_ckks.dir/size_model.cpp.o"
  "CMakeFiles/fxhenn_ckks.dir/size_model.cpp.o.d"
  "libfxhenn_ckks.a"
  "libfxhenn_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
