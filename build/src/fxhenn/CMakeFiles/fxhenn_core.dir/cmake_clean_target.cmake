file(REMOVE_RECURSE
  "libfxhenn_core.a"
)
