file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_core.dir/codegen.cpp.o"
  "CMakeFiles/fxhenn_core.dir/codegen.cpp.o.d"
  "CMakeFiles/fxhenn_core.dir/framework.cpp.o"
  "CMakeFiles/fxhenn_core.dir/framework.cpp.o.d"
  "CMakeFiles/fxhenn_core.dir/report.cpp.o"
  "CMakeFiles/fxhenn_core.dir/report.cpp.o.d"
  "libfxhenn_core.a"
  "libfxhenn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
