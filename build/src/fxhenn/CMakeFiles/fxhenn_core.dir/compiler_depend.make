# Empty compiler generated dependencies file for fxhenn_core.
# This may be replaced when dependencies are built.
