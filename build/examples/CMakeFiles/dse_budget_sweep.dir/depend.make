# Empty dependencies file for dse_budget_sweep.
# This may be replaced when dependencies are built.
