file(REMOVE_RECURSE
  "CMakeFiles/dse_budget_sweep.dir/dse_budget_sweep.cpp.o"
  "CMakeFiles/dse_budget_sweep.dir/dse_budget_sweep.cpp.o.d"
  "dse_budget_sweep"
  "dse_budget_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
