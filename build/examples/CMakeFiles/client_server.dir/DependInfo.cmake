
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/client_server.cpp" "examples/CMakeFiles/client_server.dir/client_server.cpp.o" "gcc" "examples/CMakeFiles/client_server.dir/client_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fxhenn/CMakeFiles/fxhenn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/fxhenn_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/fxhenn_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/hecnn/CMakeFiles/fxhenn_hecnn.dir/DependInfo.cmake"
  "/root/repo/build/src/ckks/CMakeFiles/fxhenn_ckks.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/fxhenn_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/modarith/CMakeFiles/fxhenn_modarith.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fxhenn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fxhenn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
