file(REMOVE_RECURSE
  "CMakeFiles/encrypted_mnist.dir/encrypted_mnist.cpp.o"
  "CMakeFiles/encrypted_mnist.dir/encrypted_mnist.cpp.o.d"
  "encrypted_mnist"
  "encrypted_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
