# Empty compiler generated dependencies file for encrypted_mnist.
# This may be replaced when dependencies are built.
