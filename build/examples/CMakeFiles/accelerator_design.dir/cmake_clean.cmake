file(REMOVE_RECURSE
  "CMakeFiles/accelerator_design.dir/accelerator_design.cpp.o"
  "CMakeFiles/accelerator_design.dir/accelerator_design.cpp.o.d"
  "accelerator_design"
  "accelerator_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
