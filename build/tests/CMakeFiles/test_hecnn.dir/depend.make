# Empty dependencies file for test_hecnn.
# This may be replaced when dependencies are built.
