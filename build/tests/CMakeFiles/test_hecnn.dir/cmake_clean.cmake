file(REMOVE_RECURSE
  "CMakeFiles/test_hecnn.dir/hecnn/test_compiler.cpp.o"
  "CMakeFiles/test_hecnn.dir/hecnn/test_compiler.cpp.o.d"
  "CMakeFiles/test_hecnn.dir/hecnn/test_plan_io.cpp.o"
  "CMakeFiles/test_hecnn.dir/hecnn/test_plan_io.cpp.o.d"
  "CMakeFiles/test_hecnn.dir/hecnn/test_plan_printer.cpp.o"
  "CMakeFiles/test_hecnn.dir/hecnn/test_plan_printer.cpp.o.d"
  "CMakeFiles/test_hecnn.dir/hecnn/test_runtime.cpp.o"
  "CMakeFiles/test_hecnn.dir/hecnn/test_runtime.cpp.o.d"
  "CMakeFiles/test_hecnn.dir/hecnn/test_verify.cpp.o"
  "CMakeFiles/test_hecnn.dir/hecnn/test_verify.cpp.o.d"
  "test_hecnn"
  "test_hecnn.pdb"
  "test_hecnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hecnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
