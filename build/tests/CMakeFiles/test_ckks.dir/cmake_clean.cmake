file(REMOVE_RECURSE
  "CMakeFiles/test_ckks.dir/ckks/test_encoder.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_encoder.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_encrypt.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_encrypt.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_evaluator.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_evaluator.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_noise.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_noise.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_params.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_params.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_rotation.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_rotation.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_serialization.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_serialization.cpp.o.d"
  "test_ckks"
  "test_ckks.pdb"
  "test_ckks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
