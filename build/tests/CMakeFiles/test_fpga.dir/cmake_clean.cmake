file(REMOVE_RECURSE
  "CMakeFiles/test_fpga.dir/fpga/test_buffer_model.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_buffer_model.cpp.o.d"
  "CMakeFiles/test_fpga.dir/fpga/test_layer_model.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_layer_model.cpp.o.d"
  "CMakeFiles/test_fpga.dir/fpga/test_ntt_sim.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_ntt_sim.cpp.o.d"
  "CMakeFiles/test_fpga.dir/fpga/test_op_model.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_op_model.cpp.o.d"
  "CMakeFiles/test_fpga.dir/fpga/test_pipeline_sim.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/test_pipeline_sim.cpp.o.d"
  "test_fpga"
  "test_fpga.pdb"
  "test_fpga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
