file(REMOVE_RECURSE
  "CMakeFiles/test_modarith.dir/modarith/test_modulus.cpp.o"
  "CMakeFiles/test_modarith.dir/modarith/test_modulus.cpp.o.d"
  "CMakeFiles/test_modarith.dir/modarith/test_ntt.cpp.o"
  "CMakeFiles/test_modarith.dir/modarith/test_ntt.cpp.o.d"
  "CMakeFiles/test_modarith.dir/modarith/test_primes.cpp.o"
  "CMakeFiles/test_modarith.dir/modarith/test_primes.cpp.o.d"
  "test_modarith"
  "test_modarith.pdb"
  "test_modarith[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modarith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
