# Empty dependencies file for table9_baseline_vs_fxhenn.
# This may be replaced when dependencies are built.
