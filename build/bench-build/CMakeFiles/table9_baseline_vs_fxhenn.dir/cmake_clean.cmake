file(REMOVE_RECURSE
  "../bench/table9_baseline_vs_fxhenn"
  "../bench/table9_baseline_vs_fxhenn.pdb"
  "CMakeFiles/table9_baseline_vs_fxhenn.dir/table9_baseline_vs_fxhenn.cpp.o"
  "CMakeFiles/table9_baseline_vs_fxhenn.dir/table9_baseline_vs_fxhenn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_baseline_vs_fxhenn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
