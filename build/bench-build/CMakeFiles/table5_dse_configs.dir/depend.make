# Empty dependencies file for table5_dse_configs.
# This may be replaced when dependencies are built.
