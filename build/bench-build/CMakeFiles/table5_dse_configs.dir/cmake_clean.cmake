file(REMOVE_RECURSE
  "../bench/table5_dse_configs"
  "../bench/table5_dse_configs.pdb"
  "CMakeFiles/table5_dse_configs.dir/table5_dse_configs.cpp.o"
  "CMakeFiles/table5_dse_configs.dir/table5_dse_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_dse_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
