file(REMOVE_RECURSE
  "../bench/ablation_uram"
  "../bench/ablation_uram.pdb"
  "CMakeFiles/ablation_uram.dir/ablation_uram.cpp.o"
  "CMakeFiles/ablation_uram.dir/ablation_uram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
