# Empty compiler generated dependencies file for ablation_uram.
# This may be replaced when dependencies are built.
