file(REMOVE_RECURSE
  "../bench/table4_macs_hops"
  "../bench/table4_macs_hops.pdb"
  "CMakeFiles/table4_macs_hops.dir/table4_macs_hops.cpp.o"
  "CMakeFiles/table4_macs_hops.dir/table4_macs_hops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_macs_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
