# Empty dependencies file for table4_macs_hops.
# This may be replaced when dependencies are built.
