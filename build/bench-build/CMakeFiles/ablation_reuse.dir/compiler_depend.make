# Empty compiler generated dependencies file for ablation_reuse.
# This may be replaced when dependencies are built.
