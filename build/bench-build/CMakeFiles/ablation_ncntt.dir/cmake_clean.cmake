file(REMOVE_RECURSE
  "../bench/ablation_ncntt"
  "../bench/ablation_ncntt.pdb"
  "CMakeFiles/ablation_ncntt.dir/ablation_ncntt.cpp.o"
  "CMakeFiles/ablation_ncntt.dir/ablation_ncntt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ncntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
