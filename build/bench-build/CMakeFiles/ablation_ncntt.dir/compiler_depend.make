# Empty compiler generated dependencies file for ablation_ncntt.
# This may be replaced when dependencies are built.
