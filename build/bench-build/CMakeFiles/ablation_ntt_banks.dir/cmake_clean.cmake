file(REMOVE_RECURSE
  "../bench/ablation_ntt_banks"
  "../bench/ablation_ntt_banks.pdb"
  "CMakeFiles/ablation_ntt_banks.dir/ablation_ntt_banks.cpp.o"
  "CMakeFiles/ablation_ntt_banks.dir/ablation_ntt_banks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ntt_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
