# Empty compiler generated dependencies file for ablation_ntt_banks.
# This may be replaced when dependencies are built.
