file(REMOVE_RECURSE
  "../bench/table7_performance"
  "../bench/table7_performance.pdb"
  "CMakeFiles/table7_performance.dir/table7_performance.cpp.o"
  "CMakeFiles/table7_performance.dir/table7_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
