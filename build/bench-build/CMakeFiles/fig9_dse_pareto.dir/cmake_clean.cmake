file(REMOVE_RECURSE
  "../bench/fig9_dse_pareto"
  "../bench/fig9_dse_pareto.pdb"
  "CMakeFiles/fig9_dse_pareto.dir/fig9_dse_pareto.cpp.o"
  "CMakeFiles/fig9_dse_pareto.dir/fig9_dse_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dse_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
