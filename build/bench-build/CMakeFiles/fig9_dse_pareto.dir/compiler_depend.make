# Empty compiler generated dependencies file for fig9_dse_pareto.
# This may be replaced when dependencies are built.
