# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_dsp_per_op.
