file(REMOVE_RECURSE
  "../bench/fig8_dsp_per_op"
  "../bench/fig8_dsp_per_op.pdb"
  "CMakeFiles/fig8_dsp_per_op.dir/fig8_dsp_per_op.cpp.o"
  "CMakeFiles/fig8_dsp_per_op.dir/fig8_dsp_per_op.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dsp_per_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
