# Empty compiler generated dependencies file for fig8_dsp_per_op.
# This may be replaced when dependencies are built.
