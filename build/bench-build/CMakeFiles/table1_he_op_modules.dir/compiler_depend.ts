# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table1_he_op_modules.
