# Empty dependencies file for table1_he_op_modules.
# This may be replaced when dependencies are built.
