file(REMOVE_RECURSE
  "../bench/table1_he_op_modules"
  "../bench/table1_he_op_modules.pdb"
  "CMakeFiles/table1_he_op_modules.dir/table1_he_op_modules.cpp.o"
  "CMakeFiles/table1_he_op_modules.dir/table1_he_op_modules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_he_op_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
