# Empty compiler generated dependencies file for fig7_layer_breakdown.
# This may be replaced when dependencies are built.
