file(REMOVE_RECURSE
  "../bench/fig7_layer_breakdown"
  "../bench/fig7_layer_breakdown.pdb"
  "CMakeFiles/fig7_layer_breakdown.dir/fig7_layer_breakdown.cpp.o"
  "CMakeFiles/fig7_layer_breakdown.dir/fig7_layer_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_layer_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
