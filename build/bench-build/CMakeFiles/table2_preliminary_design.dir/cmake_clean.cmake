file(REMOVE_RECURSE
  "../bench/table2_preliminary_design"
  "../bench/table2_preliminary_design.pdb"
  "CMakeFiles/table2_preliminary_design.dir/table2_preliminary_design.cpp.o"
  "CMakeFiles/table2_preliminary_design.dir/table2_preliminary_design.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_preliminary_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
