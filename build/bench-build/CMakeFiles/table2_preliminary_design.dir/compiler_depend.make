# Empty compiler generated dependencies file for table2_preliminary_design.
# This may be replaced when dependencies are built.
