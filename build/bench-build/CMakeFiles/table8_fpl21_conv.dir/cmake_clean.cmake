file(REMOVE_RECURSE
  "../bench/table8_fpl21_conv"
  "../bench/table8_fpl21_conv.pdb"
  "CMakeFiles/table8_fpl21_conv.dir/table8_fpl21_conv.cpp.o"
  "CMakeFiles/table8_fpl21_conv.dir/table8_fpl21_conv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_fpl21_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
