# Empty dependencies file for table8_fpl21_conv.
# This may be replaced when dependencies are built.
