# Empty dependencies file for fig10_parallelism.
# This may be replaced when dependencies are built.
