file(REMOVE_RECURSE
  "../bench/fig10_parallelism"
  "../bench/fig10_parallelism.pdb"
  "CMakeFiles/fig10_parallelism.dir/fig10_parallelism.cpp.o"
  "CMakeFiles/fig10_parallelism.dir/fig10_parallelism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
