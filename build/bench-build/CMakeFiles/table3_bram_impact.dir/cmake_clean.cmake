file(REMOVE_RECURSE
  "../bench/table3_bram_impact"
  "../bench/table3_bram_impact.pdb"
  "CMakeFiles/table3_bram_impact.dir/table3_bram_impact.cpp.o"
  "CMakeFiles/table3_bram_impact.dir/table3_bram_impact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bram_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
