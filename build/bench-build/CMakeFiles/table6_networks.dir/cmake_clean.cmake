file(REMOVE_RECURSE
  "../bench/table6_networks"
  "../bench/table6_networks.pdb"
  "CMakeFiles/table6_networks.dir/table6_networks.cpp.o"
  "CMakeFiles/table6_networks.dir/table6_networks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
