# Empty dependencies file for table6_networks.
# This may be replaced when dependencies are built.
