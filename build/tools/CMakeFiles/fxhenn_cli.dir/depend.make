# Empty dependencies file for fxhenn_cli.
# This may be replaced when dependencies are built.
