file(REMOVE_RECURSE
  "CMakeFiles/fxhenn_cli.dir/fxhenn_cli.cpp.o"
  "CMakeFiles/fxhenn_cli.dir/fxhenn_cli.cpp.o.d"
  "fxhenn"
  "fxhenn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxhenn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
