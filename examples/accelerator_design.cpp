/**
 * @file
 * The full FxHENN design flow (Fig. 1): for each (HE-CNN model, FPGA
 * device) pair, run the DSE and emit the accelerator artifacts — the
 * HLS directives Tcl and the module configuration header that the
 * Vivado toolchain would synthesize.
 */
#include <iostream>

#include "src/fxhenn/codegen.hpp"
#include "src/fxhenn/framework.hpp"
#include "src/nn/model_zoo.hpp"

using namespace fxhenn;

int
main()
{
    struct Target
    {
        nn::Network net;
        ckks::CkksParams params;
        bool elide;
    };
    Target targets[] = {
        {nn::buildMnistNetwork(), ckks::mnistParams(), false},
        {nn::buildCifar10Network(), ckks::cifar10Params(), true},
    };

    for (auto &target : targets) {
        for (const auto &device : {fpga::acu9eg(), fpga::acu15eg()}) {
            FxhennOptions opts;
            opts.elideValues = target.elide;
            const auto sol = Fxhenn::generate(target.net, target.params,
                                              device, opts);

            std::cout << "\n=== " << sol.modelName << " on "
                      << sol.deviceName << " ===\n"
                      << "DSE: " << sol.dsePointsEvaluated
                      << " feasible points, " << sol.dsePointsPruned
                      << " pruned\n"
                      << "Predicted latency: " << sol.latencySeconds()
                      << " s, energy " << sol.energyJoules(device)
                      << " J\n"
                      << "Resources: DSP "
                      << 100.0 * sol.design.dspFraction << " %, BRAM "
                      << 100.0 * sol.design.bramFraction << " %\n";

            const std::string dir = "fxhenn_out/" + sol.modelName +
                                    "_" + sol.deviceName;
            const auto [tcl, hdr] = writeAccelerator(sol, dir);
            std::cout << "Artifacts: " << tcl << ", " << hdr << "\n";
        }
    }
    std::cout << "\nFeed directives.tcl + accel_config.hpp to Vivado "
                 "HLS to synthesize the\nbitstream (requires the vendor "
                 "toolchain and a board; see DESIGN.md).\n";
    return 0;
}
