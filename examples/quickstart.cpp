/**
 * @file
 * Quickstart: the RNS-CKKS layer of FxHENN in ~60 lines.
 *
 * Encrypts two real vectors, computes (a + b), (a * w) with rescale,
 * a cyclic rotation, and a square — the exact HE operations the HE-CNN
 * layers are built from (OP1..OP5 of the paper) — then decrypts and
 * checks the results.
 */
#include <iostream>
#include <vector>

#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/evaluator.hpp"
#include "src/ckks/keygen.hpp"

using namespace fxhenn;

int
main()
{
    // Small, fast parameters (NOT production-secure; use
    // ckks::mnistParams() / cifar10Params() for the paper's sets).
    const ckks::CkksParams params = ckks::testParams(2048, 4, 30);
    ckks::CkksContext ctx(params);
    std::cout << "Context: " << params.describe() << "\n";

    Rng rng(42);
    ckks::KeyGenerator keygen(ctx, rng);
    ckks::Encoder encoder(ctx);
    ckks::Encryptor encryptor(ctx, keygen.makePublicKey(), rng);
    ckks::Decryptor decryptor(ctx, keygen.secretKey());
    ckks::Evaluator eval(ctx);
    const auto relin = keygen.makeRelinKey();
    const auto galois = keygen.makeGaloisKeys({1});

    std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    std::vector<double> b{0.5, -1.5, 2.5, -3.5};

    auto ct_a = encryptor.encrypt(encoder.encode(
        std::span<const double>(a), params.scale, params.levels));
    auto ct_b = encryptor.encrypt(encoder.encode(
        std::span<const double>(b), params.scale, params.levels));

    // OP1: ciphertext + ciphertext.
    auto sum = eval.add(ct_a, ct_b);

    // OP2 + OP4: plaintext multiply, then rescale.
    const auto w = encoder.encode(std::span<const double>(b),
                                  params.scale, params.levels);
    auto prod = eval.mulPlain(ct_a, w);
    eval.rescaleInplace(prod);

    // OP5: rotate left by one slot.
    auto rot = eval.rotate(ct_a, 1, galois);

    // OP3 + OP5 + OP4: the HE-CNN square activation.
    auto sq = eval.square(ct_a, relin);
    eval.rescaleInplace(sq);

    auto show = [&](const char *label, const ckks::Ciphertext &ct) {
        const auto vals = encoder.decodeReal(decryptor.decrypt(ct));
        std::cout << label << ": ";
        for (std::size_t i = 0; i < 4; ++i)
            std::cout << vals[i] << (i < 3 ? ", " : "\n");
    };
    show("a + b    ", sum);   // 1.5, 0.5, 5.5, 0.5
    show("a * b    ", prod);  // 0.5, -3, 7.5, -14
    show("rot(a, 1)", rot);   // 2, 3, 4, ...
    show("a^2      ", sq);    // 1, 4, 9, 16

    std::cout << "HE operations executed: " << eval.counts().total()
              << " (KeySwitch: " << eval.counts().keySwitch() << ")\n";
    return 0;
}
