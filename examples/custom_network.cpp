/**
 * @file
 * Bring-your-own-network walkthrough: define a custom square-activation
 * CNN, verify its encrypted inference bit-for-bit against plaintext at
 * test scale, then generate an accelerator for it with FxHENN — the
 * "without loss of generality" claim of Sec. VII-B exercised end to
 * end.
 */
#include <cmath>
#include <iostream>
#include <memory>

#include "src/fxhenn/framework.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/nn/network.hpp"

using namespace fxhenn;

namespace {

/** A 16x16 single-channel CNN that is not in the model zoo. */
nn::Network
buildCustomNet()
{
    Rng rng(777);
    nn::Network net("Custom-16x16", 1, 16, 16);

    auto conv = std::make_unique<nn::Conv2D>("Cnv1", 1, 4, 4, 2, 16, 16);
    conv->randomize(rng, 0.12);
    const std::size_t conv_out = conv->outputSize(); // 4 x 7 x 7 = 196
    net.addLayer(std::move(conv));

    net.addLayer(std::make_unique<nn::SquareActivation>("Act1",
                                                        conv_out));

    auto fc1 = std::make_unique<nn::Dense>("Fc1", conv_out, 24);
    fc1->randomize(rng, 0.04);
    net.addLayer(std::move(fc1));

    net.addLayer(std::make_unique<nn::SquareActivation>("Act2", 24));

    auto fc2 = std::make_unique<nn::Dense>("Fc2", 24, 5);
    fc2->randomize(rng, 0.1);
    net.addLayer(std::move(fc2));
    return net;
}

} // namespace

int
main()
{
    const auto net = buildCustomNet();

    // 1. Functional check at test scale (fast, insecure parameters).
    {
        const auto params = ckks::testParams(2048, 7, 30);
        const auto plan = hecnn::compile(net, params);
        ckks::CkksContext ctx(params);
        hecnn::Runtime runtime(plan, ctx, 11);

        const nn::Tensor input = nn::syntheticInput(net, 5);
        const nn::Tensor expected = net.forward(input);
        const auto logits = runtime.infer(input);

        double max_err = 0.0;
        for (std::size_t i = 0; i < logits.size(); ++i)
            max_err =
                std::max(max_err, std::abs(logits[i] - expected[i]));
        std::cout << "Encrypted-vs-plaintext max |err| = " << max_err
                  << " over " << logits.size() << " logits ("
                  << plan.totalCounts().total() << " HOPs)\n";
    }

    // 2. Generate the accelerator at production parameters.
    const auto sol = Fxhenn::generate(net, ckks::mnistParams(),
                                      fpga::acu9eg());
    std::cout << "Accelerator for " << sol.modelName << " on "
              << sol.deviceName << ": " << sol.latencySeconds()
              << " s predicted, DSP "
              << 100.0 * sol.design.dspFraction << " %, BRAM "
              << 100.0 * sol.design.bramFraction << " %\n";

    const auto &ks = sol.design.alloc[fpga::HeOpModule::keySwitch];
    std::cout << "Chosen KeySwitch parallelism: nc_NTT=" << ks.ncNtt
              << " intra=" << ks.pIntra << " inter=" << ks.pInter
              << "\n";
    return 0;
}
