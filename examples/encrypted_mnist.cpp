/**
 * @file
 * End-to-end encrypted inference of the FxHENN-MNIST network under the
 * paper's parameter set (N = 8192, L = 7, 30-bit primes, lambda = 128):
 *
 *   1. compile the CNN to an HE plan (LoLa-style packing),
 *   2. encrypt a synthetic input image as 25 tap ciphertexts,
 *   3. run every layer homomorphically on the CPU reference evaluator,
 *   4. decrypt the logits and compare against plaintext inference,
 *   5. report what the generated FPGA accelerator would achieve.
 *
 * Expect roughly 10-60 s for step 3 — this is exactly the CPU cost the
 * paper's FPGA accelerator removes.
 */
#include <cmath>
#include <iostream>

#include "src/common/timer.hpp"
#include "src/fxhenn/framework.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/hecnn/stats.hpp"
#include "src/nn/model_zoo.hpp"

using namespace fxhenn;

int
main()
{
    const auto net = nn::buildMnistNetwork();
    const auto params = ckks::mnistParams();
    std::cout << "Network: " << net.name() << " ("
              << params.describe() << ")\n";

    const auto plan = hecnn::compile(net, params);
    const auto counts = plan.totalCounts();
    std::cout << "Compiled plan: " << hecnn::layerSummary(plan) << "\n"
              << "  HOPs " << counts.total() << ", KeySwitch "
              << counts.keySwitch() << ", input ciphertexts "
              << plan.inputCiphertexts() << ", depth " << plan.depth()
              << " levels\n";

    ckks::CkksContext ctx(params);
    Timer setup;
    hecnn::Runtime runtime(plan, ctx, /*seed=*/2023);
    std::cout << "Key generation (relin + "
              << runtime.galoisKeyCount() << " Galois keys): "
              << setup.elapsedSeconds() << " s\n";

    const nn::Tensor input = nn::syntheticInput(net, 7);
    const nn::Tensor expected = net.forward(input);

    Timer infer;
    const auto logits = runtime.infer(input);
    const double cpu_seconds = infer.elapsedSeconds();

    double max_err = 0.0;
    std::size_t argmax_he = 0, argmax_pt = 0;
    std::cout << "\nlogit  encrypted    plaintext\n";
    for (std::size_t i = 0; i < logits.size(); ++i) {
        std::cout << "  " << i << "    " << logits[i] << "    "
                  << expected[i] << "\n";
        max_err = std::max(max_err, std::abs(logits[i] - expected[i]));
        if (logits[i] > logits[argmax_he])
            argmax_he = i;
        if (expected[i] > expected[argmax_pt])
            argmax_pt = i;
    }
    std::cout << "max |err| = " << max_err << ", argmax "
              << (argmax_he == argmax_pt ? "MATCHES" : "DIFFERS")
              << " (class " << argmax_he << ")\n";

    std::cout << "\nCPU software inference: " << cpu_seconds << " s\n";
    for (const auto &device : {fpga::acu9eg(), fpga::acu15eg()}) {
        const auto sol = Fxhenn::generate(net, params, device);
        std::cout << "FxHENN accelerator on " << device.name << ": "
                  << sol.latencySeconds() << " s predicted ("
                  << cpu_seconds / sol.latencySeconds()
                  << "X over this CPU run; paper reports 0.24/0.19 s)\n";
    }
    return 0;
}
