/**
 * @file
 * The MLaaS deployment split of Sec. I, end to end through the wire
 * formats:
 *
 *   [model owner]  compiles the network -> plan file
 *   [client]       generates keys, packs + encrypts an image,
 *                  serializes ciphertexts and evaluation keys
 *   [server]       loads plan + eval keys + ciphertexts (never the
 *                  secret key), runs every layer homomorphically,
 *                  serializes the encrypted logits
 *   [client]       decrypts and reads the prediction
 *
 * Every hand-off goes through an actual byte stream, so this example
 * doubles as a demonstration that nothing secret ever crosses to the
 * server side.
 */
#include <iostream>
#include <map>
#include <sstream>

#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/evaluator.hpp"
#include "src/ckks/keygen.hpp"
#include "src/ckks/serialization.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_io.hpp"
#include "src/nn/model_zoo.hpp"

using namespace fxhenn;

int
main()
{
    const auto params = ckks::testParams(2048, 7, 30);
    const auto net = nn::buildTestNetwork();

    // ---- model owner: compile and "publish" the plan ------------------
    std::stringstream plan_wire;
    {
        const auto plan = hecnn::compile(net, params);
        hecnn::savePlan(plan, plan_wire);
        std::cout << "[owner]  published plan ("
                  << plan_wire.str().size() << " bytes, "
                  << plan.totalCounts().total() << " HOPs)\n";
    }

    // ---- client: keys + encrypted input --------------------------------
    ckks::CkksContext client_ctx(params);
    Rng client_rng(99);
    ckks::KeyGenerator keygen(client_ctx, client_rng);
    ckks::Encoder client_encoder(client_ctx);
    ckks::Encryptor encryptor(client_ctx, keygen.makePublicKey(),
                              client_rng);

    std::stringstream keys_wire;   // evaluation keys only
    std::stringstream input_wire;  // encrypted image
    const nn::Tensor image = nn::syntheticInput(net, 42);
    {
        const auto plan = hecnn::loadPlan(plan_wire);
        plan_wire.seekg(0);

        ckks::saveRelinKey(keygen.makeRelinKey(), client_ctx,
                           keys_wire);
        ckks::GaloisKeys gk;
        for (std::int32_t step : plan.rotationSteps())
            keygen.addGaloisKey(gk, step);
        ckks::saveGaloisKeys(gk, client_ctx, keys_wire);

        // Pack the image per the plan's gather spec and encrypt.
        for (const auto &gather : plan.inputGather) {
            std::vector<double> slots(client_ctx.slots(), 0.0);
            for (std::size_t s = 0; s < slots.size(); ++s) {
                if (gather[s] >= 0)
                    slots[s] = image.data()[static_cast<std::size_t>(
                        gather[s])];
            }
            const auto ct = encryptor.encrypt(client_encoder.encode(
                std::span<const double>(slots), params.scale,
                params.levels));
            ckks::saveCiphertext(ct, client_ctx, input_wire);
        }
        std::cout << "[client] sent " << plan.inputCiphertexts()
                  << " ciphertexts (" << input_wire.str().size()
                  << " bytes) + eval keys (" << keys_wire.str().size()
                  << " bytes); secret key stays local\n";
    }

    // ---- server: compute on ciphertexts only ---------------------------
    std::stringstream result_wire;
    {
        ckks::CkksContext server_ctx(params); // same public parameters
        plan_wire.seekg(0);
        const auto plan = hecnn::loadPlan(plan_wire);
        const auto relin = ckks::loadRelinKey(server_ctx, keys_wire);
        const auto galois = ckks::loadGaloisKeys(server_ctx, keys_wire);
        ckks::Encoder server_encoder(server_ctx);
        ckks::Evaluator eval(server_ctx);

        // Execute the plan's instruction streams directly.
        std::map<std::int32_t, ckks::Ciphertext> regs;
        for (std::size_t i = 0; i < plan.inputCiphertexts(); ++i) {
            regs[static_cast<std::int32_t>(i)] =
                ckks::loadCiphertext(server_ctx, input_wire);
        }
        auto encode_pool = [&](std::int32_t id, double scale,
                               std::size_t level) {
            const auto &pt = plan.plaintexts[static_cast<std::size_t>(
                id)];
            return server_encoder.encode(
                std::span<const double>(pt.values), scale, level);
        };
        for (const auto &layer : plan.layers) {
            for (const auto &instr : layer.instrs) {
                using hecnn::HeOpKind;
                auto &src = regs.at(instr.src);
                switch (instr.kind) {
                  case HeOpKind::pcMult:
                    regs[instr.dst] = eval.mulPlain(
                        src, encode_pool(instr.pt, params.scale,
                                         src.level()));
                    break;
                  case HeOpKind::pcAdd:
                    regs[instr.dst] = eval.addPlain(
                        src, encode_pool(instr.pt, src.scale,
                                         src.level()));
                    break;
                  case HeOpKind::ccAdd:
                    eval.addInplace(regs.at(instr.dst), src);
                    break;
                  case HeOpKind::ccMult:
                    regs[instr.dst] = eval.mulNoRelin(src, src);
                    break;
                  case HeOpKind::relinearize:
                    regs[instr.dst] = eval.relinearize(src, relin);
                    break;
                  case HeOpKind::rescale:
                    regs[instr.dst] = eval.rescale(src);
                    break;
                  case HeOpKind::rotate:
                    regs[instr.dst] =
                        eval.rotate(src, instr.step, galois);
                    break;
                  case HeOpKind::copy:
                    regs[instr.dst] = src;
                    break;
                }
            }
        }
        // Ship back every register the output layout references.
        std::int32_t last = -1;
        for (const auto &[reg, slot] : plan.outputLayout.pos) {
            if (reg != last) {
                ckks::saveCiphertext(regs.at(reg), server_ctx,
                                     result_wire);
                last = reg;
            }
        }
        std::cout << "[server] executed " << eval.counts().total()
                  << " HE ops; returned encrypted logits ("
                  << result_wire.str().size() << " bytes)\n";
    }

    // ---- client: decrypt --------------------------------------------
    {
        plan_wire.seekg(0);
        const auto plan = hecnn::loadPlan(plan_wire);
        ckks::Decryptor decryptor(client_ctx, keygen.secretKey());
        std::vector<std::vector<double>> decoded;
        std::int32_t last = -1;
        std::map<std::int32_t, std::size_t> reg_to_idx;
        for (const auto &[reg, slot] : plan.outputLayout.pos) {
            if (reg != last) {
                reg_to_idx[reg] = decoded.size();
                decoded.push_back(client_encoder.decodeReal(
                    decryptor.decrypt(ckks::loadCiphertext(
                        client_ctx, result_wire))));
                last = reg;
            }
        }
        const nn::Tensor expected = net.forward(image);
        std::cout << "[client] logits (encrypted vs plaintext):\n";
        double max_err = 0.0;
        for (std::size_t e = 0; e < plan.outputLayout.pos.size(); ++e) {
            const auto [reg, slot] = plan.outputLayout.pos[e];
            const double v =
                decoded[reg_to_idx.at(reg)][static_cast<std::size_t>(
                    slot)];
            std::cout << "  " << v << " vs " << expected[e] << "\n";
            max_err = std::max(max_err, std::abs(v - expected[e]));
        }
        std::cout << "max |err| = " << max_err << " -> "
                  << (max_err < 1e-2 ? "OK" : "MISMATCH") << "\n";
    }
    return 0;
}
