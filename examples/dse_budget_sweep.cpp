/**
 * @file
 * Interactive DSE exploration: sweep the on-chip memory budget for a
 * chosen model and print the best reachable design at every budget —
 * the raw data behind the paper's Fig. 9.
 *
 * Usage: dse_budget_sweep [min_blocks] [max_blocks] [step]
 */
#include <cstdlib>
#include <iostream>

#include "src/common/table_printer.hpp"
#include "src/dse/explorer.hpp"
#include "src/fpga/op_model.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/nn/model_zoo.hpp"

using namespace fxhenn;

int
main(int argc, char **argv)
{
    const double lo = argc > 1 ? std::atof(argv[1]) : 350.0;
    const double hi = argc > 2 ? std::atof(argv[2]) : 1500.0;
    const double step = argc > 3 ? std::atof(argv[3]) : 100.0;

    const auto plan =
        hecnn::compile(nn::buildMnistNetwork(), ckks::mnistParams());
    const auto device = fpga::acu9eg();

    std::cout << "DSE budget sweep for " << plan.name << " on a "
              << device.dspSlices << "-DSP device\n\n";

    TablePrinter table({"BRAM budget", "Feasible", "Best lat s",
                        "KS intra/inter", "Rescale intra", "nc_NTT"});
    for (double budget = lo; budget <= hi; budget += step) {
        dse::ExploreOptions opts;
        opts.bramBudgetBlocks = budget;
        opts.allowInfeasible = true; // infeasible budgets are rows here
        const auto result = dse::explore(plan, device, opts);
        if (!result.best) {
            table.addRow({fmtF(budget, 0), "0", "-", "-", "-", "-"});
            continue;
        }
        const auto &ks =
            result.best->alloc[fpga::HeOpModule::keySwitch];
        const auto &rs = result.best->alloc[fpga::HeOpModule::rescale];
        table.addRow(
            {fmtF(budget, 0),
             fmtI(static_cast<long long>(result.evaluated)),
             fmtF(result.best->latencySeconds, 3),
             fmtI(ks.pIntra) + "/" + fmtI(ks.pInter), fmtI(rs.pIntra),
             fmtI(ks.ncNtt)});
    }
    table.print(std::cout);

    std::cout << "\nSmall budgets admit few, slow designs; returns "
                 "diminish once the\nbottleneck layer's buffers fit "
                 "(Fig. 9).\n";
    return 0;
}
