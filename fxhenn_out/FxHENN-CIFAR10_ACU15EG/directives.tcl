# FxHENN generated HLS directives
# model:  FxHENN-CIFAR10
# device: ACU15EG
# predicted latency: 50.2741 s

# OP1 CCadd: nc_ntt=4 intra=4 inter=1
set_directive_array_partition -type cyclic -factor 8 "he_ccadd" poly_buf
set_directive_unroll -factor 4 "he_ccadd/limb_loop"
set_directive_pipeline "he_ccadd/stage_loop"

# OP2 PCmult: nc_ntt=4 intra=4 inter=1
set_directive_array_partition -type cyclic -factor 8 "he_pcmult" poly_buf
set_directive_unroll -factor 4 "he_pcmult/limb_loop"
set_directive_pipeline "he_pcmult/stage_loop"

# OP3 CCmult: nc_ntt=4 intra=1 inter=1
set_directive_array_partition -type cyclic -factor 8 "he_ccmult" poly_buf
set_directive_unroll -factor 1 "he_ccmult/limb_loop"
set_directive_pipeline "he_ccmult/stage_loop"

# OP4 Rescale: nc_ntt=4 intra=5 inter=1
set_directive_array_partition -type cyclic -factor 8 "he_rescale" poly_buf
set_directive_unroll -factor 5 "he_rescale/limb_loop"
set_directive_pipeline "he_rescale/stage_loop"

# OP5 KeySwitch: nc_ntt=4 intra=1 inter=1
set_directive_array_partition -type cyclic -factor 8 "he_keyswitch" poly_buf
set_directive_unroll -factor 1 "he_keyswitch/limb_loop"
set_directive_pipeline "he_keyswitch/stage_loop"

# inter-layer buffer reuse: bind all layer I/O buffers to
# the shared BRAM pool sized by the DSE
set_directive_bind_storage -type ram_t2p -impl bram "top" shared_pool
