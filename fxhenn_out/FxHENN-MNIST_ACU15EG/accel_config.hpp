// FxHENN generated accelerator configuration
// model:  FxHENN-MNIST
// device: ACU15EG
#pragma once

namespace fxhenn_accel {

inline constexpr unsigned kPolyDegree = 8192;
inline constexpr unsigned kLevels = 7;
inline constexpr unsigned kPrimeBits = 30;

inline constexpr unsigned kNcNttCcadd = 4;
inline constexpr unsigned kIntraCcadd = 4;
inline constexpr unsigned kInterCcadd = 1;
inline constexpr unsigned kNcNttPcmult = 4;
inline constexpr unsigned kIntraPcmult = 4;
inline constexpr unsigned kInterPcmult = 1;
inline constexpr unsigned kNcNttCcmult = 4;
inline constexpr unsigned kIntraCcmult = 1;
inline constexpr unsigned kInterCcmult = 1;
inline constexpr unsigned kNcNttRescale = 4;
inline constexpr unsigned kIntraRescale = 1;
inline constexpr unsigned kInterRescale = 2;
inline constexpr unsigned kNcNttKeyswitch = 4;
inline constexpr unsigned kIntraKeyswitch = 5;
inline constexpr unsigned kInterKeyswitch = 1;

} // namespace fxhenn_accel
