/**
 * @file
 * Deterministic, seedable fault injection for robustness testing.
 *
 * Probes are named "sites" threaded through the stack (ciphertext
 * limbs, plan deserialization, evaluator ops, DSE device specs); each
 * site supports a small set of fault "kinds". A fault is armed at
 * runtime (CLI `--fault <site>:<kind>[:<trigger>[:<seed>]]` or
 * armFault() in tests) and fires exactly once, on the trigger-th hit of
 * its site. The test suite proves that every registered site x kind is
 * detected and classified by the guard layer — never silently
 * swallowed.
 *
 * Overhead discipline mirrors src/telemetry: the CMake option
 * FXHENN_FAULTINJECT (default ON) controls FXHENN_FAULTINJECT_ENABLED;
 * OFF makes fireFault() a constexpr-nullopt inline that dead-strips
 * from the hot paths. Compiled in but disarmed, a probe costs one
 * relaxed atomic load and a predicted branch.
 */
#ifndef FXHENN_ROBUSTNESS_FAULT_INJECTION_HPP
#define FXHENN_ROBUSTNESS_FAULT_INJECTION_HPP

#ifndef FXHENN_FAULTINJECT_ENABLED
#define FXHENN_FAULTINJECT_ENABLED 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace fxhenn {

class RnsPoly;

namespace robustness {

/** @return true when probes were compiled in (FXHENN_FAULTINJECT). */
constexpr bool
faultInjectCompiledIn()
{
    return FXHENN_FAULTINJECT_ENABLED != 0;
}

/** One parsed fault directive: site:kind[:trigger[:seed]]. */
struct FaultSpec
{
    std::string site;
    std::string kind;
    std::uint64_t trigger = 1; ///< fire on the Nth hit of the site
    std::uint64_t seed = 1;    ///< seeds any randomized mutation
};

/** What a firing probe receives. */
struct ActiveFault
{
    std::string kind;
    std::uint64_t seed = 1;
};

/** Registry metadata: one row per supported site x kind. */
struct FaultSiteInfo
{
    const char *site;
    const char *kind;
    /** Documented detection class: "ConfigError" or "FailureReport". */
    const char *detectedAs;
};

/** Every site x kind the harness knows (the matrix test iterates it). */
std::span<const FaultSiteInfo> faultRegistry();

/**
 * Parse "site:kind[:trigger[:seed]]"; throws ConfigError on malformed
 * input (the site/kind pair is validated later, by armFault()).
 */
FaultSpec parseFaultSpec(const std::string &text);

/**
 * Arm @p spec. Throws ConfigError when the site x kind pair is not in
 * the registry, or when fault injection was compiled out.
 */
void armFault(const FaultSpec &spec);

/** Disarm everything and zero the fire counter. */
void disarmFaults();

/** Number of currently armed (not yet fired) faults. */
std::size_t armedFaultCount();

/** Total fires since the last disarmFaults(). */
std::uint64_t faultFireCount();

/**
 * Test-only observation hook, invoked synchronously whenever a fault
 * fires. Pass nullptr to clear.
 */
using FaultHook = void (*)(const std::string &site,
                           const ActiveFault &fault);
void setFaultHook(FaultHook hook);

#if FXHENN_FAULTINJECT_ENABLED

namespace detail {
extern std::atomic<std::size_t> armedCount;
std::optional<ActiveFault> fireFaultSlow(const char *site);
} // namespace detail

/**
 * Probe: called from an instrumented site. Returns the fault to apply
 * when one armed for @p site reaches its trigger count, nullopt
 * otherwise. The caller interprets the kind.
 */
inline std::optional<ActiveFault>
fireFault(const char *site)
{
    if (detail::armedCount.load(std::memory_order_relaxed) == 0)
        return std::nullopt;
    return detail::fireFaultSlow(site);
}

#else // !FXHENN_FAULTINJECT_ENABLED

inline std::optional<ActiveFault>
fireFault(const char *)
{
    return std::nullopt;
}

#endif // FXHENN_FAULTINJECT_ENABLED

/**
 * Seeded corruption helper for ciphertext/plaintext limbs: XORs a
 * random bit into a handful of residues of one limb, reduced back into
 * [0, q) so the poly stays structurally valid while its contents turn
 * to garbage.
 */
void corruptResidues(RnsPoly &poly, std::uint64_t seed);

} // namespace robustness
} // namespace fxhenn

#endif // FXHENN_ROBUSTNESS_FAULT_INJECTION_HPP
