/**
 * @file
 * Guardrail policy types shared across the HE-CNN stack.
 *
 * CKKS is approximate: a silent scale mismatch, level underflow or
 * modulus-headroom overflow produces garbage logits with no error.
 * The guard layer classifies what happens when a runtime invariant
 * breaks:
 *
 *  - GuardPolicy::strict  — throw InternalError at the first violation;
 *  - GuardPolicy::warn    — log to stderr and keep running (default:
 *                           zero behavior change for existing callers);
 *  - GuardPolicy::degrade — abort the encrypted run and hand back a
 *                           structured FailureReport instead of garbage
 *                           logits (graceful degradation).
 *
 * The plan-aware tracker that produces BudgetSamples lives in
 * src/hecnn/guard.hpp; these types stay dependency-light so ckks and
 * dse can share them.
 */
#ifndef FXHENN_ROBUSTNESS_GUARD_HPP
#define FXHENN_ROBUSTNESS_GUARD_HPP

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fxhenn::robustness {

/** What the runtime does when a guarded invariant breaks. */
enum class GuardPolicy { strict, warn, degrade };

/** @return "strict" | "warn" | "degrade". */
const char *guardPolicyName(GuardPolicy policy);

/** Parse a policy name; throws ConfigError on anything else. */
GuardPolicy parseGuardPolicy(const std::string &name);

/** Knobs of the runtime guard. */
struct GuardOptions
{
    GuardPolicy policy = GuardPolicy::warn;
    /**
     * Assumed log2 of the largest message value at layer boundaries.
     * The model zoo tunes weights so intermediate activations stay
     * below ~0.25, hence the -2 default; raise it for networks with
     * larger dynamic range to get earlier exhaustion warnings.
     */
    double messageBits = -2.0;
    /**
     * Relative tolerance when comparing the statically predicted scale
     * against the ciphertext's actual scale tag. The prediction replays
     * the evaluator's own double arithmetic, so healthy runs match
     * bit-for-bit; any real divergence is orders of magnitude larger.
     */
    double scaleRelTolerance = 1e-6;
};

/** One per-layer point of the predicted noise-budget trajectory. */
struct BudgetSample
{
    std::string layer;
    std::size_t level = 0;    ///< ciphertext level after the layer
    double scaleBits = 0.0;   ///< log2(scale) after the layer
    /**
     * Certified log2 bound on the per-slot noise standard deviation
     * after the layer (from the static NoiseCertificate). 0 when the
     * guard fell back to the noise-free headroom formula.
     */
    double noiseBits = 0.0;
    /**
     * Bits left before the message (plus certified noise tail)
     * overflows the modulus at this level. Negative means decryption
     * of this layer's output is garbage. Taken from the static noise
     * certificate when one is available; otherwise the coarser
     * log2(q_level / 2) - scaleBits - messageBits formula.
     */
    double headroomBits = 0.0;
};

/** Render the trajectory as an indented table (one line per layer). */
std::string renderTrajectory(std::span<const BudgetSample> trajectory);

/**
 * Structured result of a gracefully degraded encrypted run: where the
 * run stopped, why, and the headroom trajectory up to that point.
 */
struct FailureReport
{
    std::string layer;  ///< layer being executed when the guard fired
    std::string op;     ///< opcode, "layer-end", or "exception"
    std::string reason; ///< human-readable diagnosis
    std::vector<BudgetSample> trajectory;

    std::string render() const;
};

} // namespace fxhenn::robustness

#endif // FXHENN_ROBUSTNESS_GUARD_HPP
