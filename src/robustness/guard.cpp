#include "src/robustness/guard.hpp"

#include <iomanip>
#include <sstream>

#include "src/common/assert.hpp"

namespace fxhenn::robustness {

const char *
guardPolicyName(GuardPolicy policy)
{
    switch (policy) {
      case GuardPolicy::strict:
        return "strict";
      case GuardPolicy::warn:
        return "warn";
      case GuardPolicy::degrade:
        return "degrade";
    }
    return "?";
}

GuardPolicy
parseGuardPolicy(const std::string &name)
{
    if (name == "strict")
        return GuardPolicy::strict;
    if (name == "warn")
        return GuardPolicy::warn;
    if (name == "degrade")
        return GuardPolicy::degrade;
    throw ConfigError("unknown guard policy '" + name +
                      "' (expected strict, warn or degrade)");
}

std::string
renderTrajectory(std::span<const BudgetSample> trajectory)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(1);
    for (const auto &s : trajectory) {
        oss << "    " << std::left << std::setw(12) << s.layer
            << std::right << "  level " << std::setw(2) << s.level
            << "  scale 2^" << std::setw(5) << s.scaleBits;
        if (s.noiseBits != 0.0)
            oss << "  noise 2^" << std::setw(6) << s.noiseBits;
        oss << "  headroom " << std::showpos << std::setw(7)
            << s.headroomBits << std::noshowpos << " bits\n";
    }
    return oss.str();
}

std::string
FailureReport::render() const
{
    std::ostringstream oss;
    oss << "FAILURE: " << reason << "\n"
        << "  at layer: " << layer << ", op: " << op << "\n";
    if (!trajectory.empty()) {
        oss << "  predicted headroom trajectory:\n"
            << renderTrajectory(trajectory);
    }
    return oss.str();
}

} // namespace fxhenn::robustness
