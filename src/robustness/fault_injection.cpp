#include "src/robustness/fault_injection.hpp"

#include <mutex>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/rns/rns_poly.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::robustness {

namespace {

/**
 * The fault matrix. Every row must have a scenario in
 * tests/robustness/test_fault_matrix.cpp proving the fault is detected
 * as the documented class; the matrix test fails on unknown sites.
 */
constexpr FaultSiteInfo kRegistry[] = {
    {"plan.load", "truncate", "ConfigError"},
    {"plan.load", "corrupt", "ConfigError"},
    {"evaluator.rescale", "drop", "FailureReport"},
    {"evaluator.rescale", "bitflip", "FailureReport"},
    {"evaluator.scale", "perturb", "FailureReport"},
    {"ciphertext.limb", "bitflip", "FailureReport"},
    {"dse.device", "infeasible", "ConfigError"},
    {"engine.queue", "delay", "FailureReport"},
    {"engine.request", "transient", "FailureReport"},
};

struct ArmedFault
{
    FaultSpec spec;
    std::uint64_t hits = 0;
    bool fired = false;
};

struct Injector
{
    std::mutex mutex;
    std::vector<ArmedFault> armed;
    std::uint64_t fires = 0;
    FaultHook hook = nullptr;
};

Injector &
injector()
{
    static Injector instance;
    return instance;
}

bool
inRegistry(const std::string &site, const std::string &kind)
{
    for (const auto &info : kRegistry) {
        if (site == info.site && kind == info.kind)
            return true;
    }
    return false;
}

} // namespace

#if FXHENN_FAULTINJECT_ENABLED
namespace detail {

std::atomic<std::size_t> armedCount{0};

std::optional<ActiveFault>
fireFaultSlow(const char *site)
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mutex);
    for (auto &fault : inj.armed) {
        if (fault.fired || fault.spec.site != site)
            continue;
        if (++fault.hits < fault.spec.trigger)
            continue;
        fault.fired = true;
        armedCount.fetch_sub(1, std::memory_order_relaxed);
        ++inj.fires;
        FXHENN_TELEM_COUNT("robustness.fault.fired", 1);
        ActiveFault active{fault.spec.kind, fault.spec.seed};
        if (inj.hook)
            inj.hook(site, active);
        return active;
    }
    return std::nullopt;
}

} // namespace detail
#endif // FXHENN_FAULTINJECT_ENABLED

std::span<const FaultSiteInfo>
faultRegistry()
{
    return kRegistry;
}

FaultSpec
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const auto colon = text.find(':', start);
        parts.push_back(text.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    FXHENN_FATAL_IF(parts.size() < 2 || parts.size() > 4 ||
                        parts[0].empty() || parts[1].empty(),
                    "malformed fault spec '" + text +
                        "' (expected site:kind[:trigger[:seed]])");
    spec.site = parts[0];
    spec.kind = parts[1];
    auto parseNum = [&](const std::string &field, const char *what) {
        std::size_t pos = 0;
        unsigned long long v = 0;
        try {
            v = std::stoull(field, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        FXHENN_FATAL_IF(pos != field.size() || field.empty(),
                        std::string("fault spec ") + what +
                            " must be an integer, got '" + field + "'");
        return static_cast<std::uint64_t>(v);
    };
    if (parts.size() >= 3) {
        spec.trigger = parseNum(parts[2], "trigger");
        FXHENN_FATAL_IF(spec.trigger == 0, "fault trigger must be >= 1");
    }
    if (parts.size() >= 4)
        spec.seed = parseNum(parts[3], "seed");
    return spec;
}

void
armFault(const FaultSpec &spec)
{
    FXHENN_FATAL_IF(!inRegistry(spec.site, spec.kind),
                    "unknown fault site/kind '" + spec.site + ":" +
                        spec.kind + "' (see robustness::faultRegistry)");
    FXHENN_FATAL_IF(!faultInjectCompiledIn(),
                    "fault injection was compiled out "
                    "(rebuild with FXHENN_FAULTINJECT=ON)");
#if FXHENN_FAULTINJECT_ENABLED
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mutex);
    inj.armed.push_back(ArmedFault{spec, 0, false});
    detail::armedCount.fetch_add(1, std::memory_order_relaxed);
#endif
}

void
disarmFaults()
{
#if FXHENN_FAULTINJECT_ENABLED
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mutex);
    inj.armed.clear();
    inj.fires = 0;
    detail::armedCount.store(0, std::memory_order_relaxed);
#endif
}

std::size_t
armedFaultCount()
{
#if FXHENN_FAULTINJECT_ENABLED
    return detail::armedCount.load(std::memory_order_relaxed);
#else
    return 0;
#endif
}

std::uint64_t
faultFireCount()
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mutex);
    return inj.fires;
}

void
setFaultHook(FaultHook hook)
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mutex);
    inj.hook = hook;
}

void
corruptResidues(RnsPoly &poly, std::uint64_t seed)
{
    Rng rng(seed);
    // Limb 0 survives every rescale, so the damage cannot be divided
    // away by the modulus chain: the overwritten residues leave the
    // CRT reconstruction off by random multiples of the companion
    // primes, which decodes as unmistakable garbage.
    const std::uint64_t q = poly.limbModulus(0).value();
    auto limb = poly.limb(0);
    for (int i = 0; i < 64; ++i) {
        const std::size_t k = rng.uniform(limb.size());
        limb[k] = rng.uniform(q);
    }
}

} // namespace fxhenn::robustness
