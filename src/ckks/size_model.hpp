/**
 * @file
 * Byte-size accounting for CKKS objects ("Mod.Size" column of Table VI).
 *
 * The 5-6 orders-of-magnitude ciphertext expansion quoted in the paper's
 * abstract comes from here: one encrypted image is 2 * L * N * 8 bytes
 * instead of a few kilobytes of pixels, and the server-side model
 * (encoded weight plaintexts + relinearization + Galois keys) grows
 * accordingly.
 */
#ifndef FXHENN_CKKS_SIZE_MODEL_HPP
#define FXHENN_CKKS_SIZE_MODEL_HPP

#include <cstddef>
#include <cstdint>

#include "src/ckks/params.hpp"

namespace fxhenn::ckks {

/** Bytes of one RNS polynomial with @p limbs limbs of degree @p n. */
std::size_t polyBytes(std::uint64_t n, std::size_t limbs);

/** Bytes of a 2-part ciphertext at @p level. */
std::size_t ciphertextBytes(const CkksParams &p, std::size_t level);

/** Bytes of an encoded plaintext at @p level. */
std::size_t plaintextBytes(const CkksParams &p, std::size_t level);

/** Bytes of one key-switching key (relin or one Galois element). */
std::size_t kswKeyBytes(const CkksParams &p);

/** Bytes of the public key. */
std::size_t publicKeyBytes(const CkksParams &p);

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_SIZE_MODEL_HPP
