/**
 * @file
 * RNS-CKKS parameter sets.
 *
 * The paper (Sec. VII-A) selects L = 7 data primes for multiplication
 * depth 5, with N = 8192 / 30-bit q_i for FxHENN-MNIST (log Q = 210,
 * lambda = 128) and N = 16384 / 36-bit q_i for FxHENN-CIFAR10
 * (log Q = 252, lambda = 192), following the LoLa parameter choices and
 * the homomorphic-encryption security tables [1], [8].
 */
#ifndef FXHENN_CKKS_PARAMS_HPP
#define FXHENN_CKKS_PARAMS_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace fxhenn::ckks {

/** User-facing CKKS parameter choice. */
struct CkksParams
{
    std::uint64_t n = 8192;     ///< ring degree N (power of two)
    unsigned qBits = 30;        ///< bit width of each data prime q_i
    std::size_t levels = 7;     ///< number of data primes L
    unsigned specialBits = 50;  ///< bit width of the key-switch prime p
    double scale = double(1 << 30); ///< encoding scale Delta
    double sigma = 3.2;         ///< error standard deviation

    /** Validate ranges; throws ConfigError on nonsense. */
    void validate() const;

    /** log2(Q) = levels * qBits (approximately; primes are just below). */
    double logQ() const { return double(levels) * qBits; }

    /**
     * Conservative security level estimate from the HE-standard table
     * (ternary secret): returns the largest lambda in {128, 192, 256}
     * supported by (N, logQP), or 0 when even 128 is not met.
     */
    unsigned securityLevel() const;

    /** Human-readable one-line description. */
    std::string describe() const;
};

/** Paper parameter set for FxHENN-MNIST: N = 8192, 30-bit q_i, L = 7. */
CkksParams mnistParams();

/** Paper parameter set for FxHENN-CIFAR10: N = 16384, 36-bit, L = 7. */
CkksParams cifar10Params();

/** Small parameters for fast unit tests (NOT secure). */
CkksParams testParams(std::uint64_t n = 1024, std::size_t levels = 4,
                      unsigned qBits = 30);

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_PARAMS_HPP
