#include "src/ckks/noise.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/rns/crt.hpp"

namespace fxhenn::ckks {

namespace {

/**
 * Headroom of a decrypted plaintext: largest centered coefficient
 * versus half the current modulus.
 */
double
plaintextHeadroomBits(const Plaintext &plain, const CkksContext &ctx)
{
    RnsPoly poly = plain.poly;
    if (poly.domain() == PolyDomain::ntt)
        poly.fromNtt();
    const CrtReconstructor crt(ctx.basis(), poly.level());
    long double max_coeff = 0.0L;
    std::vector<std::uint64_t> residues(poly.level());
    for (std::size_t k = 0; k < ctx.n(); ++k) {
        for (std::size_t l = 0; l < poly.level(); ++l)
            residues[l] = poly.limb(l)[k];
        const long double c =
            std::abs(crt.reconstructCentered(residues));
        max_coeff = std::max(max_coeff, c);
    }
    const double log_half_q = ctx.basis().logQ(poly.level()) - 1.0;
    const double log_coeff =
        max_coeff > 0.0L
            ? static_cast<double>(std::log2(max_coeff))
            : 0.0;
    return log_half_q - log_coeff;
}

} // namespace

NoiseReport
measureNoise(const Ciphertext &ct, std::span<const double> expected,
             const CkksContext &ctx, const Decryptor &decryptor,
             const Encoder &encoder)
{
    FXHENN_FATAL_IF(expected.size() > ctx.slots(),
                    "more expected values than slots");
    const Plaintext plain = decryptor.decrypt(ct);
    const auto decoded = encoder.decodeReal(plain);

    NoiseReport report;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        const double want =
            i < expected.size() ? expected[i] : 0.0;
        report.maxAbsError = std::max(report.maxAbsError,
                                      std::abs(decoded[i] - want));
    }
    report.errorBits = report.maxAbsError > 0.0
                           ? std::log2(report.maxAbsError)
                           : -1074.0;

    report.headroomBits = plaintextHeadroomBits(plain, ctx);
    return report;
}

double
headroomBits(const Ciphertext &ct, const CkksContext &ctx,
             const Decryptor &decryptor)
{
    return plaintextHeadroomBits(decryptor.decrypt(ct), ctx);
}

double
freshNoiseEstimate(const CkksParams &params)
{
    const double n = static_cast<double>(params.n);
    // e0 + u*e_pk-ish terms: sigma * sqrt(2N) * (2 sqrt(N) + 1).
    const double coeff_noise =
        params.sigma * std::sqrt(2.0 * n) * (2.0 * std::sqrt(n) + 1.0);
    return coeff_noise / params.scale;
}

NoiseModel::NoiseModel(const CkksParams &params,
                       std::span<const std::uint64_t> primes)
    : params_(params),
      logN_(std::log2(static_cast<double>(params.n)))
{
    FXHENN_FATAL_IF(primes.size() != params.levels,
                    "NoiseModel: prime count does not match levels");
    logPrimes_.reserve(primes.size());
    for (const std::uint64_t q : primes)
        logPrimes_.push_back(std::log2(static_cast<double>(q)));
}

double
NoiseModel::logAdd(double a, double b)
{
    const double hi = std::max(a, b);
    const double lo = std::min(a, b);
    // Below ~64 bits apart the smaller term vanishes in a double
    // anyway; short-circuit to keep exp2 in range.
    if (hi - lo > 64.0)
        return hi;
    return hi + std::log2(1.0 + std::exp2(lo - hi));
}

double
NoiseModel::logAddRss(double a, double b)
{
    return 0.5 * logAdd(2.0 * a, 2.0 * b);
}

double
NoiseModel::tailBits()
{
    return 2.585; // log2(6): the usual 6-sigma high-probability tail
}

double
NoiseModel::freshNoiseBits() const
{
    // e_pk*u + e1*s dominate; each factor embeds to per-slot deviation
    // sqrt(N * var): sigma*sqrt(N) times sqrt(2N/3) for a ternary ring
    // element, RSS over the two terms (x sqrt(2)).
    return std::log2(params_.sigma) + logN_ +
           0.5 * std::log2(2.0 / 3.0) + 0.5;
}

double
NoiseModel::encodingRoundBits() const
{
    // iid uniform(+-1/2) coefficients: per-slot deviation
    // sqrt(N * 1/12).
    return 0.5 * (logN_ - std::log2(12.0));
}

double
NoiseModel::ringRoundBits() const
{
    // r0 + r1*s: the r1*s product dominates with per-slot deviation
    // sqrt(N/12) * sqrt(2N/3) = N / sqrt(18).
    return logN_ - 0.5 * std::log2(18.0);
}

double
NoiseModel::pcAddNoiseBits(double noiseBits) const
{
    return logAddRss(noiseBits, encodingRoundBits());
}

double
NoiseModel::ccAddNoiseBits(double aBits, double bBits) const
{
    return logAddRss(aBits, bBits);
}

double
NoiseModel::pcMultNoiseBits(double noiseBits, double ptSlotBits,
                            double msgSlotBits) const
{
    // Slot-wise product: e * pt scales the noise by at most the
    // largest plaintext slot; the message times the plaintext's
    // encoding rounding is the second term.
    return logAddRss(noiseBits + ptSlotBits,
                     msgSlotBits + encodingRoundBits());
}

double
NoiseModel::ccMultNoiseBits(double noiseBits,
                            double msgSlotBits) const
{
    // (m + e)^2 - m^2 = 2*m*e + e^2, slot-wise.
    const double cross = msgSlotBits + noiseBits + 1.0;
    const double square = 2.0 * noiseBits;
    return logAddRss(cross, square);
}

double
NoiseModel::keySwitchNoiseBits(std::size_t level) const
{
    // Hybrid keyswitch: sum over `level` digits of d_i * e_ksk_i
    // (d_i uniform mod q_i: per-slot deviation q*sqrt(N/12); ksk error
    // sigma*sqrt(N)), divided by the special prime P, plus the ModDown
    // rounding.
    const double ks =
        0.5 * std::log2(static_cast<double>(std::max<std::size_t>(
                  level, 1))) +
        static_cast<double>(params_.qBits) + std::log2(params_.sigma) +
        logN_ - 0.5 * std::log2(12.0) -
        static_cast<double>(params_.specialBits);
    return logAdd(ks, ringRoundBits());
}

double
NoiseModel::keySwitchedNoiseBits(double noiseBits,
                                 std::size_t level) const
{
    return logAddRss(noiseBits, keySwitchNoiseBits(level));
}

double
NoiseModel::rescaleNoiseBits(double noiseBits, std::size_t level) const
{
    FXHENN_FATAL_IF(level < 2 || level > logPrimes_.size(),
                    "rescaleNoiseBits: level out of range");
    const double scaled = noiseBits - logPrimes_[level - 1];
    return logAddRss(scaled, ringRoundBits());
}

double
NoiseModel::headroomBits(double msgSlotBits, double noiseBits,
                         std::size_t level) const
{
    const double total =
        logAdd(msgSlotBits, noiseBits + tailBits());
    return (logQ(level) - 1.0) - total;
}

double
NoiseModel::logQ(std::size_t level) const
{
    FXHENN_FATAL_IF(level > logPrimes_.size(),
                    "logQ: level out of range");
    double sum = 0.0;
    for (std::size_t i = 0; i < level; ++i)
        sum += logPrimes_[i];
    return sum;
}

} // namespace fxhenn::ckks
