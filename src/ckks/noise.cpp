#include "src/ckks/noise.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/rns/crt.hpp"

namespace fxhenn::ckks {

namespace {

/**
 * Headroom of a decrypted plaintext: largest centered coefficient
 * versus half the current modulus.
 */
double
plaintextHeadroomBits(const Plaintext &plain, const CkksContext &ctx)
{
    RnsPoly poly = plain.poly;
    if (poly.domain() == PolyDomain::ntt)
        poly.fromNtt();
    const CrtReconstructor crt(ctx.basis(), poly.level());
    long double max_coeff = 0.0L;
    std::vector<std::uint64_t> residues(poly.level());
    for (std::size_t k = 0; k < ctx.n(); ++k) {
        for (std::size_t l = 0; l < poly.level(); ++l)
            residues[l] = poly.limb(l)[k];
        const long double c =
            std::abs(crt.reconstructCentered(residues));
        max_coeff = std::max(max_coeff, c);
    }
    const double log_half_q = ctx.basis().logQ(poly.level()) - 1.0;
    const double log_coeff =
        max_coeff > 0.0L
            ? static_cast<double>(std::log2(max_coeff))
            : 0.0;
    return log_half_q - log_coeff;
}

} // namespace

NoiseReport
measureNoise(const Ciphertext &ct, std::span<const double> expected,
             const CkksContext &ctx, const Decryptor &decryptor,
             const Encoder &encoder)
{
    FXHENN_FATAL_IF(expected.size() > ctx.slots(),
                    "more expected values than slots");
    const Plaintext plain = decryptor.decrypt(ct);
    const auto decoded = encoder.decodeReal(plain);

    NoiseReport report;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        const double want =
            i < expected.size() ? expected[i] : 0.0;
        report.maxAbsError = std::max(report.maxAbsError,
                                      std::abs(decoded[i] - want));
    }
    report.errorBits = report.maxAbsError > 0.0
                           ? std::log2(report.maxAbsError)
                           : -1074.0;

    report.headroomBits = plaintextHeadroomBits(plain, ctx);
    return report;
}

double
headroomBits(const Ciphertext &ct, const CkksContext &ctx,
             const Decryptor &decryptor)
{
    return plaintextHeadroomBits(decryptor.decrypt(ct), ctx);
}

double
freshNoiseEstimate(const CkksParams &params)
{
    const double n = static_cast<double>(params.n);
    // e0 + u*e_pk-ish terms: sigma * sqrt(2N) * (2 sqrt(N) + 1).
    const double coeff_noise =
        params.sigma * std::sqrt(2.0 * n) * (2.0 * std::sqrt(n) + 1.0);
    return coeff_noise / params.scale;
}

} // namespace fxhenn::ckks
