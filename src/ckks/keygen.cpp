#include "src/ckks/keygen.hpp"

#include "src/common/assert.hpp"

namespace fxhenn::ckks {

KeyGenerator::KeyGenerator(const CkksContext &context, Rng &rng)
    : context_(context), rng_(rng)
{
    RnsPoly s(context.basis(), context.maxLevel(), /*withSpecial=*/true,
              PolyDomain::coeff);
    s.sampleTernary(rng_);
    s.toNtt();
    secretKey_ = SecretKey{std::move(s)};
}

PublicKey
KeyGenerator::makePublicKey()
{
    const RnsBasis &basis = context_.basis();
    const std::size_t level = context_.maxLevel();

    // pk over Q only: drop the special limb of s by rebuilding.
    RnsPoly a(basis, level, false, PolyDomain::coeff);
    a.sampleUniform(rng_);
    a.toNtt();

    RnsPoly e(basis, level, false, PolyDomain::coeff);
    e.sampleGaussian(rng_, context_.params().sigma);
    e.toNtt();

    // s restricted to the data primes.
    RnsPoly s_data(basis, level, false, PolyDomain::ntt);
    for (std::size_t i = 0; i < level; ++i) {
        auto dst = s_data.limb(i);
        auto src = secretKey_.s.limb(i);
        std::copy(src.begin(), src.end(), dst.begin());
    }

    RnsPoly pk0 = e;       // e
    RnsPoly as = a;        // a
    as.mulInplace(s_data); // a*s
    pk0.addInplace(as);    // a*s + e
    pk0.negateInplace();   // -(a*s + e)

    return PublicKey{std::move(pk0), std::move(a)};
}

KswKey
KeyGenerator::makeKswKey(const RnsPoly &s_from)
{
    FXHENN_ASSERT(s_from.domain() == PolyDomain::ntt,
                  "source secret must be in NTT domain");
    FXHENN_ASSERT(s_from.hasSpecial(),
                  "source secret must include the special limb");

    const RnsBasis &basis = context_.basis();
    const std::size_t level = context_.maxLevel();
    const std::uint64_t p_mod = basis.specialPrime().value();

    KswKey ksw;
    ksw.pairs.reserve(level);
    for (std::size_t i = 0; i < level; ++i) {
        RnsPoly a(basis, level, true, PolyDomain::coeff);
        a.sampleUniform(rng_);
        a.toNtt();

        RnsPoly e(basis, level, true, PolyDomain::coeff);
        e.sampleGaussian(rng_, context_.params().sigma);
        e.toNtt();

        RnsPoly k0 = e;
        RnsPoly as = a;
        as.mulInplace(secretKey_.s);
        k0.addInplace(as);
        k0.negateInplace(); // -(a*s + e)

        // Add p * T_i * s', which in RNS is s' scaled by (p mod q_i) in
        // limb i and zero in every other limb (including the special).
        const Modulus &qi = basis.q(i);
        const std::uint64_t p_mod_qi = p_mod % qi.value();
        auto dst = k0.limb(i);
        auto src = s_from.limb(i);
        for (std::size_t j = 0; j < dst.size(); ++j)
            dst[j] = qi.add(dst[j], qi.mul(src[j], p_mod_qi));

        ksw.pairs.emplace_back(std::move(k0), std::move(a));
    }
    return ksw;
}

RelinKey
KeyGenerator::makeRelinKey()
{
    RnsPoly s2 = secretKey_.s;
    s2.mulInplace(secretKey_.s);
    return RelinKey{makeKswKey(s2)};
}

GaloisKeys
KeyGenerator::makeGaloisKeys(const std::vector<int> &steps)
{
    GaloisKeys keys;
    for (int step : steps)
        addGaloisKey(keys, step);
    return keys;
}

void
KeyGenerator::addGaloisKey(GaloisKeys &keys, int steps)
{
    const std::uint64_t elt = context_.galoisElt(steps);
    if (keys.has(elt))
        return;
    // s(X^elt) in NTT domain: apply the automorphism in coeff domain.
    RnsPoly s_coeff = secretKey_.s;
    s_coeff.fromNtt();
    RnsPoly s_rot = s_coeff.galois(elt);
    s_rot.toNtt();
    keys.keys.emplace(elt, makeKswKey(s_rot));
}

void
KeyGenerator::addConjugateKey(GaloisKeys &keys)
{
    const std::uint64_t elt = context_.conjugateElt();
    if (keys.has(elt))
        return;
    RnsPoly s_coeff = secretKey_.s;
    s_coeff.fromNtt();
    RnsPoly s_rot = s_coeff.galois(elt);
    s_rot.toNtt();
    keys.keys.emplace(elt, makeKswKey(s_rot));
}

} // namespace fxhenn::ckks
