#include "src/ckks/params.hpp"

#include <cmath>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"

namespace fxhenn::ckks {

void
CkksParams::validate() const
{
    FXHENN_FATAL_IF(!isPowerOfTwo(n) || n < 16 || n > (1u << 17),
                    "ring degree must be a power of two in [16, 2^17]");
    FXHENN_FATAL_IF(qBits < 20 || qBits > 50,
                    "data prime width must be in [20, 50] bits");
    FXHENN_FATAL_IF(levels < 1 || levels > 20,
                    "level count must be in [1, 20]");
    FXHENN_FATAL_IF(specialBits < qBits,
                    "special prime must be at least as wide as q_i");
    FXHENN_FATAL_IF(scale <= 1.0, "scale must exceed 1");
    FXHENN_FATAL_IF(sigma <= 0.0, "sigma must be positive");
}

unsigned
CkksParams::securityLevel() const
{
    // Max log2(Q*P) per the homomorphic encryption standard table
    // (ternary secret, classical attacks), per ring degree.
    struct Row { std::uint64_t n; double l128, l192, l256; };
    static constexpr Row table[] = {
        {1024, 27, 19, 14},    {2048, 54, 37, 29},
        {4096, 109, 75, 58},   {8192, 218, 152, 118},
        {16384, 438, 305, 237}, {32768, 881, 611, 476},
    };
    // Assess the data modulus Q only, matching how the paper reports
    // lambda for its parameter sets (Table VII lists Q = 210 bits at
    // lambda = 128 for N = 8192, which already saturates the budget).
    const double log_qp = logQ();
    for (const auto &row : table) {
        if (row.n == n) {
            if (log_qp <= row.l256)
                return 256;
            if (log_qp <= row.l192)
                return 192;
            if (log_qp <= row.l128)
                return 128;
            return 0;
        }
    }
    return 0; // degrees outside the table: report unknown/insecure
}

std::string
CkksParams::describe() const
{
    std::ostringstream oss;
    oss << "CKKS(N=" << n << ", L=" << levels << ", q=" << qBits
        << "b, p=" << specialBits << "b, logQ=" << logQ()
        << ", lambda=" << securityLevel() << ")";
    return oss.str();
}

CkksParams
mnistParams()
{
    CkksParams p;
    p.n = 8192;
    p.qBits = 30;
    p.levels = 7;
    p.specialBits = 50;
    p.scale = double(1 << 30);
    return p;
}

CkksParams
cifar10Params()
{
    CkksParams p;
    p.n = 16384;
    p.qBits = 36;
    p.levels = 7;
    p.specialBits = 50;
    p.scale = 68719476736.0; // 2^36
    return p;
}

CkksParams
testParams(std::uint64_t n, std::size_t levels, unsigned qBits)
{
    CkksParams p;
    p.n = n;
    p.qBits = qBits;
    p.levels = levels;
    p.specialBits = qBits + 10 <= 50 ? 50 : qBits + 10;
    p.scale = std::pow(2.0, qBits);
    return p;
}

} // namespace fxhenn::ckks
