#include "src/ckks/encryptor.hpp"

#include "src/common/assert.hpp"

namespace fxhenn::ckks {

Encryptor::Encryptor(const CkksContext &context, PublicKey publicKey,
                     Rng &rng)
    : context_(context), publicKey_(std::move(publicKey)), rng_(rng)
{}

Ciphertext
Encryptor::encrypt(const Plaintext &plain)
{
    return encrypt(plain, rng_);
}

Ciphertext
Encryptor::encrypt(const Plaintext &plain, Rng &rng) const
{
    const RnsBasis &basis = context_.basis();
    const std::size_t level = plain.level();
    const std::size_t max_level = context_.maxLevel();

    RnsPoly u(basis, max_level, false, PolyDomain::coeff);
    u.sampleTernary(rng);
    u.toNtt();

    RnsPoly e0(basis, max_level, false, PolyDomain::coeff);
    e0.sampleGaussian(rng, context_.params().sigma);
    e0.toNtt();
    RnsPoly e1(basis, max_level, false, PolyDomain::coeff);
    e1.sampleGaussian(rng, context_.params().sigma);
    e1.toNtt();

    RnsPoly c0 = publicKey_.pk0;
    c0.mulInplace(u);
    c0.addInplace(e0);

    RnsPoly c1 = publicKey_.pk1;
    c1.mulInplace(u);
    c1.addInplace(e1);

    // Truncate to the plaintext's level and add the message.
    while (c0.level() > level) {
        c0.dropLastPrime();
        c1.dropLastPrime();
    }
    c0.addInplace(plain.poly);

    Ciphertext ct;
    ct.parts.push_back(std::move(c0));
    ct.parts.push_back(std::move(c1));
    ct.scale = plain.scale;
    return ct;
}

} // namespace fxhenn::ckks
