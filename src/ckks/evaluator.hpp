/**
 * @file
 * Homomorphic evaluation for RNS-CKKS.
 *
 * Implements the HE operations of the paper's Table I:
 *   OP1 CCadd, OP2 PCmult, OP3 CCmult, OP4 Rescale,
 *   OP5 KeySwitch (Relinearize and Rotate).
 * The evaluator also counts how often each operation runs, which the
 * HE-CNN compiler cross-checks against its static HOP model (Table IV,
 * Table VI, Table VII "HOP"/"KS" columns).
 */
#ifndef FXHENN_CKKS_EVALUATOR_HPP
#define FXHENN_CKKS_EVALUATOR_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/ckks/keys.hpp"
#include "src/ckks/plaintext.hpp"

namespace fxhenn::ckks {

/** Dynamic HE-operation counters (HOPs executed so far). */
struct OpCounts
{
    std::uint64_t ccAdd = 0;
    std::uint64_t pcAdd = 0;
    std::uint64_t pcMult = 0;
    std::uint64_t ccMult = 0;
    std::uint64_t rescale = 0;
    std::uint64_t relinearize = 0;
    std::uint64_t rotate = 0;

    /** Total HE operation count (the paper's "HOP"). */
    std::uint64_t
    total() const
    {
        return ccAdd + pcAdd + pcMult + ccMult + rescale + relinearize +
               rotate;
    }

    /** KeySwitch count (the paper's "KS" = Relinearize + Rotate). */
    std::uint64_t keySwitch() const { return relinearize + rotate; }

    void
    reset()
    {
        *this = OpCounts{};
    }
};

/**
 * Keyswitch inner-product reduction strategy.
 *
 * lazy (the default) accumulates the digit inner product in 128-bit
 * lanes and Barrett-reduces once per limb (Modulus::reduceWide);
 * eager reduces every FMA like the original implementation. Both land
 * on the canonical representative in [0, q) for every coefficient, so
 * the two modes are bitwise identical — eager exists as the reference
 * side of that differential.
 */
enum class KswMode {
    eager, ///< reduce every FMA (reference path)
    lazy,  ///< 128-bit deferred reduction, once per limb
};

/**
 * Stateless homomorphic operation engine (counters aside).
 *
 * Thread-safety: the only mutable state is the OpCounts member, which
 * is plain (non-atomic) on purpose — an Evaluator is meant to be
 * per-request/per-thread, so counter updates never contend and the hot
 * path stays branch-free. Construction is cheap (one context
 * reference), so concurrent executors each create their own instead of
 * sharing one. The CkksContext, key structs and Plaintext operands are
 * read-only here and safe to share across any number of Evaluators.
 */
class Evaluator
{
  public:
    explicit Evaluator(const CkksContext &context,
                       KswMode kswMode = KswMode::lazy);

    // --- additive ops ----------------------------------------------------

    /** OP1: ciphertext + ciphertext (levels and scales must match). */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b);
    /** a += b in place. */
    void addInplace(Ciphertext &a, const Ciphertext &b);
    /** ciphertext - ciphertext. */
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b);
    /** ciphertext + plaintext. */
    Ciphertext addPlain(const Ciphertext &a, const Plaintext &p);
    void addPlainInplace(Ciphertext &a, const Plaintext &p);
    /** Negate. */
    Ciphertext negate(const Ciphertext &a);

    /**
     * Sum many ciphertexts by balanced tree reduction (log-depth noise
     * growth instead of linear; the accumulation pattern of the conv
     * layers). All operands must share level and scale.
     */
    Ciphertext addMany(std::span<const Ciphertext> operands);

    /**
     * Multiply by a small integer constant in place without consuming
     * a level or changing the scale (repeated residue multiplication).
     * Useful for power-of-two gains and averaging denominators.
     */
    void mulScalarInplace(Ciphertext &a, std::int64_t scalar);

    // --- multiplicative ops ----------------------------------------------

    /** OP2: plaintext-ciphertext multiply; scales multiply. */
    Ciphertext mulPlain(const Ciphertext &a, const Plaintext &p);
    void mulPlainInplace(Ciphertext &a, const Plaintext &p);

    /**
     * OP3: ciphertext-ciphertext multiply producing a 3-part ciphertext;
     * relinearize() must follow before further multiplies/rotations.
     */
    Ciphertext mulNoRelin(const Ciphertext &a, const Ciphertext &b);

    /** OP3 + OP5: multiply then relinearize. */
    Ciphertext mul(const Ciphertext &a, const Ciphertext &b,
                   const RelinKey &rk);

    /** Homomorphic square (the HE-CNN activation), relinearized. */
    Ciphertext square(const Ciphertext &a, const RelinKey &rk);

    /** OP5 (Relinearize): 3-part -> 2-part. */
    Ciphertext relinearize(const Ciphertext &a, const RelinKey &rk);

    // --- maintenance ops ---------------------------------------------

    /** OP4: drop the last prime and divide the scale by it. */
    Ciphertext rescale(const Ciphertext &a);
    void rescaleInplace(Ciphertext &a);

    /** Drop primes without scaling until @p level is reached. */
    Ciphertext modSwitchToLevel(const Ciphertext &a, std::size_t level);

    /** Exactly set the scale tag (used after rescale rounding). */
    static void setScale(Ciphertext &a, double scale) { a.scale = scale; }

    // --- rotations ------------------------------------------------------

    /** OP5 (Rotate): cyclic left rotation of the slot vector. */
    Ciphertext rotate(const Ciphertext &a, int steps,
                      const GaloisKeys &gk);

    /**
     * Hoisted rotations (Halevi-Shoup): compute several rotations of
     * the same ciphertext while performing the expensive c1
     * decomposition (INTT + per-prime base extension) only once —
     * the automorphism commutes with the RNS decomposition, so the
     * extended limbs are rotated instead of the ciphertext. Exactly
     * the access pattern the rotate-and-sum dense layers need.
     *
     * @return one ciphertext per entry of @p steps (step 0 allowed).
     */
    std::vector<Ciphertext> rotateHoisted(const Ciphertext &a,
                                          const std::vector<int> &steps,
                                          const GaloisKeys &gk);

    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext &a, const GaloisKeys &gk);

    // --- introspection ----------------------------------------------------

    const OpCounts &counts() const { return counts_; }
    void resetCounts() { counts_.reset(); }
    KswMode kswMode() const { return kswMode_; }

  private:
    /**
     * ModUp half of the hybrid key switch: decompose coefficient-domain
     * @p d (level L, no special limb) into L digits, each base-extended
     * to Q*p and NTT'd — one parallelFor over all L*(L+1) (digit, limb)
     * jobs. A rotation group shares one decomposition across all its
     * members (Halevi-Shoup hoisting).
     */
    std::vector<RnsPoly> decomposeKsw(const RnsPoly &d);

    /**
     * Digit inner product with the key plus ModDown. @p perm, when
     * non-empty, applies a Galois automorphism to every digit in NTT
     * form as a gather fused into the FMA (the hoisted-rotation path).
     * Reduction strategy follows kswMode().
     */
    std::pair<RnsPoly, RnsPoly>
    keyswitchCore(const std::vector<RnsPoly> &digits, const KswKey &key,
                  std::span<const std::uint32_t> perm);

    /**
     * Hybrid key switch: given poly @p d decrypting under s', produce
     * NTT-domain (u0, u1) decrypting the same value under s (up to
     * ModDown noise).
     */
    std::pair<RnsPoly, RnsPoly> applyKsw(RnsPoly d, const KswKey &key);

    /** One rotation of @p a from an already-hoisted decomposition. */
    Ciphertext rotateFromDigits(const Ciphertext &a,
                                const std::vector<RnsPoly> &digits,
                                std::uint64_t elt, const KswKey &key);

    void checkSameShape(const Ciphertext &a, const Ciphertext &b) const;
    void checkScaleClose(double a, double b) const;
    void checkScaleSane(double scale) const;
    void checkScaleFits(double scale, std::size_t level) const;

    const CkksContext &context_;
    OpCounts counts_;
    KswMode kswMode_;
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_EVALUATOR_HPP
