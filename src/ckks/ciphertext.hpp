/**
 * @file
 * CKKS ciphertext: 2 (or 3, pre-relinearization) RNS polynomials.
 */
#ifndef FXHENN_CKKS_CIPHERTEXT_HPP
#define FXHENN_CKKS_CIPHERTEXT_HPP

#include <vector>

#include "src/rns/rns_poly.hpp"

namespace fxhenn::ckks {

/**
 * A ciphertext decrypting to m under sum_k parts[k] * s^k.
 *
 * Freshly encrypted and relinearized ciphertexts have two parts; the raw
 * output of ciphertext-ciphertext multiplication has three until
 * Relinearize (a KeySwitch in the paper's terminology) is applied.
 */
struct Ciphertext
{
    std::vector<RnsPoly> parts; ///< NTT domain
    double scale = 0.0;

    std::size_t size() const { return parts.size(); }
    std::size_t level() const { return parts.empty() ? 0
                                                     : parts[0].level(); }
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_CIPHERTEXT_HPP
