/**
 * @file
 * Key generation for RNS-CKKS.
 */
#ifndef FXHENN_CKKS_KEYGEN_HPP
#define FXHENN_CKKS_KEYGEN_HPP

#include <vector>

#include "src/ckks/context.hpp"
#include "src/ckks/keys.hpp"
#include "src/common/rng.hpp"

namespace fxhenn::ckks {

/** Generates secret, public, relinearization and Galois keys. */
class KeyGenerator
{
  public:
    /** Samples a fresh ternary secret from @p rng. */
    KeyGenerator(const CkksContext &context, Rng &rng);

    const SecretKey &secretKey() const { return secretKey_; }

    /** Fresh public key. */
    PublicKey makePublicKey();

    /** Relinearization key for s^2 -> s. */
    RelinKey makeRelinKey();

    /** Galois keys for the given left-rotation step counts. */
    GaloisKeys makeGaloisKeys(const std::vector<int> &steps);

    /** Add the key for one more rotation step to existing Galois keys. */
    void addGaloisKey(GaloisKeys &keys, int steps);

    /** Galois key for complex conjugation. */
    void addConjugateKey(GaloisKeys &keys);

  private:
    /** Build the key switching s' -> s for target polynomial @p s_from. */
    KswKey makeKswKey(const RnsPoly &s_from);

    const CkksContext &context_;
    Rng &rng_;
    SecretKey secretKey_;
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_KEYGEN_HPP
