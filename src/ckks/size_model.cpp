#include "src/ckks/size_model.hpp"

namespace fxhenn::ckks {

std::size_t
polyBytes(std::uint64_t n, std::size_t limbs)
{
    return static_cast<std::size_t>(n) * limbs * sizeof(std::uint64_t);
}

std::size_t
ciphertextBytes(const CkksParams &p, std::size_t level)
{
    return 2 * polyBytes(p.n, level);
}

std::size_t
plaintextBytes(const CkksParams &p, std::size_t level)
{
    return polyBytes(p.n, level);
}

std::size_t
kswKeyBytes(const CkksParams &p)
{
    // L decomposition pairs, each two polynomials over Q * p.
    return p.levels * 2 * polyBytes(p.n, p.levels + 1);
}

std::size_t
publicKeyBytes(const CkksParams &p)
{
    return 2 * polyBytes(p.n, p.levels);
}

} // namespace fxhenn::ckks
