/**
 * @file
 * Binary serialization for CKKS objects.
 *
 * The FxHENN deployment model (Sec. I) splits roles across machines:
 * the client encrypts locally and ships ciphertexts to the accelerator
 * host; the host holds evaluation keys and returns encrypted results.
 * This module provides the wire format for that split: a small framed
 * binary encoding with magic/version headers and parameter fingerprints
 * so that objects cannot be deserialized into a mismatched context.
 *
 * Format: little-endian, 8-byte magic, u32 version, u32 object tag,
 * parameter fingerprint (n, levels, qBits, specialBits), then the
 * object payload. Sizes match ckks::*Bytes() of size_model.hpp up to
 * the fixed header.
 */
#ifndef FXHENN_CKKS_SERIALIZATION_HPP
#define FXHENN_CKKS_SERIALIZATION_HPP

#include <iosfwd>

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/ckks/keys.hpp"
#include "src/ckks/plaintext.hpp"

namespace fxhenn::ckks {

/** Serialize a ciphertext to @p os. */
void saveCiphertext(const Ciphertext &ct, const CkksContext &ctx,
                    std::ostream &os);

/** Deserialize a ciphertext; validates the context fingerprint. */
Ciphertext loadCiphertext(const CkksContext &ctx, std::istream &is);

/** Serialize a plaintext. */
void savePlaintext(const Plaintext &pt, const CkksContext &ctx,
                   std::ostream &os);

/** Deserialize a plaintext. */
Plaintext loadPlaintext(const CkksContext &ctx, std::istream &is);

/** Serialize a public key. */
void savePublicKey(const PublicKey &pk, const CkksContext &ctx,
                   std::ostream &os);

/** Deserialize a public key. */
PublicKey loadPublicKey(const CkksContext &ctx, std::istream &is);

/** Serialize a relinearization key. */
void saveRelinKey(const RelinKey &rk, const CkksContext &ctx,
                  std::ostream &os);

/** Deserialize a relinearization key. */
RelinKey loadRelinKey(const CkksContext &ctx, std::istream &is);

/** Serialize Galois keys (all rotation elements). */
void saveGaloisKeys(const GaloisKeys &gk, const CkksContext &ctx,
                    std::ostream &os);

/** Deserialize Galois keys. */
GaloisKeys loadGaloisKeys(const CkksContext &ctx, std::istream &is);

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_SERIALIZATION_HPP
