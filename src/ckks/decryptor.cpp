#include "src/ckks/decryptor.hpp"

#include "src/common/assert.hpp"

namespace fxhenn::ckks {

Decryptor::Decryptor(const CkksContext &context, const SecretKey &secretKey)
    : context_(context), secretKey_(secretKey)
{}

Plaintext
Decryptor::decrypt(const Ciphertext &ct) const
{
    FXHENN_FATAL_IF(ct.parts.empty(), "cannot decrypt empty ciphertext");
    const std::size_t level = ct.level();

    // Secret key restricted to the ciphertext's level.
    RnsPoly s(context_.basis(), level, false, PolyDomain::ntt);
    for (std::size_t i = 0; i < level; ++i) {
        auto src = secretKey_.s.limb(i);
        auto dst = s.limb(i);
        std::copy(src.begin(), src.end(), dst.begin());
    }

    // m = c0 + c1 s + c2 s^2 + ... evaluated by Horner.
    RnsPoly acc = ct.parts.back();
    for (std::size_t k = ct.parts.size() - 1; k-- > 0;) {
        acc.mulInplace(s);
        acc.addInplace(ct.parts[k]);
    }
    return Plaintext{std::move(acc), ct.scale};
}

} // namespace fxhenn::ckks
