#include "src/ckks/encoder.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"

namespace fxhenn::ckks {

Encoder::Encoder(const CkksContext &context)
    : context_(context)
{}

void
Encoder::fftSpecial(std::vector<std::complex<double>> &vals) const
{
    const std::size_t size = vals.size();
    const std::uint64_t m = 2 * context_.n();
    const auto &roots = context_.encoderRoots();
    const auto &rot = context_.rotGroup();

    // Bit-reverse permutation.
    const unsigned bits = floorLog2(size);
    for (std::size_t i = 0; i < size; ++i) {
        const std::size_t j = reverseBits(i, bits);
        if (i < j)
            std::swap(vals[i], vals[j]);
    }

    for (std::size_t len = 2; len <= size; len <<= 1) {
        const std::size_t lenh = len >> 1;
        const std::size_t lenq = len << 2;
        for (std::size_t i = 0; i < size; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                const std::size_t idx =
                    (rot[j] % lenq) * (m / lenq);
                const auto u = vals[i + j];
                const auto v = vals[i + j + lenh] * roots[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
Encoder::fftSpecialInv(std::vector<std::complex<double>> &vals) const
{
    const std::size_t size = vals.size();
    const std::uint64_t m = 2 * context_.n();
    const auto &roots = context_.encoderRoots();
    const auto &rot = context_.rotGroup();

    for (std::size_t len = size; len >= 2; len >>= 1) {
        const std::size_t lenh = len >> 1;
        const std::size_t lenq = len << 2;
        for (std::size_t i = 0; i < size; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                const std::size_t idx =
                    (lenq - (rot[j] % lenq)) * (m / lenq);
                const auto u = vals[i + j] + vals[i + j + lenh];
                const auto v =
                    (vals[i + j] - vals[i + j + lenh]) * roots[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }

    const unsigned bits = floorLog2(size);
    for (std::size_t i = 0; i < size; ++i) {
        const std::size_t j = reverseBits(i, bits);
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
    const double inv = 1.0 / static_cast<double>(size);
    for (auto &v : vals)
        v *= inv;
}

Plaintext
Encoder::encode(std::span<const std::complex<double>> values, double scale,
                std::size_t level) const
{
    const std::size_t n_slots = context_.slots();
    FXHENN_FATAL_IF(values.size() > n_slots, "too many slot values");
    FXHENN_FATAL_IF(scale <= 0.0, "scale must be positive");

    std::vector<std::complex<double>> slots(n_slots, {0.0, 0.0});
    for (std::size_t i = 0; i < values.size(); ++i)
        slots[i] = values[i];

    fftSpecialInv(slots);

    const std::uint64_t n = context_.n();
    const RnsBasis &basis = context_.basis();
    RnsPoly poly(basis, level, /*withSpecial=*/false, PolyDomain::coeff);
    for (std::size_t limb = 0; limb < level; ++limb) {
        const Modulus &q = basis.q(limb);
        auto dst = poly.limb(limb);
        for (std::size_t i = 0; i < n_slots; ++i) {
            const double re = slots[i].real() * scale;
            const double im = slots[i].imag() * scale;
            FXHENN_FATAL_IF(std::abs(re) > 9.2e18 || std::abs(im) > 9.2e18,
                            "encoded coefficient overflows 63 bits; "
                            "reduce the message magnitude or scale");
            dst[i] = q.reduceSigned(static_cast<__int128>(
                std::llround(re)));
            dst[i + n_slots] = q.reduceSigned(static_cast<__int128>(
                std::llround(im)));
        }
    }
    (void)n;
    poly.toNtt();
    return Plaintext{std::move(poly), scale};
}

Plaintext
Encoder::encode(std::span<const double> values, double scale,
                std::size_t level) const
{
    std::vector<std::complex<double>> cvals(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        cvals[i] = {values[i], 0.0};
    return encode(std::span<const std::complex<double>>(cvals), scale,
                  level);
}

Plaintext
Encoder::encodeConstant(double value, double scale,
                        std::size_t level) const
{
    // A constant in every slot encodes to the constant polynomial
    // round(value * scale); skip the FFT entirely.
    const RnsBasis &basis = context_.basis();
    RnsPoly poly(basis, level, false, PolyDomain::coeff);
    const auto scaled = static_cast<__int128>(std::llround(value * scale));
    for (std::size_t limb = 0; limb < level; ++limb)
        poly.limb(limb)[0] = basis.q(limb).reduceSigned(scaled);
    poly.toNtt();
    return Plaintext{std::move(poly), scale};
}

std::vector<std::complex<double>>
Encoder::decode(const Plaintext &plain) const
{
    const std::size_t n_slots = context_.slots();
    const std::size_t level = plain.level();
    const CrtReconstructor &crt = context_.crt(level);

    RnsPoly poly = plain.poly;
    if (poly.domain() == PolyDomain::ntt)
        poly.fromNtt();

    std::vector<std::complex<double>> slots(n_slots);
    std::vector<std::uint64_t> residues(level);
    const long double inv_scale = 1.0L / plain.scale;
    for (std::size_t i = 0; i < n_slots; ++i) {
        for (std::size_t l = 0; l < level; ++l)
            residues[l] = poly.limb(l)[i];
        const long double re =
            crt.reconstructCentered(residues) * inv_scale;
        for (std::size_t l = 0; l < level; ++l)
            residues[l] = poly.limb(l)[i + n_slots];
        const long double im =
            crt.reconstructCentered(residues) * inv_scale;
        slots[i] = {static_cast<double>(re), static_cast<double>(im)};
    }

    fftSpecial(slots);
    return slots;
}

std::vector<double>
Encoder::decodeReal(const Plaintext &plain) const
{
    auto slots = decode(plain);
    std::vector<double> out(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i)
        out[i] = slots[i].real();
    return out;
}

} // namespace fxhenn::ckks
