/**
 * @file
 * Public-key CKKS encryption.
 */
#ifndef FXHENN_CKKS_ENCRYPTOR_HPP
#define FXHENN_CKKS_ENCRYPTOR_HPP

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/ckks/keys.hpp"
#include "src/ckks/plaintext.hpp"
#include "src/common/rng.hpp"

namespace fxhenn::ckks {

/** Encrypts plaintexts under a public key. */
class Encryptor
{
  public:
    Encryptor(const CkksContext &context, PublicKey publicKey, Rng &rng);

    /**
     * Encrypt @p plain: ct = (pk0 u + e0 + m, pk1 u + e1) with ternary u
     * and Gaussian e0, e1. The ciphertext inherits plain's level/scale.
     */
    Ciphertext encrypt(const Plaintext &plain);

  private:
    const CkksContext &context_;
    PublicKey publicKey_;
    Rng &rng_;
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_ENCRYPTOR_HPP
