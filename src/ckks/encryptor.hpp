/**
 * @file
 * Public-key CKKS encryption.
 */
#ifndef FXHENN_CKKS_ENCRYPTOR_HPP
#define FXHENN_CKKS_ENCRYPTOR_HPP

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/ckks/keys.hpp"
#include "src/ckks/plaintext.hpp"
#include "src/common/rng.hpp"

namespace fxhenn::ckks {

/**
 * Encrypts plaintexts under a public key.
 *
 * Thread-safety: the object itself (context reference + public key) is
 * immutable after construction. The single-argument encrypt() draws
 * noise from the Rng bound at construction and therefore must not be
 * called concurrently; the two-argument overload is const and safe to
 * call from many threads as long as each caller brings its own Rng —
 * the pattern the inference engine uses to give every request an
 * independent, deterministic noise stream.
 */
class Encryptor
{
  public:
    Encryptor(const CkksContext &context, PublicKey publicKey, Rng &rng);

    /**
     * Encrypt @p plain: ct = (pk0 u + e0 + m, pk1 u + e1) with ternary u
     * and Gaussian e0, e1. The ciphertext inherits plain's level/scale.
     */
    Ciphertext encrypt(const Plaintext &plain);

    /** Like encrypt(), but drawing randomness from @p rng. */
    Ciphertext encrypt(const Plaintext &plain, Rng &rng) const;

  private:
    const CkksContext &context_;
    PublicKey publicKey_;
    Rng &rng_;
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_ENCRYPTOR_HPP
