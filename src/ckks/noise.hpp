/**
 * @file
 * Noise measurement and headroom analysis for CKKS ciphertexts.
 *
 * CKKS is approximate: every operation adds noise, and the message must
 * stay inside the last prime's headroom (|m * scale| < q_0 / 2) by the
 * time the ciphertext reaches level 1. These utilities quantify both so
 * users can pick weight magnitudes and scales for their own networks —
 * the tuning the model zoo already bakes in.
 */
#ifndef FXHENN_CKKS_NOISE_HPP
#define FXHENN_CKKS_NOISE_HPP

#include <span>
#include <vector>

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"

namespace fxhenn::ckks {

/** Result of comparing a ciphertext against its expected contents. */
struct NoiseReport
{
    double maxAbsError = 0.0; ///< max |decoded - expected| over slots
    double errorBits = 0.0;   ///< log2(maxAbsError), -inf-safe
    /**
     * log2 of the ratio between the level's modulus headroom and the
     * largest encoded coefficient; negative means the message has
     * overflowed and decryption results are garbage.
     */
    double headroomBits = 0.0;
};

/**
 * Decrypt @p ct and compare against @p expected slot values.
 *
 * @param expected expected real slot values (shorter vectors are
 *                 zero-extended)
 */
NoiseReport measureNoise(const Ciphertext &ct,
                         std::span<const double> expected,
                         const CkksContext &ctx,
                         const Decryptor &decryptor,
                         const Encoder &encoder);

/**
 * Measured headroom of @p ct alone: decrypt and compare the largest
 * centered coefficient against half the level's modulus. Negative
 * means the message has overflowed and the decryption is garbage.
 * This is the measured counterpart of the runtime guard's predicted
 * per-layer headroom.
 */
double headroomBits(const Ciphertext &ct, const CkksContext &ctx,
                    const Decryptor &decryptor);

/**
 * Rough a-priori bound on the fresh-encryption noise in plaintext
 * units: ~ sigma * sqrt(2N) * (2 sqrt(N) + 1) / scale. Used to sanity
 * check measured noise (heuristic, not a security statement).
 */
double freshNoiseEstimate(const CkksParams &params);

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_NOISE_HPP
