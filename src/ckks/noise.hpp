/**
 * @file
 * Noise measurement and headroom analysis for CKKS ciphertexts.
 *
 * CKKS is approximate: every operation adds noise, and the message must
 * stay inside the last prime's headroom (|m * scale| < q_0 / 2) by the
 * time the ciphertext reaches level 1. These utilities quantify both so
 * users can pick weight magnitudes and scales for their own networks —
 * the tuning the model zoo already bakes in.
 */
#ifndef FXHENN_CKKS_NOISE_HPP
#define FXHENN_CKKS_NOISE_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"

namespace fxhenn::ckks {

/** Result of comparing a ciphertext against its expected contents. */
struct NoiseReport
{
    double maxAbsError = 0.0; ///< max |decoded - expected| over slots
    double errorBits = 0.0;   ///< log2(maxAbsError), -inf-safe
    /**
     * log2 of the ratio between the level's modulus headroom and the
     * largest encoded coefficient; negative means the message has
     * overflowed and decryption results are garbage.
     */
    double headroomBits = 0.0;
};

/**
 * Decrypt @p ct and compare against @p expected slot values.
 *
 * @param expected expected real slot values (shorter vectors are
 *                 zero-extended)
 */
NoiseReport measureNoise(const Ciphertext &ct,
                         std::span<const double> expected,
                         const CkksContext &ctx,
                         const Decryptor &decryptor,
                         const Encoder &encoder);

/**
 * Measured headroom of @p ct alone: decrypt and compare the largest
 * centered coefficient against half the level's modulus. Negative
 * means the message has overflowed and the decryption is garbage.
 * This is the measured counterpart of the runtime guard's predicted
 * per-layer headroom.
 */
double headroomBits(const Ciphertext &ct, const CkksContext &ctx,
                    const Decryptor &decryptor);

/**
 * Rough a-priori bound on the fresh-encryption noise in plaintext
 * units: ~ sigma * sqrt(2N) * (2 sqrt(N) + 1) / scale. Used to sanity
 * check measured noise (heuristic, not a security statement).
 */
double freshNoiseEstimate(const CkksParams &params);

/**
 * Noise growth rules for the static noise-budget certifier.
 *
 * The abstract domain is a single number per ciphertext register: the
 * log2 of the estimated standard deviation of the crypto noise per
 * canonical-embedding slot (everything in the decryption m*Delta + e
 * that is not the scaled message). Tracking the canonical embedding is
 * what makes the bound usable at depth: multiplication acts slot-wise
 * there, so pcMult scales the noise by exactly max|v|*Delta with no
 * sqrt(N) convolution factor, and independent error terms compose
 * root-sum-square. The coefficient norm is bounded by the canonical
 * infinity norm, so a slot-domain headroom statement implies the
 * modulus-overflow one the scheme needs.
 *
 * The rules are HEAAN / EVA-style high-probability heuristics over the
 * exact NTT prime chain, not adversarial worst cases: a single tail
 * factor (tailBits, ~6 sigma) converts the tracked deviation into the
 * certified bound at evaluation points. The static-vs-measured
 * differential tests over the model zoo are the empirical soundness
 * check that the certified bound dominates measured noise at every
 * layer. All inputs and outputs are log2 values ("bits").
 */
class NoiseModel
{
  public:
    /**
     * @param params CKKS parameter choice the plan was compiled for
     * @param primes the exact data primes q_0..q_{L-1} (q_0 first);
     *               must have params.levels entries
     */
    NoiseModel(const CkksParams &params,
               std::span<const std::uint64_t> primes);

    /** log2(2^a + 2^b), overflow-safe: max + log2(1 + 2^(min-max)). */
    static double logAdd(double a, double b);

    /** Root-sum-square in log2: log2(sqrt(2^2a + 2^2b)). */
    static double logAddRss(double a, double b);

    /**
     * log2 of the high-probability tail factor applied when the
     * tracked deviation is turned into a certified bound (6 sigma).
     */
    static double tailBits();

    /**
     * log2 slot deviation of fresh public-key encryption noise:
     * e_pk*u + e0 + e1*s, each product of two independent ring
     * elements with per-slot deviation ~ sigma * N.
     */
    double freshNoiseBits() const;

    /**
     * log2 slot deviation of the rounding noise of encoding reals:
     * iid uniform(+-1/2) coefficients embed to ~ sqrt(N/12) per slot.
     */
    double encodingRoundBits() const;

    /**
     * log2 slot deviation of a ring rounding step that also touches
     * the secret-key component (Rescale, key-switch ModDown):
     * r0 + r1*s with r* ~ uniform(+-1/2) per coefficient.
     */
    double ringRoundBits() const;

    /** Noise after adding an encoded plaintext (pcAdd). */
    double pcAddNoiseBits(double noiseBits) const;

    /** Noise after adding two ciphertexts (ccAdd), RSS-composed. */
    double ccAddNoiseBits(double aBits, double bBits) const;

    /**
     * Noise after multiplying by an encoded plaintext (pcMult): the
     * noise scales by the plaintext's largest slot value and the
     * message picks up the plaintext's encoding rounding.
     *
     * @param ptSlotBits  log2(encoding scale * max|values|)
     * @param msgSlotBits log2 bound on the scaled message slots
     */
    double pcMultNoiseBits(double noiseBits, double ptSlotBits,
                           double msgSlotBits) const;

    /**
     * Noise after a ciphertext-ciphertext square (ccMult dst == src):
     * the 2*m*e cross term dominates, plus the e^2 term.
     *
     * @param msgSlotBits log2 bound on the scaled message slots
     */
    double ccMultNoiseBits(double noiseBits, double msgSlotBits) const;

    /**
     * log2 slot deviation added by one hybrid key switch (relinearize
     * or rotate) at @p level data primes: P^-1 * sum(d_i * e_ksk_i)
     * plus the ModDown rounding.
     */
    double keySwitchNoiseBits(std::size_t level) const;

    /** Noise folded in by one key switch at @p level. */
    double keySwitchedNoiseBits(double noiseBits,
                                std::size_t level) const;

    /**
     * Noise after Rescale at @p level (drops prime q_{level-1}): the
     * existing noise divides by the dropped prime and the ring
     * rounding term is added.
     */
    double rescaleNoiseBits(double noiseBits, std::size_t level) const;

    /**
     * Certified headroom of a register: logQ(level) - 1 minus the
     * bound on the largest total slot value, message bound plus the
     * tail-factored noise deviation.
     */
    double headroomBits(double msgSlotBits, double noiseBits,
                        std::size_t level) const;

    /** log2 of data prime q_i. */
    double logPrime(std::size_t i) const { return logPrimes_[i]; }

    /** log2(Q) over the first @p level data primes. */
    double logQ(std::size_t level) const;

    const CkksParams &params() const { return params_; }

  private:
    CkksParams params_;
    std::vector<double> logPrimes_; ///< log2(q_i)
    double logN_;                   ///< log2(N)
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_NOISE_HPP
