#include "src/ckks/context.hpp"

#include <cmath>
#include <numbers>

#include "src/common/assert.hpp"
#include "src/modarith/primes.hpp"

namespace fxhenn::ckks {

CkksContext::CkksContext(const CkksParams &params)
    : params_(params)
{
    params_.validate();

    // Data primes and the (wider) special prime must not collide; search
    // both downward from their respective bit widths.
    auto data_primes =
        generateNttPrimes(params_.qBits, params_.n, params_.levels);
    std::uint64_t special = 0;
    for (std::uint64_t cand :
         generateNttPrimes(params_.specialBits, params_.n,
                           params_.levels + 1)) {
        bool collides = false;
        for (std::uint64_t q : data_primes)
            collides |= (q == cand);
        if (!collides) {
            special = cand;
            break;
        }
    }
    FXHENN_FATAL_IF(special == 0, "no usable special prime found");

    basis_ = std::make_unique<RnsBasis>(params_.n, data_primes, special);

    crt_.reserve(params_.levels);
    for (std::size_t level = 1; level <= params_.levels; ++level)
        crt_.push_back(std::make_unique<CrtReconstructor>(*basis_, level));

    const std::uint64_t m = 2 * params_.n;
    roots_.resize(m);
    for (std::uint64_t j = 0; j < m; ++j) {
        const double angle =
            2.0 * std::numbers::pi * static_cast<double>(j) /
            static_cast<double>(m);
        roots_[j] = {std::cos(angle), std::sin(angle)};
    }

    rotGroup_.resize(slots());
    std::uint64_t five = 1;
    for (std::size_t i = 0; i < slots(); ++i) {
        rotGroup_[i] = five;
        five = five * 5 % m;
    }
}

const CrtReconstructor &
CkksContext::crt(std::size_t level) const
{
    FXHENN_ASSERT(level >= 1 && level <= crt_.size(),
                  "CRT level out of range");
    return *crt_[level - 1];
}

std::uint64_t
CkksContext::galoisElt(int steps) const
{
    const std::uint64_t m = 2 * params_.n;
    const std::size_t n_slots = slots();
    // Normalize to a left rotation amount in [0, slots).
    std::size_t k = ((steps % static_cast<long>(n_slots)) +
                     static_cast<long>(n_slots)) %
                    n_slots;
    std::uint64_t elt = 1;
    for (std::size_t i = 0; i < k; ++i)
        elt = elt * 5 % m;
    return elt;
}

} // namespace fxhenn::ckks
