#include "src/ckks/context.hpp"

#include <cmath>
#include <numbers>

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"
#include "src/modarith/primes.hpp"

namespace fxhenn::ckks {

CkksContext::CkksContext(const CkksParams &params)
    : params_(params)
{
    params_.validate();

    // Data primes and the (wider) special prime must not collide; search
    // both downward from their respective bit widths.
    auto data_primes =
        generateNttPrimes(params_.qBits, params_.n, params_.levels);
    std::uint64_t special = 0;
    for (std::uint64_t cand :
         generateNttPrimes(params_.specialBits, params_.n,
                           params_.levels + 1)) {
        bool collides = false;
        for (std::uint64_t q : data_primes)
            collides |= (q == cand);
        if (!collides) {
            special = cand;
            break;
        }
    }
    FXHENN_FATAL_IF(special == 0, "no usable special prime found");

    basis_ = std::make_unique<RnsBasis>(params_.n, data_primes, special);

    crt_.reserve(params_.levels);
    for (std::size_t level = 1; level <= params_.levels; ++level)
        crt_.push_back(std::make_unique<CrtReconstructor>(*basis_, level));

    const std::uint64_t m = 2 * params_.n;
    roots_.resize(m);
    for (std::uint64_t j = 0; j < m; ++j) {
        const double angle =
            2.0 * std::numbers::pi * static_cast<double>(j) /
            static_cast<double>(m);
        roots_[j] = {std::cos(angle), std::sin(angle)};
    }

    rotGroup_.resize(slots());
    std::uint64_t five = 1;
    for (std::size_t i = 0; i < slots(); ++i) {
        rotGroup_[i] = five;
        five = five * 5 % m;
    }
}

const CrtReconstructor &
CkksContext::crt(std::size_t level) const
{
    FXHENN_ASSERT(level >= 1 && level <= crt_.size(),
                  "CRT level out of range");
    return *crt_[level - 1];
}

std::uint64_t
CkksContext::galoisElt(int steps) const
{
    const std::uint64_t m = 2 * params_.n;
    const std::size_t n_slots = slots();
    // Normalize to a left rotation amount in [0, slots).
    std::size_t k = ((steps % static_cast<long>(n_slots)) +
                     static_cast<long>(n_slots)) %
                    n_slots;
    std::uint64_t elt = 1;
    for (std::size_t i = 0; i < k; ++i)
        elt = elt * 5 % m;
    return elt;
}

const std::vector<std::uint32_t> &
CkksContext::galoisNttTable(std::uint64_t elt) const
{
    FXHENN_ASSERT(elt % 2 == 1, "galois element must be odd");
    std::lock_guard<std::mutex> lock(galoisNttMutex_);
    auto it = galoisNtt_.find(elt);
    if (it != galoisNtt_.end())
        return it->second;

    // The forward NTT leaves position t holding the evaluation at
    // psi^(2*brv(t)+1). X -> X^elt sends that evaluation to the one at
    // exponent e = elt*(2*brv(t)+1) mod 2N (still odd), which the NTT
    // stores at position brv((e-1)/2). std::map nodes are stable, so
    // the reference survives later insertions.
    const std::uint64_t n = params_.n;
    const std::uint64_t m = 2 * n;
    const unsigned log2n = floorLog2(n);
    std::vector<std::uint32_t> table(n);
    for (std::uint64_t t = 0; t < n; ++t) {
        const std::uint64_t src_exp = 2 * reverseBits(t, log2n) + 1;
        const std::uint64_t dst_exp = (elt * src_exp) % m;
        table[t] = static_cast<std::uint32_t>(
            reverseBits((dst_exp - 1) / 2, log2n));
    }
    return galoisNtt_.emplace(elt, std::move(table)).first->second;
}

} // namespace fxhenn::ckks
