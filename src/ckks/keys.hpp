/**
 * @file
 * CKKS key material.
 *
 * Key switching uses the hybrid RNS scheme with one special prime p:
 * keys live modulo Q * p and the switch result is exactly scaled back
 * down by p (ModDown). A KswKey holds one (k0_i, k1_i) pair per data
 * prime — the per-prime decomposition the paper's KeySwitch FPGA module
 * streams over (one pipeline round per ciphertext level L, Fig. 3).
 *
 * Thread-safety: all key structs are plain data, written once by the
 * KeyGenerator and read-only afterwards. The evaluation keys (RelinKey,
 * GaloisKeys) are shared by reference across every concurrent executor;
 * nothing in the evaluator mutates them.
 */
#ifndef FXHENN_CKKS_KEYS_HPP
#define FXHENN_CKKS_KEYS_HPP

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/rns/rns_poly.hpp"

namespace fxhenn::ckks {

/** The ternary secret key s, stored in NTT domain over Q and p. */
struct SecretKey
{
    RnsPoly s; ///< level = L, with special limb, NTT domain
};

/** Public encryption key (pk0, pk1) = (-(a s + e), a) over Q. */
struct PublicKey
{
    RnsPoly pk0;
    RnsPoly pk1;
};

/**
 * One key-switching key: for each data prime i, a pair over Q * p with
 *   k0_i = -(a_i s + e_i) + p * T_i * s'    (T_i the CRT spotlight of q_i)
 *   k1_i = a_i
 * switching ciphertext parts decrypting under s' to decrypt under s.
 */
struct KswKey
{
    std::vector<std::pair<RnsPoly, RnsPoly>> pairs; ///< one per data prime
};

/** Relinearization key: a KswKey for s' = s^2. */
struct RelinKey
{
    KswKey key;
};

/** Galois (rotation) keys: a KswKey per Galois element in use. */
struct GaloisKeys
{
    std::map<std::uint64_t, KswKey> keys; ///< galois element -> key

    bool
    has(std::uint64_t galois_elt) const
    {
        return keys.count(galois_elt) != 0;
    }
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_KEYS_HPP
