/**
 * @file
 * CKKS decryption (requires the secret key).
 */
#ifndef FXHENN_CKKS_DECRYPTOR_HPP
#define FXHENN_CKKS_DECRYPTOR_HPP

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/ckks/keys.hpp"
#include "src/ckks/plaintext.hpp"

namespace fxhenn::ckks {

/**
 * Decrypts ciphertexts: m = sum_k parts[k] * s^k.
 *
 * Thread-safety: immutable after construction; decrypt() is const and
 * re-entrant, so one Decryptor serves concurrent requests.
 */
class Decryptor
{
  public:
    Decryptor(const CkksContext &context, const SecretKey &secretKey);

    /** Decrypt a 2- or 3-part ciphertext into a plaintext. */
    Plaintext decrypt(const Ciphertext &ct) const;

  private:
    const CkksContext &context_;
    const SecretKey &secretKey_;
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_DECRYPTOR_HPP
