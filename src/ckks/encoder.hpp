/**
 * @file
 * CKKS canonical-embedding encoder/decoder.
 *
 * Implements the batching of Sec. II-A: up to N/2 complex "slots" are
 * packed into one plaintext polynomial via the special FFT over the odd
 * powers of the 2N-th root of unity, with slot order given by the
 * rotation group 5^i mod 2N so that Rotate acts as a cyclic slot shift.
 */
#ifndef FXHENN_CKKS_ENCODER_HPP
#define FXHENN_CKKS_ENCODER_HPP

#include <complex>
#include <span>
#include <vector>

#include "src/ckks/context.hpp"
#include "src/ckks/plaintext.hpp"

namespace fxhenn::ckks {

/**
 * Encode real/complex slot vectors into plaintext polynomials.
 *
 * Thread-safety: immutable after construction (holds only the context
 * reference); every method is const and re-entrant, so one Encoder can
 * be shared by concurrent requests.
 */
class Encoder
{
  public:
    explicit Encoder(const CkksContext &context);

    /**
     * Encode @p values (padded with zeros up to N/2 slots) at @p scale
     * and @p level. Values must satisfy |v| * scale < Q/2.
     */
    Plaintext encode(std::span<const std::complex<double>> values,
                     double scale, std::size_t level) const;

    /** Convenience overload for real slot vectors. */
    Plaintext encode(std::span<const double> values, double scale,
                     std::size_t level) const;

    /** Encode the same real constant into every slot. */
    Plaintext encodeConstant(double value, double scale,
                             std::size_t level) const;

    /** Decode a plaintext back into N/2 complex slot values. */
    std::vector<std::complex<double>> decode(const Plaintext &plain) const;

    /** Decode and keep only the real parts. */
    std::vector<double> decodeReal(const Plaintext &plain) const;

    std::size_t slots() const { return context_.slots(); }

  private:
    /** Special forward FFT (coefficients -> slots), in place. */
    void fftSpecial(std::vector<std::complex<double>> &vals) const;
    /** Special inverse FFT (slots -> coefficients), in place. */
    void fftSpecialInv(std::vector<std::complex<double>> &vals) const;

    const CkksContext &context_;
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_ENCODER_HPP
