/**
 * @file
 * CkksContext: the shared immutable state behind every CKKS object.
 *
 * Owns the RNS basis (prime chain + NTT tables), the encoder root tables
 * and the per-level CRT reconstructors. All other scheme classes
 * (Encoder, KeyGenerator, Encryptor, Decryptor, Evaluator) hold a
 * reference to one context.
 */
#ifndef FXHENN_CKKS_CONTEXT_HPP
#define FXHENN_CKKS_CONTEXT_HPP

#include <complex>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/ckks/params.hpp"
#include "src/rns/crt.hpp"
#include "src/rns/rns_basis.hpp"

namespace fxhenn::ckks {

/** Immutable CKKS scheme context (basis, roots, CRT tables). */
class CkksContext
{
  public:
    /** Build all tables for @p params (validates them first). */
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    const RnsBasis &basis() const { return *basis_; }

    std::uint64_t n() const { return params_.n; }
    std::size_t slots() const { return params_.n / 2; }
    std::size_t maxLevel() const { return params_.levels; }

    /** CRT reconstructor for ciphertexts at @p level. */
    const CrtReconstructor &crt(std::size_t level) const;

    /** exp(2*pi*i * j / 2N) for j in [0, 2N); encoder twiddles. */
    const std::vector<std::complex<double>> &
    encoderRoots() const
    {
        return roots_;
    }

    /** rotGroup[i] = 5^i mod 2N; the slot <-> root index map. */
    const std::vector<std::uint64_t> &
    rotGroup() const
    {
        return rotGroup_;
    }

    /** Galois element for a left rotation by @p steps slots. */
    std::uint64_t galoisElt(int steps) const;

    /** Galois element of complex conjugation (2N - 1). */
    std::uint64_t conjugateElt() const { return 2 * params_.n - 1; }

    /**
     * Permutation realizing the Galois automorphism X -> X^elt
     * directly on NTT-domain (bit-reversed evaluation order) limbs:
     * ntt(galois(x)).limb[t] == ntt(x).limb[table[t]]. The
     * automorphism maps evaluation points among the odd 2N-th roots,
     * so in evaluation form it is a pure gather — no negations, no
     * INTT/NTT round trip. Tables are computed once per element and
     * cached (thread-safe); the returned reference lives as long as
     * the context.
     */
    const std::vector<std::uint32_t> &
    galoisNttTable(std::uint64_t elt) const;

  private:
    CkksParams params_;
    std::unique_ptr<RnsBasis> basis_;
    std::vector<std::unique_ptr<CrtReconstructor>> crt_;
    std::vector<std::complex<double>> roots_;
    std::vector<std::uint64_t> rotGroup_;
    /** elt -> NTT permutation table, built lazily under the mutex. */
    mutable std::map<std::uint64_t, std::vector<std::uint32_t>>
        galoisNtt_;
    mutable std::mutex galoisNttMutex_;
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_CONTEXT_HPP
