#include "src/ckks/evaluator.hpp"

#include <array>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/parallel.hpp"
#include "src/modarith/simd_dispatch.hpp"
#include "src/rns/lazy_accumulator.hpp"
#include "src/robustness/fault_injection.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::ckks {

Evaluator::Evaluator(const CkksContext &context, KswMode kswMode)
    : context_(context),
      kswMode_(kswMode)
{}

void
Evaluator::checkSameShape(const Ciphertext &a, const Ciphertext &b) const
{
    FXHENN_FATAL_IF(a.level() != b.level(),
                    "ciphertext levels differ; modSwitch first");
    FXHENN_FATAL_IF(a.size() != b.size(),
                    "ciphertext part counts differ");
}

void
Evaluator::checkScaleClose(double a, double b) const
{
    const double ratio = a / b;
    FXHENN_FATAL_IF(ratio < 0.99 || ratio > 1.01,
                    "operand scales differ by more than 1%; align scales "
                    "before additive operations");
}

void
Evaluator::checkScaleSane(double scale) const
{
    FXHENN_FATAL_IF(!std::isfinite(scale) || scale <= 0.0,
                    "ciphertext scale is non-finite or non-positive");
}

void
Evaluator::checkScaleFits(double scale, std::size_t level) const
{
    // SEAL-style "scale out of bounds". A legitimate product at the
    // last usable level sits within a fraction of a bit of logQ (prime
    // drift), while a missing rescale overshoots by a full ~scaleBits,
    // so a 2-bit margin separates the two cleanly.
    FXHENN_FATAL_IF(std::log2(scale) > context_.basis().logQ(level) + 2.0,
                    "product scale exceeds the modulus at this level; "
                    "rescale before multiplying again");
}

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b)
{
    Ciphertext out = a;
    addInplace(out, b);
    return out;
}

void
Evaluator::addInplace(Ciphertext &a, const Ciphertext &b)
{
    checkSameShape(a, b);
    checkScaleSane(a.scale);
    checkScaleClose(a.scale, b.scale);
    FXHENN_TELEM_COUNT("ckks.op.cc_add", 1);
    FXHENN_TELEM_COUNT("ckks.limbs", a.level() * a.parts.size());
    for (std::size_t k = 0; k < a.parts.size(); ++k)
        a.parts[k].addInplace(b.parts[k]);
    ++counts_.ccAdd;
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b)
{
    checkSameShape(a, b);
    checkScaleClose(a.scale, b.scale);
    Ciphertext out = a;
    for (std::size_t k = 0; k < out.parts.size(); ++k)
        out.parts[k].subInplace(b.parts[k]);
    ++counts_.ccAdd;
    return out;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &a, const Plaintext &p)
{
    Ciphertext out = a;
    addPlainInplace(out, p);
    return out;
}

void
Evaluator::addPlainInplace(Ciphertext &a, const Plaintext &p)
{
    FXHENN_FATAL_IF(a.level() != p.level(),
                    "plaintext level does not match ciphertext");
    checkScaleClose(a.scale, p.scale);
    FXHENN_TELEM_COUNT("ckks.op.pc_add", 1);
    FXHENN_TELEM_COUNT("ckks.limbs", a.level());
    a.parts[0].addInplace(p.poly);
    ++counts_.pcAdd;
}

Ciphertext
Evaluator::negate(const Ciphertext &a)
{
    Ciphertext out = a;
    for (auto &part : out.parts)
        part.negateInplace();
    return out;
}

Ciphertext
Evaluator::addMany(std::span<const Ciphertext> operands)
{
    FXHENN_FATAL_IF(operands.empty(), "addMany needs >= 1 operand");
    std::vector<Ciphertext> layer(operands.begin(), operands.end());
    while (layer.size() > 1) {
        std::vector<Ciphertext> next;
        next.reserve((layer.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(add(layer[i], layer[i + 1]));
        if (layer.size() % 2 == 1)
            next.push_back(std::move(layer.back()));
        layer = std::move(next);
    }
    return std::move(layer.front());
}

void
Evaluator::mulScalarInplace(Ciphertext &a, std::int64_t scalar)
{
    for (auto &part : a.parts) {
        for (std::size_t i = 0; i < part.limbCount(); ++i) {
            const Modulus &q = part.limbModulus(i);
            const std::uint64_t s = q.reduceSigned(scalar);
            for (auto &x : part.limb(i))
                x = q.mul(x, s);
        }
    }
}

Ciphertext
Evaluator::mulPlain(const Ciphertext &a, const Plaintext &p)
{
    Ciphertext out = a;
    mulPlainInplace(out, p);
    return out;
}

void
Evaluator::mulPlainInplace(Ciphertext &a, const Plaintext &p)
{
    FXHENN_FATAL_IF(a.level() != p.level(),
                    "plaintext level does not match ciphertext");
    checkScaleSane(a.scale);
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.pc_mult.ns");
    FXHENN_TELEM_COUNT("ckks.op.pc_mult", 1);
    FXHENN_TELEM_COUNT("ckks.limbs", a.level() * a.parts.size());
    for (auto &part : a.parts)
        part.mulInplace(p.poly);
    a.scale *= p.scale;
    checkScaleFits(a.scale, a.level());
    if (auto fault = robustness::fireFault("evaluator.scale")) {
        if (fault->kind == "perturb")
            a.scale *= 1.25;
    }
    ++counts_.pcMult;
}

Ciphertext
Evaluator::mulNoRelin(const Ciphertext &a, const Ciphertext &b)
{
    checkSameShape(a, b);
    FXHENN_FATAL_IF(a.size() != 2 || b.size() != 2,
                    "multiply requires 2-part operands");
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.cc_mult.ns");
    FXHENN_TELEM_COUNT("ckks.op.cc_mult", 1);
    FXHENN_TELEM_COUNT("ckks.limbs", a.level() * 4);

    Ciphertext out;
    out.scale = a.scale * b.scale;
    checkScaleFits(out.scale, a.level());
    // r0 = a0 b0, r1 = a0 b1 + a1 b0, r2 = a1 b1
    RnsPoly r0 = a.parts[0];
    r0.mulInplace(b.parts[0]);
    RnsPoly r1 = a.parts[0];
    r1.mulInplace(b.parts[1]);
    r1.addProduct(a.parts[1], b.parts[0]);
    RnsPoly r2 = a.parts[1];
    r2.mulInplace(b.parts[1]);
    out.parts.push_back(std::move(r0));
    out.parts.push_back(std::move(r1));
    out.parts.push_back(std::move(r2));
    ++counts_.ccMult;
    return out;
}

Ciphertext
Evaluator::mul(const Ciphertext &a, const Ciphertext &b, const RelinKey &rk)
{
    return relinearize(mulNoRelin(a, b), rk);
}

Ciphertext
Evaluator::square(const Ciphertext &a, const RelinKey &rk)
{
    return mul(a, a, rk);
}

std::vector<RnsPoly>
Evaluator::decomposeKsw(const RnsPoly &d)
{
    const RnsBasis &basis = context_.basis();
    const std::size_t level = d.level();
    FXHENN_ASSERT(d.domain() == PolyDomain::coeff,
                  "decomposition input must be in coefficient form");
    FXHENN_ASSERT(!d.hasSpecial(), "input must not carry the special limb");
    FXHENN_TELEM_COUNT("ckks.keyswitch.decompositions", 1);

    std::vector<RnsPoly> digits;
    digits.reserve(level);
    for (std::size_t i = 0; i < level; ++i)
        digits.emplace_back(basis, level, /*withSpecial=*/true,
                            PolyDomain::coeff);

    // One flat batch over every (digit, target limb) pair: extend limb
    // i of d into modulus j, then forward-NTT it there. All writes are
    // disjoint, so the whole ModUp is a single parallelFor (the
    // software mirror of P_intra) instead of L serial NTT sweeps.
    parallelFor(level * (level + 1), [&](std::size_t job) {
        const std::size_t i = job / (level + 1);
        const std::size_t j = job % (level + 1);
        const Modulus &qj =
            (j < level) ? basis.q(j) : basis.specialPrime();
        const NttTables &ntt_j =
            (j < level) ? basis.ntt(j) : basis.nttSpecial();
        const auto src = d.limb(i);
        auto dst = digits[i].limb(j);
        if (j == i || basis.q(i).value() < qj.value()) {
            // Same modulus, or q_i < q_j: the [0, q_i) representative
            // is already canonical mod q_j.
            std::copy(src.begin(), src.end(), dst.begin());
        } else {
            // Fast (approximate) base extension: take the
            // representative in [0, q_i) and reduce (Barrett — data
            // primes share a width, so src[k] < 2^(2*bits) holds).
            // The induced error is < q_i and is scaled away by the
            // final division by p.
            FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
            simd::kernels().reduceArray(dst.data(), src.data(),
                                        dst.size(), qj);
        }
        ntt_j.forward(dst);
    });
    for (auto &digit : digits)
        digit.setDomain(PolyDomain::ntt);
    return digits;
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keyswitchCore(const std::vector<RnsPoly> &digits,
                         const KswKey &key,
                         std::span<const std::uint32_t> perm)
{
    const RnsBasis &basis = context_.basis();
    const std::size_t level = digits.size();
    FXHENN_ASSERT(level > 0, "keyswitch needs >= 1 digit");
    FXHENN_ASSERT(key.pairs.size() >= level, "key too short for level");
    const std::size_t n = digits.front().n();
    FXHENN_TELEM_COUNT("ckks.op.keyswitch_core", 1);
    FXHENN_TELEM_COUNT("ckks.limbs", level * (level + 1));
    if (kswMode_ == KswMode::lazy && level > 1) {
        // Eager reduces every FMA (level Barrett reductions per
        // coefficient per accumulator); lazy reduces once.
        FXHENN_TELEM_COUNT("ckks.keyswitch.lazy_reductions_saved",
                           2 * (level + 1) * n * (level - 1));
    }

    RnsPoly u0(basis, level, /*withSpecial=*/true, PolyDomain::ntt);
    RnsPoly u1(basis, level, /*withSpecial=*/true, PolyDomain::ntt);

    // Every target limb j of the accumulators is independent; all
    // writes stay disjoint. When perm is given, the Galois
    // automorphism is a pure gather on NTT-domain digits, fused into
    // the inner product (the hoisted-rotation path).
    parallelFor(level + 1, [&](std::size_t j) {
        const Modulus &qj =
            (j < level) ? basis.q(j) : basis.specialPrime();
        auto a0 = u0.limb(j);
        auto a1 = u1.limb(j);
        if (kswMode_ == KswMode::lazy) {
            rns::LazyLimbAccumulator acc0(n);
            rns::LazyLimbAccumulator acc1(n);
            for (std::size_t i = 0; i < level; ++i) {
                // Key limbs span all L data primes plus the special.
                const RnsPoly &k0 = key.pairs[i].first;
                const RnsPoly &k1 = key.pairs[i].second;
                const std::size_t kj = (j < level) ? j : k0.level();
                if (perm.empty()) {
                    digits[i].fmaLazyInto(acc0, j, k0.limb(kj));
                    digits[i].fmaLazyInto(acc1, j, k1.limb(kj));
                } else {
                    acc0.fmaGather(digits[i].limb(j), perm, k0.limb(kj));
                    acc1.fmaGather(digits[i].limb(j), perm, k1.limb(kj));
                }
            }
            acc0.reduceInto(a0, qj);
            acc1.reduceInto(a1, qj);
        } else {
            for (std::size_t i = 0; i < level; ++i) {
                const RnsPoly &k0 = key.pairs[i].first;
                const RnsPoly &k1 = key.pairs[i].second;
                const std::size_t kj = (j < level) ? j : k0.level();
                auto e = digits[i].limb(j);
                auto s0 = k0.limb(kj);
                auto s1 = k1.limb(kj);
                if (perm.empty()) {
                    for (std::size_t k = 0; k < n; ++k) {
                        a0[k] = qj.add(a0[k], qj.mul(e[k], s0[k]));
                        a1[k] = qj.add(a1[k], qj.mul(e[k], s1[k]));
                    }
                } else {
                    for (std::size_t k = 0; k < n; ++k) {
                        a0[k] = qj.add(a0[k], qj.mul(e[perm[k]], s0[k]));
                        a1[k] = qj.add(a1[k], qj.mul(e[perm[k]], s1[k]));
                    }
                }
            }
        }
    });

    // Exact scale-down by p (ModDown), back to NTT domain; the INTT
    // and NTT sweeps of both accumulators run as one batch each.
    std::array<RnsPoly *, 2> batch{&u0, &u1};
    batchFromNtt(batch);
    u0.modDownSpecial();
    u1.modDownSpecial();
    batchToNtt(batch);
    return {std::move(u0), std::move(u1)};
}

std::pair<RnsPoly, RnsPoly>
Evaluator::applyKsw(RnsPoly d, const KswKey &key)
{
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.keyswitch.ns");
    if (d.domain() == PolyDomain::ntt)
        d.fromNtt();
    return keyswitchCore(decomposeKsw(d), key, {});
}

Ciphertext
Evaluator::relinearize(const Ciphertext &a, const RelinKey &rk)
{
    FXHENN_FATAL_IF(a.size() != 3,
                    "relinearize expects a 3-part ciphertext");
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.relinearize.ns");
    FXHENN_TELEM_COUNT("ckks.op.relinearize", 1);
    auto [u0, u1] = applyKsw(a.parts[2], rk.key);

    Ciphertext out;
    out.scale = a.scale;
    RnsPoly c0 = a.parts[0];
    c0.addInplace(u0);
    RnsPoly c1 = a.parts[1];
    c1.addInplace(u1);
    out.parts.push_back(std::move(c0));
    out.parts.push_back(std::move(c1));
    ++counts_.relinearize;
    return out;
}

Ciphertext
Evaluator::rescale(const Ciphertext &a)
{
    Ciphertext out = a;
    rescaleInplace(out);
    return out;
}

void
Evaluator::rescaleInplace(Ciphertext &a)
{
    FXHENN_FATAL_IF(a.level() < 2, "no prime left to rescale into");
    checkScaleSane(a.scale);
    const auto fault = robustness::fireFault("evaluator.rescale");
    if (fault && fault->kind == "drop")
        return; // injected fault: the rescale silently never happens
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.rescale.ns");
    FXHENN_TELEM_COUNT("ckks.op.rescale", 1);
    FXHENN_TELEM_COUNT("ckks.limbs", a.level() * a.parts.size());
    const std::uint64_t q_last =
        context_.basis().q(a.level() - 1).value();
    for (auto &part : a.parts) {
        part.fromNtt();
        part.rescaleLastPrime();
        part.toNtt();
    }
    a.scale /= static_cast<double>(q_last);
    if (fault && fault->kind == "bitflip")
        robustness::corruptResidues(a.parts[0], fault->seed);
    ++counts_.rescale;
}

Ciphertext
Evaluator::modSwitchToLevel(const Ciphertext &a, std::size_t level)
{
    FXHENN_FATAL_IF(level == 0 || level > a.level(),
                    "invalid modSwitch target level");
    Ciphertext out = a;
    for (auto &part : out.parts) {
        while (part.level() > level)
            part.dropLastPrime();
    }
    return out;
}

Ciphertext
Evaluator::rotateFromDigits(const Ciphertext &a,
                            const std::vector<RnsPoly> &digits,
                            std::uint64_t elt, const KswKey &key)
{
    const auto &perm = context_.galoisNttTable(elt);
    std::pair<RnsPoly, RnsPoly> u = [&] {
        FXHENN_TELEM_SCOPED_TIMER("ckks.time.keyswitch.ns");
        return keyswitchCore(digits, key, perm);
    }();

    // c0 never leaves the NTT domain: the automorphism is the same
    // gather the keyswitch fused into its inner product.
    u.first.addInplace(a.parts[0].permuteNtt(perm));

    Ciphertext out;
    out.scale = a.scale;
    out.parts.push_back(std::move(u.first));
    out.parts.push_back(std::move(u.second));
    ++counts_.rotate;
    return out;
}

Ciphertext
Evaluator::rotate(const Ciphertext &a, int steps, const GaloisKeys &gk)
{
    FXHENN_FATAL_IF(a.size() != 2, "rotate expects a 2-part ciphertext");
    if (steps == 0)
        return a;
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.rotate.ns");
    FXHENN_TELEM_COUNT("ckks.op.rotate", 1);
    const std::uint64_t elt = context_.galoisElt(steps);
    FXHENN_FATAL_IF(!gk.has(elt),
                    "missing Galois key for requested rotation");

    RnsPoly c1 = a.parts[1];
    c1.fromNtt();
    return rotateFromDigits(a, decomposeKsw(c1), elt, gk.keys.at(elt));
}

std::vector<Ciphertext>
Evaluator::rotateHoisted(const Ciphertext &a,
                         const std::vector<int> &steps,
                         const GaloisKeys &gk)
{
    FXHENN_FATAL_IF(a.size() != 2,
                    "rotateHoisted expects a 2-part ciphertext");
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.rotate_hoisted.ns");
#if FXHENN_TELEMETRY_ENABLED
    if (telemetry::enabled())
        telemetry::histogram("ckks.rotate.hoist_group_size")
            .record(steps.size());
#endif

    // Hoisted part (Halevi-Shoup): decompose + base-extend + NTT c1
    // once; every rotation of the group reuses the digits through its
    // own Galois gather.
    RnsPoly c1 = a.parts[1];
    c1.fromNtt();
    const std::vector<RnsPoly> digits = decomposeKsw(c1);

    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    for (int step : steps) {
        if (step == 0) {
            out.push_back(a);
            continue;
        }
        FXHENN_TELEM_SCOPED_TIMER("ckks.time.rotate.ns");
        FXHENN_TELEM_COUNT("ckks.op.rotate", 1);
        const std::uint64_t elt = context_.galoisElt(step);
        FXHENN_FATAL_IF(!gk.has(elt),
                        "missing Galois key for hoisted rotation");
        out.push_back(rotateFromDigits(a, digits, elt, gk.keys.at(elt)));
    }
    return out;
}

Ciphertext
Evaluator::conjugate(const Ciphertext &a, const GaloisKeys &gk)
{
    FXHENN_FATAL_IF(a.size() != 2,
                    "conjugate expects a 2-part ciphertext");
    FXHENN_TELEM_SCOPED_TIMER("ckks.time.rotate.ns");
    FXHENN_TELEM_COUNT("ckks.op.rotate", 1);
    const std::uint64_t elt = context_.conjugateElt();
    FXHENN_FATAL_IF(!gk.has(elt), "missing conjugation key");

    RnsPoly c1 = a.parts[1];
    c1.fromNtt();
    return rotateFromDigits(a, decomposeKsw(c1), elt, gk.keys.at(elt));
}

} // namespace fxhenn::ckks
