#include "src/ckks/serialization.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "src/common/assert.hpp"

namespace fxhenn::ckks {

namespace {

constexpr std::uint64_t kMagic = 0x4678484532303233ull; // "FxHE2023"
constexpr std::uint32_t kVersion = 1;

enum class Tag : std::uint32_t {
    ciphertext = 1,
    plaintext = 2,
    publicKey = 3,
    relinKey = 4,
    galoisKeys = 5,
};

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    FXHENN_FATAL_IF(!is, "truncated CKKS object stream");
    return value;
}

void
writeHeader(std::ostream &os, const CkksContext &ctx, Tag tag)
{
    writePod(os, kMagic);
    writePod(os, kVersion);
    writePod(os, static_cast<std::uint32_t>(tag));
    writePod(os, static_cast<std::uint64_t>(ctx.params().n));
    writePod(os, static_cast<std::uint64_t>(ctx.params().levels));
    writePod(os, static_cast<std::uint32_t>(ctx.params().qBits));
    writePod(os, static_cast<std::uint32_t>(ctx.params().specialBits));
}

void
readHeader(std::istream &is, const CkksContext &ctx, Tag expected)
{
    FXHENN_FATAL_IF(readPod<std::uint64_t>(is) != kMagic,
                    "not an FxHENN CKKS object stream");
    FXHENN_FATAL_IF(readPod<std::uint32_t>(is) != kVersion,
                    "unsupported serialization version");
    FXHENN_FATAL_IF(readPod<std::uint32_t>(is) !=
                        static_cast<std::uint32_t>(expected),
                    "unexpected object type in stream");
    FXHENN_FATAL_IF(readPod<std::uint64_t>(is) != ctx.params().n ||
                        readPod<std::uint64_t>(is) !=
                            ctx.params().levels ||
                        readPod<std::uint32_t>(is) !=
                            ctx.params().qBits ||
                        readPod<std::uint32_t>(is) !=
                            ctx.params().specialBits,
                    "CKKS parameter fingerprint mismatch");
}

void
writePoly(std::ostream &os, const RnsPoly &poly)
{
    writePod(os, static_cast<std::uint32_t>(poly.level()));
    writePod(os, static_cast<std::uint8_t>(poly.hasSpecial() ? 1 : 0));
    writePod(os, static_cast<std::uint8_t>(
                     poly.domain() == PolyDomain::ntt ? 1 : 0));
    for (std::size_t i = 0; i < poly.limbCount(); ++i) {
        const auto limb = poly.limb(i);
        os.write(reinterpret_cast<const char *>(limb.data()),
                 static_cast<std::streamsize>(limb.size() *
                                              sizeof(std::uint64_t)));
    }
}

RnsPoly
readPoly(std::istream &is, const CkksContext &ctx)
{
    const auto level = readPod<std::uint32_t>(is);
    const bool special = readPod<std::uint8_t>(is) != 0;
    const bool ntt = readPod<std::uint8_t>(is) != 0;
    FXHENN_FATAL_IF(level == 0 || level > ctx.maxLevel(),
                    "corrupt polynomial level");
    RnsPoly poly(ctx.basis(), level, special,
                 ntt ? PolyDomain::ntt : PolyDomain::coeff);
    for (std::size_t i = 0; i < poly.limbCount(); ++i) {
        auto limb = poly.limb(i);
        is.read(reinterpret_cast<char *>(limb.data()),
                static_cast<std::streamsize>(limb.size() *
                                             sizeof(std::uint64_t)));
        FXHENN_FATAL_IF(!is, "truncated polynomial payload");
        const Modulus &q = poly.limbModulus(i);
        for (std::uint64_t v : limb)
            FXHENN_FATAL_IF(v >= q.value(),
                            "polynomial residue out of range");
    }
    return poly;
}

void
writeKswKey(std::ostream &os, const KswKey &key)
{
    writePod(os, static_cast<std::uint32_t>(key.pairs.size()));
    for (const auto &[k0, k1] : key.pairs) {
        writePoly(os, k0);
        writePoly(os, k1);
    }
}

KswKey
readKswKey(std::istream &is, const CkksContext &ctx)
{
    const auto pairs = readPod<std::uint32_t>(is);
    FXHENN_FATAL_IF(pairs == 0 || pairs > ctx.maxLevel(),
                    "corrupt key-switch pair count");
    KswKey key;
    key.pairs.reserve(pairs);
    for (std::uint32_t i = 0; i < pairs; ++i) {
        RnsPoly k0 = readPoly(is, ctx);
        RnsPoly k1 = readPoly(is, ctx);
        key.pairs.emplace_back(std::move(k0), std::move(k1));
    }
    return key;
}

} // namespace

void
saveCiphertext(const Ciphertext &ct, const CkksContext &ctx,
               std::ostream &os)
{
    writeHeader(os, ctx, Tag::ciphertext);
    writePod(os, ct.scale);
    writePod(os, static_cast<std::uint32_t>(ct.parts.size()));
    for (const auto &part : ct.parts)
        writePoly(os, part);
}

Ciphertext
loadCiphertext(const CkksContext &ctx, std::istream &is)
{
    readHeader(is, ctx, Tag::ciphertext);
    Ciphertext ct;
    ct.scale = readPod<double>(is);
    const auto parts = readPod<std::uint32_t>(is);
    FXHENN_FATAL_IF(parts < 2 || parts > 3,
                    "corrupt ciphertext part count");
    for (std::uint32_t i = 0; i < parts; ++i)
        ct.parts.push_back(readPoly(is, ctx));
    return ct;
}

void
savePlaintext(const Plaintext &pt, const CkksContext &ctx,
              std::ostream &os)
{
    writeHeader(os, ctx, Tag::plaintext);
    writePod(os, pt.scale);
    writePoly(os, pt.poly);
}

Plaintext
loadPlaintext(const CkksContext &ctx, std::istream &is)
{
    readHeader(is, ctx, Tag::plaintext);
    Plaintext pt;
    pt.scale = readPod<double>(is);
    pt.poly = readPoly(is, ctx);
    return pt;
}

void
savePublicKey(const PublicKey &pk, const CkksContext &ctx,
              std::ostream &os)
{
    writeHeader(os, ctx, Tag::publicKey);
    writePoly(os, pk.pk0);
    writePoly(os, pk.pk1);
}

PublicKey
loadPublicKey(const CkksContext &ctx, std::istream &is)
{
    readHeader(is, ctx, Tag::publicKey);
    PublicKey pk;
    pk.pk0 = readPoly(is, ctx);
    pk.pk1 = readPoly(is, ctx);
    return pk;
}

void
saveRelinKey(const RelinKey &rk, const CkksContext &ctx,
             std::ostream &os)
{
    writeHeader(os, ctx, Tag::relinKey);
    writeKswKey(os, rk.key);
}

RelinKey
loadRelinKey(const CkksContext &ctx, std::istream &is)
{
    readHeader(is, ctx, Tag::relinKey);
    return RelinKey{readKswKey(is, ctx)};
}

void
saveGaloisKeys(const GaloisKeys &gk, const CkksContext &ctx,
               std::ostream &os)
{
    writeHeader(os, ctx, Tag::galoisKeys);
    writePod(os, static_cast<std::uint32_t>(gk.keys.size()));
    for (const auto &[elt, key] : gk.keys) {
        writePod(os, static_cast<std::uint64_t>(elt));
        writeKswKey(os, key);
    }
}

GaloisKeys
loadGaloisKeys(const CkksContext &ctx, std::istream &is)
{
    readHeader(is, ctx, Tag::galoisKeys);
    GaloisKeys gk;
    const auto count = readPod<std::uint32_t>(is);
    FXHENN_FATAL_IF(count > 4096, "implausible Galois key count");
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto elt = readPod<std::uint64_t>(is);
        FXHENN_FATAL_IF(elt % 2 == 0 || elt >= 2 * ctx.params().n,
                        "corrupt Galois element");
        gk.keys.emplace(elt, readKswKey(is, ctx));
    }
    return gk;
}

} // namespace fxhenn::ckks
