/**
 * @file
 * CKKS plaintext: an encoded polynomial plus scale/level bookkeeping.
 */
#ifndef FXHENN_CKKS_PLAINTEXT_HPP
#define FXHENN_CKKS_PLAINTEXT_HPP

#include "src/rns/rns_poly.hpp"

namespace fxhenn::ckks {

/** An encoded message m(X), ready for plaintext-ciphertext ops. */
struct Plaintext
{
    RnsPoly poly;       ///< NTT domain, level() active primes
    double scale = 0.0; ///< encoding scale Delta

    std::size_t level() const { return poly.level(); }
};

} // namespace fxhenn::ckks

#endif // FXHENN_CKKS_PLAINTEXT_HPP
