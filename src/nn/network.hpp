/**
 * @file
 * Sequential CNN container.
 */
#ifndef FXHENN_NN_NETWORK_HPP
#define FXHENN_NN_NETWORK_HPP

#include <memory>
#include <string>
#include <vector>

#include "src/nn/layers.hpp"

namespace fxhenn::nn {

/** A sequential network: input tensor shape plus an ordered layer list. */
class Network
{
  public:
    /** @param name network name; input is (channels, height, width). */
    Network(std::string name, std::size_t inCh, std::size_t inH,
            std::size_t inW);

    void addLayer(std::unique_ptr<Layer> layer);

    /** Full plaintext inference. */
    Tensor forward(const Tensor &input) const;

    /** Per-layer intermediate outputs (index i = output of layer i). */
    std::vector<Tensor> forwardTrace(const Tensor &input) const;

    std::size_t layerCount() const { return layers_.size(); }
    const Layer &layer(std::size_t i) const { return *layers_[i]; }
    Layer &layer(std::size_t i) { return *layers_[i]; }

    const std::string &name() const { return name_; }
    std::size_t inChannels() const { return inCh_; }
    std::size_t inHeight() const { return inH_; }
    std::size_t inWidth() const { return inW_; }
    std::size_t inputSize() const { return inCh_ * inH_ * inW_; }

    /** Sum of per-layer MAC counts (the Table IV "MACs" column). */
    std::uint64_t totalMacs() const;

  private:
    std::string name_;
    std::size_t inCh_, inH_, inW_;
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace fxhenn::nn

#endif // FXHENN_NN_NETWORK_HPP
