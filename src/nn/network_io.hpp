/**
 * @file
 * Binary serialization of plaintext networks (weights included).
 *
 * Lets the model owner persist a trained/initialized network and reload
 * it for compilation on another machine — the front half of the
 * deployment pipeline (the back half is hecnn::savePlan). The format
 * follows the repository's framed-binary convention.
 */
#ifndef FXHENN_NN_NETWORK_IO_HPP
#define FXHENN_NN_NETWORK_IO_HPP

#include <iosfwd>

#include "src/nn/network.hpp"

namespace fxhenn::nn {

/** Serialize @p net (topology + weights) to @p os. */
void saveNetwork(const Network &net, std::ostream &os);

/** Deserialize a network; validates framing and shapes. */
Network loadNetwork(std::istream &is);

} // namespace fxhenn::nn

#endif // FXHENN_NN_NETWORK_IO_HPP
