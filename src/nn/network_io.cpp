#include "src/nn/network_io.hpp"

#include <istream>
#include <memory>
#include <ostream>

#include "src/common/assert.hpp"

namespace fxhenn::nn {

namespace {

constexpr std::uint64_t kMagic = 0x46784e4554303143ull; // "FxNET01C"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    FXHENN_FATAL_IF(!is, "truncated network stream");
    return value;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    const auto size = readPod<std::uint32_t>(is);
    FXHENN_FATAL_IF(size > 4096, "implausible name length");
    std::string s(size, '\0');
    is.read(s.data(), size);
    FXHENN_FATAL_IF(!is, "truncated network stream");
    return s;
}

} // namespace

void
saveNetwork(const Network &net, std::ostream &os)
{
    writePod(os, kMagic);
    writePod(os, kVersion);
    writeString(os, net.name());
    writePod(os, static_cast<std::uint64_t>(net.inChannels()));
    writePod(os, static_cast<std::uint64_t>(net.inHeight()));
    writePod(os, static_cast<std::uint64_t>(net.inWidth()));
    writePod(os, static_cast<std::uint64_t>(net.layerCount()));

    for (std::size_t i = 0; i < net.layerCount(); ++i) {
        const Layer &layer = net.layer(i);
        writePod(os, static_cast<std::uint32_t>(layer.kind()));
        writeString(os, layer.name());
        switch (layer.kind()) {
          case LayerKind::conv2d: {
            const auto &conv = static_cast<const Conv2D &>(layer);
            for (std::uint64_t v :
                 {conv.inChannels(), conv.outChannels(), conv.kernel(),
                  conv.stride(), conv.inHeight(), conv.inWidth(),
                  conv.pad()})
                writePod(os, v);
            for (std::size_t f = 0; f < conv.outChannels(); ++f) {
                for (std::size_t c = 0; c < conv.inChannels(); ++c)
                    for (std::size_t ky = 0; ky < conv.kernel(); ++ky)
                        for (std::size_t kx = 0; kx < conv.kernel();
                             ++kx)
                            writePod(os, conv.weight(f, c, ky, kx));
                writePod(os, conv.bias(f));
            }
            break;
          }
          case LayerKind::dense: {
            const auto &fc = static_cast<const Dense &>(layer);
            writePod(os, static_cast<std::uint64_t>(fc.inSize()));
            writePod(os, static_cast<std::uint64_t>(fc.outputSize()));
            for (std::size_t r = 0; r < fc.outputSize(); ++r) {
                for (std::size_t c = 0; c < fc.inSize(); ++c)
                    writePod(os, fc.weight(r, c));
                writePod(os, fc.bias(r));
            }
            break;
          }
          case LayerKind::square:
            writePod(os,
                     static_cast<std::uint64_t>(layer.outputSize()));
            break;
          case LayerKind::avgPool: {
            const auto &pool = static_cast<const AvgPool2D &>(layer);
            for (std::uint64_t v :
                 {pool.channels(), pool.kernel(), pool.stride(),
                  pool.inHeight(), pool.inWidth()})
                writePod(os, v);
            break;
          }
          case LayerKind::flatten:
            break;
        }
    }
}

Network
loadNetwork(std::istream &is)
{
    FXHENN_FATAL_IF(readPod<std::uint64_t>(is) != kMagic,
                    "not an FxHENN network stream");
    FXHENN_FATAL_IF(readPod<std::uint32_t>(is) != kVersion,
                    "unsupported network version");

    const std::string name = readString(is);
    const auto in_ch = readPod<std::uint64_t>(is);
    const auto in_h = readPod<std::uint64_t>(is);
    const auto in_w = readPod<std::uint64_t>(is);
    FXHENN_FATAL_IF(in_ch == 0 || in_ch > 4096 || in_h == 0 ||
                        in_h > 65536 || in_w == 0 || in_w > 65536,
                    "implausible input shape");
    Network net(name, in_ch, in_h, in_w);

    const auto layers = readPod<std::uint64_t>(is);
    FXHENN_FATAL_IF(layers > 1024, "implausible layer count");
    for (std::uint64_t i = 0; i < layers; ++i) {
        const auto kind =
            static_cast<LayerKind>(readPod<std::uint32_t>(is));
        const std::string lname = readString(is);
        switch (kind) {
          case LayerKind::conv2d: {
            const auto ic = readPod<std::uint64_t>(is);
            const auto oc = readPod<std::uint64_t>(is);
            const auto k = readPod<std::uint64_t>(is);
            const auto s = readPod<std::uint64_t>(is);
            const auto h = readPod<std::uint64_t>(is);
            const auto w = readPod<std::uint64_t>(is);
            const auto pad = readPod<std::uint64_t>(is);
            FXHENN_FATAL_IF(oc > 65536 || k > 256,
                            "implausible conv shape");
            auto conv = std::make_unique<Conv2D>(lname, ic, oc, k, s,
                                                 h, w, pad);
            for (std::size_t f = 0; f < oc; ++f) {
                for (std::size_t c = 0; c < ic; ++c)
                    for (std::size_t ky = 0; ky < k; ++ky)
                        for (std::size_t kx = 0; kx < k; ++kx)
                            conv->weight(f, c, ky, kx) =
                                readPod<double>(is);
                conv->bias(f) = readPod<double>(is);
            }
            net.addLayer(std::move(conv));
            break;
          }
          case LayerKind::dense: {
            const auto in_size = readPod<std::uint64_t>(is);
            const auto out_size = readPod<std::uint64_t>(is);
            FXHENN_FATAL_IF(in_size == 0 || in_size > (1u << 24) ||
                                out_size == 0 ||
                                out_size > (1u << 24),
                            "implausible dense shape");
            auto fc =
                std::make_unique<Dense>(lname, in_size, out_size);
            for (std::size_t r = 0; r < out_size; ++r) {
                for (std::size_t c = 0; c < in_size; ++c)
                    fc->weight(r, c) = readPod<double>(is);
                fc->bias(r) = readPod<double>(is);
            }
            net.addLayer(std::move(fc));
            break;
          }
          case LayerKind::square: {
            const auto size = readPod<std::uint64_t>(is);
            FXHENN_FATAL_IF(size == 0 || size > (1u << 24),
                            "implausible activation size");
            net.addLayer(
                std::make_unique<SquareActivation>(lname, size));
            break;
          }
          case LayerKind::avgPool: {
            const auto c = readPod<std::uint64_t>(is);
            const auto k = readPod<std::uint64_t>(is);
            const auto s = readPod<std::uint64_t>(is);
            const auto h = readPod<std::uint64_t>(is);
            const auto w = readPod<std::uint64_t>(is);
            net.addLayer(
                std::make_unique<AvgPool2D>(lname, c, k, s, h, w));
            break;
          }
          default:
            FXHENN_FATAL_IF(true, "unknown layer kind in stream");
        }
    }
    return net;
}

} // namespace fxhenn::nn
