#include "src/nn/layers.hpp"

#include "src/common/assert.hpp"

namespace fxhenn::nn {

Conv2D::Conv2D(std::string name, std::size_t inCh, std::size_t outCh,
               std::size_t kernel, std::size_t stride, std::size_t inH,
               std::size_t inW, std::size_t pad)
    : name_(std::move(name)), inCh_(inCh), outCh_(outCh), kernel_(kernel),
      stride_(stride), inH_(inH), inW_(inW), pad_(pad),
      weights_(outCh * inCh * kernel * kernel, 0.0), bias_(outCh, 0.0)
{
    FXHENN_FATAL_IF(kernel > inH + 2 * pad || kernel > inW + 2 * pad,
                    "kernel larger than padded input");
    FXHENN_FATAL_IF(stride == 0, "stride must be positive");
    FXHENN_FATAL_IF(pad >= kernel,
                    "padding of a full kernel width is degenerate");
}

std::int64_t
Conv2D::inputIndex(std::size_t c, std::size_t ky, std::size_t kx,
                   std::size_t y, std::size_t x) const
{
    // Position in the padded coordinate system, shifted back.
    const std::int64_t py = static_cast<std::int64_t>(y * stride_ + ky) -
                            static_cast<std::int64_t>(pad_);
    const std::int64_t px = static_cast<std::int64_t>(x * stride_ + kx) -
                            static_cast<std::int64_t>(pad_);
    if (py < 0 || px < 0 || py >= static_cast<std::int64_t>(inH_) ||
        px >= static_cast<std::int64_t>(inW_)) {
        return -1;
    }
    return (static_cast<std::int64_t>(c * inH_) + py) *
               static_cast<std::int64_t>(inW_) +
           px;
}

double &
Conv2D::weight(std::size_t f, std::size_t c, std::size_t ky, std::size_t kx)
{
    return weights_[((f * inCh_ + c) * kernel_ + ky) * kernel_ + kx];
}

double
Conv2D::weight(std::size_t f, std::size_t c, std::size_t ky,
               std::size_t kx) const
{
    return weights_[((f * inCh_ + c) * kernel_ + ky) * kernel_ + kx];
}

Tensor
Conv2D::forward(const Tensor &input) const
{
    FXHENN_FATAL_IF(input.channels() != inCh_ || input.height() != inH_ ||
                        input.width() != inW_,
                    "conv input shape mismatch for layer " + name_);
    const std::size_t oh = outHeight();
    const std::size_t ow = outWidth();
    Tensor out(outCh_, oh, ow);
    for (std::size_t f = 0; f < outCh_; ++f) {
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
                double acc = bias_[f];
                for (std::size_t c = 0; c < inCh_; ++c) {
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            const std::int64_t idx =
                                inputIndex(c, ky, kx, y, x);
                            if (idx >= 0) {
                                acc += weight(f, c, ky, kx) *
                                       input.data()[static_cast<
                                           std::size_t>(idx)];
                            }
                        }
                    }
                }
                out.at(f, y, x) = acc;
            }
        }
    }
    return out;
}

std::uint64_t
Conv2D::macs() const
{
    return static_cast<std::uint64_t>(outCh_) * outHeight() * outWidth() *
           inCh_ * kernel_ * kernel_;
}

std::size_t
Conv2D::outputSize() const
{
    return outCh_ * outHeight() * outWidth();
}

void
Conv2D::randomize(Rng &rng, double magnitude)
{
    for (auto &w : weights_)
        w = rng.uniformReal(-magnitude, magnitude);
    for (auto &b : bias_)
        b = rng.uniformReal(-magnitude, magnitude);
}

Dense::Dense(std::string name, std::size_t inSize, std::size_t outSize)
    : name_(std::move(name)), inSize_(inSize), outSize_(outSize),
      weights_(inSize * outSize, 0.0), bias_(outSize, 0.0)
{}

double &
Dense::weight(std::size_t row, std::size_t col)
{
    return weights_[row * inSize_ + col];
}

double
Dense::weight(std::size_t row, std::size_t col) const
{
    return weights_[row * inSize_ + col];
}

Tensor
Dense::forward(const Tensor &input) const
{
    FXHENN_FATAL_IF(input.size() != inSize_,
                    "dense input size mismatch for layer " + name_);
    Tensor out(outSize_);
    for (std::size_t r = 0; r < outSize_; ++r) {
        double acc = bias_[r];
        for (std::size_t c = 0; c < inSize_; ++c)
            acc += weight(r, c) * input[c];
        out[r] = acc;
    }
    return out;
}

std::uint64_t
Dense::macs() const
{
    return static_cast<std::uint64_t>(inSize_) * outSize_;
}

void
Dense::randomize(Rng &rng, double magnitude)
{
    for (auto &w : weights_)
        w = rng.uniformReal(-magnitude, magnitude);
    for (auto &b : bias_)
        b = rng.uniformReal(-magnitude, magnitude);
}

AvgPool2D::AvgPool2D(std::string name, std::size_t channels,
                     std::size_t kernel, std::size_t stride,
                     std::size_t inH, std::size_t inW)
    : name_(std::move(name)), channels_(channels), kernel_(kernel),
      stride_(stride), inH_(inH), inW_(inW)
{
    FXHENN_FATAL_IF(kernel == 0 || kernel > inH || kernel > inW,
                    "invalid pooling kernel");
    FXHENN_FATAL_IF(stride == 0, "stride must be positive");
}

Tensor
AvgPool2D::forward(const Tensor &input) const
{
    // Accept either a shaped CHW tensor or a flat vector of the right
    // size (activations arrive flat after a square layer).
    Tensor shaped;
    const Tensor *in = &input;
    if (input.channels() != channels_ || input.height() != inH_ ||
        input.width() != inW_) {
        FXHENN_FATAL_IF(input.size() != channels_ * inH_ * inW_,
                        "pool input shape mismatch for layer " + name_);
        shaped = Tensor(channels_, inH_, inW_);
        shaped.data() = input.data();
        in = &shaped;
    }
    const Tensor &input_shaped = *in;
    const std::size_t oh = outHeight();
    const std::size_t ow = outWidth();
    const double inv = 1.0 / static_cast<double>(kernel_ * kernel_);
    Tensor out(channels_, oh, ow);
    for (std::size_t c = 0; c < channels_; ++c) {
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
                double acc = 0.0;
                for (std::size_t ky = 0; ky < kernel_; ++ky) {
                    for (std::size_t kx = 0; kx < kernel_; ++kx) {
                        acc += input_shaped.at(c, y * stride_ + ky,
                                               x * stride_ + kx);
                    }
                }
                out.at(c, y, x) = acc * inv;
            }
        }
    }
    return out;
}

std::uint64_t
AvgPool2D::macs() const
{
    return static_cast<std::uint64_t>(channels_) * outHeight() *
           outWidth() * kernel_ * kernel_;
}

std::size_t
AvgPool2D::outputSize() const
{
    return channels_ * outHeight() * outWidth();
}

SquareActivation::SquareActivation(std::string name, std::size_t size)
    : name_(std::move(name)), size_(size)
{}

Tensor
SquareActivation::forward(const Tensor &input) const
{
    FXHENN_FATAL_IF(input.size() != size_,
                    "activation size mismatch for layer " + name_);
    Tensor out = input;
    for (auto &v : out.data())
        v = v * v;
    return out;
}

} // namespace fxhenn::nn
