/**
 * @file
 * Plaintext CNN layers for the HE-CNN substrate.
 *
 * Only the layer types the paper's HE-CNN benchmarks need: convolution,
 * fully connected (dense), and the square activation that replaces ReLU
 * under FHE (Sec. II-B, the CryptoNets polynomial-approximation trick).
 * Every layer reports its multiply-accumulate count, feeding the
 * "MACs" column of Table IV.
 */
#ifndef FXHENN_NN_LAYERS_HPP
#define FXHENN_NN_LAYERS_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/nn/tensor.hpp"

namespace fxhenn::nn {

/** Kind tag used by the HE-CNN compiler to pick a packing strategy. */
enum class LayerKind { conv2d, dense, square, flatten, avgPool };

/** Abstract inference layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Run plaintext inference. */
    virtual Tensor forward(const Tensor &input) const = 0;

    /** Multiply-accumulate count of one forward pass. */
    virtual std::uint64_t macs() const = 0;

    /** Number of output elements. */
    virtual std::size_t outputSize() const = 0;

    virtual LayerKind kind() const = 0;
    virtual const std::string &name() const = 0;
};

/** 2-d convolution (no padding), CHW tensors. */
class Conv2D : public Layer
{
  public:
    /**
     * @param name     layer name (e.g. "Cnv1")
     * @param inCh     input channels
     * @param outCh    number of filters
     * @param kernel   square kernel size
     * @param stride   stride in both dimensions
     * @param inH,inW  input spatial size (fixed per network)
     * @param pad      symmetric zero padding on every border
     */
    Conv2D(std::string name, std::size_t inCh, std::size_t outCh,
           std::size_t kernel, std::size_t stride, std::size_t inH,
           std::size_t inW, std::size_t pad = 0);

    Tensor forward(const Tensor &input) const override;
    std::uint64_t macs() const override;
    std::size_t outputSize() const override;
    LayerKind kind() const override { return LayerKind::conv2d; }
    const std::string &name() const override { return name_; }

    std::size_t inChannels() const { return inCh_; }
    std::size_t outChannels() const { return outCh_; }
    std::size_t kernel() const { return kernel_; }
    std::size_t stride() const { return stride_; }
    std::size_t pad() const { return pad_; }
    std::size_t
    outHeight() const
    {
        return (inH_ + 2 * pad_ - kernel_) / stride_ + 1;
    }
    std::size_t
    outWidth() const
    {
        return (inW_ + 2 * pad_ - kernel_) / stride_ + 1;
    }
    std::size_t inHeight() const { return inH_; }
    std::size_t inWidth() const { return inW_; }

    /**
     * Flattened input-element index read by tap (c, ky, kx) at output
     * position (y, x), or -1 when the tap lands in the zero padding.
     * Shared by plaintext forward(), the first-layer packing gather
     * and the im2col lowering, so all three agree by construction.
     */
    std::int64_t inputIndex(std::size_t c, std::size_t ky,
                            std::size_t kx, std::size_t y,
                            std::size_t x) const;

    /** weight(f, c, ky, kx) */
    double &weight(std::size_t f, std::size_t c, std::size_t ky,
                   std::size_t kx);
    double weight(std::size_t f, std::size_t c, std::size_t ky,
                  std::size_t kx) const;
    double &bias(std::size_t f) { return bias_[f]; }
    double bias(std::size_t f) const { return bias_[f]; }

    /** Fill weights/bias with small random values. */
    void randomize(Rng &rng, double magnitude);

  private:
    std::string name_;
    std::size_t inCh_, outCh_, kernel_, stride_, inH_, inW_, pad_;
    std::vector<double> weights_; ///< [f][c][ky][kx]
    std::vector<double> bias_;
};

/** Fully connected layer on flattened inputs. */
class Dense : public Layer
{
  public:
    Dense(std::string name, std::size_t inSize, std::size_t outSize);

    Tensor forward(const Tensor &input) const override;
    std::uint64_t macs() const override;
    std::size_t outputSize() const override { return outSize_; }
    LayerKind kind() const override { return LayerKind::dense; }
    const std::string &name() const override { return name_; }

    std::size_t inSize() const { return inSize_; }

    double &weight(std::size_t row, std::size_t col);
    double weight(std::size_t row, std::size_t col) const;
    double &bias(std::size_t row) { return bias_[row]; }
    double bias(std::size_t row) const { return bias_[row]; }

    void randomize(Rng &rng, double magnitude);

  private:
    std::string name_;
    std::size_t inSize_, outSize_;
    std::vector<double> weights_; ///< [row][col]
    std::vector<double> bias_;
};

/**
 * Average pooling (the CryptoNets "scaled mean pool"): a linear,
 * FHE-friendly downsampling layer. Channels are preserved.
 */
class AvgPool2D : public Layer
{
  public:
    AvgPool2D(std::string name, std::size_t channels, std::size_t kernel,
              std::size_t stride, std::size_t inH, std::size_t inW);

    Tensor forward(const Tensor &input) const override;
    std::uint64_t macs() const override;
    std::size_t outputSize() const override;
    LayerKind kind() const override { return LayerKind::avgPool; }
    const std::string &name() const override { return name_; }

    std::size_t channels() const { return channels_; }
    std::size_t kernel() const { return kernel_; }
    std::size_t stride() const { return stride_; }
    std::size_t outHeight() const { return (inH_ - kernel_) / stride_ + 1; }
    std::size_t outWidth() const { return (inW_ - kernel_) / stride_ + 1; }
    std::size_t inHeight() const { return inH_; }
    std::size_t inWidth() const { return inW_; }

  private:
    std::string name_;
    std::size_t channels_, kernel_, stride_, inH_, inW_;
};

/** Square activation x -> x^2 (the FHE-friendly ReLU substitute). */
class SquareActivation : public Layer
{
  public:
    SquareActivation(std::string name, std::size_t size);

    Tensor forward(const Tensor &input) const override;
    std::uint64_t macs() const override { return size_; }
    std::size_t outputSize() const override { return size_; }
    LayerKind kind() const override { return LayerKind::square; }
    const std::string &name() const override { return name_; }

  private:
    std::string name_;
    std::size_t size_;
};

} // namespace fxhenn::nn

#endif // FXHENN_NN_LAYERS_HPP
