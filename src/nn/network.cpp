#include "src/nn/network.hpp"

#include "src/common/assert.hpp"

namespace fxhenn::nn {

Network::Network(std::string name, std::size_t inCh, std::size_t inH,
                 std::size_t inW)
    : name_(std::move(name)), inCh_(inCh), inH_(inH), inW_(inW)
{}

void
Network::addLayer(std::unique_ptr<Layer> layer)
{
    FXHENN_FATAL_IF(layer == nullptr, "null layer");
    layers_.push_back(std::move(layer));
}

Tensor
Network::forward(const Tensor &input) const
{
    Tensor current = input;
    for (const auto &layer : layers_) {
        if (layer->kind() == LayerKind::dense ||
            layer->kind() == LayerKind::square) {
            current = layer->forward(current.flattened());
        } else {
            current = layer->forward(current);
        }
    }
    return current;
}

std::vector<Tensor>
Network::forwardTrace(const Tensor &input) const
{
    std::vector<Tensor> trace;
    Tensor current = input;
    for (const auto &layer : layers_) {
        if (layer->kind() == LayerKind::dense ||
            layer->kind() == LayerKind::square) {
            current = layer->forward(current.flattened());
        } else {
            current = layer->forward(current);
        }
        trace.push_back(current);
    }
    return trace;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer->macs();
    return total;
}

} // namespace fxhenn::nn
