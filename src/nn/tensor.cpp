#include "src/nn/tensor.hpp"

namespace fxhenn::nn {

Tensor::Tensor(std::size_t channels, std::size_t height, std::size_t width)
    : channels_(channels), height_(height), width_(width),
      data_(channels * height * width, 0.0)
{}

Tensor::Tensor(std::size_t size)
    : channels_(1), height_(1), width_(size), data_(size, 0.0)
{}

Tensor
Tensor::flattened() const
{
    Tensor out(data_.size());
    out.data_ = data_;
    return out;
}

} // namespace fxhenn::nn
