/**
 * @file
 * The benchmark networks of the paper (Table VI) plus a test-scale net.
 *
 * FxHENN-MNIST and FxHENN-CIFAR10 follow the LoLa [5] architectures:
 * five layers (Cnv/Act/Fc/Act/Fc resp. Cnv/Act/Cnv/Act/Fc) with square
 * activations and multiplication depth 5.
 *
 * Substitution note (DESIGN.md Sec. 2): the original trained weights and
 * datasets are not redistributable, so the zoo fills the same topologies
 * with seeded synthetic weights whose magnitudes keep every intermediate
 * value inside the CKKS level-1 headroom; functional correctness is
 * measured as encrypted-vs-plaintext output agreement.
 */
#ifndef FXHENN_NN_MODEL_ZOO_HPP
#define FXHENN_NN_MODEL_ZOO_HPP

#include "src/nn/network.hpp"

namespace fxhenn::nn {

/**
 * FxHENN-MNIST: Cnv1 (5 filters 5x5 stride 2 on a 29x29 padded image,
 * 845 outputs), Act1, Fc1 (845 -> 100), Act2, Fc2 (100 -> 10).
 */
Network buildMnistNetwork(std::uint64_t seed = 1);

/**
 * FxHENN-CIFAR10: Cnv1 (83 filters 8x8x3 stride 2, 13x13 maps), Act1,
 * Cnv2 (112 filters 10x10x83 stride 1, 4x4 maps), Act2, Fc2 (1792->10).
 */
Network buildCifar10Network(std::uint64_t seed = 2);

/**
 * Tiny 5-layer network with the same layer pattern as FxHENN-MNIST for
 * fast functional tests (input 8x8, 2 conv filters, 72 -> 8 -> 3).
 */
Network buildTestNetwork(std::uint64_t seed = 3);

/** A deterministic synthetic input image for @p net in [0, range). */
Tensor syntheticInput(const Network &net, std::uint64_t seed,
                      double range = 0.25);

} // namespace fxhenn::nn

#endif // FXHENN_NN_MODEL_ZOO_HPP
