/**
 * @file
 * Minimal dense tensor for the plaintext CNN substrate.
 *
 * The networks in this repository are the inference side only; tensors
 * are CHW-ordered doubles, which is all the HE-CNN compiler needs to
 * derive packings and ground-truth outputs.
 */
#ifndef FXHENN_NN_TENSOR_HPP
#define FXHENN_NN_TENSOR_HPP

#include <cstddef>
#include <vector>

namespace fxhenn::nn {

/** A CHW-ordered dense tensor of doubles. */
class Tensor
{
  public:
    Tensor() = default;

    /** 3-d constructor (channels, height, width), zero-filled. */
    Tensor(std::size_t channels, std::size_t height, std::size_t width);

    /** 1-d constructor (flat vector of @p size), zero-filled. */
    explicit Tensor(std::size_t size);

    std::size_t channels() const { return channels_; }
    std::size_t height() const { return height_; }
    std::size_t width() const { return width_; }
    std::size_t size() const { return data_.size(); }

    double &
    at(std::size_t c, std::size_t y, std::size_t x)
    {
        return data_[(c * height_ + y) * width_ + x];
    }
    double
    at(std::size_t c, std::size_t y, std::size_t x) const
    {
        return data_[(c * height_ + y) * width_ + x];
    }

    double &operator[](std::size_t i) { return data_[i]; }
    double operator[](std::size_t i) const { return data_[i]; }

    std::vector<double> &data() { return data_; }
    const std::vector<double> &data() const { return data_; }

    /** Reinterpret as a flat vector (keeps the same data). */
    Tensor flattened() const;

  private:
    std::size_t channels_ = 0;
    std::size_t height_ = 0;
    std::size_t width_ = 0;
    std::vector<double> data_;
};

} // namespace fxhenn::nn

#endif // FXHENN_NN_TENSOR_HPP
