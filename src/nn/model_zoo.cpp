#include "src/nn/model_zoo.hpp"

#include <memory>

#include "src/common/rng.hpp"

namespace fxhenn::nn {

Network
buildMnistNetwork(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("FxHENN-MNIST", 1, 29, 29);

    auto cnv1 = std::make_unique<Conv2D>("Cnv1", 1, 5, 5, 2, 29, 29);
    cnv1->randomize(rng, 0.10);
    const std::size_t cnv1_out = cnv1->outputSize(); // 845
    net.addLayer(std::move(cnv1));

    net.addLayer(std::make_unique<SquareActivation>("Act1", cnv1_out));

    auto fc1 = std::make_unique<Dense>("Fc1", cnv1_out, 100);
    fc1->randomize(rng, 0.02);
    net.addLayer(std::move(fc1));

    net.addLayer(std::make_unique<SquareActivation>("Act2", 100));

    auto fc2 = std::make_unique<Dense>("Fc2", 100, 10);
    fc2->randomize(rng, 0.03);
    net.addLayer(std::move(fc2));

    return net;
}

Network
buildCifar10Network(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("FxHENN-CIFAR10", 3, 32, 32);

    auto cnv1 = std::make_unique<Conv2D>("Cnv1", 3, 83, 8, 2, 32, 32);
    cnv1->randomize(rng, 0.03);
    net.addLayer(std::move(cnv1)); // 83 x 13 x 13 = 14027

    net.addLayer(std::make_unique<SquareActivation>("Act1", 83 * 13 * 13));

    auto cnv2 =
        std::make_unique<Conv2D>("Cnv2", 83, 112, 10, 1, 13, 13);
    cnv2->randomize(rng, 0.004);
    const std::size_t cnv2_out = cnv2->outputSize(); // 112 x 4 x 4 = 1792
    net.addLayer(std::move(cnv2));

    net.addLayer(std::make_unique<SquareActivation>("Act2", cnv2_out));

    auto fc2 = std::make_unique<Dense>("Fc2", cnv2_out, 10);
    fc2->randomize(rng, 0.01);
    net.addLayer(std::move(fc2));

    return net;
}

Network
buildTestNetwork(std::uint64_t seed)
{
    Rng rng(seed);
    Network net("Test-5L", 1, 8, 8);

    auto cnv1 = std::make_unique<Conv2D>("Cnv1", 1, 2, 3, 1, 8, 8);
    cnv1->randomize(rng, 0.15);
    const std::size_t cnv1_out = cnv1->outputSize(); // 2 x 6 x 6 = 72
    net.addLayer(std::move(cnv1));

    net.addLayer(std::make_unique<SquareActivation>("Act1", cnv1_out));

    auto fc1 = std::make_unique<Dense>("Fc1", cnv1_out, 8);
    fc1->randomize(rng, 0.08);
    net.addLayer(std::move(fc1));

    net.addLayer(std::make_unique<SquareActivation>("Act2", 8));

    auto fc2 = std::make_unique<Dense>("Fc2", 8, 3);
    fc2->randomize(rng, 0.15);
    net.addLayer(std::move(fc2));

    return net;
}

Tensor
syntheticInput(const Network &net, std::uint64_t seed, double range)
{
    Rng rng(seed);
    Tensor input(net.inChannels(), net.inHeight(), net.inWidth());
    for (auto &v : input.data())
        v = rng.uniformReal(0.0, range);
    return input;
}

} // namespace fxhenn::nn
