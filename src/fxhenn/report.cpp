#include "src/fxhenn/report.hpp"

#include <iomanip>
#include <sstream>

#include "src/hecnn/stats.hpp"

namespace fxhenn {

namespace {

std::string
fixed(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

} // namespace

std::string
renderDesignReport(const DesignSolution &solution,
                   const fpga::DeviceSpec &device)
{
    const auto &perf = solution.design.perf;
    std::ostringstream md;

    md << "# FxHENN design report: " << solution.modelName << " on "
       << solution.deviceName << "\n\n"
       << "- CKKS parameters: " << solution.params.describe() << "\n"
       << "- Predicted end-to-end latency: **"
       << fixed(solution.latencySeconds(), 4) << " s**\n"
       << "- Energy per inference (at " << device.tdpWatts
       << " W TDP): " << fixed(solution.energyJoules(device), 3)
       << " J\n"
       << "- Design space: " << solution.dsePointsEvaluated
       << " feasible points evaluated, " << solution.dsePointsPruned
       << " pruned by resource constraints\n\n";

    md << "## Resource summary\n\n"
       << "| Resource | Used | Capacity | Utilization |\n"
       << "|---|---|---|---|\n"
       << "| DSP | " << perf.dspPhysical << " | " << device.dspSlices
       << " | " << fixed(100.0 * solution.design.dspFraction, 1)
       << " % |\n"
       << "| BRAM36K (eq.) | " << fixed(perf.bramPhysical, 0) << " | "
       << fixed(device.effectiveBramBlocks(solution.params.n / 4), 0)
       << " | " << fixed(100.0 * solution.design.bramFraction, 1)
       << " % |\n"
       << "| LUT (est.) | " << perf.lutPhysical << " | " << device.luts
       << " | "
       << fixed(device.luts
                    ? 100.0 * perf.lutPhysical / device.luts
                    : 0.0,
                1)
       << " % |\n\n"
       << "Aggregated (summed per-layer) usage: DSP "
       << perf.dspAggregate << " ("
       << fixed(100.0 * perf.dspAggregate / device.dspSlices, 1)
       << " %), BRAM " << fixed(perf.bramAggregate, 0)
       << " blocks — values above 100 % measure cross-layer reuse.\n\n";

    md << "## HE operation modules\n\n"
       << "| Module | nc_NTT | P_intra | P_inter | DSP | LUT (est.) "
          "|\n"
       << "|---|---|---|---|---|---|\n";
    for (std::size_t m = 0; m < fpga::kOpModuleCount; ++m) {
        const auto op = static_cast<fpga::HeOpModule>(m);
        const auto &a = solution.design.alloc[op];
        md << "| " << fpga::moduleName(op) << " | " << a.ncNtt << " | "
           << a.pIntra << " | " << a.pInter << " | "
           << fpga::dspUsage(op, a) << " | " << fpga::lutUsage(op, a)
           << " |\n";
    }

    md << "\n## Per-layer breakdown\n\n"
       << "| Layer | Class | Latency s | Share | Bottleneck | DSP used "
          "| BRAM blocks |\n"
       << "|---|---|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < perf.layers.size(); ++i) {
        const auto &lp = perf.layers[i];
        const auto &layer = solution.plan.layers[i];
        md << "| " << lp.name << " | "
           << (layer.cls == hecnn::LayerClass::ks ? "KS" : "NKS")
           << " | " << fixed(device.seconds(lp.cycles), 4) << " | "
           << fixed(100.0 * lp.cycles / perf.totalCycles, 1) << " % | "
           << fpga::moduleName(lp.bottleneck) << " | " << lp.dsp
           << " | " << fixed(lp.bramBlocks, 0) << " |\n";
    }

    const auto counts = solution.plan.totalCounts();
    md << "\n## Workload\n\n"
       << "- HE operations: " << counts.total() << " (KeySwitch "
       << counts.keySwitch() << ", PCmult " << counts.pcMult
       << ", Rescale " << counts.rescale << ")\n"
       << "- Input ciphertexts: " << solution.plan.inputCiphertexts()
       << ", multiplicative depth: " << solution.plan.depth() << " of "
       << solution.params.levels << " levels\n";
    return md.str();
}

std::string
renderLivenessDelta(const DesignSolution &baseline,
                    const DesignSolution &informed,
                    const fpga::DeviceSpec &device)
{
    (void)device;
    const double base_lat = baseline.latencySeconds();
    const double live_lat = informed.latencySeconds();
    const double base_bram = baseline.design.perf.bramPhysical;
    const double live_bram = informed.design.perf.bramPhysical;
    std::ostringstream md;
    md << "## Liveness-informed buffer bound (Eq. 8-9 tightened)\n\n"
       << "| Metric | plain bound | liveness bound | delta |\n"
       << "|---|---|---|---|\n"
       << "| Latency (s) | " << fixed(base_lat, 4) << " | "
       << fixed(live_lat, 4) << " | "
       << fixed(100.0 * (live_lat - base_lat) /
                    (base_lat > 0.0 ? base_lat : 1.0),
                2)
       << " % |\n"
       << "| BRAM blocks (physical) | " << fixed(base_bram, 0)
       << " | " << fixed(live_bram, 0) << " | "
       << fixed(live_bram - base_bram, 0) << " |\n"
       << "| Feasible DSE points | " << baseline.dsePointsEvaluated
       << " | " << informed.dsePointsEvaluated << " | "
       << (static_cast<long long>(informed.dsePointsEvaluated) -
           static_cast<long long>(baseline.dsePointsEvaluated))
       << " |\n\n"
       << "The liveness bound caps per-layer buffer replication by "
          "the peak number of simultaneously live ciphertext "
          "registers, so BRAM demand never grows and the feasible "
          "set only expands.\n";
    return md.str();
}

} // namespace fxhenn
