#include "src/fxhenn/framework.hpp"

#include "src/common/assert.hpp"
#include "src/hecnn/compiler.hpp"

namespace fxhenn {

DesignSolution
Fxhenn::generate(const nn::Network &net, const ckks::CkksParams &params,
                 const fpga::DeviceSpec &device, const Options &options)
{
    hecnn::CompileOptions copts;
    copts.elideValues = options.elideValues;
    auto plan = hecnn::compile(net, params, copts);

    auto result = dse::explore(plan, device, options.explore);
    FXHENN_FATAL_IF(!result.best.has_value(),
                    "no feasible design point for " + net.name() +
                        " on " + device.name);

    DesignSolution solution;
    solution.modelName = net.name();
    solution.deviceName = device.name;
    solution.params = params;
    solution.plan = std::move(plan);
    solution.design = *result.best;
    solution.dsePointsEvaluated = result.evaluated;
    solution.dsePointsPruned = result.pruned;
    solution.certifiedLevels = result.certifiedLevels;
    solution.minFeasibleLevels = result.minFeasibleLevels;
    solution.levelChoicesPruned = result.levelChoicesPruned;
    solution.certifiedMinHeadroomBits =
        result.certifiedMinHeadroomBits;
    solution.simReplay = std::move(result.simReplay);
    solution.simReplayMaxErrorFrac = result.simReplayMaxErrorFrac;
    return solution;
}

dse::BaselineResult
Fxhenn::generateBaseline(const nn::Network &net,
                         const ckks::CkksParams &params,
                         const fpga::DeviceSpec &device,
                         const Options &options)
{
    hecnn::CompileOptions copts;
    copts.elideValues = options.elideValues;
    const auto plan = hecnn::compile(net, params, copts);
    return dse::allocateBaseline(plan, device);
}

} // namespace fxhenn
