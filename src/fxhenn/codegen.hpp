/**
 * @file
 * HLS directive generation.
 *
 * The FxHENN framework's artifact is "the structure information and HLS
 * pragmas and directives for the parameterized HE operation modules"
 * (Sec. IV), which the commercial Vivado toolchain then synthesizes.
 * This module renders exactly that artifact from a DesignSolution:
 *   - a Tcl directives file (set_directive_* commands), and
 *   - a C++ configuration header fixing the template parameters of the
 *     parameterized HE modules.
 * Synthesis itself requires the vendor toolchain and a board and is out
 * of scope (DESIGN.md, substitution table).
 */
#ifndef FXHENN_FXHENN_CODEGEN_HPP
#define FXHENN_FXHENN_CODEGEN_HPP

#include <string>

#include "src/fxhenn/framework.hpp"

namespace fxhenn {

/** Render the Vivado HLS Tcl directives for @p solution. */
std::string renderHlsDirectives(const DesignSolution &solution);

/** Render the C++ configuration header for @p solution. */
std::string renderConfigHeader(const DesignSolution &solution);

/** Write both artifacts into @p directory; returns the two paths. */
std::pair<std::string, std::string> writeAccelerator(
    const DesignSolution &solution, const std::string &directory);

} // namespace fxhenn

#endif // FXHENN_FXHENN_CODEGEN_HPP
