/**
 * @file
 * Markdown design-report generation.
 *
 * Renders a DesignSolution as a self-contained markdown document: the
 * network and parameter summary, per-layer latency/resource breakdown,
 * the chosen module parallelism, and the DSE statistics. Used by the
 * CLI (`fxhenn design --report`) and handy as a synthesis handoff
 * document alongside the HLS directives.
 */
#ifndef FXHENN_FXHENN_REPORT_HPP
#define FXHENN_FXHENN_REPORT_HPP

#include <string>

#include "src/fxhenn/framework.hpp"

namespace fxhenn {

/** Render the full markdown report for @p solution on @p device. */
std::string renderDesignReport(const DesignSolution &solution,
                               const fpga::DeviceSpec &device);

/**
 * Render the before/after comparison of a DSE run without
 * (@p baseline) and with (@p informed) liveness-informed buffer
 * bounds (`fxhenn design --liveness 1`). The liveness bound never
 * shrinks the feasible set, so the delta is improvement-or-equal by
 * construction; the report prints it either way.
 */
std::string renderLivenessDelta(const DesignSolution &baseline,
                                const DesignSolution &informed,
                                const fpga::DeviceSpec &device);

} // namespace fxhenn

#endif // FXHENN_FXHENN_REPORT_HPP
