/**
 * @file
 * The FxHENN framework facade (Fig. 1's design flow).
 *
 * Input:  an HE-CNN model (a plaintext CNN plus CKKS parameters) and a
 *         target FPGA specification.
 * Output: an accelerator design solution — the parallelism and buffer
 *         provisioning of every HE operation module (found by DSE), the
 *         predicted per-layer and end-to-end latency, and the HLS
 *         directives the Vivado toolchain would consume.
 */
#ifndef FXHENN_FXHENN_FRAMEWORK_HPP
#define FXHENN_FXHENN_FRAMEWORK_HPP

#include <string>

#include "src/ckks/params.hpp"
#include "src/dse/baseline.hpp"
#include "src/dse/explorer.hpp"
#include "src/fpga/device.hpp"
#include "src/nn/network.hpp"

namespace fxhenn {

/** A complete accelerator design solution for one (model, device). */
struct DesignSolution
{
    std::string modelName;
    std::string deviceName;
    ckks::CkksParams params;
    hecnn::HeNetworkPlan plan;   ///< compiled HE-CNN (stats-only ok)
    dse::DesignPoint design;     ///< winning DSE point
    std::size_t dsePointsEvaluated = 0;
    std::size_t dsePointsPruned = 0;

    // Copied from ExploreResult when ExploreOptions::certifyNoise ran.
    std::size_t certifiedLevels = 0;
    std::size_t minFeasibleLevels = 0;
    std::size_t levelChoicesPruned = 0;
    double certifiedMinHeadroomBits = 0.0;

    // Copied from ExploreResult when ExploreOptions::replaySim ran:
    // the winner's closed-form prediction checked against the
    // event-driven pipeline schedule (the fpga-sim backend's charge).
    std::vector<dse::ReplayRow> simReplay;
    double simReplayMaxErrorFrac = 0.0;

    /** End-to-end inference latency predicted by the model (seconds). */
    double latencySeconds() const { return design.latencySeconds; }

    /** Energy per inference at the device TDP (joules). */
    double energyJoules(const fpga::DeviceSpec &device) const
    {
        return latencySeconds() * device.tdpWatts;
    }
};

/** Options for the framework entry points. */
struct FxhennOptions
{
    /** Compile stats-only (required for CIFAR10-scale weights). */
    bool elideValues = false;
    /** Forwarded to the explorer (budget sweeps etc.). */
    dse::ExploreOptions explore;
};

/** Framework entry points. */
class Fxhenn
{
  public:
    using Options = FxhennOptions;

    /**
     * Full flow: compile @p net under @p params, run DSE on @p device,
     * return the optimized design solution.
     */
    static DesignSolution generate(const nn::Network &net,
                                   const ckks::CkksParams &params,
                                   const fpga::DeviceSpec &device,
                                   const Options &options = {});

    /** The Table IX baseline on the same inputs. */
    static dse::BaselineResult generateBaseline(
        const nn::Network &net, const ckks::CkksParams &params,
        const fpga::DeviceSpec &device, const Options &options = {});
};

} // namespace fxhenn

#endif // FXHENN_FXHENN_FRAMEWORK_HPP
