#include "src/fxhenn/codegen.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/assert.hpp"

namespace fxhenn {

namespace {

using fpga::HeOpModule;
using fpga::kOpModuleCount;

/** Lower-case identifier for a module class. */
std::string
moduleIdent(HeOpModule op)
{
    std::string s = fpga::moduleName(op);
    for (auto &c : s)
        c = static_cast<char>(std::tolower(c));
    return s;
}

} // namespace

std::string
renderHlsDirectives(const DesignSolution &solution)
{
    std::ostringstream tcl;
    tcl << "# FxHENN generated HLS directives\n"
        << "# model:  " << solution.modelName << "\n"
        << "# device: " << solution.deviceName << "\n"
        << "# predicted latency: " << solution.latencySeconds()
        << " s\n\n";

    for (std::size_t i = 0; i < kOpModuleCount; ++i) {
        const auto op = static_cast<HeOpModule>(i);
        const auto &a = solution.design.alloc[op];
        const std::string fn = "he_" + moduleIdent(op);
        tcl << "# " << fpga::moduleLabel(op) << " "
            << fpga::moduleName(op) << ": nc_ntt=" << a.ncNtt
            << " intra=" << a.pIntra << " inter=" << a.pInter << "\n";
        tcl << "set_directive_array_partition -type cyclic -factor "
            << 2 * a.ncNtt << " \"" << fn << "\" poly_buf\n";
        tcl << "set_directive_unroll -factor " << a.pIntra << " \""
            << fn << "/limb_loop\"\n";
        if (a.pInter > 1) {
            tcl << "set_directive_allocation -limit " << a.pInter
                << " -type function \"top/" << fn << "\"\n";
        }
        tcl << "set_directive_pipeline \"" << fn << "/stage_loop\"\n\n";
    }

    tcl << "# inter-layer buffer reuse: bind all layer I/O buffers to\n"
        << "# the shared BRAM pool sized by the DSE\n"
        << "set_directive_bind_storage -type ram_t2p -impl bram"
        << " \"top\" shared_pool\n";
    return tcl.str();
}

std::string
renderConfigHeader(const DesignSolution &solution)
{
    std::ostringstream h;
    h << "// FxHENN generated accelerator configuration\n"
      << "// model:  " << solution.modelName << "\n"
      << "// device: " << solution.deviceName << "\n"
      << "#pragma once\n\n"
      << "namespace fxhenn_accel {\n\n"
      << "inline constexpr unsigned kPolyDegree = " << solution.params.n
      << ";\n"
      << "inline constexpr unsigned kLevels = " << solution.params.levels
      << ";\n"
      << "inline constexpr unsigned kPrimeBits = "
      << solution.params.qBits << ";\n\n";

    for (std::size_t i = 0; i < kOpModuleCount; ++i) {
        const auto op = static_cast<HeOpModule>(i);
        const auto &a = solution.design.alloc[op];
        std::string ident = moduleIdent(op);
        ident[0] = static_cast<char>(std::toupper(ident[0]));
        h << "inline constexpr unsigned kNcNtt" << ident << " = "
          << a.ncNtt << ";\n"
          << "inline constexpr unsigned kIntra" << ident << " = "
          << a.pIntra << ";\n"
          << "inline constexpr unsigned kInter" << ident << " = "
          << a.pInter << ";\n";
    }
    h << "\n} // namespace fxhenn_accel\n";
    return h.str();
}

std::pair<std::string, std::string>
writeAccelerator(const DesignSolution &solution,
                 const std::string &directory)
{
    namespace fs = std::filesystem;
    fs::create_directories(directory);
    const std::string tcl_path = directory + "/directives.tcl";
    const std::string hdr_path = directory + "/accel_config.hpp";

    std::ofstream tcl(tcl_path);
    FXHENN_FATAL_IF(!tcl, "cannot write " + tcl_path);
    tcl << renderHlsDirectives(solution);

    std::ofstream hdr(hdr_path);
    FXHENN_FATAL_IF(!hdr, "cannot write " + hdr_path);
    hdr << renderConfigHeader(solution);

    return {tcl_path, hdr_path};
}

} // namespace fxhenn
