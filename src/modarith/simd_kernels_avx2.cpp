/**
 * @file
 * AVX2 modular-arithmetic kernels: 4 lanes of 64-bit residues per op.
 *
 * Compiled with -mavx2 for THIS translation unit only (see
 * src/modarith/CMakeLists.txt); nothing here may be called unless
 * simd::hostSupports(Level::avx2) — the dispatcher guarantees that.
 *
 * Bitwise-identity discipline: AVX2 has no 64x64->128 multiply, so
 * every wide product is assembled from _mm256_mul_epu32 32-bit partial
 * products with explicit carry handling — exact integer arithmetic,
 * never floating-point tricks — and every conditional subtract mirrors
 * the scalar formulation. All intermediate values compared with
 * _mm256_cmpgt_epi64 are < 2^62 (operands < 3q, q < 2^60), so the
 * signed comparison is safe; genuinely unsigned comparisons (carry
 * detection) go through the sign-flip trick in cmpGtU64(). The
 * differential suite (tests/modarith/test_simd_differential.cpp,
 * tests/property/test_simd_properties.cpp) holds these kernels to
 * byte equality with simd_kernels_scalar.cpp on every preset prime,
 * boundary operand and ragged tail.
 */
#include <immintrin.h>

#include "src/modarith/ntt.hpp"
#include "src/modarith/simd_dispatch.hpp"

namespace fxhenn::simd {
namespace {

inline __m256i
loadU64(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeU64(std::uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

/** Low 64 bits of a[k] * b[k] (wrapping), per lane. */
inline __m256i
mulLo64(__m256i a, __m256i b)
{
    const __m256i aHi = _mm256_srli_epi64(a, 32);
    const __m256i bHi = _mm256_srli_epi64(b, 32);
    const __m256i ll = _mm256_mul_epu32(a, b);
    const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(aHi, b),
                                           _mm256_mul_epu32(a, bHi));
    return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

/** Full 128-bit product per lane: lo and hi 64-bit halves, exact. */
inline void
mul64(__m256i a, __m256i b, __m256i &lo, __m256i &hi)
{
    const __m256i loMask = _mm256_set1_epi64x(0xffffffffll);
    const __m256i aHi = _mm256_srli_epi64(a, 32);
    const __m256i bHi = _mm256_srli_epi64(b, 32);
    const __m256i ll = _mm256_mul_epu32(a, b);     // a0*b0
    const __m256i hl = _mm256_mul_epu32(aHi, b);   // a1*b0
    const __m256i lh = _mm256_mul_epu32(a, bHi);   // a0*b1
    const __m256i hh = _mm256_mul_epu32(aHi, bHi); // a1*b1
    // mid = (a0*b0 >> 32) + lo32(a1*b0) + lo32(a0*b1) < 3 * 2^32
    const __m256i mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(hl, loMask)),
        _mm256_and_si256(lh, loMask));
    hi = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(mid, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                         _mm256_srli_epi64(lh, 32)));
    lo = _mm256_add_epi64(ll,
                          _mm256_slli_epi64(_mm256_add_epi64(hl, lh), 32));
}

/** High 64 bits of a[k] * b[k], per lane. */
inline __m256i
mulHi64(__m256i a, __m256i b)
{
    __m256i lo, hi;
    mul64(a, b, lo, hi);
    return hi;
}

/** a > b as unsigned 64-bit, per lane (sign-flip then signed cmp). */
inline __m256i
cmpGtU64(__m256i a, __m256i b)
{
    const __m256i sign = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                              _mm256_xor_si256(b, sign));
}

/** r - q where r >= q, else r; requires r < 2^62 (signed-safe). */
inline __m256i
csub(__m256i r, __m256i q)
{
    const __m256i lt = _mm256_cmpgt_epi64(q, r); // all-ones when r < q
    return _mm256_sub_epi64(r, _mm256_andnot_si256(lt, q));
}

/** Shoup butterfly multiply: (x * w) mod q via precomputed ws. */
inline __m256i
shoupMulVec(__m256i x, __m256i w, __m256i ws, __m256i q)
{
    const __m256i hi = mulHi64(x, ws);
    const __m256i r =
        _mm256_sub_epi64(mulLo64(x, w), mulLo64(hi, q));
    return csub(r, q);
}

/** Broadcast Barrett constants of one Modulus for the vector loops. */
struct BarrettVec
{
    explicit BarrettVec(const Modulus &q)
        : q_(_mm256_set1_epi64x(static_cast<long long>(q.value()))),
          mu_(_mm256_set1_epi64x(static_cast<long long>(q.barrettMu()))),
          s1_(_mm_cvtsi32_si128(static_cast<int>(q.bits() - 1))),
          s1c_(_mm_cvtsi32_si128(static_cast<int>(64 - (q.bits() - 1)))),
          s2_(_mm_cvtsi32_si128(static_cast<int>(q.bits() + 1))),
          s2c_(_mm_cvtsi32_si128(static_cast<int>(64 - (q.bits() + 1))))
    {}

    /** Barrett reduction of the 128-bit lanes (xlo, xhi) < 2^(2*bits),
     * mirroring Modulus::reduce() step for step. */
    __m256i
    reduce(__m256i xlo, __m256i xhi) const
    {
        // q1 = x >> (bits-1): fits 64 bits for x < 2^(2*bits)
        const __m256i q1 = _mm256_or_si256(_mm256_srl_epi64(xlo, s1_),
                                           _mm256_sll_epi64(xhi, s1c_));
        __m256i tlo, thi;
        mul64(q1, mu_, tlo, thi);
        // q3 = (q1 * mu) >> (bits+1)
        const __m256i q3 = _mm256_or_si256(_mm256_srl_epi64(tlo, s2_),
                                           _mm256_sll_epi64(thi, s2c_));
        const __m256i r =
            _mm256_sub_epi64(xlo, mulLo64(q3, q_));
        return csub(csub(r, q_), q_);
    }

    __m256i q_, mu_;
    __m128i s1_, s1c_, s2_, s2c_;
};

// --- NTT ----------------------------------------------------------------

void
nttForwardAvx2(std::uint64_t *a, std::uint64_t n, const std::uint64_t *w,
               const std::uint64_t *wShoup, std::uint64_t q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    std::uint64_t t = n;
    for (std::uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 4) {
            for (std::uint64_t i = 0; i < m; ++i) {
                const __m256i wv = _mm256_set1_epi64x(
                    static_cast<long long>(w[m + i]));
                const __m256i wsv = _mm256_set1_epi64x(
                    static_cast<long long>(wShoup[m + i]));
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; j += 4) {
                    const __m256i u = loadU64(a + j);
                    const __m256i v =
                        shoupMulVec(loadU64(a + j + t), wv, wsv, qv);
                    storeU64(a + j,
                             csub(_mm256_add_epi64(u, v), qv));
                    storeU64(a + j + t,
                             csub(_mm256_add_epi64(
                                      _mm256_sub_epi64(u, v), qv),
                                  qv));
                }
            }
        } else {
            // Last stages (t < 4 lanes): the scalar butterfly, same
            // integers, same order.
            for (std::uint64_t i = 0; i < m; ++i) {
                const std::uint64_t wi = w[m + i];
                const std::uint64_t ws = wShoup[m + i];
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; ++j) {
                    const std::uint64_t u = a[j];
                    const std::uint64_t v =
                        shoupMul(a[j + t], wi, ws, q);
                    std::uint64_t s = u + v;
                    if (s >= q)
                        s -= q;
                    a[j] = s;
                    a[j + t] = u >= v ? u - v : u + q - v;
                }
            }
        }
    }
}

void
nttInverseAvx2(std::uint64_t *a, std::uint64_t n, const std::uint64_t *w,
               const std::uint64_t *wShoup, std::uint64_t q,
               std::uint64_t invN, std::uint64_t invNShoup)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<long long>(q));
    std::uint64_t t = 1;
    for (std::uint64_t m = n; m > 1; m >>= 1) {
        const std::uint64_t h = m >> 1;
        if (t >= 4) {
            for (std::uint64_t i = 0; i < h; ++i) {
                const __m256i wv = _mm256_set1_epi64x(
                    static_cast<long long>(w[h + i]));
                const __m256i wsv = _mm256_set1_epi64x(
                    static_cast<long long>(wShoup[h + i]));
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; j += 4) {
                    const __m256i u = loadU64(a + j);
                    const __m256i v = loadU64(a + j + t);
                    storeU64(a + j,
                             csub(_mm256_add_epi64(u, v), qv));
                    const __m256i d =
                        csub(_mm256_add_epi64(
                                 _mm256_sub_epi64(u, v), qv),
                             qv);
                    storeU64(a + j + t, shoupMulVec(d, wv, wsv, qv));
                }
            }
        } else {
            for (std::uint64_t i = 0; i < h; ++i) {
                const std::uint64_t wi = w[h + i];
                const std::uint64_t ws = wShoup[h + i];
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; ++j) {
                    const std::uint64_t u = a[j];
                    const std::uint64_t v = a[j + t];
                    std::uint64_t s = u + v;
                    if (s >= q)
                        s -= q;
                    a[j] = s;
                    a[j + t] =
                        shoupMul(u >= v ? u - v : u + q - v, wi, ws, q);
                }
            }
        }
        t <<= 1;
    }
    const __m256i wv =
        _mm256_set1_epi64x(static_cast<long long>(invN));
    const __m256i wsv =
        _mm256_set1_epi64x(static_cast<long long>(invNShoup));
    std::uint64_t k = 0;
    for (; k + 4 <= n; k += 4)
        storeU64(a + k, shoupMulVec(loadU64(a + k), wv, wsv, qv));
    for (; k < n; ++k)
        a[k] = shoupMul(a[k], invN, invNShoup, q);
}

// --- element-wise modular arrays ----------------------------------------

void
addArrayAvx2(std::uint64_t *dst, const std::uint64_t *a,
             const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    const __m256i qv =
        _mm256_set1_epi64x(static_cast<long long>(q.value()));
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4)
        storeU64(dst + k,
                 csub(_mm256_add_epi64(loadU64(a + k), loadU64(b + k)),
                      qv));
    for (; k < n; ++k)
        dst[k] = q.add(a[k], b[k]);
}

void
subArrayAvx2(std::uint64_t *dst, const std::uint64_t *a,
             const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    const __m256i qv =
        _mm256_set1_epi64x(static_cast<long long>(q.value()));
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i d = _mm256_add_epi64(
            _mm256_sub_epi64(loadU64(a + k), loadU64(b + k)), qv);
        storeU64(dst + k, csub(d, qv));
    }
    for (; k < n; ++k)
        dst[k] = q.sub(a[k], b[k]);
}

void
mulArrayAvx2(std::uint64_t *dst, const std::uint64_t *a,
             const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    const BarrettVec bar(q);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i xlo, xhi;
        mul64(loadU64(a + k), loadU64(b + k), xlo, xhi);
        storeU64(dst + k, bar.reduce(xlo, xhi));
    }
    for (; k < n; ++k)
        dst[k] = q.mul(a[k], b[k]);
}

void
fmaModArrayAvx2(std::uint64_t *dst, const std::uint64_t *a,
                const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    const BarrettVec bar(q);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i xlo, xhi;
        mul64(loadU64(a + k), loadU64(b + k), xlo, xhi);
        const __m256i p = bar.reduce(xlo, xhi);
        storeU64(dst + k,
                 csub(_mm256_add_epi64(loadU64(dst + k), p), bar.q_));
    }
    for (; k < n; ++k)
        dst[k] = q.add(dst[k], q.mul(a[k], b[k]));
}

void
reduceArrayAvx2(std::uint64_t *dst, const std::uint64_t *src,
                std::size_t n, const Modulus &q)
{
    const BarrettVec bar(q);
    const __m256i zero = _mm256_setzero_si256();
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4)
        storeU64(dst + k, bar.reduce(loadU64(src + k), zero));
    for (; k < n; ++k)
        dst[k] = q.reduce(src[k]);
}

// --- 128-bit lazy keyswitch inner product -------------------------------

/**
 * Add the 4-lane 128-bit products (lo, hi) into acc[k0..k0+3]. The
 * accumulator memory layout is little-endian u128 = interleaved
 * [lo0, hi0, lo1, hi1, ...] u64 words; each __m256i holds two u128
 * values, so the products are shuffled into that interleave and added
 * with an explicit lane0->lane1 / lane2->lane3 carry.
 */
inline void
accumulate128(unsigned __int128 *acc, std::size_t k0, __m256i lo,
              __m256i hi)
{
    __m256i *mem = reinterpret_cast<__m256i *>(acc + k0);
    const __m256i v1 = _mm256_unpacklo_epi64(lo, hi); // [l0 h0 l2 h2]
    const __m256i v2 = _mm256_unpackhi_epi64(lo, hi); // [l1 h1 l3 h3]
    const __m256i p = _mm256_permute2x128_si256(v1, v2, 0x20);
    const __m256i r = _mm256_permute2x128_si256(v1, v2, 0x31);
    for (int half = 0; half < 2; ++half) {
        const __m256i add = half == 0 ? p : r;
        const __m256i cur = _mm256_loadu_si256(mem + half);
        const __m256i sum = _mm256_add_epi64(cur, add);
        // Carry out of the lo words (lanes 0, 2): sum < add unsigned.
        const __m256i carry = cmpGtU64(add, sum);
        // Shift each 128-bit lane left 8 bytes: the lo-lane carry mask
        // lands on the hi word; hi-lane comparison garbage shifts out.
        const __m256i carryHi = _mm256_slli_si256(carry, 8);
        _mm256_storeu_si256(mem + half,
                            _mm256_sub_epi64(sum, carryHi));
    }
}

void
fmaLazyAvx2(unsigned __int128 *acc, const std::uint64_t *a,
            const std::uint64_t *b, std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i lo, hi;
        mul64(loadU64(a + k), loadU64(b + k), lo, hi);
        accumulate128(acc, k, lo, hi);
    }
    for (; k < n; ++k)
        acc[k] += static_cast<unsigned __int128>(a[k]) * b[k];
}

void
fmaLazyGatherAvx2(unsigned __int128 *acc, const std::uint64_t *a,
                  const std::uint32_t *perm, const std::uint64_t *b,
                  std::size_t n)
{
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m128i idx = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(perm + k));
        const __m256i va = _mm256_i32gather_epi64(
            reinterpret_cast<const long long *>(a), idx, 8);
        __m256i lo, hi;
        mul64(va, loadU64(b + k), lo, hi);
        accumulate128(acc, k, lo, hi);
    }
    for (; k < n; ++k)
        acc[k] += static_cast<unsigned __int128>(a[perm[k]]) * b[k];
}

void
reduceWideArrayAvx2(std::uint64_t *dst, const unsigned __int128 *acc,
                    std::size_t n, const Modulus &q)
{
    const __m256i qv =
        _mm256_set1_epi64x(static_cast<long long>(q.value()));
    const __m256i muLo =
        _mm256_set1_epi64x(static_cast<long long>(q.wideMuLo()));
    const __m256i muHi =
        _mm256_set1_epi64x(static_cast<long long>(q.wideMuHi()));
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        // De-interleave two registers of [lo, hi] u128 words into
        // xl = [l0..l3], xh = [h0..h3].
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + k));
        const __m256i v2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + k + 2));
        const __m256i aPair = _mm256_permute2x128_si256(v1, v2, 0x20);
        const __m256i bPair = _mm256_permute2x128_si256(v1, v2, 0x31);
        const __m256i xl = _mm256_unpacklo_epi64(aPair, bPair);
        const __m256i xh = _mm256_unpackhi_epi64(aPair, bPair);

        // t = floor(x * mu128 / 2^128) mod 2^64, exactly as
        // Modulus::reduceWide() computes it (schoolbook upper half).
        const __m256i hiLl = mulHi64(xl, muLo);
        __m256i loLh, hiLh;
        mul64(xl, muHi, loLh, hiLh);
        __m256i loHl, hiHl;
        mul64(xh, muLo, loHl, hiHl);
        const __m256i loHh = mulLo64(xh, muHi);

        const __m256i s1 = _mm256_add_epi64(hiLl, loLh);
        const __m256i c1 = cmpGtU64(loLh, s1); // mid carry 1
        const __m256i s2 = _mm256_add_epi64(s1, loHl);
        const __m256i c2 = cmpGtU64(loHl, s2); // mid carry 2

        __m256i t = _mm256_add_epi64(_mm256_add_epi64(loHh, hiLh), hiHl);
        t = _mm256_sub_epi64(t, c1); // masks are -1: subtract == +1
        t = _mm256_sub_epi64(t, c2);

        const __m256i r = _mm256_sub_epi64(xl, mulLo64(t, qv));
        storeU64(dst + k, csub(r, qv));
    }
    for (; k < n; ++k)
        dst[k] = q.reduceWide(acc[k]);
}

} // namespace

namespace detail {

const Kernels &
avx2Kernels()
{
    static const Kernels table{
        Level::avx2,
        laneWidth(Level::avx2),
        &nttForwardAvx2,
        &nttInverseAvx2,
        &addArrayAvx2,
        &subArrayAvx2,
        &mulArrayAvx2,
        &fmaModArrayAvx2,
        &reduceArrayAvx2,
        &fmaLazyAvx2,
        &fmaLazyGatherAvx2,
        &reduceWideArrayAvx2,
    };
    return table;
}

} // namespace detail
} // namespace fxhenn::simd
