#include "src/modarith/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "src/common/assert.hpp"
#include "src/modarith/simd_kernels_internal.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::simd {

const char *
levelName(Level level)
{
    switch (level) {
    case Level::scalar:
        return "scalar";
    case Level::avx2:
        return "avx2";
    case Level::avx512:
        return "avx512";
    }
    return "unknown";
}

unsigned
laneWidth(Level level)
{
    switch (level) {
    case Level::avx512:
        return 8;
    case Level::avx2:
        return 4;
    case Level::scalar:
        break;
    }
    return 1;
}

std::optional<Level>
parseLevel(std::string_view text)
{
    if (text.empty() || text == "auto")
        return std::nullopt;
    if (text == "scalar")
        return Level::scalar;
    if (text == "avx2")
        return Level::avx2;
    if (text == "avx512")
        return Level::avx512;
    throw ConfigError("FXHENN_SIMD: unknown value '" + std::string(text) +
                      "' (expected scalar, avx2, avx512 or auto)");
}

bool
compiledIn(Level level)
{
    switch (level) {
    case Level::scalar:
        return true;
    case Level::avx2:
#if FXHENN_HAVE_AVX2_TU
        return true;
#else
        return false;
#endif
    case Level::avx512:
#if FXHENN_HAVE_AVX512_TU
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
hostSupports(Level level)
{
    if (level == Level::scalar)
        return true;
#if defined(__x86_64__) || defined(__i386__)
    if (level == Level::avx2)
        return __builtin_cpu_supports("avx2") != 0;
    // The avx512 NTT kernels lean on vpmadd52 (IFMA) plus the
    // foundation/doubleword subsets; all or nothing.
    return __builtin_cpu_supports("avx2") != 0 &&
           __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0 &&
           __builtin_cpu_supports("avx512ifma") != 0;
#else
    return false;
#endif
}

bool
available(Level level)
{
    return compiledIn(level) && hostSupports(level);
}

Level
resolveLevel(std::optional<Level> requested, Level widestAvailable)
{
    if (requested.has_value()) {
        // Explicit but unavailable requests degrade to scalar: asking
        // for avx512 on a machine (or build) without it must still
        // run. Availability is monotone, so "above the ladder top"
        // is exactly "unavailable".
        if (static_cast<int>(*requested) >
            static_cast<int>(widestAvailable))
            return Level::scalar;
        return *requested;
    }
    return widestAvailable;
}

namespace {

Level
widestAvailableLevel()
{
    if (available(Level::avx512))
        return Level::avx512;
    if (available(Level::avx2))
        return Level::avx2;
    return Level::scalar;
}

} // namespace

namespace {

/** Resolved level + a "resolved yet" flag packed into one atomic:
 * -1 = unresolved, otherwise the Level value. */
std::atomic<int> g_active{-1};

void
publishWidth(Level level)
{
    if constexpr (telemetry::compiledIn()) {
        auto &width = telemetry::counter("modarith.simd.width");
        width.reset();
        width.add(laneWidth(level));
    }
}

Level
resolveFromEnv()
{
    const char *env = std::getenv("FXHENN_SIMD");
    const auto requested = parseLevel(env ? env : "");
    return resolveLevel(requested, widestAvailableLevel());
}

} // namespace

Level
activeLevel()
{
    int current = g_active.load(std::memory_order_acquire);
    if (current >= 0)
        return static_cast<Level>(current);
    const Level resolved = resolveFromEnv();
    int expected = -1;
    if (g_active.compare_exchange_strong(expected,
                                         static_cast<int>(resolved),
                                         std::memory_order_acq_rel)) {
        publishWidth(resolved);
        return resolved;
    }
    // Another thread resolved first; its choice (same env, same CPU)
    // wins.
    return static_cast<Level>(expected);
}

void
forceLevel(Level level)
{
    FXHENN_FATAL_IF(!available(level),
                    std::string("cannot force SIMD level '") +
                        levelName(level) +
                        "': not compiled in or not supported by this "
                        "host");
    g_active.store(static_cast<int>(level), std::memory_order_release);
    publishWidth(level);
}

void
resetForTest()
{
    g_active.store(-1, std::memory_order_release);
}

const Kernels &
kernelsFor(Level level)
{
    if (level != Level::scalar)
        FXHENN_FATAL_IF(!available(level),
                        std::string("SIMD level '") + levelName(level) +
                            "' is not compiled into this binary or not "
                            "supported by this host");
#if FXHENN_HAVE_AVX512_TU
    if (level == Level::avx512)
        return detail::avx512Kernels();
#endif
#if FXHENN_HAVE_AVX2_TU
    if (level == Level::avx2)
        return detail::avx2Kernels();
#endif
    return detail::scalarKernels();
}

const Kernels &
kernels()
{
    return kernelsFor(activeLevel());
}

ScopedLevel::ScopedLevel(Level level)
    : previous_(activeLevel())
{
    forceLevel(level);
}

ScopedLevel::~ScopedLevel()
{
    forceLevel(previous_);
}

} // namespace fxhenn::simd
