/**
 * @file
 * Internal linkage between the dispatcher and the per-ISA kernel
 * translation units. Each TU defines its table accessor; a definition
 * exists only when CMake compiled that TU (FXHENN_HAVE_AVX2_TU /
 * FXHENN_HAVE_AVX512_TU), so callers must guard uses with those
 * macros. The avx512 TU also reuses avx2 kernels for the entries it
 * does not re-implement, and delegates wide-modulus NTT calls
 * (q >= 2^50, outside the 52-bit IFMA datapath) to the avx2 table.
 */
#ifndef FXHENN_MODARITH_SIMD_KERNELS_INTERNAL_HPP
#define FXHENN_MODARITH_SIMD_KERNELS_INTERNAL_HPP

#include "src/modarith/simd_dispatch.hpp"

namespace fxhenn::simd::detail {

const Kernels &scalarKernels();
const Kernels &avx2Kernels();   // defined iff FXHENN_HAVE_AVX2_TU
const Kernels &avx512Kernels(); // defined iff FXHENN_HAVE_AVX512_TU

} // namespace fxhenn::simd::detail

#endif // FXHENN_MODARITH_SIMD_KERNELS_INTERNAL_HPP
