/**
 * @file
 * NTT-friendly prime generation.
 *
 * RNS-CKKS needs a chain of word-size primes q_i with q_i = 1 (mod 2N) so
 * that the ring Z_{q_i}[X]/(X^N + 1) supports the negacyclic NTT. The
 * paper uses 30-bit primes for the MNIST network (N = 8192) and 36-bit
 * primes for CIFAR-10 (N = 16384).
 */
#ifndef FXHENN_MODARITH_PRIMES_HPP
#define FXHENN_MODARITH_PRIMES_HPP

#include <cstdint>
#include <vector>

namespace fxhenn {

/** Deterministic Miller-Rabin primality test, exact for 64-bit inputs. */
bool isPrime(std::uint64_t n);

/**
 * Generate @p count distinct primes of exactly @p bits bits with
 * p = 1 (mod 2 * @p n), searching downward from 2^bits.
 *
 * @param bits   desired prime bit width (20..60)
 * @param n      ring degree N (power of two)
 * @param count  number of primes to produce
 * @return the primes in descending order
 */
std::vector<std::uint64_t> generateNttPrimes(unsigned bits, std::uint64_t n,
                                             std::size_t count);

/**
 * Find a generator of the 2N-th roots of unity mod @p p, i.e. a primitive
 * 2N-th root of unity psi with psi^(2N) = 1 and psi^N = -1.
 */
std::uint64_t findPrimitiveRoot(std::uint64_t p, std::uint64_t two_n);

} // namespace fxhenn

#endif // FXHENN_MODARITH_PRIMES_HPP
