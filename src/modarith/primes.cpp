#include "src/modarith/primes.hpp"

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"
#include "src/modarith/modulus.hpp"

namespace fxhenn {

bool
isPrime(std::uint64_t n)
{
    if (n < 2)
        return false;
    for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                            19ull, 23ull, 29ull, 31ull, 37ull}) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }

    // Write n - 1 = d * 2^r.
    std::uint64_t d = n - 1;
    unsigned r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }

    const Modulus mod(n);
    // This witness set is deterministic for all n < 2^64.
    for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                            19ull, 23ull, 29ull, 31ull, 37ull}) {
        std::uint64_t x = mod.pow(a, d);
        if (x == 1 || x == n - 1)
            continue;
        bool composite = true;
        for (unsigned i = 0; i + 1 < r; ++i) {
            x = mod.mul(x, x);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

std::vector<std::uint64_t>
generateNttPrimes(unsigned bits, std::uint64_t n, std::size_t count)
{
    FXHENN_FATAL_IF(bits < 20 || bits > 60,
                    "prime bit width must be in [20, 60]");
    FXHENN_FATAL_IF(!isPowerOfTwo(n), "ring degree must be a power of two");

    const std::uint64_t step = 2 * n;
    // Largest candidate of the form k * 2N + 1 below 2^bits.
    std::uint64_t candidate = ((1ull << bits) - 1) / step * step + 1;

    std::vector<std::uint64_t> primes;
    while (primes.size() < count && (candidate >> (bits - 1)) == 1) {
        if (isPrime(candidate))
            primes.push_back(candidate);
        candidate -= step;
    }
    FXHENN_FATAL_IF(primes.size() < count,
                    "not enough NTT primes of the requested width");
    return primes;
}

std::uint64_t
findPrimitiveRoot(std::uint64_t p, std::uint64_t two_n)
{
    FXHENN_FATAL_IF((p - 1) % two_n != 0, "p != 1 (mod 2N)");
    const Modulus mod(p);
    const std::uint64_t cofactor = (p - 1) / two_n;

    for (std::uint64_t g = 2; g < p; ++g) {
        const std::uint64_t psi = mod.pow(g, cofactor);
        // psi has order dividing 2N; it is primitive iff psi^N = -1.
        if (mod.pow(psi, two_n / 2) == p - 1)
            return psi;
    }
    FXHENN_PANIC_IF(true, "no primitive root found");
    return 0;
}

} // namespace fxhenn
