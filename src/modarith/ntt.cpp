#include "src/modarith/ntt.hpp"

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"
#include "src/modarith/primes.hpp"
#include "src/modarith/simd_dispatch.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn {

NttTables::NttTables(std::uint64_t n, const Modulus &q)
    : n_(n), log2n_(floorLog2(n)), q_(q)
{
    FXHENN_FATAL_IF(!isPowerOfTwo(n), "NTT size must be a power of two");
    FXHENN_FATAL_IF((q.value() - 1) % (2 * n) != 0,
                    "modulus does not support a 2N-th root of unity");

    const std::uint64_t psi = findPrimitiveRoot(q.value(), 2 * n);
    const std::uint64_t psi_inv = q.inverse(psi);

    rootPowers_.resize(n);
    invRootPowers_.resize(n);
    std::uint64_t power = 1;
    std::uint64_t inv_power = 1;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t r = reverseBits(i, log2n_);
        rootPowers_[r] = power;
        invRootPowers_[r] = inv_power;
        power = q.mul(power, psi);
        inv_power = q.mul(inv_power, psi_inv);
    }
    invN_ = q.inverse(n % q.value());

    auto shoup = [&](std::uint64_t w) {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(w) << 64) / q.value());
    };
    rootShoup_.resize(n);
    invRootShoup_.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        rootShoup_[i] = shoup(rootPowers_[i]);
        invRootShoup_[i] = shoup(invRootPowers_[i]);
    }
    invNShoup_ = shoup(invN_);
}

void
NttTables::forward(std::span<std::uint64_t> a) const
{
    FXHENN_ASSERT(a.size() == n_, "NTT operand has wrong length");
    FXHENN_TELEM_COUNT("modarith.ntt.forward", 1);
    FXHENN_TELEM_COUNT("modarith.ntt.butterflies", butterflyCount());
    FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);

    // The butterfly loops live in the dispatched kernel TUs
    // (simd_kernels_scalar.cpp is the reference formulation).
    simd::kernels().nttForward(a.data(), n_, rootPowers_.data(),
                               rootShoup_.data(), q_.value());
}

void
NttTables::inverse(std::span<std::uint64_t> a) const
{
    FXHENN_ASSERT(a.size() == n_, "NTT operand has wrong length");
    FXHENN_TELEM_COUNT("modarith.ntt.inverse", 1);
    FXHENN_TELEM_COUNT("modarith.ntt.butterflies", butterflyCount());
    FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);

    simd::kernels().nttInverse(a.data(), n_, invRootPowers_.data(),
                               invRootShoup_.data(), q_.value(), invN_,
                               invNShoup_);
}

} // namespace fxhenn
