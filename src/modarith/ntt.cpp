#include "src/modarith/ntt.hpp"

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"
#include "src/modarith/primes.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn {

NttTables::NttTables(std::uint64_t n, const Modulus &q)
    : n_(n), log2n_(floorLog2(n)), q_(q)
{
    FXHENN_FATAL_IF(!isPowerOfTwo(n), "NTT size must be a power of two");
    FXHENN_FATAL_IF((q.value() - 1) % (2 * n) != 0,
                    "modulus does not support a 2N-th root of unity");

    const std::uint64_t psi = findPrimitiveRoot(q.value(), 2 * n);
    const std::uint64_t psi_inv = q.inverse(psi);

    rootPowers_.resize(n);
    invRootPowers_.resize(n);
    std::uint64_t power = 1;
    std::uint64_t inv_power = 1;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t r = reverseBits(i, log2n_);
        rootPowers_[r] = power;
        invRootPowers_[r] = inv_power;
        power = q.mul(power, psi);
        inv_power = q.mul(inv_power, psi_inv);
    }
    invN_ = q.inverse(n % q.value());

    auto shoup = [&](std::uint64_t w) {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(w) << 64) / q.value());
    };
    rootShoup_.resize(n);
    invRootShoup_.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        rootShoup_[i] = shoup(rootPowers_[i]);
        invRootShoup_[i] = shoup(invRootPowers_[i]);
    }
    invNShoup_ = shoup(invN_);
}

void
NttTables::forward(std::span<std::uint64_t> a) const
{
    FXHENN_ASSERT(a.size() == n_, "NTT operand has wrong length");
    FXHENN_TELEM_COUNT("modarith.ntt.forward", 1);
    FXHENN_TELEM_COUNT("modarith.ntt.butterflies", butterflyCount());
    const std::uint64_t q = q_.value();

    // Cooley-Tukey DIT with merged negacyclic twist, Shoup butterflies.
    std::uint64_t t = n_;
    for (std::uint64_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::uint64_t i = 0; i < m; ++i) {
            const std::uint64_t w = rootPowers_[m + i];
            const std::uint64_t ws = rootShoup_[m + i];
            const std::uint64_t j1 = 2 * i * t;
            for (std::uint64_t j = j1; j < j1 + t; ++j) {
                const std::uint64_t u = a[j];
                const std::uint64_t v = shoupMul(a[j + t], w, ws, q);
                std::uint64_t s = u + v;
                if (s >= q)
                    s -= q;
                a[j] = s;
                a[j + t] = u >= v ? u - v : u + q - v;
            }
        }
    }
}

void
NttTables::inverse(std::span<std::uint64_t> a) const
{
    FXHENN_ASSERT(a.size() == n_, "NTT operand has wrong length");
    FXHENN_TELEM_COUNT("modarith.ntt.inverse", 1);
    FXHENN_TELEM_COUNT("modarith.ntt.butterflies", butterflyCount());
    const std::uint64_t q = q_.value();

    // Gentleman-Sande DIF with merged inverse twist, Shoup butterflies.
    std::uint64_t t = 1;
    for (std::uint64_t m = n_; m > 1; m >>= 1) {
        const std::uint64_t h = m >> 1;
        for (std::uint64_t i = 0; i < h; ++i) {
            const std::uint64_t w = invRootPowers_[h + i];
            const std::uint64_t ws = invRootShoup_[h + i];
            const std::uint64_t j1 = 2 * i * t;
            for (std::uint64_t j = j1; j < j1 + t; ++j) {
                const std::uint64_t u = a[j];
                const std::uint64_t v = a[j + t];
                std::uint64_t s = u + v;
                if (s >= q)
                    s -= q;
                a[j] = s;
                a[j + t] =
                    shoupMul(u >= v ? u - v : u + q - v, w, ws, q);
            }
        }
        t <<= 1;
    }
    for (auto &x : a)
        x = shoupMul(x, invN_, invNShoup_, q);
}

} // namespace fxhenn
