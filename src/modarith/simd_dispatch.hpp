/**
 * @file
 * Runtime-dispatched SIMD backend for the modular-arithmetic hot path.
 *
 * The software analogue of widening the paper's modular-multiply
 * datapath: every kernel that dominates encrypted inference (NTT
 * butterflies, Barrett/Shoup modmul sweeps, the 128-bit lazy keyswitch
 * inner product) is routed through a table of function pointers chosen
 * once at startup. Two implementations exist:
 *
 *  - scalar: the original loops, moved verbatim into
 *    simd_kernels_scalar.cpp. This is the bitwise reference — the
 *    KswMode::eager of this subsystem — and the portable fallback on
 *    hosts or builds without vector units.
 *  - avx2: 4-lane AVX2 kernels (simd_kernels_avx2.cpp, compiled with
 *    -mavx2 for that one translation unit only). 64x64->128
 *    multiplies are built exactly from 32-bit partial products, so
 *    every lane computes the same integers as the scalar path and the
 *    outputs are bitwise identical.
 *  - avx512: 8-lane AVX-512 kernels (simd_kernels_avx512.cpp, compiled
 *    with -mavx512f/-mavx512ifma/... for that TU only). The NTT
 *    butterflies run Harvey-style lazy arithmetic on vpmadd52
 *    (52-bit IFMA) with a canonicalizing final pass, so outputs stay
 *    bitwise identical to scalar; moduli too wide for the 52-bit
 *    datapath (q >= 2^50, e.g. 60-bit special primes) delegate that
 *    call to the avx2 kernel.
 *
 * Selection contract (resolveLevel() is the pure, unit-testable core):
 *  - env FXHENN_SIMD=scalar|avx2|avx512|auto (unset/empty == auto);
 *    any other value throws ConfigError (CLI exit code 3);
 *  - auto picks the widest level that is both compiled in and
 *    supported by the host CPU;
 *  - a recognized level that is unavailable (not compiled in, or the
 *    host lacks the ISA) falls back to scalar gracefully — requesting
 *    avx512 on a non-AVX-512 machine must degrade, not crash.
 *
 * Telemetry: resolving or forcing a level publishes the lane width to
 * the "modarith.simd.width" counter (1 = scalar, 4 = avx2,
 * 8 = avx512); dispatch sites count "modarith.simd.dispatches" so
 * benches record which path ran and how often.
 *
 * Thread-safety: activeLevel() resolves once under an atomic and is
 * safe to call concurrently. forceLevel()/resetForTest() are test/bench
 * hooks and must not race live kernel dispatches.
 */
#ifndef FXHENN_MODARITH_SIMD_DISPATCH_HPP
#define FXHENN_MODARITH_SIMD_DISPATCH_HPP

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/modarith/modulus.hpp"

namespace fxhenn::simd {

/** Dispatch levels, narrowest first. Availability is monotone by
 * construction: avx512 is only compiled/supported where avx2 is. */
enum class Level { scalar = 0, avx2 = 1, avx512 = 2 };

/** "scalar", "avx2" or "avx512". */
const char *levelName(Level level);

/** Lanes of 64-bit residues one vector op covers (1, 4 or 8). */
unsigned laneWidth(Level level);

/**
 * Parse a FXHENN_SIMD value. "auto" (or empty) returns nullopt;
 * "scalar"/"avx2"/"avx512" return the level; anything else throws
 * ConfigError.
 */
std::optional<Level> parseLevel(std::string_view text);

/** Was the kernel translation unit for @p level compiled into the
 * binary? (scalar: always; avx2/avx512: only when CMake found the ISA
 * flags and FXHENN_SIMD=ON). */
bool compiledIn(Level level);

/** Does the host CPU execute @p level? (scalar: always.) */
bool hostSupports(Level level);

/** compiledIn() && hostSupports(): the level is dispatchable here. */
bool available(Level level);

/**
 * The pure selection rule: @p requested (nullopt == auto) resolved
 * against @p widestAvailable (the top of the availability ladder).
 * Explicit requests above the ladder degrade to scalar; auto picks
 * the widest available level.
 */
Level resolveLevel(std::optional<Level> requested, Level widestAvailable);

/**
 * The level every dispatch site uses, resolved once from FXHENN_SIMD
 * and CPU detection on first call. Publishes "modarith.simd.width".
 */
Level activeLevel();

/** Test/bench hook: pin dispatch to @p level (must be available(),
 * else ConfigError). */
void forceLevel(Level level);

/** Test hook: drop the resolved level so the next activeLevel()
 * re-reads FXHENN_SIMD. */
void resetForTest();

/**
 * The kernel table. All kernels are element-exact re-derivations of
 * the Modulus/NttTables scalar arithmetic: for identical inputs every
 * implementation must produce identical output bytes (enforced by
 * tests/modarith/test_simd_differential.cpp — a new kernel does not
 * land without a row there).
 *
 * Aliasing: dst may alias a (in-place update); all other operands must
 * not overlap dst. Lengths are in 64-bit elements; no alignment is
 * required (kernels use unaligned loads) and ragged tails of any
 * length are handled internally.
 */
struct Kernels
{
    Level level;
    unsigned width;

    /** Full forward negacyclic NTT pass (Cooley-Tukey DIT, Shoup
     * butterflies) over a[0..n), tables in bit-reversed order. */
    void (*nttForward)(std::uint64_t *a, std::uint64_t n,
                       const std::uint64_t *w, const std::uint64_t *wShoup,
                       std::uint64_t q);

    /** Full inverse pass (Gentleman-Sande) including the final N^-1
     * scaling. */
    void (*nttInverse)(std::uint64_t *a, std::uint64_t n,
                       const std::uint64_t *w, const std::uint64_t *wShoup,
                       std::uint64_t q, std::uint64_t invN,
                       std::uint64_t invNShoup);

    /** dst[k] = (a[k] + b[k]) mod q. */
    void (*addArray)(std::uint64_t *dst, const std::uint64_t *a,
                     const std::uint64_t *b, std::size_t n,
                     const Modulus &q);

    /** dst[k] = (a[k] - b[k]) mod q. */
    void (*subArray)(std::uint64_t *dst, const std::uint64_t *a,
                     const std::uint64_t *b, std::size_t n,
                     const Modulus &q);

    /** dst[k] = (a[k] * b[k]) mod q (Barrett). */
    void (*mulArray)(std::uint64_t *dst, const std::uint64_t *a,
                     const std::uint64_t *b, std::size_t n,
                     const Modulus &q);

    /** dst[k] = (dst[k] + a[k] * b[k]) mod q (Barrett mul, then add). */
    void (*fmaModArray)(std::uint64_t *dst, const std::uint64_t *a,
                        const std::uint64_t *b, std::size_t n,
                        const Modulus &q);

    /** dst[k] = src[k] mod q via Barrett reduce(); requires
     * src[k] < 2^(2*q.bits()) — the ModUp base-extension sweep. */
    void (*reduceArray)(std::uint64_t *dst, const std::uint64_t *src,
                        std::size_t n, const Modulus &q);

    /** acc[k] += a[k] * b[k], unreduced 128-bit lanes (the lazy
     * keyswitch inner product). */
    void (*fmaLazy)(unsigned __int128 *acc, const std::uint64_t *a,
                    const std::uint64_t *b, std::size_t n);

    /** acc[k] += a[perm[k]] * b[k] (hoisted-rotation gather FMA). */
    void (*fmaLazyGather)(unsigned __int128 *acc, const std::uint64_t *a,
                          const std::uint32_t *perm,
                          const std::uint64_t *b, std::size_t n);

    /** dst[k] = acc[k] mod q via reduceWide() — the single deferred
     * reduction closing a lazy accumulation. */
    void (*reduceWideArray)(std::uint64_t *dst,
                            const unsigned __int128 *acc, std::size_t n,
                            const Modulus &q);
};

/** The table for activeLevel() — what every hot-path site dispatches
 * through. */
const Kernels &kernels();

/** The table for a specific @p level (must be available(); the
 * differential tests iterate reachable levels through this). */
const Kernels &kernelsFor(Level level);

/** RAII pin to a level for a test/bench scope; restores the previous
 * resolution on destruction. */
class ScopedLevel
{
  public:
    explicit ScopedLevel(Level level);
    ~ScopedLevel();
    ScopedLevel(const ScopedLevel &) = delete;
    ScopedLevel &operator=(const ScopedLevel &) = delete;

  private:
    Level previous_;
};

} // namespace fxhenn::simd

#endif // FXHENN_MODARITH_SIMD_DISPATCH_HPP
