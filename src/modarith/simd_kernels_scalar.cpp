/**
 * @file
 * Scalar modular-arithmetic kernels — the bitwise reference.
 *
 * These are the original NttTables / RnsPoly / LazyLimbAccumulator
 * loops, moved here verbatim so every other dispatch level has a
 * byte-for-byte ground truth to differ against (the KswMode::eager
 * pattern applied to the whole modarith hot path). Do not "optimize"
 * this file: its value is that it stays the plain, obviously-correct
 * formulation. Vector kernels live in their own translation units and
 * must match these outputs exactly.
 */
#include "src/modarith/ntt.hpp"
#include "src/modarith/simd_dispatch.hpp"

namespace fxhenn::simd {
namespace {

void
nttForwardScalar(std::uint64_t *a, std::uint64_t n, const std::uint64_t *w,
                 const std::uint64_t *wShoup, std::uint64_t q)
{
    // Cooley-Tukey DIT with merged negacyclic twist, Shoup butterflies.
    std::uint64_t t = n;
    for (std::uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (std::uint64_t i = 0; i < m; ++i) {
            const std::uint64_t wi = w[m + i];
            const std::uint64_t ws = wShoup[m + i];
            const std::uint64_t j1 = 2 * i * t;
            for (std::uint64_t j = j1; j < j1 + t; ++j) {
                const std::uint64_t u = a[j];
                const std::uint64_t v = shoupMul(a[j + t], wi, ws, q);
                std::uint64_t s = u + v;
                if (s >= q)
                    s -= q;
                a[j] = s;
                a[j + t] = u >= v ? u - v : u + q - v;
            }
        }
    }
}

void
nttInverseScalar(std::uint64_t *a, std::uint64_t n, const std::uint64_t *w,
                 const std::uint64_t *wShoup, std::uint64_t q,
                 std::uint64_t invN, std::uint64_t invNShoup)
{
    // Gentleman-Sande DIF with merged inverse twist, Shoup butterflies.
    std::uint64_t t = 1;
    for (std::uint64_t m = n; m > 1; m >>= 1) {
        const std::uint64_t h = m >> 1;
        for (std::uint64_t i = 0; i < h; ++i) {
            const std::uint64_t wi = w[h + i];
            const std::uint64_t ws = wShoup[h + i];
            const std::uint64_t j1 = 2 * i * t;
            for (std::uint64_t j = j1; j < j1 + t; ++j) {
                const std::uint64_t u = a[j];
                const std::uint64_t v = a[j + t];
                std::uint64_t s = u + v;
                if (s >= q)
                    s -= q;
                a[j] = s;
                a[j + t] =
                    shoupMul(u >= v ? u - v : u + q - v, wi, ws, q);
            }
        }
        t <<= 1;
    }
    for (std::uint64_t k = 0; k < n; ++k)
        a[k] = shoupMul(a[k], invN, invNShoup, q);
}

void
addArrayScalar(std::uint64_t *dst, const std::uint64_t *a,
               const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = q.add(a[k], b[k]);
}

void
subArrayScalar(std::uint64_t *dst, const std::uint64_t *a,
               const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = q.sub(a[k], b[k]);
}

void
mulArrayScalar(std::uint64_t *dst, const std::uint64_t *a,
               const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = q.mul(a[k], b[k]);
}

void
fmaModArrayScalar(std::uint64_t *dst, const std::uint64_t *a,
                  const std::uint64_t *b, std::size_t n, const Modulus &q)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = q.add(dst[k], q.mul(a[k], b[k]));
}

void
reduceArrayScalar(std::uint64_t *dst, const std::uint64_t *src,
                  std::size_t n, const Modulus &q)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = q.reduce(src[k]);
}

void
fmaLazyScalar(unsigned __int128 *acc, const std::uint64_t *a,
              const std::uint64_t *b, std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        acc[k] += static_cast<unsigned __int128>(a[k]) * b[k];
}

void
fmaLazyGatherScalar(unsigned __int128 *acc, const std::uint64_t *a,
                    const std::uint32_t *perm, const std::uint64_t *b,
                    std::size_t n)
{
    for (std::size_t k = 0; k < n; ++k)
        acc[k] += static_cast<unsigned __int128>(a[perm[k]]) * b[k];
}

void
reduceWideArrayScalar(std::uint64_t *dst, const unsigned __int128 *acc,
                      std::size_t n, const Modulus &q)
{
    for (std::size_t k = 0; k < n; ++k)
        dst[k] = q.reduceWide(acc[k]);
}

} // namespace

namespace detail {

const Kernels &
scalarKernels()
{
    static const Kernels table{
        Level::scalar,
        laneWidth(Level::scalar),
        &nttForwardScalar,
        &nttInverseScalar,
        &addArrayScalar,
        &subArrayScalar,
        &mulArrayScalar,
        &fmaModArrayScalar,
        &reduceArrayScalar,
        &fmaLazyScalar,
        &fmaLazyGatherScalar,
        &reduceWideArrayScalar,
    };
    return table;
}

} // namespace detail
} // namespace fxhenn::simd
