/**
 * @file
 * Word-size modular arithmetic for RNS-CKKS.
 *
 * A Modulus wraps one RNS prime q_i (up to 60 bits) together with the
 * Barrett constant needed for fast reduction of 128-bit products. This is
 * the software analogue of the FPGA "Barrett Reduction" basic operation
 * module in the paper's Table I.
 */
#ifndef FXHENN_MODARITH_MODULUS_HPP
#define FXHENN_MODARITH_MODULUS_HPP

#include <cstdint>

namespace fxhenn {

/** One RNS prime with precomputed Barrett reduction constants. */
class Modulus
{
  public:
    Modulus() = default;

    /** Construct for prime (or at least odd) modulus @p value < 2^60. */
    explicit Modulus(std::uint64_t value);

    /** @return the modulus value q. */
    std::uint64_t value() const { return value_; }

    /** @return the bit width of q. */
    unsigned bits() const { return bits_; }

    /** Barrett reduction of @p x < 2^(2*bits()) into [0, q). */
    std::uint64_t
    reduce(unsigned __int128 x) const
    {
        // Barrett with k = 2^128 / q precomputed as a 128-bit constant
        // split into two 64-bit halves is overkill for our operand sizes:
        // all products we reduce are < q^2 <= 2^120. We use the classic
        // floor(x / 2^s * mu / 2^t) approximation with one correction.
        const std::uint64_t xlo = static_cast<std::uint64_t>(x);

        // q1 = floor(x / 2^(bits-1)), fits in ~bits+2 bits beyond 64 only
        // when x is close to q^2; keep full 128-bit shift.
        const unsigned __int128 q1 = x >> (bits_ - 1);
        const unsigned __int128 q2 =
            q1 * static_cast<unsigned __int128>(mu_);
        const std::uint64_t q3 =
            static_cast<std::uint64_t>(q2 >> (bits_ + 1));

        std::uint64_t r =
            xlo - q3 * value_; // low 64 bits suffice: r < 2q < 2^61
        if (r >= value_)
            r -= value_;
        if (r >= value_)
            r -= value_;
        return r;
    }

    /**
     * Barrett reduction of an arbitrary 128-bit value into [0, q).
     *
     * Unlike reduce(), which requires x < 2^(2*bits()), this uses the
     * full-range constant mu128 = floor(2^128 / q) and the exact high
     * half of the 128x128 product, so it is valid for every x — the
     * reduction step behind the lazy-accumulation keyswitch path, where
     * up to maxLazyDepth() unreduced q^2-sized products pile up.
     */
    std::uint64_t
    reduceWide(unsigned __int128 x) const
    {
        const std::uint64_t xh = static_cast<std::uint64_t>(x >> 64);
        const std::uint64_t xl = static_cast<std::uint64_t>(x);

        // t = floor(x * mu128 / 2^128) via the exact upper half of the
        // 256-bit product (schoolbook over 64-bit halves with carry).
        const unsigned __int128 ll =
            static_cast<unsigned __int128>(xl) * mu128Lo_;
        const unsigned __int128 lh =
            static_cast<unsigned __int128>(xl) * mu128Hi_;
        const unsigned __int128 hl =
            static_cast<unsigned __int128>(xh) * mu128Lo_;
        const unsigned __int128 hh =
            static_cast<unsigned __int128>(xh) * mu128Hi_;
        const unsigned __int128 mid =
            (ll >> 64) + static_cast<std::uint64_t>(lh) +
            static_cast<std::uint64_t>(hl);
        const unsigned __int128 t =
            hh + (lh >> 64) + (hl >> 64) + (mid >> 64);

        // t >= floor(x/q) - 1, so r = x - t*q < 2q < 2^61: the low
        // 64 bits of both operands suffice (wrapping arithmetic).
        std::uint64_t r = xl - static_cast<std::uint64_t>(t) * value_;
        if (r >= value_)
            r -= value_;
        return r;
    }

    /**
     * Shoup modular multiplication (a * b) mod q with the precomputed
     * constant @p bShoup = shoupConstant(b). Requires a < q and
     * b < q < 2^63. One high-half product and one wrapping multiply
     * instead of a full Barrett reduction — the same per-twiddle trick
     * the NTT butterflies use, exposed for callers outside ntt.hpp.
     */
    std::uint64_t
    mulShoup(std::uint64_t a, std::uint64_t b,
             std::uint64_t bShoup) const
    {
        const std::uint64_t hi = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(a) * bShoup) >> 64);
        std::uint64_t r = a * b - hi * value_; // wrapping arithmetic
        if (r >= value_)
            r -= value_;
        return r;
    }

    /** Precompute floor(b * 2^64 / q) for mulShoup(); requires b < q. */
    std::uint64_t
    shoupConstant(std::uint64_t b) const
    {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(b) << 64) / value_);
    }

    /**
     * How many unreduced products a * b (a, b < q) a 128-bit
     * accumulator can absorb before reduceWide() would overflow:
     * 2^(128 - 2*bits()), capped at 2^63. Even 60-bit primes allow 256
     * terms — far above any keyswitch digit count.
     */
    std::uint64_t
    maxLazyDepth() const
    {
        const unsigned headroom = 128 - 2 * bits_;
        return headroom >= 63 ? (1ull << 63) : (1ull << headroom);
    }

    /** @return (a + b) mod q for a, b in [0, q). */
    std::uint64_t
    add(std::uint64_t a, std::uint64_t b) const
    {
        std::uint64_t s = a + b;
        if (s >= value_)
            s -= value_;
        return s;
    }

    /** @return (a - b) mod q for a, b in [0, q). */
    std::uint64_t
    sub(std::uint64_t a, std::uint64_t b) const
    {
        return a >= b ? a - b : a + value_ - b;
    }

    /** @return (a * b) mod q for a, b in [0, q). */
    std::uint64_t
    mul(std::uint64_t a, std::uint64_t b) const
    {
        return reduce(static_cast<unsigned __int128>(a) * b);
    }

    /** @return (-a) mod q for a in [0, q). */
    std::uint64_t
    negate(std::uint64_t a) const
    {
        return a == 0 ? 0 : value_ - a;
    }

    /** @return a^e mod q by square-and-multiply. */
    std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;

    /**
     * @return the multiplicative inverse of @p a, which must be coprime
     * with q. For prime q this is a^(q-2).
     */
    std::uint64_t inverse(std::uint64_t a) const;

    /** Reduce an arbitrary signed value into [0, q). */
    std::uint64_t reduceSigned(__int128 x) const;

    /** Map a residue to its centered representative in (-q/2, q/2]. */
    std::int64_t
    toCentered(std::uint64_t a) const
    {
        return a > value_ / 2
                   ? static_cast<std::int64_t>(a) -
                         static_cast<std::int64_t>(value_)
                   : static_cast<std::int64_t>(a);
    }

    bool operator==(const Modulus &other) const
    {
        return value_ == other.value_;
    }

    // --- raw Barrett constants for the SIMD kernel translation units
    // (src/modarith/simd_kernels_*.cpp), which re-derive reduce(),
    // reduceWide() and mulShoup() lane-wise from the same constants so
    // the vector paths stay bitwise identical to the methods above.

    /** floor(2^(2*bits) / q), the reduce() Barrett constant. */
    std::uint64_t barrettMu() const { return mu_; }
    /** Upper 64 bits of floor(2^128 / q) (reduceWide() constant). */
    std::uint64_t wideMuHi() const { return mu128Hi_; }
    /** Lower 64 bits of floor(2^128 / q) (reduceWide() constant). */
    std::uint64_t wideMuLo() const { return mu128Lo_; }

  private:
    std::uint64_t value_ = 0;
    std::uint64_t mu_ = 0; ///< floor(2^(2*bits) / q) Barrett constant
    std::uint64_t mu128Hi_ = 0; ///< floor(2^128 / q), upper 64 bits
    std::uint64_t mu128Lo_ = 0; ///< floor(2^128 / q), lower 64 bits
    unsigned bits_ = 0;
};

} // namespace fxhenn

#endif // FXHENN_MODARITH_MODULUS_HPP
