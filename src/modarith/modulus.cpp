#include "src/modarith/modulus.hpp"

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"

namespace fxhenn {

Modulus::Modulus(std::uint64_t value)
    : value_(value)
{
    FXHENN_FATAL_IF(value < 2, "modulus must be >= 2");
    FXHENN_FATAL_IF(value >> 60, "modulus must be < 2^60");
    bits_ = floorLog2(value) + 1;
    // mu = floor(2^(2*bits) / q); 2*bits <= 120 fits in 128-bit division.
    const unsigned __int128 numerator =
        static_cast<unsigned __int128>(1) << (2 * bits_);
    mu_ = static_cast<std::uint64_t>(numerator / value_);
    // mu128 = floor(2^128 / q) for reduceWide(). 2^128 itself does not
    // fit in 128 bits, but q never divides 2^128 (q is odd and > 1 in
    // every NTT-compatible chain), so floor((2^128 - 1) / q) equals it.
    FXHENN_FATAL_IF(value % 2 == 0, "modulus must be odd");
    const unsigned __int128 mu128 =
        ~static_cast<unsigned __int128>(0) / value_;
    mu128Hi_ = static_cast<std::uint64_t>(mu128 >> 64);
    mu128Lo_ = static_cast<std::uint64_t>(mu128);
}

std::uint64_t
Modulus::pow(std::uint64_t a, std::uint64_t e) const
{
    std::uint64_t base = a >= value_ ? a % value_ : a;
    std::uint64_t result = 1;
    while (e) {
        if (e & 1)
            result = mul(result, base);
        base = mul(base, base);
        e >>= 1;
    }
    return result;
}

std::uint64_t
Modulus::inverse(std::uint64_t a) const
{
    FXHENN_ASSERT(a % value_ != 0, "inverse of zero requested");
    // value_ is prime throughout the library, so Fermat applies.
    return pow(a, value_ - 2);
}

std::uint64_t
Modulus::reduceSigned(__int128 x) const
{
    const __int128 q = static_cast<__int128>(value_);
    __int128 r = x % q;
    if (r < 0)
        r += q;
    return static_cast<std::uint64_t>(r);
}

} // namespace fxhenn
