/**
 * @file
 * AVX-512 (IFMA) modular-arithmetic kernels — 8 lanes of 64-bit
 * residues per vector op.
 *
 * The NTT butterflies here are the software analogue of the paper's
 * widened modular-multiply datapath: vpmadd52{lo,hi} gives eight
 * exact 52x52->104-bit multiply-adds per instruction, so the Shoup
 * multiply runs on a 52-bit word (W' = floor(W*2^52/q), derived from
 * the stored 64-bit Shoup constant by >> 12) with Harvey's lazy
 * bounds: butterfly operands stay in [0, 4q) (forward) / [0, 2q)
 * (inverse) and a final pass canonicalizes to [0, q). Because every
 * intermediate is an exactly-determined integer and the final values
 * are canonical residues, the output array is bitwise identical to
 * the scalar reference (tests/modarith/test_simd_differential.cpp).
 *
 * Datapath limit: the lazy bound 4q < 2^52 requires q < 2^50. CKKS
 * data primes are capped at 50 bits (CkksParams::validate), but
 * special primes may reach 60 bits; calls with q >= 2^50 delegate to
 * the avx2 kernel, which has no width limit.
 *
 * Butterfly stages whose stride t is below the 8-lane width are
 * deinterleaved with permutex2var shuffles so they stay vector (one
 * pass covers 16 coefficients); rings below 16 coefficients run the
 * same lazy formulas in scalar code. Since every unit computes the
 * same integers, stages can mix freely.
 */
#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "src/modarith/simd_kernels_internal.hpp"

// gcc's unmasked _mm512_min_epu64 passes an _mm512_undefined_epi32()
// merge source the optimizer then flags as maybe-uninitialized; the
// lanes are fully overwritten (mask = all ones), so the warning is a
// false positive.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace fxhenn::simd {
namespace {

constexpr std::uint64_t kMask52 = (std::uint64_t{1} << 52) - 1;

/** q too wide for the 52-bit IFMA datapath (needs 4q < 2^52). */
inline bool
tooWide(std::uint64_t q)
{
    return q >= (std::uint64_t{1} << 50);
}

inline __m512i
loadU64(const std::uint64_t *p)
{
    return _mm512_loadu_si512(reinterpret_cast<const void *>(p));
}

inline void
storeU64(std::uint64_t *p, __m512i v)
{
    _mm512_storeu_si512(reinterpret_cast<void *>(p), v);
}

/** low/high 52 bits of the exact 104-bit product of 52-bit operands. */
inline __m512i
mul52lo(__m512i a, __m512i b)
{
    return _mm512_madd52lo_epu64(_mm512_setzero_si512(), a, b);
}

inline __m512i
mul52hi(__m512i a, __m512i b)
{
    return _mm512_madd52hi_epu64(_mm512_setzero_si512(), a, b);
}

/** x >= bound ? x - bound : x, for x < 2^63 (unsigned-min trick: the
 * subtraction underflows to a huge value exactly when x < bound). */
inline __m512i
csub(__m512i x, __m512i bound)
{
    return _mm512_min_epu64(x, _mm512_sub_epi64(x, bound));
}

/**
 * Harvey/Shoup multiply on the 52-bit word: W*X mod q in [0, 2q) for
 * any X < 2^52, W < q, Wp = floor(W*2^52/q). The masked subtraction
 * is exact because the true remainder is below 2^52.
 */
inline __m512i
shoup52(__m512i x, __m512i w, __m512i wp, __m512i q, __m512i m52)
{
    const __m512i quot = mul52hi(x, wp);
    const __m512i r =
        _mm512_sub_epi64(mul52lo(x, w), mul52lo(quot, q));
    return _mm512_and_si512(r, m52);
}

/** Scalar twin of shoup52 for tiny rings and tails. */
inline std::uint64_t
shoup52Scalar(std::uint64_t x, std::uint64_t w, std::uint64_t wp,
              std::uint64_t q)
{
    const std::uint64_t quot = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * wp) >> 52);
    return (x * w - quot * q) & kMask52;
}

/**
 * Shuffle plan for butterfly strides below the 8-lane width. Two
 * consecutive vectors (16 coefficients) are deinterleaved into an X
 * (upper-wing) and Y (lower-wing) vector, butterflied, and woven
 * back. Twiddles for the covered groups are contiguous in the table,
 * so one load + permutexvar spreads them across the lanes.
 */
struct SmallStride
{
    __m512i xIdx;   ///< permutex2var: gather upper wings from (v0,v1)
    __m512i yIdx;   ///< permutex2var: gather lower wings
    __m512i out0Idx; ///< permutex2var: weave (X', Y') into a[base..+8)
    __m512i out1Idx; ///< permutex2var: weave into a[base+8..+16)
    __m512i twIdx;  ///< permutexvar: spread loaded twiddles per lane
    std::uint64_t groups; ///< butterfly groups per 16 coefficients
};

inline SmallStride
smallStridePlan(std::uint64_t t)
{
    auto idx = [](long long a, long long b, long long c, long long d,
                  long long e, long long f, long long g, long long h) {
        return _mm512_setr_epi64(a, b, c, d, e, f, g, h);
    };
    SmallStride p;
    if (t == 4) {
        p.xIdx = idx(0, 1, 2, 3, 8, 9, 10, 11);
        p.yIdx = idx(4, 5, 6, 7, 12, 13, 14, 15);
        p.out0Idx = idx(0, 1, 2, 3, 8, 9, 10, 11);
        p.out1Idx = idx(4, 5, 6, 7, 12, 13, 14, 15);
        p.twIdx = idx(0, 0, 0, 0, 1, 1, 1, 1);
        p.groups = 2;
    } else if (t == 2) {
        p.xIdx = idx(0, 1, 4, 5, 8, 9, 12, 13);
        p.yIdx = idx(2, 3, 6, 7, 10, 11, 14, 15);
        p.out0Idx = idx(0, 1, 8, 9, 2, 3, 10, 11);
        p.out1Idx = idx(4, 5, 12, 13, 6, 7, 14, 15);
        p.twIdx = idx(0, 0, 1, 1, 2, 2, 3, 3);
        p.groups = 4;
    } else { // t == 1
        p.xIdx = idx(0, 2, 4, 6, 8, 10, 12, 14);
        p.yIdx = idx(1, 3, 5, 7, 9, 11, 13, 15);
        p.out0Idx = idx(0, 8, 1, 9, 2, 10, 3, 11);
        p.out1Idx = idx(4, 12, 5, 13, 6, 14, 7, 15);
        p.twIdx = idx(0, 1, 2, 3, 4, 5, 6, 7);
        p.groups = 8;
    }
    return p;
}

void
nttForwardAvx512(std::uint64_t *a, std::uint64_t n, const std::uint64_t *w,
                 const std::uint64_t *wShoup, std::uint64_t q)
{
    if (tooWide(q)) {
        detail::avx2Kernels().nttForward(a, n, w, wShoup, q);
        return;
    }
    const std::uint64_t q2 = 2 * q;
    const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    const __m512i q2v = _mm512_set1_epi64(static_cast<long long>(q2));
    const __m512i m52 = _mm512_set1_epi64(static_cast<long long>(kMask52));

    // Cooley-Tukey DIT, lazy Harvey butterflies: operands in [0, 4q).
    std::uint64_t t = n;
    for (std::uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 8) {
            for (std::uint64_t i = 0; i < m; ++i) {
                const __m512i wv = _mm512_set1_epi64(
                    static_cast<long long>(w[m + i]));
                const __m512i wpv = _mm512_set1_epi64(
                    static_cast<long long>(wShoup[m + i] >> 12));
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; j += 8) {
                    const __m512i x = csub(loadU64(a + j), q2v);
                    const __m512i v =
                        shoup52(loadU64(a + j + t), wv, wpv, qv, m52);
                    storeU64(a + j, _mm512_add_epi64(x, v));
                    storeU64(a + j + t,
                             _mm512_add_epi64(_mm512_sub_epi64(x, v),
                                              q2v));
                }
            }
        } else if (n >= 16) {
            // Sub-width strides: one shuffled pass over the whole
            // row, 16 coefficients (p.groups butterfly groups) at a
            // time. Twiddles w[m..2m) are contiguous, so the group
            // block starting at coefficient `base` uses the p.groups
            // twiddles at w[m + base/(2t)).
            const SmallStride p = smallStridePlan(t);
            for (std::uint64_t base = 0, g = 0; base < n;
                 base += 16, g += p.groups) {
                const __m512i wv = _mm512_permutexvar_epi64(
                    p.twIdx, loadU64(w + m + g));
                const __m512i wpv = _mm512_srli_epi64(
                    _mm512_permutexvar_epi64(p.twIdx,
                                             loadU64(wShoup + m + g)),
                    12);
                const __m512i v0 = loadU64(a + base);
                const __m512i v1 = loadU64(a + base + 8);
                const __m512i x = csub(
                    _mm512_permutex2var_epi64(v0, p.xIdx, v1), q2v);
                const __m512i v = shoup52(
                    _mm512_permutex2var_epi64(v0, p.yIdx, v1), wv, wpv,
                    qv, m52);
                const __m512i xn = _mm512_add_epi64(x, v);
                const __m512i yn = _mm512_add_epi64(
                    _mm512_sub_epi64(x, v), q2v);
                storeU64(a + base,
                         _mm512_permutex2var_epi64(xn, p.out0Idx, yn));
                storeU64(a + base + 8,
                         _mm512_permutex2var_epi64(xn, p.out1Idx, yn));
            }
        } else {
            for (std::uint64_t i = 0; i < m; ++i) {
                const std::uint64_t wi = w[m + i];
                const std::uint64_t wp = wShoup[m + i] >> 12;
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; ++j) {
                    std::uint64_t x = a[j];
                    if (x >= q2)
                        x -= q2;
                    const std::uint64_t v =
                        shoup52Scalar(a[j + t], wi, wp, q);
                    a[j] = x + v;
                    a[j + t] = x - v + q2;
                }
            }
        }
    }
    // Canonicalize [0, 4q) -> [0, q); outputs now match the scalar
    // reference bitwise.
    std::uint64_t k = 0;
    for (; k + 8 <= n; k += 8)
        storeU64(a + k, csub(csub(loadU64(a + k), q2v), qv));
    for (; k < n; ++k) {
        if (a[k] >= q2)
            a[k] -= q2;
        if (a[k] >= q)
            a[k] -= q;
    }
}

void
nttInverseAvx512(std::uint64_t *a, std::uint64_t n, const std::uint64_t *w,
                 const std::uint64_t *wShoup, std::uint64_t q,
                 std::uint64_t invN, std::uint64_t invNShoup)
{
    if (tooWide(q)) {
        detail::avx2Kernels().nttInverse(a, n, w, wShoup, q, invN,
                                         invNShoup);
        return;
    }
    const std::uint64_t q2 = 2 * q;
    const __m512i qv = _mm512_set1_epi64(static_cast<long long>(q));
    const __m512i q2v = _mm512_set1_epi64(static_cast<long long>(q2));
    const __m512i m52 = _mm512_set1_epi64(static_cast<long long>(kMask52));

    // Gentleman-Sande DIF, lazy: operands stay in [0, 2q).
    std::uint64_t t = 1;
    for (std::uint64_t m = n; m > 1; m >>= 1) {
        const std::uint64_t h = m >> 1;
        if (t >= 8) {
            for (std::uint64_t i = 0; i < h; ++i) {
                const __m512i wv = _mm512_set1_epi64(
                    static_cast<long long>(w[h + i]));
                const __m512i wpv = _mm512_set1_epi64(
                    static_cast<long long>(wShoup[h + i] >> 12));
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; j += 8) {
                    const __m512i x = loadU64(a + j);
                    const __m512i y = loadU64(a + j + t);
                    const __m512i diff = _mm512_add_epi64(
                        _mm512_sub_epi64(x, y), q2v);
                    storeU64(a + j,
                             csub(_mm512_add_epi64(x, y), q2v));
                    storeU64(a + j + t,
                             shoup52(diff, wv, wpv, qv, m52));
                }
            }
        } else if (n >= 16) {
            const SmallStride p = smallStridePlan(t);
            for (std::uint64_t base = 0, g = 0; base < n;
                 base += 16, g += p.groups) {
                const __m512i wv = _mm512_permutexvar_epi64(
                    p.twIdx, loadU64(w + h + g));
                const __m512i wpv = _mm512_srli_epi64(
                    _mm512_permutexvar_epi64(p.twIdx,
                                             loadU64(wShoup + h + g)),
                    12);
                const __m512i v0 = loadU64(a + base);
                const __m512i v1 = loadU64(a + base + 8);
                const __m512i x =
                    _mm512_permutex2var_epi64(v0, p.xIdx, v1);
                const __m512i y =
                    _mm512_permutex2var_epi64(v0, p.yIdx, v1);
                const __m512i diff =
                    _mm512_add_epi64(_mm512_sub_epi64(x, y), q2v);
                const __m512i xn = csub(_mm512_add_epi64(x, y), q2v);
                const __m512i yn = shoup52(diff, wv, wpv, qv, m52);
                storeU64(a + base,
                         _mm512_permutex2var_epi64(xn, p.out0Idx, yn));
                storeU64(a + base + 8,
                         _mm512_permutex2var_epi64(xn, p.out1Idx, yn));
            }
        } else {
            for (std::uint64_t i = 0; i < h; ++i) {
                const std::uint64_t wi = w[h + i];
                const std::uint64_t wp = wShoup[h + i] >> 12;
                const std::uint64_t j1 = 2 * i * t;
                for (std::uint64_t j = j1; j < j1 + t; ++j) {
                    const std::uint64_t x = a[j];
                    const std::uint64_t y = a[j + t];
                    std::uint64_t s = x + y;
                    if (s >= q2)
                        s -= q2;
                    a[j] = s;
                    a[j + t] = shoup52Scalar(x - y + q2, wi, wp, q);
                }
            }
        }
        t <<= 1;
    }
    // Merged N^-1 scaling + canonicalization: shoup52 lands in
    // [0, 2q), one conditional subtraction reaches [0, q).
    const std::uint64_t invNp = invNShoup >> 12;
    const __m512i invNv = _mm512_set1_epi64(static_cast<long long>(invN));
    const __m512i invNpv =
        _mm512_set1_epi64(static_cast<long long>(invNp));
    std::uint64_t k = 0;
    for (; k + 8 <= n; k += 8)
        storeU64(a + k,
                 csub(shoup52(loadU64(a + k), invNv, invNpv, qv, m52),
                      qv));
    for (; k < n; ++k) {
        const std::uint64_t r = shoup52Scalar(a[k], invN, invNp, q);
        a[k] = r >= q ? r - q : r;
    }
}

} // namespace

namespace detail {

const Kernels &
avx512Kernels()
{
    // Only the NTT is re-implemented on the IFMA datapath; the array
    // kernels reuse the avx2 implementations (already vector, and the
    // 128-bit lazy accumulator is bound by the 64x64 multiply either
    // way).
    static const Kernels table = [] {
        Kernels k = avx2Kernels();
        k.level = Level::avx512;
        k.width = laneWidth(Level::avx512);
        k.nttForward = &nttForwardAvx512;
        k.nttInverse = &nttInverseAvx512;
        return k;
    }();
    return table;
}

} // namespace detail
} // namespace fxhenn::simd
