/**
 * @file
 * Negacyclic number-theoretic transform over Z_q[X]/(X^N + 1).
 *
 * This is the software counterpart of the paper's fundamental NTT basic
 * operation module (Eq. 4: LAT_NTT = log2(N) * N / (2 * nc_NTT)); the
 * FPGA latency model in src/fpga mirrors exactly the butterfly counts
 * performed here.
 *
 * The forward transform is the Cooley-Tukey decimation-in-time variant
 * with the 2N-th root powers merged in (so no separate pre-multiply by
 * psi^i is needed); the inverse is Gentleman-Sande with merged psi^-i and
 * the final scaling by N^-1 folded into the last pass.
 */
#ifndef FXHENN_MODARITH_NTT_HPP
#define FXHENN_MODARITH_NTT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/modarith/modulus.hpp"

namespace fxhenn {

/** Precomputed twiddle tables for one (N, q) pair. */
class NttTables
{
  public:
    /**
     * Build tables for ring degree @p n (power of two) and prime @p q
     * with q = 1 (mod 2n).
     */
    NttTables(std::uint64_t n, const Modulus &q);

    /** In-place forward negacyclic NTT (natural -> bit-reversed order). */
    void forward(std::span<std::uint64_t> a) const;

    /** In-place inverse negacyclic NTT (bit-reversed -> natural order). */
    void inverse(std::span<std::uint64_t> a) const;

    std::uint64_t n() const { return n_; }
    const Modulus &modulus() const { return q_; }

    /** Butterfly count of one forward or inverse transform. */
    std::uint64_t
    butterflyCount() const
    {
        return n_ / 2 * log2n_;
    }

  private:
    std::uint64_t n_;
    unsigned log2n_;
    Modulus q_;
    /** psi^brv(i): powers of the 2N-th root in bit-reversed order. */
    std::vector<std::uint64_t> rootPowers_;
    /** psi^-brv(i) for the inverse transform. */
    std::vector<std::uint64_t> invRootPowers_;
    /**
     * Shoup precomputations floor(w * 2^64 / q) for every twiddle:
     * the butterflies then need one high-half product and one wrapping
     * multiply instead of a full Barrett reduction (the same trick the
     * HEAX NTT core uses to fit one butterfly per cycle per DSP group).
     */
    std::vector<std::uint64_t> rootShoup_;
    std::vector<std::uint64_t> invRootShoup_;
    std::uint64_t invN_;      ///< N^-1 mod q
    std::uint64_t invNShoup_; ///< Shoup constant of N^-1
};

/**
 * Shoup modular multiplication: (x * w) mod q given the precomputed
 * wShoup = floor(w * 2^64 / q). Requires x < q and w < q < 2^63.
 */
inline std::uint64_t
shoupMul(std::uint64_t x, std::uint64_t w, std::uint64_t wShoup,
         std::uint64_t q)
{
    const std::uint64_t hi = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * wShoup) >> 64);
    std::uint64_t r = x * w - hi * q; // wrapping arithmetic
    if (r >= q)
        r -= q;
    return r;
}

} // namespace fxhenn

#endif // FXHENN_MODARITH_NTT_HPP
