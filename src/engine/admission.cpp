#include "src/engine/admission.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::engine {

const char *
admissionPolicyName(AdmissionPolicy policy)
{
    switch (policy) {
      case AdmissionPolicy::block:
        return "block";
      case AdmissionPolicy::shed:
        return "shed";
      case AdmissionPolicy::degrade:
        return "degrade";
    }
    return "unknown";
}

AdmissionPolicy
parseAdmissionPolicy(const std::string &name)
{
    if (name == "block")
        return AdmissionPolicy::block;
    if (name == "shed")
        return AdmissionPolicy::shed;
    if (name == "degrade")
        return AdmissionPolicy::degrade;
    throw ConfigError("unknown admission policy '" + name +
                      "' (expected block, shed or degrade)");
}

ServiceTimeEstimator::ServiceTimeEstimator(double alpha) : alpha_(alpha)
{
    FXHENN_FATAL_IF(!(alpha > 0.0) || alpha > 1.0,
                    "service-time EWMA alpha must be in (0, 1]");
}

void
ServiceTimeEstimator::record(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    std::scoped_lock lock(mutex_);
    ewma_ = samples_ == 0 ? seconds
                          : alpha_ * seconds + (1.0 - alpha_) * ewma_;
    samples_ += 1;
}

double
ServiceTimeEstimator::estimateSeconds() const
{
    std::scoped_lock lock(mutex_);
    return samples_ == 0 ? 0.0 : ewma_;
}

std::uint64_t
ServiceTimeEstimator::samples() const
{
    std::scoped_lock lock(mutex_);
    return samples_;
}

double
retryBackoffSeconds(const RetryOptions &retry, std::uint32_t attempt)
{
    if (retry.backoffBaseSeconds <= 0.0 || attempt == 0)
        return 0.0;
    double backoff = retry.backoffBaseSeconds;
    for (std::uint32_t i = 1; i < attempt; ++i) {
        backoff *= 2.0;
        if (backoff >= retry.backoffMaxSeconds)
            break;
    }
    return std::min(backoff, retry.backoffMaxSeconds);
}

bool
transientFailure(const robustness::FailureReport &report)
{
    // Permanent classes carry a serving-layer op tag; everything else
    // is a guard-detected violation (an opcode, "layer-end" or the
    // injected "transient") that a fresh attempt can clear.
    return report.op != "exception" && report.op != "shed" &&
           report.op != "breaker" && report.op != "deadline";
}

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::closed:
        return "closed";
      case BreakerState::open:
        return "open";
      case BreakerState::halfOpen:
        return "half-open";
    }
    return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(options)
{
}

bool
CircuitBreaker::admitAt(TimePoint now)
{
    if (disabled())
        return true;
    std::scoped_lock lock(mutex_);
    switch (state_) {
      case BreakerState::closed:
        return true;
      case BreakerState::open:
        if (now < reopenAt_)
            return false;
        state_ = BreakerState::halfOpen;
        probeInFlight_ = true;
        FXHENN_TELEM_COUNT("engine.breaker.half_open_probes", 1);
        return true;
      case BreakerState::halfOpen:
        // One probe at a time: everyone else keeps getting shed until
        // the in-flight probe settles the breaker's fate.
        return false;
    }
    return true;
}

void
CircuitBreaker::onSuccess()
{
    if (disabled())
        return;
    std::scoped_lock lock(mutex_);
    consecutiveFailures_ = 0;
    if (state_ == BreakerState::halfOpen) {
        state_ = BreakerState::closed;
        probeInFlight_ = false;
        FXHENN_TELEM_COUNT("engine.breaker.closed", 1);
    }
}

void
CircuitBreaker::onFailureAt(TimePoint now)
{
    if (disabled())
        return;
    std::scoped_lock lock(mutex_);
    const auto dwell = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(options_.openSeconds));
    if (state_ == BreakerState::halfOpen) {
        state_ = BreakerState::open;
        probeInFlight_ = false;
        reopenAt_ = now + dwell;
        opens_ += 1;
        FXHENN_TELEM_COUNT("engine.breaker.opened", 1);
        return;
    }
    consecutiveFailures_ += 1;
    if (state_ == BreakerState::closed &&
        consecutiveFailures_ >= options_.tripAfterConsecutiveFailures) {
        state_ = BreakerState::open;
        reopenAt_ = now + dwell;
        opens_ += 1;
        FXHENN_TELEM_COUNT("engine.breaker.opened", 1);
    }
}

BreakerState
CircuitBreaker::state() const
{
    std::scoped_lock lock(mutex_);
    return state_;
}

std::uint64_t
CircuitBreaker::opens() const
{
    std::scoped_lock lock(mutex_);
    return opens_;
}

} // namespace fxhenn::engine
