/**
 * @file
 * Bounded MPMC queue with blocking backpressure.
 *
 * The inference engine's admission path: producers (request submitters)
 * block in push() once `capacity` requests are in flight, which caps
 * the engine's memory footprint (each queued request pins an input
 * tensor; each in-flight one pins a whole ciphertext register file).
 * close() wakes everyone: pending pushes fail, pops drain what is left
 * and then fail, so shutdown never loses an accepted request.
 *
 * pushFor() is the deadline-aware variant: a producer with a request
 * SLO waits for room only as long as the request could still make its
 * deadline, and learns distinctly whether the item was accepted, the
 * deadline passed (shed it), or the queue closed (engine shut down).
 */
#ifndef FXHENN_ENGINE_REQUEST_QUEUE_HPP
#define FXHENN_ENGINE_REQUEST_QUEUE_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/assert.hpp"
#include "src/common/thread_annotations.hpp"

namespace fxhenn::engine {

/** Outcome of a deadline-bounded pushFor(). */
enum class PushResult { accepted, timedOut, closed };

/** Bounded blocking queue; all methods are thread-safe. */
template <typename T>
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity)
    {
        FXHENN_FATAL_IF(capacity == 0,
                        "request queue capacity must be positive");
    }

    /**
     * Block until there is room (backpressure), then enqueue.
     * @return false when the queue was closed (item not enqueued).
     */
    bool
    push(T item)
    {
        std::unique_lock lock(mutex_);
        notFull_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Deadline-aware admission: block until there is room, but only
     * until @p deadline. A deadline already in the past degenerates to
     * a tryPush-shaped fast path — when the queue is full the caller
     * gets PushResult::timedOut immediately, without ever parking
     * (the engine relies on this to shed expired requests cheaply).
     * Room available wins over an expired deadline: the item is
     * enqueued and the caller's own deadline checks decide its fate.
     * @p item is moved from only on PushResult::accepted; on any other
     * outcome the caller keeps it (so a rejected request's promise can
     * still be resolved).
     */
    PushResult
    pushFor(T &&item, std::chrono::steady_clock::time_point deadline)
    {
        std::unique_lock lock(mutex_);
        const bool admitted = notFull_.wait_until(lock, deadline, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (!admitted)
            return PushResult::timedOut;
        if (closed_)
            return PushResult::closed;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return PushResult::accepted;
    }

    /**
     * Enqueue only if there is room right now; never blocks. @p item
     * is moved from only on success — a refused caller keeps it.
     */
    bool
    tryPush(T &&item)
    {
        std::unique_lock lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and
     * drained. @return false only when closed and empty.
     */
    bool
    pop(T &out)
    {
        std::unique_lock lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /**
     * Batch accumulation window: append up to @p maxItems items to
     * @p out, waiting for stragglers until @p flushAt. Returns as soon
     * as @p maxItems are collected, at @p flushAt with whatever
     * arrived (possibly zero items), or when the queue closes (the
     * drained remainder is still delivered). The pops are atomic in
     * the sense that items leave the queue in FIFO order with no
     * interleaved consumer between two items of one call's window.
     * @return the number of items appended.
     */
    std::size_t
    popUpToUntil(std::vector<T> &out, std::size_t maxItems,
                 std::chrono::steady_clock::time_point flushAt)
    {
        std::unique_lock lock(mutex_);
        std::size_t taken = 0;
        while (taken < maxItems) {
            if (items_.empty()) {
                const bool ready = notEmpty_.wait_until(
                    lock, flushAt,
                    [&] { return closed_ || !items_.empty(); });
                if (!ready)
                    break; // window expired
                if (items_.empty())
                    break; // closed and drained
            }
            out.push_back(std::move(items_.front()));
            items_.pop_front();
            notFull_.notify_one();
            ++taken;
        }
        return taken;
    }

    /** Reject future pushes; pops drain the remaining items. */
    void
    close()
    {
        std::unique_lock lock(mutex_);
        closed_ = true;
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::unique_lock lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::unique_lock lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_ FXHENN_GUARDED_BY(mutex_);
    bool closed_ FXHENN_GUARDED_BY(mutex_) = false;
};

} // namespace fxhenn::engine

#endif // FXHENN_ENGINE_REQUEST_QUEUE_HPP
