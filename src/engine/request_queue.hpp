/**
 * @file
 * Bounded MPMC queue with blocking backpressure.
 *
 * The inference engine's admission path: producers (request submitters)
 * block in push() once `capacity` requests are in flight, which caps
 * the engine's memory footprint (each queued request pins an input
 * tensor; each in-flight one pins a whole ciphertext register file).
 * close() wakes everyone: pending pushes fail, pops drain what is left
 * and then fail, so shutdown never loses an accepted request.
 */
#ifndef FXHENN_ENGINE_REQUEST_QUEUE_HPP
#define FXHENN_ENGINE_REQUEST_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/assert.hpp"

namespace fxhenn::engine {

/** Bounded blocking queue; all methods are thread-safe. */
template <typename T>
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity)
    {
        FXHENN_FATAL_IF(capacity == 0,
                        "request queue capacity must be positive");
    }

    /**
     * Block until there is room (backpressure), then enqueue.
     * @return false when the queue was closed (item not enqueued).
     */
    bool
    push(T item)
    {
        std::unique_lock lock(mutex_);
        notFull_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /** Enqueue only if there is room right now; never blocks. */
    bool
    tryPush(T item)
    {
        std::unique_lock lock(mutex_);
        if (closed_ || items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and
     * drained. @return false only when closed and empty.
     */
    bool
    pop(T &out)
    {
        std::unique_lock lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /** Reject future pushes; pops drain the remaining items. */
    void
    close()
    {
        std::unique_lock lock(mutex_);
        closed_ = true;
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::unique_lock lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::unique_lock lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace fxhenn::engine

#endif // FXHENN_ENGINE_REQUEST_QUEUE_HPP
