/**
 * @file
 * Overload-resilience primitives of the serving tier: the admission
 * policy, the online service-time estimate it consults, the
 * transient-vs-permanent failure classification behind deterministic
 * retry, and the circuit breaker.
 *
 * These types are deliberately engine-agnostic (no queue, no threads):
 * every decision is a pure function of explicit inputs — queue depth,
 * an EWMA, a clock reading — so the unit tests in
 * tests/engine/test_admission.cpp can drive each state machine with
 * synthetic time points and exact arithmetic. engine::InferenceEngine
 * wires them to its RequestQueue and worker pool.
 *
 * The trio mirrors robustness::GuardPolicy (strict/warn/degrade) one
 * layer up, applied to load instead of ciphertext invariants:
 *
 *  - AdmissionPolicy::block   — classic backpressure: submitters wait
 *                               for queue room (the pre-PR 7 behavior);
 *  - AdmissionPolicy::shed    — fast-fail at the door: a request that
 *                               cannot meet its deadline (queue full,
 *                               or the EWMA predicts an SLO miss) is
 *                               rejected immediately with a structured
 *                               FailureReport outcome, never an
 *                               exception and never a silent drop;
 *  - AdmissionPolicy::degrade — admit everything, but cut losses
 *                               cooperatively: an expired request is
 *                               abandoned at the next checkpoint
 *                               (queue pop or layer boundary) and
 *                               degrades into a FailureReport, exactly
 *                               like GuardPolicy::degrade does for
 *                               invariant violations.
 */
#ifndef FXHENN_ENGINE_ADMISSION_HPP
#define FXHENN_ENGINE_ADMISSION_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/common/thread_annotations.hpp"
#include "src/robustness/guard.hpp"

namespace fxhenn::engine {

/** What the engine does with a request it cannot serve in time. */
enum class AdmissionPolicy { block, shed, degrade };

/** @return "block" | "shed" | "degrade". */
const char *admissionPolicyName(AdmissionPolicy policy);

/** Parse a policy name; throws ConfigError on anything else. */
AdmissionPolicy parseAdmissionPolicy(const std::string &name);

/**
 * Exponentially weighted moving average of observed per-request
 * service time. Thread-safe; estimateSeconds() returns 0 until the
 * first sample, which admission treats as "no estimate yet — admit".
 */
class ServiceTimeEstimator
{
  public:
    /** @p alpha is the weight of the newest sample, in (0, 1]. */
    explicit ServiceTimeEstimator(double alpha = 0.2);

    void record(double seconds);
    double estimateSeconds() const;
    std::uint64_t samples() const;

  private:
    const double alpha_;
    mutable std::mutex mutex_;
    double ewma_ FXHENN_GUARDED_BY(mutex_) = 0.0;
    std::uint64_t samples_ FXHENN_GUARDED_BY(mutex_) = 0;
};

/**
 * Deterministic retry knobs. A transient failure is re-run up to
 * maxRetries times; every attempt reuses the same (keySeed,
 * requestIndex) noise stream, so a retry that succeeds is bitwise
 * identical to a first-try success (the whole point — callers cannot
 * tell, and the serial cross-check still holds).
 */
struct RetryOptions
{
    /** Re-runs of a transient failure (0 = retries disabled). */
    std::uint32_t maxRetries = 0;
    /** First backoff sleep; doubles per attempt. 0 = no sleep. */
    double backoffBaseSeconds = 0.0;
    /** Upper bound of the exponential backoff. */
    double backoffMaxSeconds = 0.100;
};

/**
 * @return the bounded exponential backoff before retry @p attempt
 * (attempt 1 = first re-run): min(base * 2^(attempt-1), max).
 */
double retryBackoffSeconds(const RetryOptions &retry,
                           std::uint32_t attempt);

/**
 * Classify a FailureReport as transient (worth re-running) or
 * permanent. Transient failures are the ones a fresh attempt can
 * plausibly clear: fault-injected corruption detected by the guard,
 * headroom/scale violations surfaced under GuardPolicy::degrade, and
 * the engine.request:transient probe. Permanent ones are structural
 * and would fail identically again: exceptions (malformed input,
 * internal errors), admission sheds, breaker short-circuits and
 * deadline expiries (retrying an already-late request only makes the
 * tail worse).
 */
bool transientFailure(const robustness::FailureReport &report);

/** Circuit-breaker position, surfaced in EngineStats. */
enum class BreakerState { closed, open, halfOpen };

/** @return "closed" | "open" | "half-open". */
const char *breakerStateName(BreakerState state);

/** Trip behavior of the circuit breaker. */
struct BreakerOptions
{
    /**
     * Consecutive executed-and-degraded outcomes that trip the breaker
     * open (0 = breaker disabled; sheds and deadline expiries do not
     * count — only requests that ran and failed).
     */
    std::uint32_t tripAfterConsecutiveFailures = 0;
    /** Open dwell before a half-open probe is admitted. */
    double openSeconds = 0.050;
};

/**
 * Consecutive-failure circuit breaker with half-open probes.
 *
 * closed --(N consecutive failures)--> open --(dwell elapses, one
 * probe admitted)--> half-open --(probe ok)--> closed, or --(probe
 * fails)--> open again. While open, admit() returns false and the
 * engine sheds the request with op "breaker" instead of queueing work
 * that is overwhelmingly likely to fail.
 *
 * All time-dependent transitions take an explicit time_point so tests
 * can drive the machine deterministically; the engine passes
 * steady_clock::now(). Thread-safe.
 */
class CircuitBreaker
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;

    explicit CircuitBreaker(BreakerOptions options = {});

    /** @return true when the breaker never trips (threshold 0). */
    bool disabled() const { return options_.tripAfterConsecutiveFailures == 0; }

    /**
     * Admission gate. Returns true when the request may proceed:
     * always when closed, and exactly once per open dwell (the
     * half-open probe). Returns false while open (dwell not elapsed)
     * or while a half-open probe is already in flight.
     */
    bool admitAt(TimePoint now);
    bool admit() { return admitAt(std::chrono::steady_clock::now()); }

    /** An executed request completed cleanly. */
    void onSuccess();

    /** An executed request degraded. */
    void onFailureAt(TimePoint now);
    void onFailure() { onFailureAt(std::chrono::steady_clock::now()); }

    BreakerState state() const;

    /** Times the breaker tripped closed -> open or half-open -> open. */
    std::uint64_t opens() const;

  private:
    const BreakerOptions options_;
    mutable std::mutex mutex_;
    BreakerState state_ FXHENN_GUARDED_BY(mutex_) =
        BreakerState::closed;
    std::uint32_t consecutiveFailures_ FXHENN_GUARDED_BY(mutex_) = 0;
    bool probeInFlight_ FXHENN_GUARDED_BY(mutex_) = false;
    std::uint64_t opens_ FXHENN_GUARDED_BY(mutex_) = 0;
    TimePoint reopenAt_ FXHENN_GUARDED_BY(mutex_){};
};

} // namespace fxhenn::engine

#endif // FXHENN_ENGINE_ADMISSION_HPP
