/**
 * @file
 * Concurrent batched encrypted inference over one compiled HE-CNN.
 *
 * The engine composes the layered split (hecnn::ClientSession for key
 * material and the encrypt/decrypt codec, hecnn::PlanExecutor for the
 * stateless plan interpreter, hecnn::PlaintextPool for the shared
 * weight encodings) and adds the serving concerns on top:
 *
 *  - a worker pool (common/parallel) running N requests concurrently
 *    over shared read-only keys, plan and plaintext pool;
 *  - a bounded request queue for the streaming submit() path, with an
 *    AdmissionPolicy (block | shed | degrade) deciding what happens
 *    when it fills or a request cannot meet its deadline;
 *  - per-request deadlines: expired-in-queue requests are shed with a
 *    structured FailureReport (never executed); in-flight requests
 *    degrade at the executor's between-layer checkpoints;
 *  - deterministic retry of transient failures — every attempt of
 *    request r reuses the (keySeed, r) noise stream, so a retry that
 *    succeeds is bitwise identical to a first-try success;
 *  - a consecutive-failure circuit breaker with half-open probes;
 *  - per-request InferOutcomes — a request that degrades, throws, is
 *    shed or expires is isolated into its own FailureReport and never
 *    takes down the engine or its neighbors, and every future handed
 *    out completes;
 *  - aggregate statistics (queue-wait vs service split, p50/p95/p99
 *    latency) plus telemetry ("engine.requests", "engine.degraded",
 *    "engine.shed", "engine.deadline_expired", "engine.retries",
 *    "engine.breaker.*", "engine.queue_wait.ns", "engine.service.ns",
 *    "engine.batch.size", "engine.batch.slot_fill_frac",
 *    "engine.batch.window_wait.ns").
 *
 * Cross-request slot batching: when the plan was compiled with
 * batchLanes = B > 1, the engine packs up to B requests into one
 * shared ciphertext run. runBatch() partitions its inputs into
 * consecutive B-groups; the streaming path opens an accumulation
 * window when a worker pops a request and collects up to B-1 more
 * from the queue, flushing on B-full or on a deadline-margin timeout
 * (min(batchWindowSeconds, head deadline minus the EWMA service
 * estimate)). Expired members are shed BEFORE batch formation; a
 * member that fails input validation degrades alone with its lane
 * zeroed; a whole-group failure is reported honestly to every member
 * (never garbage logits). Demuxed results are pure slot extraction in
 * ClientSession::decryptLogitsBatch, so sibling outcomes stay
 * isolated.
 *
 * Determinism: request r (in submission order) encrypts with a noise
 * stream derived from (keySeed, r), so a batch produces bitwise
 * identical logits whether it runs on 1 worker or 8 — and identical to
 * r+1 serial Runtime::infer() calls with the same key seed. Admission
 * decisions never shift indices: a shed request still consumed its
 * index, so the survivors stay aligned with the serial reference.
 * Batched (B > 1) runs use the encryption stream derived from
 * (keySeed, fold of the live member indices): outputs are a pure
 * function of the ordered member composition and its inputs, bitwise
 * reproducible across repeats, worker counts and arithmetic-preserving
 * backends. They are numerically — not bitwise — equal to the B
 * serial runs (see docs/ARCHITECTURE.md section 15 for why bitwise
 * cross-equality is impossible under CKKS canonical-embedding
 * rounding).
 */
#ifndef FXHENN_ENGINE_INFERENCE_ENGINE_HPP
#define FXHENN_ENGINE_INFERENCE_ENGINE_HPP

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/engine/admission.hpp"
#include "src/engine/request_queue.hpp"
#include "src/hecnn/client_session.hpp"
#include "src/hecnn/plan_executor.hpp"
#include "src/hecnn/plaintext_pool.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/tensor.hpp"

namespace fxhenn::engine {

/** Serving knobs of one InferenceEngine. */
struct EngineOptions
{
    /** Concurrent requests in flight (>= 1). */
    unsigned workers = 4;
    /** Bounded admission queue depth for submit() backpressure. */
    std::size_t queueCapacity = 64;
    /** Seed of the session key material and the noise streams. */
    std::uint64_t keySeed = 1;
    robustness::GuardOptions guard{};
    /** Overload behavior: block (backpressure), shed, or degrade. */
    AdmissionPolicy admission = AdmissionPolicy::block;
    /**
     * Default per-request latency SLO in seconds, measured from
     * admission; <= 0 means no deadline. RequestOptions can override
     * it per request.
     */
    double deadlineSeconds = 0.0;
    RetryOptions retry{};
    BreakerOptions breaker{};
    /** EWMA weight of the online service-time estimate. */
    double serviceEwmaAlpha = 0.2;
    /**
     * Streaming batch accumulation window in seconds (plans with
     * batchLanes > 1 only): after popping a request, a worker waits at
     * most this long for siblings to fill the batch, and never past
     * the head request's deadline margin. <= 0 disables waiting — a
     * worker takes whatever is already queued and runs immediately.
     */
    double batchWindowSeconds = 0.01;
    /**
     * Executor strategy, including the execution backend every worker
     * dispatches HE ops through (ExecOptions::backend; empty resolves
     * FXHENN_BACKEND and defaults to "cpu").
     */
    hecnn::ExecOptions exec{};
};

/** Per-request serving overrides for submit()/runBatch(). */
struct RequestOptions
{
    /**
     * Latency SLO of this request in seconds, from the moment of
     * admission; <= 0 inherits EngineOptions::deadlineSeconds (whose
     * own 0 means "no deadline").
     */
    double deadlineSeconds = 0.0;
};

/** Aggregate counters over the engine's lifetime (a snapshot). */
struct EngineStats
{
    std::uint64_t submitted = 0; ///< requests presented (incl. shed)
    /** Outcomes delivered: ok + degraded + shed + expired. Every
     *  accepted future resolves, so after a drain this equals
     *  `submitted` — the no-lost-futures invariant. */
    std::uint64_t completed = 0;
    /** Executed runs that ended with a FailureReport (guard violation,
     *  exception, or a mid-run deadline abort). Shed and queue-expired
     *  requests never executed and are counted separately below. */
    std::uint64_t degraded = 0;
    /** Never-executed rejections: admission fast-fails (queue full,
     *  predicted SLO miss) and breaker short-circuits. */
    std::uint64_t shed = 0;
    /** Deadline casualties: expired in queue (never executed) plus
     *  mid-run cooperative aborts (also counted in `degraded`). */
    std::uint64_t deadlineExpired = 0;
    /** Transient-failure re-runs (attempts beyond the first). */
    std::uint64_t retries = 0;
    std::uint64_t breakerOpens = 0;
    BreakerState breakerState = BreakerState::closed;

    /** Latency of executed requests (queue wait + service). */
    double minLatencySeconds = 0.0;
    double maxLatencySeconds = 0.0;
    double meanLatencySeconds = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    /** Queue-wait vs service-time split (streaming submit() path;
     *  runBatch() requests have no queue and count as pure service). */
    double meanQueueWaitSeconds = 0.0;
    double meanServiceSeconds = 0.0;
    /** Wall time and throughput of the most recent runBatch(). */
    double lastBatchSeconds = 0.0;
    double lastBatchRequestsPerSecond = 0.0;
    /** Batched ciphertext runs executed (batchLanes > 1 groups). */
    std::uint64_t batchesExecuted = 0;
    /** Mean live members per executed batch (slot-fill quality). */
    double meanBatchOccupancy = 0.0;
};

/** Multi-request inference server for one (plan, context) pair. */
class InferenceEngine
{
  public:
    /**
     * Generate the session keys and build the shared plaintext pool.
     * @p plan and @p context must outlive the engine.
     */
    InferenceEngine(const hecnn::HeNetworkPlan &plan,
                    const ckks::CkksContext &context,
                    EngineOptions options = {});

    /** Joins the streaming workers (pending requests are drained). */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Run @p inputs as one batch over the worker pool and return the
     * outcomes in input order. Deterministic for a fixed key seed and
     * submission history, independent of the worker count. A request
     * that throws ConfigError/InternalError mid-flight yields a
     * degraded outcome instead of propagating; one whose deadline is
     * already blown when a worker picks it up is shed without
     * executing. Throws ConfigError after shutdown().
     */
    std::vector<hecnn::InferOutcome> runBatch(
        const std::vector<nn::Tensor> &inputs, RequestOptions req = {});

    /**
     * Streaming admission: enqueue one request and return a future for
     * its outcome. Under AdmissionPolicy::block this blocks while the
     * bounded queue is full (backpressure, bounded by the request
     * deadline when one is set); under shed it fast-fails instead —
     * the returned future resolves immediately with a shed
     * FailureReport outcome. The worker threads start lazily on first
     * call. Throws ConfigError after shutdown().
     */
    std::future<hecnn::InferOutcome> submit(nn::Tensor input,
                                            RequestOptions req = {});

    /**
     * Stop accepting requests, drain the queue and join the workers.
     * Futures already handed out all complete. Idempotent.
     */
    void shutdown();

    /** Lifetime aggregate statistics (thread-safe snapshot). */
    EngineStats stats() const;

    const EngineOptions &options() const { return options_; }
    const hecnn::ClientSession &session() const { return session_; }
    const hecnn::PlaintextPool &plaintextPool() const { return pool_; }
    const hecnn::PlanExecutor &executor() const { return executor_; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One queued streaming request. */
    struct Job
    {
        nn::Tensor input;
        std::uint64_t index = 0;
        std::optional<Clock::time_point> deadline;
        Clock::time_point enqueued{};
        std::promise<hecnn::InferOutcome> promise;
    };

    /** Kept under statsMutex_; stats() derives the percentile view. */
    static constexpr std::size_t kLatencyReservoir = 4096;

    std::optional<Clock::time_point>
    resolveDeadline(const RequestOptions &req, Clock::time_point now)
        const;

    /** encrypt -> execute -> decrypt, with request-level isolation. */
    hecnn::InferOutcome runRequest(
        const nn::Tensor &input, std::uint64_t index,
        const std::optional<Clock::time_point> &deadline);

    /** runRequest() plus the transient-retry loop and breaker hooks. */
    hecnn::InferOutcome runRequestWithRetry(
        const nn::Tensor &input, std::uint64_t index,
        const std::optional<Clock::time_point> &deadline);

    /** Result of one batched (shared-ciphertext) group execution. */
    struct GroupResult
    {
        /** Per-member outcomes, aligned with the member arguments. */
        std::vector<hecnn::InferOutcome> outcomes;
        /** Whole-group transient infrastructure failure (retryable). */
        bool sharedTransient = false;
        /** Whole-group failure of any kind (breaker-relevant). */
        bool sharedFailure = false;
    };

    /**
     * One batched run over up to batchLanes members: pre-validate each
     * input (a malformed member degrades alone, its lane zeroed),
     * encrypt the survivors into shared ciphertexts under the
     * batchRequestKey of their indices, execute once and demux.
     */
    GroupResult runGroup(
        const std::vector<const nn::Tensor *> &inputs,
        const std::vector<std::uint64_t> &indices,
        const std::optional<Clock::time_point> &deadline);

    /** runGroup() plus whole-group transient retry + breaker hooks. */
    std::vector<hecnn::InferOutcome> runGroupWithRetry(
        const std::vector<const nn::Tensor *> &inputs,
        const std::vector<std::uint64_t> &indices,
        const std::optional<Clock::time_point> &deadline);

    /** Batch telemetry + occupancy stats for one executed group. */
    void recordBatch(std::size_t liveMembers,
                     double windowWaitSeconds);

    /** Structured never-executed outcome (shed / expired / breaker). */
    static hecnn::InferOutcome rejectOutcome(const char *op,
                                             const std::string &reason);

    void recordExecuted(const hecnn::InferOutcome &outcome,
                        double queueWaitSeconds, double serviceSeconds);
    void recordRejected(const hecnn::InferOutcome &outcome);
    void startWorkers();
    void workerLoop();
    /** Streaming batched path: @p head opens an accumulation window. */
    void workerRunWindow(Job head);

    EngineOptions options_;
    hecnn::ClientSession session_;
    hecnn::PlaintextPool pool_;
    hecnn::PlanExecutor executor_;
    ServiceTimeEstimator estimator_;
    CircuitBreaker breaker_;
    /** Batch lanes B of the plan (1 = classic per-request serving). */
    std::size_t lanes_ = 1;

    mutable std::mutex statsMutex_;
    EngineStats stats_;
    double batchOccupancySum_ = 0.0;
    double latencySumSeconds_ = 0.0;
    double queueWaitSumSeconds_ = 0.0;
    double serviceSumSeconds_ = 0.0;
    std::uint64_t executedCount_ = 0;
    std::vector<double> latencyReservoir_;
    std::size_t latencyNext_ = 0;

    std::mutex lifecycleMutex_;
    bool started_ = false;
    bool stopped_ = false;
    RequestQueue<Job> queue_;
    std::vector<std::thread> workers_;
};

} // namespace fxhenn::engine

#endif // FXHENN_ENGINE_INFERENCE_ENGINE_HPP
