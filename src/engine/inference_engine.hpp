/**
 * @file
 * Concurrent batched encrypted inference over one compiled HE-CNN.
 *
 * The engine composes the layered split (hecnn::ClientSession for key
 * material and the encrypt/decrypt codec, hecnn::PlanExecutor for the
 * stateless plan interpreter, hecnn::PlaintextPool for the shared
 * weight encodings) and adds the serving concerns on top:
 *
 *  - a worker pool (common/parallel) running N requests concurrently
 *    over shared read-only keys, plan and plaintext pool;
 *  - a bounded request queue with blocking backpressure for the
 *    streaming submit() path;
 *  - per-request InferOutcomes — a request that degrades or throws is
 *    isolated into its own FailureReport and never takes down the
 *    engine or its neighbors;
 *  - aggregate throughput/latency statistics plus telemetry counters
 *    ("engine.requests", "engine.degraded", "engine.request.ns").
 *
 * Determinism: request r (in submission order) encrypts with a noise
 * stream derived from (keySeed, r), so a batch produces bitwise
 * identical logits whether it runs on 1 worker or 8 — and identical to
 * r+1 serial Runtime::infer() calls with the same key seed.
 */
#ifndef FXHENN_ENGINE_INFERENCE_ENGINE_HPP
#define FXHENN_ENGINE_INFERENCE_ENGINE_HPP

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/engine/request_queue.hpp"
#include "src/hecnn/client_session.hpp"
#include "src/hecnn/plan_executor.hpp"
#include "src/hecnn/plaintext_pool.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/tensor.hpp"

namespace fxhenn::engine {

/** Serving knobs of one InferenceEngine. */
struct EngineOptions
{
    /** Concurrent requests in flight (>= 1). */
    unsigned workers = 4;
    /** Bounded admission queue depth for submit() backpressure. */
    std::size_t queueCapacity = 64;
    /** Seed of the session key material and the noise streams. */
    std::uint64_t keySeed = 1;
    robustness::GuardOptions guard{};
};

/** Aggregate counters over the engine's lifetime (a snapshot). */
struct EngineStats
{
    std::uint64_t submitted = 0; ///< requests accepted
    std::uint64_t completed = 0; ///< outcomes produced (ok or degraded)
    std::uint64_t degraded = 0;  ///< outcomes carrying a FailureReport
    double minLatencySeconds = 0.0;
    double maxLatencySeconds = 0.0;
    double meanLatencySeconds = 0.0;
    /** Wall time and throughput of the most recent runBatch(). */
    double lastBatchSeconds = 0.0;
    double lastBatchRequestsPerSecond = 0.0;
};

/** Multi-request inference server for one (plan, context) pair. */
class InferenceEngine
{
  public:
    /**
     * Generate the session keys and build the shared plaintext pool.
     * @p plan and @p context must outlive the engine.
     */
    InferenceEngine(const hecnn::HeNetworkPlan &plan,
                    const ckks::CkksContext &context,
                    EngineOptions options = {});

    /** Joins the streaming workers (pending requests are drained). */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Run @p inputs as one batch over the worker pool and return the
     * outcomes in input order. Deterministic for a fixed key seed and
     * submission history, independent of the worker count. A request
     * that throws ConfigError/InternalError mid-flight yields a
     * degraded outcome instead of propagating.
     */
    std::vector<hecnn::InferOutcome> runBatch(
        const std::vector<nn::Tensor> &inputs);

    /**
     * Streaming admission: enqueue one request and return a future for
     * its outcome. Blocks while the bounded queue is full
     * (backpressure); the worker threads start lazily on first call.
     * Throws ConfigError after shutdown().
     */
    std::future<hecnn::InferOutcome> submit(nn::Tensor input);

    /**
     * Stop accepting requests, drain the queue and join the workers.
     * Futures already handed out all complete. Idempotent.
     */
    void shutdown();

    /** Lifetime aggregate statistics (thread-safe snapshot). */
    EngineStats stats() const;

    const EngineOptions &options() const { return options_; }
    const hecnn::ClientSession &session() const { return session_; }
    const hecnn::PlaintextPool &plaintextPool() const { return pool_; }
    const hecnn::PlanExecutor &executor() const { return executor_; }

  private:
    /** One queued streaming request. */
    struct Job
    {
        nn::Tensor input;
        std::uint64_t index = 0;
        std::promise<hecnn::InferOutcome> promise;
    };

    /** encrypt -> execute -> decrypt, with request-level isolation. */
    hecnn::InferOutcome runRequest(const nn::Tensor &input,
                                   std::uint64_t index);
    void recordOutcome(const hecnn::InferOutcome &outcome,
                       double seconds);
    void startWorkers();
    void workerLoop();

    EngineOptions options_;
    hecnn::ClientSession session_;
    hecnn::PlaintextPool pool_;
    hecnn::PlanExecutor executor_;

    mutable std::mutex statsMutex_;
    EngineStats stats_;
    double latencySumSeconds_ = 0.0;

    std::mutex lifecycleMutex_;
    bool started_ = false;
    bool stopped_ = false;
    RequestQueue<Job> queue_;
    std::vector<std::thread> workers_;
};

} // namespace fxhenn::engine

#endif // FXHENN_ENGINE_INFERENCE_ENGINE_HPP
