#include "src/engine/inference_engine.hpp"

#include <algorithm>

#include "src/common/assert.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::engine {

InferenceEngine::InferenceEngine(const hecnn::HeNetworkPlan &plan,
                                 const ckks::CkksContext &context,
                                 EngineOptions options)
    : options_(options), session_(plan, context, options.keySeed),
      pool_(plan, context),
      executor_(plan, context, session_.relinKey(),
                session_.galoisKeys(), pool_, options.guard),
      queue_(options.queueCapacity == 0 ? 1 : options.queueCapacity)
{
    FXHENN_FATAL_IF(options.workers == 0,
                    "engine needs at least one worker");
}

InferenceEngine::~InferenceEngine()
{
    shutdown();
}

hecnn::InferOutcome
InferenceEngine::runRequest(const nn::Tensor &input,
                            std::uint64_t index)
{
    FXHENN_TELEM_COUNT("engine.requests", 1);
    hecnn::InferOutcome out;
    try {
        auto result =
            executor_.execute(session_.encryptInput(input, index));
        out.budget = std::move(result.budget);
        if (result.failure) {
            out.failure = std::move(result.failure);
            return out;
        }
        out.logits = session_.decryptLogits(result.regs);
    } catch (const ConfigError &e) {
        // Request-level isolation: a malformed request (wrong tensor
        // shape, corrupt state) fails alone instead of taking down the
        // engine and its neighbors.
        robustness::FailureReport report;
        report.layer = "request";
        report.op = "exception";
        report.reason = e.what();
        out.failure = std::move(report);
        out.logits.clear();
    } catch (const InternalError &e) {
        robustness::FailureReport report;
        report.layer = "request";
        report.op = "exception";
        report.reason = e.what();
        out.failure = std::move(report);
        out.logits.clear();
    }
    return out;
}

void
InferenceEngine::recordOutcome(const hecnn::InferOutcome &outcome,
                               double seconds)
{
    if (outcome.degraded())
        FXHENN_TELEM_COUNT("engine.degraded", 1);
    if (telemetry::enabled()) {
        telemetry::histogram("engine.request.ns")
            .record(static_cast<std::uint64_t>(seconds * 1e9));
    }
    std::scoped_lock lock(statsMutex_);
    stats_.completed += 1;
    if (outcome.degraded())
        stats_.degraded += 1;
    latencySumSeconds_ += seconds;
    stats_.meanLatencySeconds =
        latencySumSeconds_ / double(stats_.completed);
    if (stats_.completed == 1) {
        stats_.minLatencySeconds = seconds;
        stats_.maxLatencySeconds = seconds;
    } else {
        stats_.minLatencySeconds =
            std::min(stats_.minLatencySeconds, seconds);
        stats_.maxLatencySeconds =
            std::max(stats_.maxLatencySeconds, seconds);
    }
}

std::vector<hecnn::InferOutcome>
InferenceEngine::runBatch(const std::vector<nn::Tensor> &inputs)
{
    std::uint64_t base = 0;
    {
        std::scoped_lock lock(statsMutex_);
        base = stats_.submitted;
        stats_.submitted += inputs.size();
    }
    std::vector<hecnn::InferOutcome> outcomes(inputs.size());
    Timer wall;
    parallelForWorkers(
        options_.workers, inputs.size(), [&](std::size_t i) {
            Timer latency;
            outcomes[i] = runRequest(inputs[i], base + i);
            recordOutcome(outcomes[i], latency.elapsedSeconds());
        });
    const double seconds = wall.elapsedSeconds();
    {
        std::scoped_lock lock(statsMutex_);
        stats_.lastBatchSeconds = seconds;
        stats_.lastBatchRequestsPerSecond =
            seconds > 0.0 ? double(inputs.size()) / seconds : 0.0;
    }
    return outcomes;
}

std::future<hecnn::InferOutcome>
InferenceEngine::submit(nn::Tensor input)
{
    startWorkers();
    Job job;
    job.input = std::move(input);
    {
        std::scoped_lock lock(statsMutex_);
        job.index = stats_.submitted;
        stats_.submitted += 1;
    }
    auto future = job.promise.get_future();
    const bool accepted = queue_.push(std::move(job));
    FXHENN_FATAL_IF(!accepted,
                    "inference engine is shut down and no longer "
                    "accepts requests");
    return future;
}

void
InferenceEngine::startWorkers()
{
    std::scoped_lock lock(lifecycleMutex_);
    FXHENN_FATAL_IF(stopped_, "inference engine is shut down");
    if (started_)
        return;
    started_ = true;
    workers_.reserve(options_.workers);
    for (unsigned w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

void
InferenceEngine::workerLoop()
{
    // Request-level parallelism owns the threads here; the RNS-limb
    // loops inside the kernels run inline on this thread.
    markPoolWorker(true);
    Job job;
    while (queue_.pop(job)) {
        Timer latency;
        hecnn::InferOutcome outcome = runRequest(job.input, job.index);
        recordOutcome(outcome, latency.elapsedSeconds());
        job.promise.set_value(std::move(outcome));
    }
    markPoolWorker(false);
}

void
InferenceEngine::shutdown()
{
    {
        std::scoped_lock lock(lifecycleMutex_);
        stopped_ = true;
    }
    queue_.close();
    std::vector<std::thread> workers;
    {
        std::scoped_lock lock(lifecycleMutex_);
        workers.swap(workers_);
    }
    for (auto &worker : workers)
        worker.join();
}

EngineStats
InferenceEngine::stats() const
{
    std::scoped_lock lock(statsMutex_);
    return stats_;
}

} // namespace fxhenn::engine
