#include "src/engine/inference_engine.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/common/assert.hpp"
#include "src/common/parallel.hpp"
#include "src/common/timer.hpp"
#include "src/robustness/fault_injection.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::engine {

namespace {

/** Nearest-rank percentile of an unsorted sample copy. */
double
percentile(std::vector<double> &sample, double q)
{
    if (sample.empty())
        return 0.0;
    std::sort(sample.begin(), sample.end());
    const double rank = std::ceil(q * double(sample.size()));
    const std::size_t idx = rank < 1.0 ? 0
                                       : std::min(sample.size() - 1,
                                                  std::size_t(rank) - 1);
    return sample[idx];
}

std::chrono::steady_clock::duration
secondsToDuration(double seconds)
{
    return std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

} // namespace

InferenceEngine::InferenceEngine(const hecnn::HeNetworkPlan &plan,
                                 const ckks::CkksContext &context,
                                 EngineOptions options)
    : options_(options), session_(plan, context, options.keySeed),
      pool_(plan, context),
      executor_(plan, context, session_.relinKey(),
                session_.galoisKeys(), pool_, options.guard,
                options.exec),
      estimator_(options.serviceEwmaAlpha), breaker_(options.breaker),
      lanes_(plan.batchLanes == 0 ? 1 : plan.batchLanes),
      queue_(options.queueCapacity == 0 ? 1 : options.queueCapacity)
{
    FXHENN_FATAL_IF(options.workers == 0,
                    "engine needs at least one worker");
    latencyReservoir_.reserve(kLatencyReservoir);
}

InferenceEngine::~InferenceEngine()
{
    shutdown();
}

std::optional<InferenceEngine::Clock::time_point>
InferenceEngine::resolveDeadline(const RequestOptions &req,
                                 Clock::time_point now) const
{
    const double seconds = req.deadlineSeconds > 0.0
                               ? req.deadlineSeconds
                               : options_.deadlineSeconds;
    if (seconds <= 0.0)
        return std::nullopt;
    return now + secondsToDuration(seconds);
}

hecnn::InferOutcome
InferenceEngine::rejectOutcome(const char *op,
                               const std::string &reason)
{
    robustness::FailureReport report;
    report.layer = "admission";
    report.op = op;
    report.reason = reason;
    hecnn::InferOutcome out;
    out.failure = std::move(report);
    return out;
}

hecnn::InferOutcome
InferenceEngine::runRequest(
    const nn::Tensor &input, std::uint64_t index,
    const std::optional<Clock::time_point> &deadline)
{
    FXHENN_TELEM_COUNT("engine.requests", 1);
    hecnn::InferOutcome out;
    // Injected transient infrastructure failure (a stand-in for a
    // flaky interconnect, a preempted accelerator, ...): classified
    // transient by transientFailure(), so the retry loop re-runs it.
    if (auto fault = robustness::fireFault("engine.request")) {
        robustness::FailureReport report;
        report.layer = "request";
        report.op = "transient";
        report.reason = "injected transient request fault (kind " +
                        fault->kind + ")";
        out.failure = std::move(report);
        return out;
    }
    try {
        hecnn::RunControl control;
        control.deadline = deadline;
        auto result = executor_.execute(
            session_.encryptInput(input, index), control);
        out.budget = std::move(result.budget);
        out.backendName = std::move(result.backendName);
        out.opsExecuted = result.executed.total();
        out.simulated = std::move(result.simulated);
        if (result.failure) {
            out.failure = std::move(result.failure);
            return out;
        }
        out.logits = session_.decryptLogits(result.regs);
    } catch (const ConfigError &e) {
        // Request-level isolation: a malformed request (wrong tensor
        // shape, corrupt state) fails alone instead of taking down the
        // engine and its neighbors.
        robustness::FailureReport report;
        report.layer = "request";
        report.op = "exception";
        report.reason = e.what();
        out.failure = std::move(report);
        out.logits.clear();
    } catch (const InternalError &e) {
        robustness::FailureReport report;
        report.layer = "request";
        report.op = "exception";
        report.reason = e.what();
        out.failure = std::move(report);
        out.logits.clear();
    }
    return out;
}

hecnn::InferOutcome
InferenceEngine::runRequestWithRetry(
    const nn::Tensor &input, std::uint64_t index,
    const std::optional<Clock::time_point> &deadline)
{
    std::uint32_t attempt = 0;
    for (;;) {
        // Every attempt reuses (keySeed, index): the noise stream is a
        // pure function of the pair, so a successful retry is bitwise
        // identical to a first-try success and to the serial
        // reference — retries are invisible in the logits.
        hecnn::InferOutcome out = runRequest(input, index, deadline);
        if (!out.degraded()) {
            breaker_.onSuccess();
            return out;
        }
        const bool retryable =
            transientFailure(*out.failure) &&
            attempt < options_.retry.maxRetries;
        if (!retryable) {
            breaker_.onFailure();
            return out;
        }
        ++attempt;
        const double backoff =
            retryBackoffSeconds(options_.retry, attempt);
        if (deadline &&
            Clock::now() + secondsToDuration(backoff) > *deadline) {
            // No budget left for another attempt: hand back the
            // transient failure rather than blowing the deadline.
            breaker_.onFailure();
            return out;
        }
        {
            std::scoped_lock lock(statsMutex_);
            stats_.retries += 1;
        }
        FXHENN_TELEM_COUNT("engine.retries", 1);
        if (backoff > 0.0)
            std::this_thread::sleep_for(secondsToDuration(backoff));
    }
}

InferenceEngine::GroupResult
InferenceEngine::runGroup(
    const std::vector<const nn::Tensor *> &inputs,
    const std::vector<std::uint64_t> &indices,
    const std::optional<Clock::time_point> &deadline)
{
    GroupResult group;
    group.outcomes.resize(inputs.size());
    FXHENN_TELEM_COUNT("engine.requests",
                       static_cast<std::int64_t>(inputs.size()));

    // Member pre-validation: a malformed request degrades alone with
    // a structured report and its lane zeroed, instead of poisoning
    // the whole batch with a mid-encrypt exception.
    std::vector<const nn::Tensor *> lanes(lanes_, nullptr);
    std::vector<std::uint64_t> liveIndices;
    std::vector<std::size_t> liveSlots; // member position per lane
    for (std::size_t b = 0; b < inputs.size(); ++b) {
        try {
            session_.validateInput(*inputs[b]);
        } catch (const ConfigError &e) {
            robustness::FailureReport report;
            report.layer = "request";
            report.op = "exception";
            report.reason = e.what();
            group.outcomes[b].failure = std::move(report);
            continue;
        }
        lanes[b] = inputs[b];
        liveIndices.push_back(indices[b]);
        liveSlots.push_back(b);
    }
    if (liveIndices.empty())
        return group;

    const auto fail = [&](const std::string &reason, const char *op) {
        for (const std::size_t b : liveSlots) {
            robustness::FailureReport report;
            report.layer = "batch";
            report.op = op;
            report.reason = reason;
            group.outcomes[b].failure = std::move(report);
            group.outcomes[b].logits.clear();
        }
        group.sharedFailure = true;
    };

    // Injected transient infrastructure failure hits the shared run:
    // every live member sees the same retryable report.
    if (auto fault = robustness::fireFault("engine.request")) {
        fail("injected transient request fault (kind " + fault->kind +
                 ")",
             "transient");
        group.sharedTransient = true;
        return group;
    }

    try {
        hecnn::RunControl control;
        control.deadline = deadline;
        auto result = executor_.execute(
            session_.encryptInputBatch(
                std::span<const nn::Tensor *const>(lanes),
                hecnn::ClientSession::batchRequestKey(liveIndices)),
            control);
        for (const std::size_t b : liveSlots) {
            group.outcomes[b].budget = result.budget;
            group.outcomes[b].backendName = result.backendName;
            group.outcomes[b].opsExecuted = result.executed.total();
            group.outcomes[b].simulated = result.simulated;
        }
        if (result.failure) {
            // Whole-group degradation (guard violation, mid-run
            // deadline abort): every member gets the honest report —
            // never the garbage logits of a poisoned ciphertext.
            for (const std::size_t b : liveSlots)
                group.outcomes[b].failure = result.failure;
            group.sharedFailure = true;
            group.sharedTransient = transientFailure(*result.failure);
            return group;
        }
        // Lanes are indexed by group position (a shed sibling leaves
        // its lane zeroed, not compacted), so member b demuxes lane b.
        const auto demuxed = session_.decryptLogitsBatch(result.regs);
        for (const std::size_t b : liveSlots)
            group.outcomes[b].logits = demuxed[b];
    } catch (const ConfigError &e) {
        fail(e.what(), "exception");
    } catch (const InternalError &e) {
        fail(e.what(), "exception");
    }
    return group;
}

std::vector<hecnn::InferOutcome>
InferenceEngine::runGroupWithRetry(
    const std::vector<const nn::Tensor *> &inputs,
    const std::vector<std::uint64_t> &indices,
    const std::optional<Clock::time_point> &deadline)
{
    std::uint32_t attempt = 0;
    for (;;) {
        // The batched encryption stream is a pure function of
        // (keySeed, member composition), so a successful whole-group
        // retry is bitwise identical to a first-try success.
        GroupResult group = runGroup(inputs, indices, deadline);
        if (!group.sharedFailure) {
            breaker_.onSuccess();
            return std::move(group.outcomes);
        }
        const bool retryable = group.sharedTransient &&
                               attempt < options_.retry.maxRetries;
        if (!retryable) {
            breaker_.onFailure();
            return std::move(group.outcomes);
        }
        ++attempt;
        const double backoff =
            retryBackoffSeconds(options_.retry, attempt);
        if (deadline &&
            Clock::now() + secondsToDuration(backoff) > *deadline) {
            breaker_.onFailure();
            return std::move(group.outcomes);
        }
        {
            std::scoped_lock lock(statsMutex_);
            stats_.retries += 1;
        }
        FXHENN_TELEM_COUNT("engine.retries", 1);
        if (backoff > 0.0)
            std::this_thread::sleep_for(secondsToDuration(backoff));
    }
}

void
InferenceEngine::recordBatch(std::size_t liveMembers,
                             double windowWaitSeconds)
{
    if (telemetry::enabled()) {
        telemetry::histogram("engine.batch.size")
            .record(static_cast<std::uint64_t>(liveMembers));
        // Recorded as a percentage: 100 = every lane carries a
        // request, lower = ciphertext slots idled by a partial batch.
        telemetry::histogram("engine.batch.slot_fill_frac")
            .record(static_cast<std::uint64_t>(
                (100.0 * double(liveMembers)) / double(lanes_)));
        telemetry::histogram("engine.batch.window_wait.ns")
            .record(static_cast<std::uint64_t>(windowWaitSeconds *
                                               1e9));
    }
    std::scoped_lock lock(statsMutex_);
    stats_.batchesExecuted += 1;
    batchOccupancySum_ += double(liveMembers);
    stats_.meanBatchOccupancy =
        batchOccupancySum_ / double(stats_.batchesExecuted);
}

void
InferenceEngine::recordExecuted(const hecnn::InferOutcome &outcome,
                                double queueWaitSeconds,
                                double serviceSeconds)
{
    const double seconds = queueWaitSeconds + serviceSeconds;
    const bool deadlineAbort =
        outcome.degraded() && outcome.failure->op == "deadline";
    if (outcome.degraded())
        FXHENN_TELEM_COUNT("engine.degraded", 1);
    if (deadlineAbort)
        FXHENN_TELEM_COUNT("engine.deadline_expired", 1);
    estimator_.record(serviceSeconds);
    if (telemetry::enabled()) {
        telemetry::histogram("engine.request.ns")
            .record(static_cast<std::uint64_t>(seconds * 1e9));
        telemetry::histogram("engine.queue_wait.ns")
            .record(
                static_cast<std::uint64_t>(queueWaitSeconds * 1e9));
        telemetry::histogram("engine.service.ns")
            .record(static_cast<std::uint64_t>(serviceSeconds * 1e9));
    }
    std::scoped_lock lock(statsMutex_);
    stats_.completed += 1;
    if (outcome.degraded())
        stats_.degraded += 1;
    if (deadlineAbort)
        stats_.deadlineExpired += 1;
    executedCount_ += 1;
    latencySumSeconds_ += seconds;
    queueWaitSumSeconds_ += queueWaitSeconds;
    serviceSumSeconds_ += serviceSeconds;
    stats_.meanLatencySeconds =
        latencySumSeconds_ / double(executedCount_);
    if (executedCount_ == 1) {
        stats_.minLatencySeconds = seconds;
        stats_.maxLatencySeconds = seconds;
    } else {
        stats_.minLatencySeconds =
            std::min(stats_.minLatencySeconds, seconds);
        stats_.maxLatencySeconds =
            std::max(stats_.maxLatencySeconds, seconds);
    }
    if (latencyReservoir_.size() < kLatencyReservoir) {
        latencyReservoir_.push_back(seconds);
    } else {
        latencyReservoir_[latencyNext_] = seconds;
        latencyNext_ = (latencyNext_ + 1) % kLatencyReservoir;
    }
}

void
InferenceEngine::recordRejected(const hecnn::InferOutcome &outcome)
{
    const bool expired =
        outcome.failure && outcome.failure->op == "deadline";
    if (expired)
        FXHENN_TELEM_COUNT("engine.deadline_expired", 1);
    else
        FXHENN_TELEM_COUNT("engine.shed", 1);
    std::scoped_lock lock(statsMutex_);
    stats_.completed += 1;
    if (expired)
        stats_.deadlineExpired += 1;
    else
        stats_.shed += 1;
}

std::vector<hecnn::InferOutcome>
InferenceEngine::runBatch(const std::vector<nn::Tensor> &inputs,
                          RequestOptions req)
{
    {
        // Same contract as submit(): a shut-down engine rejects new
        // work loudly instead of silently racing the worker teardown.
        std::scoped_lock lock(lifecycleMutex_);
        FXHENN_FATAL_IF(stopped_,
                        "inference engine is shut down and no longer "
                        "accepts requests");
    }
    std::uint64_t base = 0;
    {
        std::scoped_lock lock(statsMutex_);
        base = stats_.submitted;
        stats_.submitted += inputs.size();
    }
    const auto deadline = resolveDeadline(req, Clock::now());
    std::vector<hecnn::InferOutcome> outcomes(inputs.size());
    Timer wall;
    if (lanes_ <= 1) {
        parallelForWorkers(
            options_.workers, inputs.size(), [&](std::size_t i) {
                const auto start = Clock::now();
                if (!breaker_.admitAt(start)) {
                    outcomes[i] = rejectOutcome(
                        "breaker",
                        "circuit breaker open: request shed before "
                        "execution");
                    recordRejected(outcomes[i]);
                    return;
                }
                if (deadline && start > *deadline) {
                    outcomes[i] = rejectOutcome(
                        "deadline",
                        "request deadline expired before execution "
                        "started (never executed)");
                    recordRejected(outcomes[i]);
                    return;
                }
                Timer latency;
                outcomes[i] =
                    runRequestWithRetry(inputs[i], base + i, deadline);
                recordExecuted(outcomes[i], 0.0,
                               latency.elapsedSeconds());
            });
    } else {
        // Batched plan: consecutive B-groups so the member composition
        // (and with it the batched encryption stream) is deterministic
        // regardless of which worker runs which group.
        const std::size_t groups =
            (inputs.size() + lanes_ - 1) / lanes_;
        parallelForWorkers(
            options_.workers, groups, [&](std::size_t g) {
                const std::size_t lo = g * lanes_;
                const std::size_t hi =
                    std::min(inputs.size(), lo + lanes_);
                std::vector<const nn::Tensor *> members;
                std::vector<std::uint64_t> indices;
                std::vector<std::size_t> positions;
                // Shed-before-formation: breaker and deadline verdicts
                // are per member, so a dead request never occupies a
                // lane.
                for (std::size_t i = lo; i < hi; ++i) {
                    const auto start = Clock::now();
                    if (!breaker_.admitAt(start)) {
                        outcomes[i] = rejectOutcome(
                            "breaker",
                            "circuit breaker open: request shed "
                            "before execution");
                        recordRejected(outcomes[i]);
                        continue;
                    }
                    if (deadline && start > *deadline) {
                        outcomes[i] = rejectOutcome(
                            "deadline",
                            "request deadline expired before "
                            "execution started (never executed)");
                        recordRejected(outcomes[i]);
                        continue;
                    }
                    members.push_back(&inputs[i]);
                    indices.push_back(base + i);
                    positions.push_back(i);
                }
                if (members.empty())
                    return;
                Timer latency;
                auto groupOutcomes =
                    runGroupWithRetry(members, indices, deadline);
                const double serviceSeconds =
                    latency.elapsedSeconds();
                recordBatch(members.size(), 0.0);
                for (std::size_t j = 0; j < positions.size(); ++j) {
                    outcomes[positions[j]] =
                        std::move(groupOutcomes[j]);
                    recordExecuted(outcomes[positions[j]], 0.0,
                                   serviceSeconds);
                }
            });
    }
    const double seconds = wall.elapsedSeconds();
    {
        std::scoped_lock lock(statsMutex_);
        stats_.lastBatchSeconds = seconds;
        stats_.lastBatchRequestsPerSecond =
            seconds > 0.0 ? double(inputs.size()) / seconds : 0.0;
    }
    return outcomes;
}

std::future<hecnn::InferOutcome>
InferenceEngine::submit(nn::Tensor input, RequestOptions req)
{
    startWorkers();
    const auto now = Clock::now();
    Job job;
    job.input = std::move(input);
    job.deadline = resolveDeadline(req, now);
    job.enqueued = now;
    {
        std::scoped_lock lock(statsMutex_);
        job.index = stats_.submitted;
        stats_.submitted += 1;
    }
    auto future = job.promise.get_future();

    // Breaker short-circuit: while open, the engine does not queue
    // work that is overwhelmingly likely to fail — the future resolves
    // immediately with a structured rejection.
    if (!breaker_.admitAt(now)) {
        auto out = rejectOutcome("breaker",
                                 "circuit breaker open: request shed "
                                 "at admission");
        recordRejected(out);
        job.promise.set_value(std::move(out));
        return future;
    }

    if (options_.admission == AdmissionPolicy::shed) {
        if (job.deadline && now > *job.deadline) {
            auto out = rejectOutcome(
                "deadline",
                "request deadline already expired at admission");
            recordRejected(out);
            job.promise.set_value(std::move(out));
            return future;
        }
        // SLO-aware fast-fail: with an online service-time estimate,
        // a request predicted to finish after its deadline is shed now
        // instead of wasting queue time and worker cycles. The
        // predicted completion is queue drain (depth ahead of us, over
        // `workers` servers) plus our own service time.
        const double est = estimator_.estimateSeconds();
        if (job.deadline && est > 0.0) {
            const double depth = double(queue_.size());
            const double predicted =
                (depth / double(options_.workers)) * est + est;
            if (now + secondsToDuration(predicted) > *job.deadline) {
                auto out = rejectOutcome(
                    "shed",
                    "predicted completion exceeds deadline "
                    "(EWMA service estimate " +
                        std::to_string(est) + " s, queue depth " +
                        std::to_string(std::size_t(depth)) + ")");
                recordRejected(out);
                job.promise.set_value(std::move(out));
                return future;
            }
        }
        if (!queue_.tryPush(std::move(job))) {
            FXHENN_FATAL_IF(queue_.closed(),
                            "inference engine is shut down and no "
                            "longer accepts requests");
            auto out = rejectOutcome(
                "shed", "admission queue full (capacity " +
                            std::to_string(queue_.capacity()) + ")");
            recordRejected(out);
            job.promise.set_value(std::move(out));
            return future;
        }
        return future;
    }

    // block / degrade: backpressure admission. With a deadline the
    // wait is bounded by it — a producer parked past its own SLO is
    // told so and the request is shed, never silently enqueued late.
    if (job.deadline) {
        const auto deadline = *job.deadline;
        const PushResult result = queue_.pushFor(std::move(job),
                                                 deadline);
        if (result == PushResult::accepted)
            return future;
        FXHENN_FATAL_IF(result == PushResult::closed,
                        "inference engine is shut down and no longer "
                        "accepts requests");
        auto out = rejectOutcome(
            "deadline",
            "request deadline expired while waiting for queue room "
            "(never executed)");
        recordRejected(out);
        job.promise.set_value(std::move(out));
        return future;
    }
    const bool accepted = queue_.push(std::move(job));
    FXHENN_FATAL_IF(!accepted,
                    "inference engine is shut down and no longer "
                    "accepts requests");
    return future;
}

void
InferenceEngine::startWorkers()
{
    std::scoped_lock lock(lifecycleMutex_);
    FXHENN_FATAL_IF(stopped_, "inference engine is shut down");
    if (started_)
        return;
    started_ = true;
    workers_.reserve(options_.workers);
    for (unsigned w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

void
InferenceEngine::workerLoop()
{
    // Request-level parallelism owns the threads here; the RNS-limb
    // loops inside the kernels run inline on this thread.
    markPoolWorker(true);
    Job job;
    while (queue_.pop(job)) {
        // Injected queue delay (a stalled upstream, a slow scheduler
        // tick): the deadline check below runs after it, so the fault
        // deterministically expires short-deadline requests.
        if (auto fault = robustness::fireFault("engine.queue")) {
            const std::uint64_t ms =
                20 * std::max<std::uint64_t>(1, fault->seed);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(ms));
        }
        if (lanes_ > 1) {
            workerRunWindow(std::move(job));
            continue;
        }
        const auto picked = Clock::now();
        const double queueWait =
            std::chrono::duration<double>(picked - job.enqueued)
                .count();
        if (job.deadline && picked > *job.deadline) {
            // Expired in queue: shed with a structured report, never
            // executed — burning a worker on it would only push the
            // requests behind it past their deadlines too.
            auto out = rejectOutcome(
                "deadline",
                "request deadline expired after " +
                    std::to_string(queueWait) +
                    " s in queue (never executed)");
            recordRejected(out);
            job.promise.set_value(std::move(out));
            continue;
        }
        Timer service;
        hecnn::InferOutcome outcome =
            runRequestWithRetry(job.input, job.index, job.deadline);
        recordExecuted(outcome, queueWait, service.elapsedSeconds());
        job.promise.set_value(std::move(outcome));
    }
    markPoolWorker(false);
}

void
InferenceEngine::workerRunWindow(Job head)
{
    // Accumulation window: @p head opens it; collect up to B-1
    // siblings, flushing on B-full or when waiting longer would
    // endanger the head's own SLO (its deadline minus the EWMA
    // service-time estimate).
    const auto opened = Clock::now();
    std::vector<Job> window;
    window.reserve(lanes_);
    window.push_back(std::move(head));
    if (options_.batchWindowSeconds > 0.0 && lanes_ > 1) {
        auto flushAt =
            opened + secondsToDuration(options_.batchWindowSeconds);
        if (window[0].deadline) {
            const auto margin =
                secondsToDuration(estimator_.estimateSeconds());
            const auto latest = *window[0].deadline - margin;
            if (latest < flushAt)
                flushAt = latest;
        }
        if (flushAt > opened)
            queue_.popUpToUntil(window, lanes_ - 1, flushAt);
    }
    const double windowWait =
        std::chrono::duration<double>(Clock::now() - opened).count();

    // Shed expired members BEFORE batch formation: a dead request
    // never occupies a lane.
    const auto picked = Clock::now();
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < window.size(); ++i) {
        Job &member = window[i];
        if (member.deadline && picked > *member.deadline) {
            const double queueWait =
                std::chrono::duration<double>(picked -
                                              member.enqueued)
                    .count();
            auto out = rejectOutcome(
                "deadline",
                "request deadline expired after " +
                    std::to_string(queueWait) +
                    " s in queue (never executed)");
            recordRejected(out);
            member.promise.set_value(std::move(out));
            continue;
        }
        live.push_back(i);
    }
    if (live.empty())
        return;

    std::vector<const nn::Tensor *> members;
    std::vector<std::uint64_t> indices;
    std::optional<Clock::time_point> deadline;
    for (const std::size_t i : live) {
        members.push_back(&window[i].input);
        indices.push_back(window[i].index);
        // The shared run honors the tightest member SLO: the executor
        // aborts at the next checkpoint once any member's deadline
        // passes, and every member learns about it honestly.
        if (window[i].deadline &&
            (!deadline || *window[i].deadline < *deadline))
            deadline = window[i].deadline;
    }
    Timer service;
    auto outcomes = runGroupWithRetry(members, indices, deadline);
    const double serviceSeconds = service.elapsedSeconds();
    recordBatch(members.size(), windowWait);
    for (std::size_t j = 0; j < live.size(); ++j) {
        Job &member = window[live[j]];
        const double queueWait =
            std::chrono::duration<double>(picked - member.enqueued)
                .count();
        recordExecuted(outcomes[j], queueWait, serviceSeconds);
        member.promise.set_value(std::move(outcomes[j]));
    }
}

void
InferenceEngine::shutdown()
{
    {
        std::scoped_lock lock(lifecycleMutex_);
        stopped_ = true;
    }
    queue_.close();
    std::vector<std::thread> workers;
    {
        std::scoped_lock lock(lifecycleMutex_);
        workers.swap(workers_);
    }
    for (auto &worker : workers)
        worker.join();
}

EngineStats
InferenceEngine::stats() const
{
    EngineStats snapshot;
    std::vector<double> sample;
    {
        std::scoped_lock lock(statsMutex_);
        snapshot = stats_;
        sample = latencyReservoir_;
        if (executedCount_ > 0) {
            snapshot.meanQueueWaitSeconds =
                queueWaitSumSeconds_ / double(executedCount_);
            snapshot.meanServiceSeconds =
                serviceSumSeconds_ / double(executedCount_);
        }
    }
    snapshot.p50LatencySeconds = percentile(sample, 0.50);
    snapshot.p95LatencySeconds = percentile(sample, 0.95);
    snapshot.p99LatencySeconds = percentile(sample, 0.99);
    snapshot.breakerState = breaker_.state();
    snapshot.breakerOpens = breaker_.opens();
    return snapshot;
}

} // namespace fxhenn::engine
