/**
 * @file
 * Deterministic random number generation for FxHENN.
 *
 * All randomness in the library (key generation, encryption noise,
 * synthetic network weights, test vectors) flows through Rng so runs are
 * reproducible from a single seed. The generator is xoshiro256**, which is
 * fast and has no measurable bias in the 64-bit outputs we draw.
 */
#ifndef FXHENN_COMMON_RNG_HPP
#define FXHENN_COMMON_RNG_HPP

#include <cstdint>

namespace fxhenn {

/** Seedable xoshiro256** generator with the samplers CKKS needs. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x46784845u /* "FxHE" */);

    /** @return the next raw 64-bit output. */
    std::uint64_t next();

    /** @return a uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t uniform(std::uint64_t bound);

    /** @return a uniform double in [0, 1). */
    double uniformReal();

    /** @return a uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /**
     * Sample from a centered discrete Gaussian via rounding of a
     * Box-Muller normal. @p sigma is the standard deviation (the CKKS
     * default is 3.2).
     */
    std::int64_t gaussian(double sigma);

    /** @return a uniform ternary value in {-1, 0, 1}. */
    std::int64_t ternary();

  private:
    std::uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace fxhenn

#endif // FXHENN_COMMON_RNG_HPP
