#include "src/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "src/common/assert.hpp"

namespace fxhenn {

namespace {

/** splitmix64 step, used only to expand the seed. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::uniform(std::uint64_t bound)
{
    FXHENN_ASSERT(bound != 0, "uniform() bound must be nonzero");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniformReal()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

std::int64_t
Rng::gaussian(double sigma)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return static_cast<std::int64_t>(std::llround(spare_ * sigma));
    }
    double u1 = uniformReal();
    double u2 = uniformReal();
    while (u1 <= 1e-300) {
        u1 = uniformReal();
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double z0 = mag * std::cos(2.0 * std::numbers::pi * u2);
    const double z1 = mag * std::sin(2.0 * std::numbers::pi * u2);
    spare_ = z1;
    haveSpare_ = true;
    return static_cast<std::int64_t>(std::llround(z0 * sigma));
}

std::int64_t
Rng::ternary()
{
    return static_cast<std::int64_t>(uniform(3)) - 1;
}

} // namespace fxhenn
