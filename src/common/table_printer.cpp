#include "src/common/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/assert.hpp"

namespace fxhenn {

namespace {
/** Sentinel row meaning "print a separator line here". */
const std::string kSeparatorTag = "\x01separator";
} // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    FXHENN_FATAL_IF(header_.empty(), "table must have at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    FXHENN_FATAL_IF(cells.size() != header_.size(),
                    "row arity does not match header");
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto rule = [&]() {
        os << '+';
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c] << " |";
        os << '\n';
    };

    rule();
    line(header_);
    rule();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag) {
            rule();
        } else {
            line(row);
        }
    }
    rule();
}

std::string
fmtF(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
fmtI(long long value)
{
    return std::to_string(value);
}

std::string
fmtPct(double fraction)
{
    return fmtF(fraction * 100.0, 2);
}

} // namespace fxhenn
