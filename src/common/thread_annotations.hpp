/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * Under Clang (which implements -Wthread-safety) these expand to the
 * `capability` attribute family, letting the compiler prove statically
 * that every access to a GUARDED_BY member happens with its mutex
 * held. Under GCC and MSVC they expand to nothing, so annotated
 * headers stay portable. The lint and tsan CMake presets turn the
 * analysis into an error (FXHENN_THREAD_SAFETY=ON).
 *
 * Only the subset this codebase uses is defined; extend it from the
 * Clang documentation ("Thread Safety Analysis") as needed.
 */
#ifndef FXHENN_COMMON_THREAD_ANNOTATIONS_HPP
#define FXHENN_COMMON_THREAD_ANNOTATIONS_HPP

#if defined(__clang__)
#define FXHENN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FXHENN_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define FXHENN_CAPABILITY(name) \
    FXHENN_THREAD_ANNOTATION(capability(name))

/** Member data that must only be touched with @p x held. */
#define FXHENN_GUARDED_BY(x) FXHENN_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define FXHENN_PT_GUARDED_BY(x) \
    FXHENN_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the listed capabilities held. */
#define FXHENN_REQUIRES(...) \
    FXHENN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities. */
#define FXHENN_ACQUIRE(...) \
    FXHENN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define FXHENN_RELEASE(...) \
    FXHENN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/**
 * Excludes a function from the analysis. Use sparingly and document
 * why the access is safe (e.g. thread-confined state).
 */
#define FXHENN_NO_THREAD_SAFETY_ANALYSIS \
    FXHENN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // FXHENN_COMMON_THREAD_ANNOTATIONS_HPP
