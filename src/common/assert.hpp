/**
 * @file
 * Error-reporting helpers shared by all FxHENN modules.
 *
 * Two severities, following the gem5 convention:
 *  - fatal():  the caller supplied an invalid configuration (user error);
 *  - panic():  an internal invariant was violated (library bug).
 */
#ifndef FXHENN_COMMON_ASSERT_HPP
#define FXHENN_COMMON_ASSERT_HPP

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fxhenn {

/** Exception thrown for user-facing configuration errors. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown when an internal invariant is violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

[[noreturn]] inline void
throwConfigError(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "fatal: " << msg << " (" << file << ":" << line << ")";
    throw ConfigError(oss.str());
}

[[noreturn]] inline void
throwInternalError(const char *file, int line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " (" << file << ":" << line << ")";
    throw InternalError(oss.str());
}

} // namespace detail
} // namespace fxhenn

/** Report a user/configuration error; always active. */
#define FXHENN_FATAL_IF(cond, msg)                                          \
    do {                                                                    \
        if (cond) {                                                         \
            ::fxhenn::detail::throwConfigError(__FILE__, __LINE__, (msg));  \
        }                                                                   \
    } while (0)

/** Report an internal invariant violation; always active. */
#define FXHENN_PANIC_IF(cond, msg)                                          \
    do {                                                                    \
        if (cond) {                                                         \
            ::fxhenn::detail::throwInternalError(__FILE__, __LINE__,        \
                                                 (msg));                    \
        }                                                                   \
    } while (0)

/** Internal invariant check, analogous to assert() but always active. */
#define FXHENN_ASSERT(cond, msg) FXHENN_PANIC_IF(!(cond), (msg))

#endif // FXHENN_COMMON_ASSERT_HPP
