/**
 * @file
 * Small integer-math helpers used across the library.
 */
#ifndef FXHENN_COMMON_MATH_UTIL_HPP
#define FXHENN_COMMON_MATH_UTIL_HPP

#include <bit>
#include <cstdint>

namespace fxhenn {

/** @return true when @p x is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); @p x must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** @return ceil(log2(x)); @p x must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return isPowerOfTwo(x) ? floorLog2(x) : floorLog2(x) + 1;
}

/** @return ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Reverse the low @p bits bits of @p x. Used for the bit-reversed
 * orderings inside the NTT and the CKKS encoder.
 */
constexpr std::uint64_t
reverseBits(std::uint64_t x, unsigned bits)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | ((x >> i) & 1);
    }
    return r;
}

} // namespace fxhenn

#endif // FXHENN_COMMON_MATH_UTIL_HPP
