/**
 * @file
 * Minimal shared thread pool for data-parallel loops.
 *
 * The CKKS kernels are embarrassingly parallel across RNS limbs (each
 * limb is an independent polynomial mod its own prime — the exact
 * property the paper's P_intra hardware knob exploits, Sec. V-B).
 * parallelFor() runs an index loop on the pool; calls from inside a
 * worker execute inline so nested parallelism cannot deadlock.
 *
 * The pool is created lazily on first use with min(hardware threads, 8)
 * workers; setThreadCount(1) forces fully serial execution (used by
 * tests that check determinism).
 */
#ifndef FXHENN_COMMON_PARALLEL_HPP
#define FXHENN_COMMON_PARALLEL_HPP

#include <cstddef>
#include <functional>

namespace fxhenn {

/** Set the worker count (1 = serial). Takes effect immediately. */
void setThreadCount(unsigned count);

/** @return the current worker count. */
unsigned threadCount();

/**
 * Run fn(0) .. fn(count-1), possibly concurrently. Blocks until all
 * iterations finish. Exceptions from iterations propagate (the first
 * one captured is rethrown).
 */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &fn);

/**
 * parallelFor() with an explicit worker count for this one call
 * (0 = use the global setThreadCount() setting). Iterations started
 * from inside the workers still run their own nested parallelFor()
 * calls inline, so a caller that uses this for coarse-grained work
 * (e.g. one encrypted inference per index) does not multiply threads
 * with the fine-grained RNS-limb loops underneath.
 */
void parallelForWorkers(unsigned workers, std::size_t count,
                        const std::function<void(std::size_t)> &fn);

/**
 * Mark (or unmark) the calling thread as a pool worker. A marked
 * thread runs every parallelFor() it issues inline, exactly like a
 * thread spawned by the pool itself. Long-lived worker threads that
 * live outside this pool (e.g. the inference engine's request workers)
 * mark themselves so the fine-grained RNS-limb loops underneath do not
 * multiply threads against the request-level parallelism.
 */
void markPoolWorker(bool inWorker);

} // namespace fxhenn

#endif // FXHENN_COMMON_PARALLEL_HPP
