/**
 * @file
 * Wall-clock timing helper for the CPU reference measurements.
 */
#ifndef FXHENN_COMMON_TIMER_HPP
#define FXHENN_COMMON_TIMER_HPP

#include <chrono>

namespace fxhenn {

/** Simple steady-clock stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** @return elapsed seconds since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** @return elapsed milliseconds. */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace fxhenn

#endif // FXHENN_COMMON_TIMER_HPP
