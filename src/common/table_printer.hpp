/**
 * @file
 * Plain-text table formatting used by the benchmark harness to print
 * paper-style tables (Table I ... Table IX, figure series).
 */
#ifndef FXHENN_COMMON_TABLE_PRINTER_HPP
#define FXHENN_COMMON_TABLE_PRINTER_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace fxhenn {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 *
 * Typical use in a bench binary:
 * @code
 *   TablePrinter t({"Layer", "DSP (%)", "BRAM (%)"});
 *   t.addRow({"Cnv1", fmt(10.0), fmt(25.0)});
 *   t.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator line before the next row. */
    void addSeparator();

    /** Render the table to @p os with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p precision digits after the decimal point. */
std::string fmtF(double value, int precision = 2);

/** Format an integer value. */
std::string fmtI(long long value);

/** Format a value as a percentage with two decimals (no % sign). */
std::string fmtPct(double fraction);

} // namespace fxhenn

#endif // FXHENN_COMMON_TABLE_PRINTER_HPP
