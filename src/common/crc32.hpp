/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * buffers. Used as an integrity trailer on serialized artifacts so a
 * corrupted file is rejected with ConfigError at load time instead of
 * surfacing as garbage mid-run.
 */
#ifndef FXHENN_COMMON_CRC32_HPP
#define FXHENN_COMMON_CRC32_HPP

#include <array>
#include <cstddef>
#include <cstdint>

namespace fxhenn {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

inline constexpr auto kCrc32Table = makeCrc32Table();

} // namespace detail

/** CRC-32 of @p size bytes at @p data. */
inline std::uint32_t
crc32(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = detail::kCrc32Table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace fxhenn

#endif // FXHENN_COMMON_CRC32_HPP
