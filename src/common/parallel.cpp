#include "src/common/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/telemetry/telemetry.hpp"

namespace fxhenn {

namespace {

/** Marks pool worker threads so nested parallelFor runs inline. */
thread_local bool t_inWorker = false;

/** A run-once-per-call work-stealing-free index pool. */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    void
    setWorkers(unsigned count)
    {
        std::unique_lock lock(mutex_);
        desired_ = count == 0 ? 1 : count;
    }

    unsigned
    workers()
    {
        std::unique_lock lock(mutex_);
        return desired_;
    }

    void
    run(std::size_t count, const std::function<void(std::size_t)> &fn,
        unsigned workerOverride = 0)
    {
        if (count == 0)
            return;
        unsigned workers = workerOverride;
        if (workers == 0) {
            std::unique_lock lock(mutex_);
            workers = desired_;
        }
        if (t_inWorker || workers <= 1 || count == 1) {
            FXHENN_TELEM_COUNT("parallel.inline_calls", 1);
            FXHENN_TELEM_COUNT("parallel.items", count);
            for (std::size_t i = 0; i < count; ++i)
                fn(i);
            return;
        }
        FXHENN_TELEM_COUNT("parallel.calls", 1);
        FXHENN_TELEM_COUNT("parallel.items", count);
        FXHENN_TELEM_SCOPED_TIMER("parallel.region.ns");

        // Fork a bounded set of helpers per call. Thread creation is
        // ~10 us; every loop this guards is >= 100 us of NTT work.
        const unsigned helpers = static_cast<unsigned>(
            std::min<std::size_t>(workers, count));
        std::atomic<std::size_t> next{0};
        std::exception_ptr error;
        std::mutex error_mutex;

        // Queue depth = items each worker would own on average; with
        // the utilization counters below this tells whether a loop is
        // too fine-grained to feed the pool (software P_intra health).
        if (telemetry::enabled()) {
            telemetry::histogram("parallel.queue_depth")
                .record(count / helpers);
            telemetry::histogram("parallel.workers_used").record(helpers);
            telemetry::counter("parallel.threads_spawned")
                .add(helpers - 1);
        }

        auto body = [&]() {
            const bool measure = telemetry::enabled();
            const auto begin = measure
                                   ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::
                                         time_point{};
            t_inWorker = true;
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    break;
                try {
                    fn(i);
                } catch (...) {
                    std::scoped_lock lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
            }
            t_inWorker = false;
            if (measure) {
                const auto ns =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
                telemetry::counter("parallel.worker_busy_ns")
                    .add(static_cast<std::uint64_t>(ns));
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(helpers - 1);
        for (unsigned t = 0; t + 1 < helpers; ++t)
            threads.emplace_back(body);
        body();
        for (auto &thread : threads)
            thread.join();
        if (error)
            std::rethrow_exception(error);
    }

  private:
    Pool()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        desired_ = hw == 0 ? 1 : std::min(hw, 8u);
    }

    std::mutex mutex_;
    unsigned desired_ = 1;
};

} // namespace

void
setThreadCount(unsigned count)
{
    Pool::instance().setWorkers(count);
}

unsigned
threadCount()
{
    return Pool::instance().workers();
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    Pool::instance().run(count, fn);
}

void
parallelForWorkers(unsigned workers, std::size_t count,
                   const std::function<void(std::size_t)> &fn)
{
    Pool::instance().run(count, fn, workers);
}

void
markPoolWorker(bool inWorker)
{
    t_inWorker = inWorker;
}

} // namespace fxhenn
