#include "src/fpga/sim_backend.hpp"

#include <utility>

#include "src/common/assert.hpp"
#include "src/fpga/pipeline_sim.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::fpga {

namespace {

/**
 * One simulated run: arithmetic delegated to the cpu op path (bitwise
 * identity by construction), cycle accounting charged per layer at
 * endLayer() from the event-driven pipeline schedule.
 */
class SimBackendRun : public hecnn::BackendRun
{
  public:
    SimBackendRun(const hecnn::BackendRunContext &ctx,
                  const SimDesign &design)
        : inner_(hecnn::makeCpuBackendRun(ctx)), plan_(ctx.plan),
          design_(design)
    {}

    ckks::Ciphertext
    mulPlain(const ckks::Ciphertext &a, const ckks::Plaintext &p)
        override
    {
        return inner_->mulPlain(a, p);
    }

    ckks::Ciphertext
    addPlain(const ckks::Ciphertext &a, const ckks::Plaintext &p)
        override
    {
        return inner_->addPlain(a, p);
    }

    void
    addInplace(ckks::Ciphertext &dst, const ckks::Ciphertext &src)
        override
    {
        inner_->addInplace(dst, src);
    }

    ckks::Ciphertext
    mulNoRelin(const ckks::Ciphertext &a, const ckks::Ciphertext &b)
        override
    {
        return inner_->mulNoRelin(a, b);
    }

    ckks::Ciphertext
    relinearize(const ckks::Ciphertext &a) override
    {
        return inner_->relinearize(a);
    }

    ckks::Ciphertext
    rescale(const ckks::Ciphertext &a) override
    {
        return inner_->rescale(a);
    }

    void
    rescaleInplace(ckks::Ciphertext &a) override
    {
        inner_->rescaleInplace(a);
    }

    ckks::Ciphertext
    rotate(const ckks::Ciphertext &a, int step) override
    {
        return inner_->rotate(a, step);
    }

    std::vector<ckks::Ciphertext>
    rotateHoisted(const ckks::Ciphertext &a,
                  const std::vector<int> &steps) override
    {
        return inner_->rotateHoisted(a, steps);
    }

    const ckks::OpCounts &
    counts() const override
    {
        return inner_->counts();
    }

    void
    endLayer(const hecnn::HeLayerPlan &layer) override
    {
        const std::uint64_t n = plan_->params.n;
        hecnn::SimLayerLatency row;
        row.layer = layer.name;
        row.simulatedCycles =
            simulateLayer(layer, n, design_.alloc);
        row.simulatedSeconds =
            design_.device.seconds(row.simulatedCycles);
        row.predictedCycles = predictedCycles(layer);
        row.predictedSeconds =
            design_.device.seconds(row.predictedCycles);
        FXHENN_TELEM_COUNT("backend.sim.layers", 1);
        timeline_.push_back(std::move(row));
    }

    std::vector<hecnn::SimLayerLatency>
    timeline() const override
    {
        return timeline_;
    }

  private:
    double
    predictedCycles(const hecnn::HeLayerPlan &layer) const
    {
        // Layers execute in plan order, so the layer's index recovers
        // the matching row of the DSE's per-layer prediction.
        const auto index = static_cast<std::size_t>(
            &layer - plan_->layers.data());
        if (index < design_.predictedLayerCycles.size())
            return design_.predictedLayerCycles[index];
        return evaluateLayer(layer, plan_->params.n, design_.alloc)
            .cycles;
    }

    std::unique_ptr<hecnn::BackendRun> inner_;
    const hecnn::HeNetworkPlan *plan_;
    const SimDesign &design_;
    std::vector<hecnn::SimLayerLatency> timeline_;
};

} // namespace

PipelineSimBackend::PipelineSimBackend(SimDesignResolver resolver,
                                       std::string name)
    : name_(std::move(name)), resolver_(std::move(resolver))
{
    FXHENN_FATAL_IF(!resolver_,
                    "PipelineSimBackend requires a design resolver");
}

PipelineSimBackend::PipelineSimBackend(DeviceSpec device,
                                       ModuleAllocation alloc,
                                       std::string name)
    : PipelineSimBackend(
          [device = std::move(device),
           alloc](const hecnn::HeNetworkPlan &) {
              return SimDesign{device, alloc, {}};
          },
          std::move(name))
{}

const SimDesign &
PipelineSimBackend::designFor(const hecnn::HeNetworkPlan &plan) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (resolvedPlan_ != &plan) {
        design_ = resolver_(plan);
        resolvedPlan_ = &plan;
    }
    return design_;
}

std::unique_ptr<hecnn::BackendRun>
PipelineSimBackend::beginRun(const hecnn::BackendRunContext &ctx) const
{
    FXHENN_PANIC_IF(ctx.plan == nullptr,
                    "backend run context carries no plan");
    return std::make_unique<SimBackendRun>(ctx, designFor(*ctx.plan));
}

bool
installPipelineSimBackend(SimDesignResolver resolver)
{
    auto shared = std::make_shared<SimDesignResolver>(
        std::move(resolver));
    return hecnn::registerBackend("fpga-sim", [shared] {
        return std::make_unique<PipelineSimBackend>(*shared);
    });
}

} // namespace fxhenn::fpga
