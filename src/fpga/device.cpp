#include "src/fpga/device.hpp"

#include <algorithm>

namespace fxhenn::fpga {

double
DeviceSpec::effectiveBramBlocks(std::uint64_t tileWords) const
{
    const double ratio =
        std::clamp(static_cast<double>(tileWords) / 1024.0, 1.0, 4.0);
    return static_cast<double>(bram36kBlocks) +
           static_cast<double>(uramBlocks) * ratio;
}

DeviceSpec
acu9eg()
{
    DeviceSpec d;
    d.name = "ACU9EG";
    d.dspSlices = 2520;
    d.bram36kBlocks = 912; // 32.1 Mb
    d.uramBlocks = 0;
    d.luts = 274080;
    d.clockMhz = 300.0;
    d.tdpWatts = 10.0;
    return d;
}

DeviceSpec
acu15eg()
{
    DeviceSpec d;
    d.name = "ACU15EG";
    d.dspSlices = 3528;
    d.bram36kBlocks = 744; // 26.2 Mb
    d.uramBlocks = 112;    // 31.5 Mb URAM
    d.luts = 341280;
    d.clockMhz = 300.0;
    d.tdpWatts = 10.0;
    return d;
}

DeviceSpec
fpl21Device()
{
    DeviceSpec d;
    d.name = "FPL21-DC"; // Alveo-class card of [28]
    d.dspSlices = 6840;
    d.bram36kBlocks = 4032;
    d.uramBlocks = 960;
    d.luts = 1182240;
    d.clockMhz = 300.0;
    d.tdpWatts = 225.0;
    return d;
}

} // namespace fxhenn::fpga
