/**
 * @file
 * Target FPGA device descriptions.
 *
 * The paper evaluates two ALINX MPSoC boards (Sec. VII-A):
 *   - ACU9EG  (XCZU9EG):  2520 DSP slices, 32.1 Mb BRAM (912 BRAM36K)
 *   - ACU15EG (XCZU15EG): 3528 DSP slices, 26.2 Mb BRAM (744 BRAM36K)
 *                         plus 31.5 Mb URAM (112 blocks)
 * plus, for the Table VIII comparison, the large data-center device the
 * FPL'21 convolution accelerator used.
 *
 * Substitution note: no physical board is attached; these records carry
 * the published resource capacities that constrain the DSE, and a clock
 * that converts model cycles to seconds (calibrated once to Table I).
 */
#ifndef FXHENN_FPGA_DEVICE_HPP
#define FXHENN_FPGA_DEVICE_HPP

#include <cstdint>
#include <string>

namespace fxhenn::fpga {

/** Static description of one FPGA device / board. */
struct DeviceSpec
{
    std::string name;
    unsigned dspSlices = 0;
    unsigned bram36kBlocks = 0;
    unsigned uramBlocks = 0; ///< 288 Kb UltraRAM blocks (0 if absent)
    unsigned luts = 0;       ///< 6-input LUT count
    double clockMhz = 300.0;
    double tdpWatts = 10.0;

    /**
     * Effective on-chip memory capacity in BRAM36K equivalents, with
     * URAM converted by the Sec. VI-A ratio for buffer tiles of
     * @p tileWords words: ratio = clamp(tileWords / 1024, 1, 4).
     */
    double effectiveBramBlocks(std::uint64_t tileWords) const;

    /** Seconds for @p cycles at this device's clock. */
    double
    seconds(double cycles) const
    {
        return cycles / (clockMhz * 1e6);
    }
};

/** ALINX ACU9EG (Zynq UltraScale+ XCZU9EG). */
DeviceSpec acu9eg();

/** ALINX ACU15EG (Zynq UltraScale+ XCZU15EG). */
DeviceSpec acu15eg();

/** Large data-center card used by the FPL'21 baseline (Table VIII). */
DeviceSpec fpl21Device();

} // namespace fxhenn::fpga

#endif // FXHENN_FPGA_DEVICE_HPP
