/**
 * @file
 * The "fpga-sim" execution backend: the cycle-approximate pipeline
 * simulator promoted from a model cross-check to a real executor.
 *
 * A PipelineSimBackend run performs the exact same arithmetic as the
 * "cpu" backend (it delegates every op to hecnn::makeCpuBackendRun(),
 * so ciphertexts are bitwise identical by construction) and, at every
 * layer boundary, charges the layer the event-driven pipeline cost of
 * a concrete design point — a ModuleAllocation on a DeviceSpec — and
 * appends a SimLayerLatency row pairing that simulated cost with the
 * closed-form (Eq. 1-10) prediction the DSE minimized. The accumulated
 * timeline is what closes the predicted-vs-measured latency loop in
 * hecnn::verify and dse::Explorer.
 *
 * The design point comes from a SimDesignResolver, invoked lazily on
 * the first run and cached per plan: dse::installFpgaSimBackend()
 * plugs in the full DSE search (this header cannot — fxhenn_dse links
 * fxhenn_fpga, not the other way around), while tests pass a fixed
 * allocation to skip the search.
 */
#ifndef FXHENN_FPGA_SIM_BACKEND_HPP
#define FXHENN_FPGA_SIM_BACKEND_HPP

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/fpga/device.hpp"
#include "src/fpga/layer_model.hpp"
#include "src/hecnn/backend.hpp"

namespace fxhenn::fpga {

/** The concrete design point a simulated run charges cycles against. */
struct SimDesign
{
    DeviceSpec device;
    ModuleAllocation alloc;
    /**
     * Closed-form per-layer predicted cycles at `alloc`, in plan
     * order (dse::DesignPoint::perf.layers[i].cycles). Empty means
     * "compute on demand" via evaluateLayer().
     */
    std::vector<double> predictedLayerCycles;
};

/** Produce the design point to simulate @p plan under. Called at most
 * once per (backend instance, plan); may be expensive (a DSE run). */
using SimDesignResolver =
    std::function<SimDesign(const hecnn::HeNetworkPlan &plan)>;

/** Cycle-charging executor over the pipeline simulator. */
class PipelineSimBackend : public hecnn::ExecutionBackend
{
  public:
    /**
     * @p resolver supplies the design point lazily (first beginRun()
     * per plan); @p name is the registry name this instance answers to
     * (tests register fixed-design variants under their own names).
     */
    explicit PipelineSimBackend(SimDesignResolver resolver,
                                std::string name = "fpga-sim");

    /** Fixed-design convenience: no resolver, no DSE. */
    PipelineSimBackend(DeviceSpec device, ModuleAllocation alloc,
                       std::string name = "fpga-sim");

    const std::string &
    name() const override
    {
        return name_;
    }

    bool
    simulatesLatency() const override
    {
        return true;
    }

    std::unique_ptr<hecnn::BackendRun> beginRun(
        const hecnn::BackendRunContext &ctx) const override;

  private:
    const SimDesign &designFor(const hecnn::HeNetworkPlan &plan) const;

    std::string name_;
    SimDesignResolver resolver_;
    /** One-slot lazy cache: a backend instance belongs to exactly one
     * PlanExecutor, hence one plan; guarded for concurrent runs. */
    mutable std::mutex mutex_;
    mutable const hecnn::HeNetworkPlan *resolvedPlan_ = nullptr;
    mutable SimDesign design_;
};

/**
 * Register "fpga-sim" backed by @p resolver. First installation wins
 * (returns false if the name is already taken), mirroring
 * hecnn::registerBackend()'s contract.
 */
bool installPipelineSimBackend(SimDesignResolver resolver);

} // namespace fxhenn::fpga

#endif // FXHENN_FPGA_SIM_BACKEND_HPP
