/**
 * @file
 * Resource and latency model of the parameterized HE operation modules.
 *
 * This is the analytical core the FxHENN DSE searches over, implementing
 * the paper's equations:
 *   Eq. 4  LAT_NTT   = log2(N) * N / (2 * nc_NTT)
 *   Eq. 3  PI        = ceil(L / P_intra) * LAT_b
 *   Eq. 7  DSP_op    = P_inter * P_intra * Const_op^DSP
 *   Eq. 8/9 BRAM_lr  = Bn_lr + Bb_lr (typed buffers, see buffer units)
 *
 * Per-limb basic latencies LAT_b (cycles), calibrated against Table I on
 * ACU9EG at 300 MHz (all entries land within ~12% of the published
 * values and reproduce the exact nc_NTT scaling shape):
 *   elementwise ops (CCadd/PCmult/CCmult):  N
 *   Rescale:   2 * LAT_NTT          (both ciphertext polynomials)
 *   KeySwitch: (L + 4) * LAT_NTT / 2 (decompose + base-extend + ModDown,
 *                                     two parallel NTT lanes)
 * A single-operation invocation additionally pays a 2N-cycle
 * fill/drain overhead, which reproduces Table I's 0.25 ms for the
 * elementwise modules.
 *
 * Buffer units: one RNS-limb buffer occupies ceil(N/1024) BRAM36K
 * blocks, doubled when nc_NTT = 8 because the doubled NTT cores exceed
 * the dual-port bandwidth of one block (the Table I BRAM step).
 */
#ifndef FXHENN_FPGA_OP_MODEL_HPP
#define FXHENN_FPGA_OP_MODEL_HPP

#include <cstdint>

#include "src/hecnn/plan.hpp"

namespace fxhenn::fpga {

/** The five HE operation module classes of Table I. */
enum class HeOpModule : std::uint8_t {
    ccAdd = 0,    ///< OP1
    pcMult = 1,   ///< OP2
    ccMult = 2,   ///< OP3
    rescale = 3,  ///< OP4
    keySwitch = 4 ///< OP5 (Relinearize and Rotate)
};

inline constexpr std::size_t kOpModuleCount = 5;

/** @return "OP1".."OP5". */
const char *moduleLabel(HeOpModule op);

/** @return "CCadd", "PCmult", ... */
const char *moduleName(HeOpModule op);

/** Parallelism choice for one HE operation module class. */
struct OpAllocation
{
    unsigned ncNtt = 2;  ///< NTT cores per basic NTT module (2, 4, 8)
    unsigned pIntra = 1; ///< parallel basic-module copies (Sec. V-B)
    unsigned pInter = 1; ///< parallel module instances (Sec. V-A)

    bool operator==(const OpAllocation &o) const = default;
};

/** Ring-parameter view the model needs. */
struct RingView
{
    std::uint64_t n = 8192;   ///< polynomial degree N
    std::size_t level = 7;    ///< ciphertext level L at the point of use
};

// --- latency ---------------------------------------------------------------

/** Eq. 4: butterfly-serial NTT latency in cycles. */
double nttLatencyCycles(std::uint64_t n, unsigned ncNtt);

/** Per-limb pipeline-stage latency LAT_b of module @p op (cycles). */
double basicLatencyCycles(HeOpModule op, const RingView &ring,
                          unsigned ncNtt);

/** Eq. 3: pipeline interval of one operation. */
double pipelineIntervalCycles(HeOpModule op, const RingView &ring,
                              const OpAllocation &alloc);

/** Latency of a single isolated operation (Table I column). */
double singleOpLatencyCycles(HeOpModule op, const RingView &ring,
                             const OpAllocation &alloc);

/**
 * Off-chip penalty factor for module @p op when its working set cannot
 * stay in BRAM (Table III; KeySwitch's non-burst access dominates).
 */
double offChipPenalty(HeOpModule op);

// --- resources -------------------------------------------------------------

/** Eq. 7 constant: DSP usage of one instance at P = 1 (Table I). */
unsigned dspConst(HeOpModule op, unsigned ncNtt);

/** Eq. 7: DSP slices used by an allocated module class. */
unsigned dspUsage(HeOpModule op, const OpAllocation &alloc);

/**
 * LUT estimate of one module instance at P = 1 (control logic +
 * butterfly datapaths; grows with the NTT core count). LUTs are part
 * of the FPGA specification the framework constrains on (Sec. IV),
 * though DSP and BRAM are the binding resources in practice.
 */
unsigned lutConst(HeOpModule op, unsigned ncNtt);

/** LUTs used by an allocated module class (Eq. 7 scaling). */
unsigned lutUsage(HeOpModule op, const OpAllocation &alloc);

/** BRAM36K blocks of one RNS-limb buffer (with the nc = 8 doubling). */
unsigned limbBufferBlocks(std::uint64_t n, unsigned ncNtt);

/**
 * Buffer demand of one module instance in limb-buffer units, split into
 * the NTT-partitioned (Bn) and plain (Bb) classes of Sec. VI-A.
 * Bn scales with P_intra (Eq. 9); Bb does not.
 */
struct BufferUnits
{
    double bn = 0.0;
    double bb = 0.0;
};
BufferUnits bufferUnits(HeOpModule op, const RingView &ring,
                        unsigned pIntra);

// --- work model ------------------------------------------------------------

/**
 * Modular multiplications performed by one operation ("MACs of HOPs",
 * Table IV): butterflies count one multiply each, elementwise passes
 * one per coefficient per polynomial.
 */
double opModMuls(HeOpModule op, const RingView &ring);

/** Map a plan opcode to its module class. */
HeOpModule moduleOf(hecnn::HeOpKind kind);

} // namespace fxhenn::fpga

#endif // FXHENN_FPGA_OP_MODEL_HPP
