#include "src/fpga/pipeline_sim.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace fxhenn::fpga {

double
simulatePipeline(std::size_t items, const std::vector<SimStage> &stages)
{
    if (items == 0 || stages.empty())
        return 0.0;

    // server_free[s][k]: when server k of stage s next becomes free.
    std::vector<std::vector<double>> server_free;
    server_free.reserve(stages.size());
    for (const auto &stage : stages) {
        FXHENN_FATAL_IF(stage.servers == 0,
                        "stage must have at least one server");
        server_free.emplace_back(stage.servers, 0.0);
    }

    double makespan = 0.0;
    for (std::size_t item = 0; item < items; ++item) {
        double ready = 0.0; // when this item leaves the previous stage
        for (std::size_t s = 0; s < stages.size(); ++s) {
            auto &free_at = server_free[s];
            auto earliest =
                std::min_element(free_at.begin(), free_at.end());
            const double start = std::max(ready, *earliest);
            const double finish = start + stages[s].serviceCycles;
            *earliest = finish;
            ready = finish;
        }
        makespan = std::max(makespan, ready);
    }
    return makespan;
}

double
simulateSerial(std::size_t items, const std::vector<SimStage> &stages)
{
    double per_item = 0.0;
    for (const auto &stage : stages)
        per_item += stage.serviceCycles;
    return per_item * static_cast<double>(items);
}

std::vector<SimStage>
layerStages(const hecnn::HeLayerPlan &layer, std::uint64_t n,
            const ModuleAllocation &alloc)
{
    const RingView ring{n, layer.levelIn};
    const std::size_t items = std::max<std::size_t>(layer.nIn, 1);

    // Module classes in first-appearance (program) order.
    std::vector<HeOpModule> order;
    std::array<std::uint64_t, kOpModuleCount> counts{};
    for (const auto &instr : layer.instrs) {
        if (instr.kind == hecnn::HeOpKind::copy)
            continue;
        const HeOpModule op = moduleOf(instr.kind);
        if (counts[static_cast<std::size_t>(op)] == 0)
            order.push_back(op);
        ++counts[static_cast<std::size_t>(op)];
    }

    std::vector<SimStage> stages;
    stages.reserve(order.size());
    for (HeOpModule op : order) {
        const OpAllocation &oa = alloc[op];
        const double per_item =
            static_cast<double>(counts[static_cast<std::size_t>(op)]) /
            static_cast<double>(items);
        SimStage stage;
        stage.serviceCycles =
            pipelineIntervalCycles(op, ring, oa) * per_item;
        stage.servers = oa.pInter;
        stages.push_back(stage);
    }
    return stages;
}

double
simulateLayer(const hecnn::HeLayerPlan &layer, std::uint64_t n,
              const ModuleAllocation &alloc)
{
    const std::size_t items = std::max<std::size_t>(layer.nIn, 1);
    return simulatePipeline(items, layerStages(layer, n, alloc));
}

} // namespace fxhenn::fpga
