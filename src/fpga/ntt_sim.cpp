#include "src/fpga/ntt_sim.hpp"

#include <algorithm>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"

namespace fxhenn::fpga {

NttSimResult
simulateNttModule(std::uint64_t n, unsigned cores, unsigned banks)
{
    FXHENN_FATAL_IF(!isPowerOfTwo(n), "NTT size must be a power of two");
    FXHENN_FATAL_IF(cores == 0 || banks == 0,
                    "cores and banks must be positive");

    NttSimResult result;
    result.idealCycles =
        static_cast<std::uint64_t>(floorLog2(n)) * n / (2ull * cores);

    std::vector<unsigned> bank_load(banks, 0);
    unsigned cores_busy = 0;
    std::uint64_t cycles = 0;
    std::uint64_t issued_this_cycle = 0;

    auto advance_cycle = [&]() {
        ++cycles;
        if (issued_this_cycle < cores)
            ++result.conflictStalls;
        std::fill(bank_load.begin(), bank_load.end(), 0);
        cores_busy = 0;
        issued_this_cycle = 0;
    };

    // Cooley-Tukey stage structure: stage m has m twiddle groups of t
    // butterflies on address pairs (j, j + t).
    std::uint64_t t = n;
    for (std::uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (std::uint64_t i = 0; i < m; ++i) {
            const std::uint64_t j1 = 2 * i * t;
            for (std::uint64_t j = j1; j < j1 + t; ++j) {
                const unsigned bank_a =
                    static_cast<unsigned>(j % banks);
                const unsigned bank_b =
                    static_cast<unsigned>((j + t) % banks);

                // Retry in the next cycle until a core and both bank
                // ports are free.
                for (;;) {
                    const unsigned need_a = 1;
                    const unsigned need_b =
                        (bank_a == bank_b) ? 1 : 0;
                    if (cores_busy < cores &&
                        bank_load[bank_a] + need_a +
                                (bank_a == bank_b ? need_b : 0) <=
                            2 &&
                        (bank_a == bank_b ||
                         bank_load[bank_b] + 1 <= 2)) {
                        bank_load[bank_a] +=
                            1 + (bank_a == bank_b ? 1 : 0);
                        if (bank_a != bank_b)
                            bank_load[bank_b] += 1;
                        ++cores_busy;
                        ++issued_this_cycle;
                        break;
                    }
                    advance_cycle();
                }
            }
        }
        // Stage barrier: all butterflies of a stage finish before the
        // next stage reads their results.
        if (cores_busy != 0)
            advance_cycle();
    }
    result.cycles = cycles;
    return result;
}

unsigned
conflictFreeBanks(std::uint64_t n, unsigned cores)
{
    for (unsigned banks = 1; banks <= 64; banks <<= 1) {
        const auto sim = simulateNttModule(n, cores, banks);
        // "Conflict-free" up to the stage-barrier rounding.
        if (sim.cycles <=
            sim.idealCycles + static_cast<std::uint64_t>(
                                  floorLog2(n))) {
            return banks;
        }
    }
    return 0;
}

unsigned
physicalBlocks(std::uint64_t n, unsigned cores)
{
    const unsigned natural = static_cast<unsigned>(divCeil(n, 1024));
    const unsigned read_banks = conflictFreeBanks(n, cores);
    // Ping-pong: results are written into a disjoint bank set of the
    // same width so reads never contend with writes.
    return std::max(natural, 2 * read_banks);
}

} // namespace fxhenn::fpga
