/**
 * @file
 * Layer- and network-level performance/resource evaluation.
 *
 * Combines the op-module model with a compiled plan's per-layer
 * operation counts to produce the quantities the DSE optimizes
 * (Eq. 10): per-layer latency, DSP usage, and BRAM demand with the
 * intra-layer buffer reuse of Fig. 5/6. Network totals distinguish
 *   - physical usage: shared module instances (FxHENN inter-layer
 *     reuse) or per-layer dedicated instances (the Table IX baseline);
 *   - aggregated usage: summed per-layer usage, which exceeds 100 %
 *     exactly when reuse is effective (Table IX).
 */
#ifndef FXHENN_FPGA_LAYER_MODEL_HPP
#define FXHENN_FPGA_LAYER_MODEL_HPP

#include <array>
#include <vector>

#include "src/fpga/device.hpp"
#include "src/fpga/op_model.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::fpga {

/** One allocation per HE operation module class. */
struct ModuleAllocation
{
    std::array<OpAllocation, kOpModuleCount> ops{};

    OpAllocation &
    operator[](HeOpModule op)
    {
        return ops[static_cast<std::size_t>(op)];
    }
    const OpAllocation &
    operator[](HeOpModule op) const
    {
        return ops[static_cast<std::size_t>(op)];
    }
};

/** Per-layer evaluation result. */
struct LayerPerf
{
    std::string name;
    double cycles = 0.0;
    unsigned dsp = 0;        ///< DSP slices touched by this layer
    unsigned lut = 0;        ///< LUT estimate touched by this layer
    double bramBlocks = 0.0; ///< buffer demand with intra-layer reuse
    HeOpModule bottleneck = HeOpModule::ccAdd;
};

/** Network evaluation result. */
struct NetworkPerf
{
    std::vector<LayerPerf> layers;
    double totalCycles = 0.0;
    unsigned dspPhysical = 0;   ///< instantiated slices
    unsigned lutPhysical = 0;   ///< instantiated LUT estimate
    double bramPhysical = 0.0;  ///< max (reuse) or sum (no reuse)
    unsigned dspAggregate = 0;  ///< sum of per-layer usage
    double bramAggregate = 0.0; ///< sum of per-layer demand
};

/**
 * Evaluate one layer under @p alloc.
 *
 * @param layer     compiled layer plan (op counts, level, N_in)
 * @param n         ring degree
 * @param alloc     module allocation visible to this layer
 * @param bramLimit on-chip blocks available to this layer: negative
 *                  means unlimited; smaller than the demand means the
 *                  spilled fraction pays the off-chip penalty
 *                  (Table III: 0 models an all-DRAM layer)
 * @param peakLiveRegs peak number of simultaneously live ciphertext
 *                  registers inside this layer (from
 *                  analysis::computeLiveness); 0 means unknown. When
 *                  known, the Eq. 8-9 intra-layer ciphertext-buffer
 *                  replication is capped by it — a layer that never
 *                  holds more than k live ciphertexts cannot need
 *                  more than k resident stream buffers — which only
 *                  ever lowers the BRAM demand.
 */
LayerPerf evaluateLayer(const hecnn::HeLayerPlan &layer, std::uint64_t n,
                        const ModuleAllocation &alloc,
                        double bramLimit = -1.0,
                        unsigned peakLiveRegs = 0);

/**
 * Evaluate the whole network with a single shared module allocation
 * (FxHENN inter-layer module + buffer reuse).
 *
 * @param peakLive optional per-layer peak live-register counts (one
 *                 entry per layer) used to tighten each layer's
 *                 buffer demand; nullptr reproduces the plain Eq. 8-9
 *                 bound.
 */
NetworkPerf evaluateNetworkShared(
    const hecnn::HeNetworkPlan &plan, const ModuleAllocation &alloc,
    const std::vector<unsigned> *peakLive = nullptr);

/**
 * Evaluate the network with dedicated per-layer allocations and no
 * cross-layer reuse (the Table IX baseline).
 *
 * @param bramLimits optional per-layer on-chip budget (spill applies)
 */
NetworkPerf evaluateNetworkDedicated(
    const hecnn::HeNetworkPlan &plan,
    const std::vector<ModuleAllocation> &perLayer,
    const std::vector<double> *bramLimits = nullptr);

/** Which module classes a layer actually invokes. */
std::array<bool, kOpModuleCount> modulesUsed(
    const hecnn::HeLayerPlan &layer);

/** Operation count of @p layer for module class @p op. */
std::uint64_t opCount(const hecnn::HeLayerPlan &layer, HeOpModule op);

/** Total modular multiplications of a layer ("MACs of HOPs"). */
double layerModMuls(const hecnn::HeLayerPlan &layer, std::uint64_t n);

} // namespace fxhenn::fpga

#endif // FXHENN_FPGA_LAYER_MODEL_HPP
