/**
 * @file
 * Cycle-approximate pipeline simulator.
 *
 * The closed-form layer model (Eqs. 1-3) assumes a steady-state
 * bottleneck-bound pipeline. This event-driven simulator schedules each
 * work item through the layer's module stages explicitly — including
 * server contention when P_inter > 1 — and is used by the test suite to
 * validate that the closed forms and the schedule agree (and by the
 * ablation bench to quantify the pipelining gain versus serial
 * execution, Fig. 2's coarse/fine comparison).
 */
#ifndef FXHENN_FPGA_PIPELINE_SIM_HPP
#define FXHENN_FPGA_PIPELINE_SIM_HPP

#include <cstdint>
#include <vector>

#include "src/fpga/layer_model.hpp"

namespace fxhenn::fpga {

/** One pipeline stage: a module class with replicated instances. */
struct SimStage
{
    double serviceCycles = 0.0; ///< occupancy per item (the interval)
    unsigned servers = 1;       ///< P_inter parallel instances
};

/**
 * Simulate @p items flowing in order through @p stages.
 *
 * Items enter stage s only after finishing stage s-1; each stage hands
 * an item to its earliest-free server for serviceCycles.
 *
 * @return makespan in cycles.
 */
double simulatePipeline(std::size_t items,
                        const std::vector<SimStage> &stages);

/**
 * Simulate the same quantity serially (no overlap between items or
 * stages) — the "coarse-grained" reference of Fig. 2.
 */
double simulateSerial(std::size_t items,
                      const std::vector<SimStage> &stages);

/**
 * Build the stage list of a compiled layer under @p alloc: one stage
 * per module class in program order, with per-item service equal to
 * the op's pipeline interval times its per-item multiplicity.
 */
std::vector<SimStage> layerStages(const hecnn::HeLayerPlan &layer,
                                  std::uint64_t n,
                                  const ModuleAllocation &alloc);

/** Event-driven latency estimate for one layer (cycles). */
double simulateLayer(const hecnn::HeLayerPlan &layer, std::uint64_t n,
                     const ModuleAllocation &alloc);

} // namespace fxhenn::fpga

#endif // FXHENN_FPGA_PIPELINE_SIM_HPP
