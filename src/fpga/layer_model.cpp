#include "src/fpga/layer_model.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace fxhenn::fpga {

std::array<bool, kOpModuleCount>
modulesUsed(const hecnn::HeLayerPlan &layer)
{
    std::array<bool, kOpModuleCount> used{};
    for (std::size_t i = 0; i < kOpModuleCount; ++i)
        used[i] = opCount(layer, static_cast<HeOpModule>(i)) > 0;
    return used;
}

std::uint64_t
opCount(const hecnn::HeLayerPlan &layer, HeOpModule op)
{
    using hecnn::HeOpKind;
    switch (op) {
      case HeOpModule::ccAdd:
        return layer.kindCount(HeOpKind::ccAdd) +
               layer.kindCount(HeOpKind::pcAdd);
      case HeOpModule::pcMult:
        return layer.kindCount(HeOpKind::pcMult);
      case HeOpModule::ccMult:
        return layer.kindCount(HeOpKind::ccMult);
      case HeOpModule::rescale:
        return layer.kindCount(HeOpKind::rescale);
      case HeOpModule::keySwitch:
        return layer.kindCount(HeOpKind::relinearize) +
               layer.kindCount(HeOpKind::rotate);
    }
    return 0;
}

double
layerModMuls(const hecnn::HeLayerPlan &layer, std::uint64_t n)
{
    const RingView ring{n, layer.levelIn};
    double total = 0.0;
    for (std::size_t i = 0; i < kOpModuleCount; ++i) {
        const auto op = static_cast<HeOpModule>(i);
        total += static_cast<double>(opCount(layer, op)) *
                 opModMuls(op, ring);
    }
    return total;
}

LayerPerf
evaluateLayer(const hecnn::HeLayerPlan &layer, std::uint64_t n,
              const ModuleAllocation &alloc, double bramLimit,
              unsigned peakLiveRegs)
{
    const RingView ring{n, layer.levelIn};
    LayerPerf perf;
    perf.name = layer.name;

    // Buffer spilling (when a BRAM limit applies) is priority-aware: a
    // sane design keeps the randomly-accessed KeySwitch extension
    // buffers ("critical") on-chip first and spills the burst-friendly
    // ciphertext stream buffers, which DDR serves ~16X slower, before
    // ever spilling critical data (~140X, Table III).
    double stream_spill = 0.0;   // ct/rescale buffers evicted fraction
    double critical_spill = 0.0; // KeySwitch buffers evicted fraction

    auto op_slowdown = [&](HeOpModule op) {
        if (op == HeOpModule::keySwitch) {
            // Full spill of both pools reproduces Table III's ~140X.
            return 1.0 + 131.0 * critical_spill + 8.0 * stream_spill;
        }
        // Elementwise and Rescale pipelines stream; full spill ~16X.
        return 1.0 + 15.0 * stream_spill;
    };

    // Latency: the pipelined layer is bound by its slowest module class
    // (Eqs. 1-3 generalized to measured op counts), plus one fill.
    // A layer occupies only as many parallel instances of a module as
    // it has operations of that class (Fig. 8: Act layers use one of
    // the two shared KeySwitch modules); this effective inter degree
    // governs its latency divisor, used-DSP and buffer footprint.
    auto effective_inter = [&](HeOpModule op, std::uint64_t count) {
        return std::min<std::uint64_t>(alloc[op].pInter,
                                       std::max<std::uint64_t>(count,
                                                               1));
    };

    // Standard pipeline makespan: the first input pays every stage
    // once (fill), the remaining nIn - 1 inputs stream at the
    // bottleneck stage's interval (Eqs. 1-2 with the interval of
    // Eq. 3); P_inter parallel instances divide the bottleneck.
    const double items =
        static_cast<double>(std::max<std::size_t>(layer.nIn, 1));
    auto latency_pass = [&]() {
        perf.dsp = 0;
        perf.lut = 0;
        double fill = 0.0;
        double bottleneck_rate = 0.0;
        for (std::size_t i = 0; i < kOpModuleCount; ++i) {
            const auto op = static_cast<HeOpModule>(i);
            const std::uint64_t count = opCount(layer, op);
            if (count == 0)
                continue;
            const OpAllocation &oa = alloc[op];
            const std::uint64_t inter = effective_inter(op, count);
            double interval = pipelineIntervalCycles(op, ring, oa);
            interval *= op_slowdown(op);
            const double per_item =
                static_cast<double>(count) / items;
            fill += per_item * interval;
            const double rate = per_item * interval /
                                static_cast<double>(inter);
            if (rate > bottleneck_rate) {
                bottleneck_rate = rate;
                perf.bottleneck = op;
            }
            perf.dsp += static_cast<unsigned>(inter) * oa.pIntra *
                        dspConst(op, oa.ncNtt);
            perf.lut += static_cast<unsigned>(inter) * oa.pIntra *
                        lutConst(op, oa.ncNtt);
        }
        perf.cycles = fill + (items - 1.0) * bottleneck_rate;
    };
    latency_pass();

    // BRAM demand with intra-layer buffer reuse (Fig. 5/6):
    //  - one input ciphertext buffer (Bb) feeds the layer pipeline;
    //  - one shared working/output ciphertext buffer is reused by the
    //    elementwise ops, Rescale and the KeySwitch output (its size
    //    and partitioning follow the most demanding op present);
    //  - Rescale adds one working pair per extra intra copy and
    //    KeySwitch adds its extension/decomposition buffers.
    const auto used = modulesUsed(layer);
    const double l = static_cast<double>(ring.level);
    auto is_used = [&](HeOpModule op) {
        return used[static_cast<std::size_t>(op)];
    };

    double work_units = 0.0;
    unsigned work_inter = 1;
    unsigned work_nc = 2;
    bool any_ew = false;
    for (HeOpModule op :
         {HeOpModule::ccAdd, HeOpModule::pcMult, HeOpModule::ccMult,
          HeOpModule::rescale, HeOpModule::keySwitch}) {
        if (!is_used(op))
            continue;
        const OpAllocation &oa = alloc[op];
        const double ct_units =
            (op == HeOpModule::ccMult) ? 3.0 * l : 2.0 * l;
        work_units = std::max(work_units, ct_units);
        work_inter = std::max(
            work_inter, static_cast<unsigned>(effective_inter(
                            op, opCount(layer, op))));
        work_nc = std::max(work_nc, oa.ncNtt);
        any_ew = any_ew || op == HeOpModule::ccAdd ||
                 op == HeOpModule::pcMult || op == HeOpModule::ccMult;
    }

    // Liveness-informed tightening: the stream buffers are replicated
    // once per inter-parallel pipeline, but a pipeline copy only needs
    // a resident ciphertext when a live value occupies it. Capping the
    // replication by the layer's peak live-register count never
    // increases the demand, so every design feasible under the plain
    // bound stays feasible.
    const unsigned buf_inter =
        peakLiveRegs > 0 ? std::min(work_inter, peakLiveRegs)
                         : work_inter;

    double stream_blocks = 0.0;
    double critical_blocks = 0.0;
    if (work_units > 0.0) {
        // Input ciphertext buffer (plain Bb partitioning).
        stream_blocks += 2.0 * l * buf_inter * limbBufferBlocks(n, 2);
        // Shared working/output buffer.
        stream_blocks +=
            work_units * buf_inter * limbBufferBlocks(n, work_nc);
    }
    if (is_used(HeOpModule::rescale)) {
        const OpAllocation &oa = alloc[HeOpModule::rescale];
        stream_blocks += 2.0 * (oa.pIntra - 1) * oa.pInter *
                         limbBufferBlocks(n, oa.ncNtt);
    }
    if (is_used(HeOpModule::keySwitch)) {
        const OpAllocation &oa = alloc[HeOpModule::keySwitch];
        const auto inter = effective_inter(
            HeOpModule::keySwitch,
            opCount(layer, HeOpModule::keySwitch));
        // Extension working buffers per parallel pipeline, plus one
        // decomposition staging buffer shared by the inter-parallel
        // instances (the ciphertext in/out part is the shared buffer
        // above).
        const double extra = (2.0 * l + 2.0) * oa.pIntra *
                                 static_cast<double>(inter) +
                             (l + 1.0);
        critical_blocks += extra * limbBufferBlocks(n, oa.ncNtt);
    }
    (void)any_ew;
    const double blocks = stream_blocks + critical_blocks;
    perf.bramBlocks = blocks;

    // Apply the BRAM limit with critical-first placement.
    if (bramLimit >= 0.0 && blocks > bramLimit) {
        const double crit_fit = std::min(critical_blocks, bramLimit);
        const double stream_fit =
            std::min(stream_blocks, bramLimit - crit_fit);
        if (critical_blocks > 0.0)
            critical_spill = 1.0 - crit_fit / critical_blocks;
        if (stream_blocks > 0.0)
            stream_spill = 1.0 - stream_fit / stream_blocks;
        perf.bramBlocks = bramLimit;
        latency_pass();
    }
    return perf;
}

namespace {

/** Sum the DSP slices of a module allocation over the used classes. */
unsigned
allocatedDsp(const ModuleAllocation &alloc,
             const std::array<bool, kOpModuleCount> &used)
{
    unsigned dsp = 0;
    for (std::size_t i = 0; i < kOpModuleCount; ++i) {
        if (used[i])
            dsp += dspUsage(static_cast<HeOpModule>(i),
                            alloc.ops[i]);
    }
    return dsp;
}

/** Sum the LUT estimate of a module allocation over the used classes. */
unsigned
allocatedLut(const ModuleAllocation &alloc,
             const std::array<bool, kOpModuleCount> &used)
{
    unsigned lut = 0;
    for (std::size_t i = 0; i < kOpModuleCount; ++i) {
        if (used[i])
            lut += lutUsage(static_cast<HeOpModule>(i),
                            alloc.ops[i]);
    }
    return lut;
}

} // namespace

NetworkPerf
evaluateNetworkShared(const hecnn::HeNetworkPlan &plan,
                      const ModuleAllocation &alloc,
                      const std::vector<unsigned> *peakLive)
{
    FXHENN_FATAL_IF(peakLive != nullptr &&
                        peakLive->size() != plan.layers.size(),
                    "one peak-live count per layer required");
    NetworkPerf perf;
    std::array<bool, kOpModuleCount> any_used{};
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        const auto &layer = plan.layers[i];
        const unsigned peak = peakLive ? (*peakLive)[i] : 0;
        LayerPerf lp = evaluateLayer(layer, plan.params.n, alloc,
                                     -1.0, peak);
        perf.totalCycles += lp.cycles;
        perf.dspAggregate += lp.dsp;
        perf.bramAggregate += lp.bramBlocks;
        perf.bramPhysical = std::max(perf.bramPhysical, lp.bramBlocks);
        const auto used = modulesUsed(layer);
        for (std::size_t i = 0; i < kOpModuleCount; ++i)
            any_used[i] = any_used[i] || used[i];
        perf.layers.push_back(std::move(lp));
    }
    perf.dspPhysical = allocatedDsp(alloc, any_used);
    perf.lutPhysical = allocatedLut(alloc, any_used);
    return perf;
}

NetworkPerf
evaluateNetworkDedicated(const hecnn::HeNetworkPlan &plan,
                         const std::vector<ModuleAllocation> &perLayer,
                         const std::vector<double> *bramLimits)
{
    FXHENN_FATAL_IF(perLayer.size() != plan.layers.size(),
                    "one allocation per layer required");
    FXHENN_FATAL_IF(bramLimits != nullptr &&
                        bramLimits->size() != plan.layers.size(),
                    "one BRAM limit per layer required");
    NetworkPerf perf;
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        const double limit =
            bramLimits ? (*bramLimits)[i] : -1.0;
        LayerPerf lp = evaluateLayer(plan.layers[i], plan.params.n,
                                     perLayer[i], limit);
        perf.totalCycles += lp.cycles;
        perf.dspAggregate += lp.dsp;
        perf.bramAggregate += lp.bramBlocks;
        // No reuse: every layer's modules and buffers coexist.
        perf.dspPhysical += lp.dsp;
        perf.lutPhysical += lp.lut;
        perf.bramPhysical += lp.bramBlocks;
        perf.layers.push_back(std::move(lp));
    }
    return perf;
}

} // namespace fxhenn::fpga
