/**
 * @file
 * Cycle-level simulation of one hardware NTT module.
 *
 * The Table I observations the FxHENN DSE builds on — Eq. 4's
 * LAT_NTT = log2(N) * N / (2 nc), the flat BRAM usage from nc = 2 to 4,
 * and the partition doubling at nc = 8 — all follow from how butterfly
 * cores contend for dual-port BRAM banks. This simulator schedules the
 * actual butterfly address stream of a negacyclic NTT against a banked
 * memory and reports cycles and conflicts, validating the closed form
 * instead of assuming it.
 *
 * Memory model: the N coefficients are cyclically partitioned across
 * `banks` BRAM banks (bank = address mod banks); each bank serves at
 * most two accesses per cycle (true dual port). Each of the `cores`
 * butterfly units consumes one butterfly (two coefficient reads) per
 * cycle; writes are pipelined a phase behind reads and mirror the same
 * banking, so scheduling reads suffices.
 */
#ifndef FXHENN_FPGA_NTT_SIM_HPP
#define FXHENN_FPGA_NTT_SIM_HPP

#include <cstdint>

namespace fxhenn::fpga {

/** Outcome of one simulated transform. */
struct NttSimResult
{
    std::uint64_t cycles = 0;        ///< total schedule length
    std::uint64_t idealCycles = 0;   ///< Eq. 4 lower bound
    std::uint64_t conflictStalls = 0; ///< cycles lost to bank conflicts

    /** Achieved efficiency versus the Eq. 4 bound. */
    double
    efficiency() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(idealCycles) /
                                 static_cast<double>(cycles);
    }
};

/**
 * Simulate a full log2(N)-stage negacyclic NTT on @p cores butterfly
 * units over @p banks dual-port banks.
 *
 * @param n     transform size (power of two)
 * @param cores butterfly cores (nc_NTT)
 * @param banks BRAM banks the coefficients are partitioned across
 */
NttSimResult simulateNttModule(std::uint64_t n, unsigned cores,
                               unsigned banks);

/**
 * The smallest bank count that lets @p cores run conflict-free —
 * the partition factor the HLS directives must request. With cyclic
 * banking and ping-pong write buffers, this is the core count itself.
 */
unsigned conflictFreeBanks(std::uint64_t n, unsigned cores);

/**
 * Physical BRAM36K blocks one limb buffer occupies for @p cores:
 * max(natural blocks, read banks + ping-pong write banks). For
 * N = 8192 this reproduces the Table I observation exactly — 8 blocks
 * up to nc = 4 and 16 at nc = 8 (see limbBufferBlocks()).
 */
unsigned physicalBlocks(std::uint64_t n, unsigned cores);

} // namespace fxhenn::fpga

#endif // FXHENN_FPGA_NTT_SIM_HPP
