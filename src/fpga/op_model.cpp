#include "src/fpga/op_model.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"

namespace fxhenn::fpga {

const char *
moduleLabel(HeOpModule op)
{
    switch (op) {
      case HeOpModule::ccAdd:
        return "OP1";
      case HeOpModule::pcMult:
        return "OP2";
      case HeOpModule::ccMult:
        return "OP3";
      case HeOpModule::rescale:
        return "OP4";
      case HeOpModule::keySwitch:
        return "OP5";
    }
    return "?";
}

const char *
moduleName(HeOpModule op)
{
    switch (op) {
      case HeOpModule::ccAdd:
        return "CCadd";
      case HeOpModule::pcMult:
        return "PCmult";
      case HeOpModule::ccMult:
        return "CCmult";
      case HeOpModule::rescale:
        return "Rescale";
      case HeOpModule::keySwitch:
        return "KeySwitch";
    }
    return "?";
}

double
nttLatencyCycles(std::uint64_t n, unsigned ncNtt)
{
    FXHENN_FATAL_IF(ncNtt == 0 || !isPowerOfTwo(ncNtt),
                    "nc_NTT must be a power of two");
    return static_cast<double>(floorLog2(n)) * static_cast<double>(n) /
           (2.0 * ncNtt);
}

double
basicLatencyCycles(HeOpModule op, const RingView &ring, unsigned ncNtt)
{
    const double ntt = nttLatencyCycles(ring.n, ncNtt);
    switch (op) {
      case HeOpModule::ccAdd:
      case HeOpModule::pcMult:
      case HeOpModule::ccMult:
        // Elementwise pass over one limb, dual-port bound.
        return static_cast<double>(ring.n);
      case HeOpModule::rescale:
        // INTT of the dropped limb + NTT back, both polynomials.
        return 2.0 * ntt;
      case HeOpModule::keySwitch:
        // Per decomposed limb: base extension to L+1 target moduli plus
        // the amortized ModDown, on two parallel NTT lanes.
        return (static_cast<double>(ring.level) + 4.0) * ntt / 2.0;
    }
    return 0.0;
}

double
pipelineIntervalCycles(HeOpModule op, const RingView &ring,
                       const OpAllocation &alloc)
{
    FXHENN_FATAL_IF(alloc.pIntra == 0 || alloc.pInter == 0,
                    "parallelism degrees must be positive");
    const double rounds = static_cast<double>(
        divCeil(ring.level, alloc.pIntra));
    return rounds * basicLatencyCycles(op, ring, alloc.ncNtt);
}

double
singleOpLatencyCycles(HeOpModule op, const RingView &ring,
                      const OpAllocation &alloc)
{
    // Fixed pipeline fill/drain of roughly one buffer load + store.
    return pipelineIntervalCycles(op, ring, alloc) +
           2.0 * static_cast<double>(ring.n);
}

double
offChipPenalty(HeOpModule op)
{
    // Table III calibration: random-access DDR traffic slows the
    // elementwise/rescale pipelines ~16X (Cnv1: 0.334 s / 0.021 s)
    // and the KeySwitch-heavy pipeline ~140X (Fc1: 22.6 s / 0.162 s).
    switch (op) {
      case HeOpModule::keySwitch:
        return 140.0;
      default:
        return 16.0;
    }
}

unsigned
dspConst(HeOpModule op, unsigned ncNtt)
{
    // Table I measurements on ACU9EG (2520 DSP): per-instance DSP at
    // P_intra = P_inter = 1. The NTT-bearing modules grow with nc_NTT;
    // values outside {2,4,8} extrapolate linearly per core.
    switch (op) {
      case HeOpModule::ccAdd:
        return 0;
      case HeOpModule::pcMult:
      case HeOpModule::ccMult:
        return 100; // 3.97 % of 2520
      case HeOpModule::rescale:
        // 112 / 184 / 328 at nc = 2 / 4 / 8: 36 per core + 40 fixed.
        return 36 * ncNtt + 40;
      case HeOpModule::keySwitch:
        // 254 / 479 / 721 at nc = 2 / 4 / 8: ~78 per core + ~105 fixed.
        return 78 * ncNtt + 105;
    }
    return 0;
}

unsigned
dspUsage(HeOpModule op, const OpAllocation &alloc)
{
    return alloc.pInter * alloc.pIntra * dspConst(op, alloc.ncNtt);
}

unsigned
lutConst(HeOpModule op, unsigned ncNtt)
{
    // Rough per-instance estimates in the HEAX/coxHE range: ~1.3k LUTs
    // per NTT butterfly core plus module control; elementwise lanes
    // are cheap. Chosen so LUTs track but do not dominate DSP/BRAM.
    switch (op) {
      case HeOpModule::ccAdd:
        return 600;
      case HeOpModule::pcMult:
        return 900;
      case HeOpModule::ccMult:
        return 1100;
      case HeOpModule::rescale:
        return 1300 * ncNtt / 2 + 2500;
      case HeOpModule::keySwitch:
        return 2600 * ncNtt / 2 + 6000;
    }
    return 0;
}

unsigned
lutUsage(HeOpModule op, const OpAllocation &alloc)
{
    return alloc.pInter * alloc.pIntra * lutConst(op, alloc.ncNtt);
}

unsigned
limbBufferBlocks(std::uint64_t n, unsigned ncNtt)
{
    const unsigned base = static_cast<unsigned>(divCeil(n, 1024));
    // The dual-port BRAM serves up to 4 NTT cores; 8 cores require the
    // data partitioned across twice the blocks (Table I observation).
    return ncNtt > 4 ? 2 * base : base;
}

BufferUnits
bufferUnits(HeOpModule op, const RingView &ring, unsigned pIntra)
{
    const double l = static_cast<double>(ring.level);
    BufferUnits u;
    switch (op) {
      case HeOpModule::ccAdd:
      case HeOpModule::pcMult:
        // One ciphertext buffered with input/output reuse (Fig. 5);
        // the plaintext of PCmult streams from off-chip.
        u.bb = 2.0 * l;
        break;
      case HeOpModule::ccMult:
        // Squaring produces a 3-part intermediate.
        u.bb = 3.0 * l;
        break;
      case HeOpModule::rescale:
        // Whole ciphertext lives in NTT-partitioned buffers; intra
        // parallel copies add one working buffer pair each.
        u.bn = 2.0 * l + 2.0 * (pIntra - 1);
        break;
      case HeOpModule::keySwitch:
        // Ciphertext in/out (2L) + per-intra-copy extension working
        // buffers (2L+2 each) + the decomposition staging buffer (L+1);
        // 38 limb units at L = 7, matching Table I's 35 % on ACU9EG.
        u.bn = 2.0 * l + (2.0 * l + 2.0) * pIntra + (l + 1.0);
        break;
    }
    return u;
}

double
opModMuls(HeOpModule op, const RingView &ring)
{
    const double n = static_cast<double>(ring.n);
    const double l = static_cast<double>(ring.level);
    const double butterflies =
        static_cast<double>(floorLog2(ring.n)) * n / 2.0;
    switch (op) {
      case HeOpModule::ccAdd:
        return 0.0;
      case HeOpModule::pcMult:
        return 2.0 * l * n; // both polynomials, every limb
      case HeOpModule::ccMult:
        return 3.0 * l * n; // three cross products (squaring)
      case HeOpModule::rescale:
        // 2 polys * L NTT passes + the scaling pass.
        return 2.0 * l * butterflies + 2.0 * (l - 1.0) * n;
      case HeOpModule::keySwitch:
        // L*(L+2) + 2(L+1) NTT passes + inner products.
        return (l * (l + 2.0) + 2.0 * (l + 1.0)) * butterflies +
               2.0 * l * (l + 1.0) * n;
    }
    return 0.0;
}

HeOpModule
moduleOf(hecnn::HeOpKind kind)
{
    switch (kind) {
      case hecnn::HeOpKind::ccAdd:
      case hecnn::HeOpKind::pcAdd:
        return HeOpModule::ccAdd;
      case hecnn::HeOpKind::pcMult:
        return HeOpModule::pcMult;
      case hecnn::HeOpKind::ccMult:
        return HeOpModule::ccMult;
      case hecnn::HeOpKind::rescale:
        return HeOpModule::rescale;
      case hecnn::HeOpKind::relinearize:
      case hecnn::HeOpKind::rotate:
        return HeOpModule::keySwitch;
      case hecnn::HeOpKind::copy:
        break;
    }
    FXHENN_PANIC_IF(true, "copy has no hardware module");
    return HeOpModule::ccAdd;
}

} // namespace fxhenn::fpga
