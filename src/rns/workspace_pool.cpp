#include "src/rns/workspace_pool.hpp"

#include <algorithm>
#include <utility>

#include "src/common/thread_annotations.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::rns {

namespace {

/** The per-thread state: one freelist per element type + counters. */
struct ThreadPool
{
    std::vector<std::vector<std::uint64_t>> freeU64;
    std::vector<std::vector<unsigned __int128>> freeU128;
    WorkspaceStats stats;
};

/**
 * The pool state is thread-confined (thread_local), not mutex-guarded:
 * there is no capability to annotate and nothing for the thread-safety
 * analysis to check, so the accessor is explicitly excluded. Safety
 * rests on confinement alone — a ThreadPool reference must never be
 * cached and handed to another thread.
 */
ThreadPool &
threadPool() FXHENN_NO_THREAD_SAFETY_ANALYSIS
{
    static thread_local ThreadPool pool;
    return pool;
}

template <typename T>
std::vector<T>
leaseFrom(std::vector<std::vector<T>> &freelist, std::size_t n,
          WorkspaceStats &stats)
{
    if (!freelist.empty()) {
        std::vector<T> buf = std::move(freelist.back());
        freelist.pop_back();
        buf.resize(n); // contents unspecified by contract
        ++stats.hits;
        FXHENN_TELEM_COUNT("rns.workspace.hits", 1);
        return buf;
    }
    ++stats.misses;
    FXHENN_TELEM_COUNT("rns.workspace.misses", 1);
    return std::vector<T>(n);
}

template <typename T>
void
releaseTo(std::vector<std::vector<T>> &freelist, std::vector<T> &&buf)
{
    if (buf.capacity() == 0 || freelist.size() >= WorkspacePool::kMaxFree)
        return; // moved-from husks and surplus buffers just deallocate
    freelist.push_back(std::move(buf));
}

} // namespace

std::vector<std::uint64_t>
WorkspacePool::leaseU64(std::size_t n)
{
    ThreadPool &pool = threadPool();
    return leaseFrom(pool.freeU64, n, pool.stats);
}

void
WorkspacePool::release(std::vector<std::uint64_t> &&buf)
{
    releaseTo(threadPool().freeU64, std::move(buf));
}

std::vector<unsigned __int128>
WorkspacePool::leaseU128(std::size_t n)
{
    ThreadPool &pool = threadPool();
    return leaseFrom(pool.freeU128, n, pool.stats);
}

void
WorkspacePool::release(std::vector<unsigned __int128> &&buf)
{
    releaseTo(threadPool().freeU128, std::move(buf));
}

WorkspaceStats
WorkspacePool::threadStats()
{
    return threadPool().stats;
}

void
WorkspacePool::resetThreadStats()
{
    threadPool().stats = WorkspaceStats{};
}

void
WorkspacePool::trimThread()
{
    ThreadPool &pool = threadPool();
    pool.freeU64.clear();
    pool.freeU128.clear();
}

PooledBuffer::PooledBuffer(std::size_t n)
    : buf_(WorkspacePool::leaseU64(n))
{
    std::fill(buf_.begin(), buf_.end(), 0);
}

PooledBuffer::PooledBuffer(const PooledBuffer &other)
    : buf_(WorkspacePool::leaseU64(other.buf_.size()))
{
    std::copy(other.buf_.begin(), other.buf_.end(), buf_.begin());
}

PooledBuffer &
PooledBuffer::operator=(const PooledBuffer &other)
{
    if (this != &other)
        buf_.assign(other.buf_.begin(), other.buf_.end());
    return *this;
}

PooledBuffer &
PooledBuffer::operator=(PooledBuffer &&other) noexcept
{
    if (this != &other) {
        WorkspacePool::release(std::move(buf_));
        buf_ = std::move(other.buf_);
    }
    return *this;
}

PooledBuffer::~PooledBuffer()
{
    WorkspacePool::release(std::move(buf_));
}

} // namespace fxhenn::rns
