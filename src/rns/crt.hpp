/**
 * @file
 * Exact CRT reconstruction of RNS residues to centered real values.
 *
 * CKKS decoding needs the centered integer value of each coefficient
 * modulo Q = prod q_i, where Q can be hundreds of bits (the paper uses
 * 210- and 252-bit Q). Doubles cannot carry that, so we reconstruct with
 * a minimal fixed-purpose big unsigned integer and only then convert the
 * (small, centered) result to long double.
 */
#ifndef FXHENN_RNS_CRT_HPP
#define FXHENN_RNS_CRT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/rns/rns_basis.hpp"

namespace fxhenn {

/** Little-endian multi-word unsigned integer, just big enough for Q^2. */
class BigUInt
{
  public:
    BigUInt() = default;
    explicit BigUInt(std::uint64_t v) : words_{v} { trim(); }

    /** this += other */
    void addInplace(const BigUInt &other);
    /** this -= other; other must be <= this. */
    void subInplace(const BigUInt &other);
    /** @return this * scalar. */
    BigUInt mulWord(std::uint64_t scalar) const;
    /** Three-way comparison. */
    int compare(const BigUInt &other) const;
    /** @return the value as long double (may round). */
    long double toLongDouble() const;
    /** @return value mod m (single word). */
    std::uint64_t modWord(std::uint64_t m) const;

    bool operator<(const BigUInt &o) const { return compare(o) < 0; }
    bool operator==(const BigUInt &o) const { return compare(o) == 0; }

  private:
    void trim();
    std::vector<std::uint64_t> words_; ///< empty means zero
};

/**
 * Reconstructs centered coefficient values from RNS residues for a fixed
 * level of a basis.
 */
class CrtReconstructor
{
  public:
    /** Build for the first @p level data primes of @p basis. */
    CrtReconstructor(const RnsBasis &basis, std::size_t level);

    /**
     * @param residues one residue per prime (residues[i] mod q_i)
     * @return the centered value x in (-Q/2, Q/2] as long double
     */
    long double
    reconstructCentered(std::span<const std::uint64_t> residues) const;

    /** log2 of the composite modulus Q at this level. */
    double logQ() const;

  private:
    const RnsBasis &basis_;
    std::size_t level_;
    BigUInt bigQ_;
    BigUInt halfQ_;
    std::vector<BigUInt> punctured_;     ///< M_i = Q / q_i
    std::vector<std::uint64_t> invPunctured_; ///< M_i^-1 mod q_i
};

} // namespace fxhenn

#endif // FXHENN_RNS_CRT_HPP
