#include "src/rns/crt.hpp"

#include <cmath>

#include "src/common/assert.hpp"

namespace fxhenn {

void
BigUInt::trim()
{
    while (!words_.empty() && words_.back() == 0)
        words_.pop_back();
}

void
BigUInt::addInplace(const BigUInt &other)
{
    if (other.words_.size() > words_.size())
        words_.resize(other.words_.size(), 0);
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        unsigned __int128 sum = carry + words_[i];
        if (i < other.words_.size())
            sum += other.words_[i];
        words_[i] = static_cast<std::uint64_t>(sum);
        carry = sum >> 64;
    }
    if (carry)
        words_.push_back(static_cast<std::uint64_t>(carry));
}

void
BigUInt::subInplace(const BigUInt &other)
{
    FXHENN_ASSERT(compare(other) >= 0, "BigUInt underflow");
    unsigned __int128 borrow = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        const unsigned __int128 rhs =
            (i < other.words_.size() ? other.words_[i] : 0);
        const unsigned __int128 lhs = words_[i];
        const unsigned __int128 need = rhs + borrow;
        if (lhs >= need) {
            words_[i] = static_cast<std::uint64_t>(lhs - need);
            borrow = 0;
        } else {
            words_[i] = static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(1) << 64) + lhs - need);
            borrow = 1;
        }
    }
    trim();
}

BigUInt
BigUInt::mulWord(std::uint64_t scalar) const
{
    BigUInt out;
    out.words_.resize(words_.size() + 1, 0);
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        unsigned __int128 prod =
            static_cast<unsigned __int128>(words_[i]) * scalar + carry;
        out.words_[i] = static_cast<std::uint64_t>(prod);
        carry = prod >> 64;
    }
    out.words_[words_.size()] = static_cast<std::uint64_t>(carry);
    out.trim();
    return out;
}

int
BigUInt::compare(const BigUInt &other) const
{
    if (words_.size() != other.words_.size())
        return words_.size() < other.words_.size() ? -1 : 1;
    for (std::size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != other.words_[i])
            return words_[i] < other.words_[i] ? -1 : 1;
    }
    return 0;
}

long double
BigUInt::toLongDouble() const
{
    long double value = 0.0L;
    for (std::size_t i = words_.size(); i-- > 0;) {
        value = value * 18446744073709551616.0L /* 2^64 */ +
                static_cast<long double>(words_[i]);
    }
    return value;
}

std::uint64_t
BigUInt::modWord(std::uint64_t m) const
{
    unsigned __int128 r = 0;
    for (std::size_t i = words_.size(); i-- > 0;) {
        r = ((r << 64) | words_[i]) % m;
    }
    return static_cast<std::uint64_t>(r);
}

CrtReconstructor::CrtReconstructor(const RnsBasis &basis, std::size_t level)
    : basis_(basis), level_(level)
{
    FXHENN_FATAL_IF(level == 0 || level > basis.levels(),
                    "invalid CRT level");
    bigQ_ = BigUInt(1);
    for (std::size_t i = 0; i < level; ++i)
        bigQ_ = bigQ_.mulWord(basis.q(i).value());

    // Centering compares 2*x against Q directly, so halfQ_ just mirrors
    // Q; kept as a named member for readability at the comparison site.
    halfQ_ = bigQ_;

    punctured_.reserve(level);
    invPunctured_.reserve(level);
    for (std::size_t i = 0; i < level; ++i) {
        BigUInt m(1);
        for (std::size_t j = 0; j < level; ++j) {
            if (j != i)
                m = m.mulWord(basis.q(j).value());
        }
        const std::uint64_t mi_mod_qi = m.modWord(basis.q(i).value());
        invPunctured_.push_back(basis.q(i).inverse(mi_mod_qi));
        punctured_.push_back(std::move(m));
    }
}

long double
CrtReconstructor::reconstructCentered(
    std::span<const std::uint64_t> residues) const
{
    FXHENN_ASSERT(residues.size() == level_, "residue count mismatch");

    // x = sum_i M_i * ((a_i * M_i^-1) mod q_i), reduced mod Q.
    BigUInt x(0);
    for (std::size_t i = 0; i < level_; ++i) {
        const Modulus &q = basis_.q(i);
        const std::uint64_t digit = q.mul(residues[i], invPunctured_[i]);
        x.addInplace(punctured_[i].mulWord(digit));
    }
    // x < level * Q, reduce by subtraction.
    while (!(x < bigQ_))
        x.subInplace(bigQ_);

    // Center: if 2x > Q, return x - Q (negative).
    BigUInt twice = x.mulWord(2);
    if (bigQ_ < twice) {
        BigUInt neg = bigQ_;
        neg.subInplace(x);
        return -neg.toLongDouble();
    }
    return x.toLongDouble();
}

double
CrtReconstructor::logQ() const
{
    return basis_.logQ(level_);
}

} // namespace fxhenn
