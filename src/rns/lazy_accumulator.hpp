/**
 * @file
 * 128-bit lazy (deferred-reduction) accumulator for keyswitch inner
 * products.
 *
 * The hybrid keyswitch digit inner product sums L products of residues
 * below q^2 per coefficient. The eager path Barrett-reduces every
 * product; this accumulator instead piles the unreduced 128-bit
 * products up and reduces ONCE per coefficient with
 * Modulus::reduceWide() — the software analogue of the wide
 * carry-save accumulators HE accelerators place behind their modular
 * multiplier arrays. Overflow budget: depth * (q-1)^2 < 2^128, i.e.
 * depth <= Modulus::maxLazyDepth() (>= 256 even for 60-bit primes,
 * far above any ciphertext level).
 *
 * Because (sum of products) mod q is reduced exactly, the result is
 * bitwise identical to the eager chain add(mul(a, b)) — both land on
 * the canonical representative in [0, q).
 */
#ifndef FXHENN_RNS_LAZY_ACCUMULATOR_HPP
#define FXHENN_RNS_LAZY_ACCUMULATOR_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/assert.hpp"
#include "src/modarith/modulus.hpp"
#include "src/modarith/simd_dispatch.hpp"
#include "src/rns/workspace_pool.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::rns {

/** One row of n unreduced 128-bit sums, leased from the WorkspacePool. */
class LazyLimbAccumulator
{
  public:
    /** Lease a zeroed n-slot accumulator row. */
    explicit LazyLimbAccumulator(std::size_t n)
        : acc_(WorkspacePool::leaseU128(n))
    {
        std::fill(acc_.begin(), acc_.end(), 0);
    }

    LazyLimbAccumulator(const LazyLimbAccumulator &) = delete;
    LazyLimbAccumulator &operator=(const LazyLimbAccumulator &) = delete;

    ~LazyLimbAccumulator() { WorkspacePool::release(std::move(acc_)); }

    std::size_t size() const { return acc_.size(); }
    std::uint64_t depth() const { return depth_; }

    /** acc[k] += a[k] * b[k], unreduced (one lazy FMA pass). */
    void
    fma(std::span<const std::uint64_t> a,
        std::span<const std::uint64_t> b)
    {
        FXHENN_ASSERT(a.size() == acc_.size() && b.size() == acc_.size(),
                      "lazy FMA operand size mismatch");
        FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
        simd::kernels().fmaLazy(acc_.data(), a.data(), b.data(),
                                acc_.size());
        ++depth_;
    }

    /**
     * acc[k] += a[perm[k]] * b[k], unreduced. Folds an NTT-domain
     * Galois permutation of @p a into the FMA pass, so hoisted
     * rotations pay O(n) gathers instead of extra NTT round trips.
     */
    void
    fmaGather(std::span<const std::uint64_t> a,
              std::span<const std::uint32_t> perm,
              std::span<const std::uint64_t> b)
    {
        FXHENN_ASSERT(a.size() == acc_.size() &&
                          b.size() == acc_.size() &&
                          perm.size() == acc_.size(),
                      "lazy gather-FMA operand size mismatch");
        FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
        simd::kernels().fmaLazyGather(acc_.data(), a.data(), perm.data(),
                                      b.data(), acc_.size());
        ++depth_;
    }

    /**
     * dst[k] = acc[k] mod q — the single deferred Barrett reduction.
     * Checks the overflow budget: the accumulated depth must not
     * exceed q's maxLazyDepth().
     */
    void
    reduceInto(std::span<std::uint64_t> dst, const Modulus &q) const
    {
        FXHENN_ASSERT(dst.size() == acc_.size(),
                      "lazy reduce destination size mismatch");
        FXHENN_ASSERT(depth_ <= q.maxLazyDepth(),
                      "lazy accumulation depth exceeds the 128-bit "
                      "overflow budget for this modulus");
        FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
        simd::kernels().reduceWideArray(dst.data(), acc_.data(),
                                        acc_.size(), q);
    }

  private:
    std::vector<unsigned __int128> acc_;
    std::uint64_t depth_ = 0;
};

} // namespace fxhenn::rns

#endif // FXHENN_RNS_LAZY_ACCUMULATOR_HPP
