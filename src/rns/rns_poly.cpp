#include "src/rns/rns_poly.hpp"

#include "src/common/assert.hpp"
#include "src/common/parallel.hpp"
#include "src/modarith/simd_dispatch.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn {

RnsPoly::RnsPoly(const RnsBasis &basis, std::size_t level, bool withSpecial,
                 PolyDomain domain)
    : basis_(&basis), level_(level), hasSpecial_(withSpecial),
      domain_(domain)
{
    FXHENN_FATAL_IF(level == 0 || level > basis.levels(),
                    "invalid polynomial level");
    const std::size_t count = level + (withSpecial ? 1 : 0);
    limbs_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        limbs_.emplace_back(basis.n());
}

std::span<std::uint64_t>
RnsPoly::limb(std::size_t i)
{
    FXHENN_ASSERT(i < limbs_.size(), "limb index out of range");
    return limbs_[i];
}

std::span<const std::uint64_t>
RnsPoly::limb(std::size_t i) const
{
    FXHENN_ASSERT(i < limbs_.size(), "limb index out of range");
    return limbs_[i];
}

const Modulus &
RnsPoly::limbModulus(std::size_t i) const
{
    FXHENN_ASSERT(i < limbs_.size(), "limb index out of range");
    return i < level_ ? basis_->q(i) : basis_->specialPrime();
}

const NttTables &
RnsPoly::limbNtt(std::size_t i) const
{
    FXHENN_ASSERT(i < limbs_.size(), "limb index out of range");
    return i < level_ ? basis_->ntt(i) : basis_->nttSpecial();
}

void
RnsPoly::checkCompatible(const RnsPoly &other) const
{
    FXHENN_ASSERT(basis_ == other.basis_, "operands from different bases");
    FXHENN_ASSERT(level_ == other.level_, "operand level mismatch");
    FXHENN_ASSERT(hasSpecial_ == other.hasSpecial_,
                  "special-limb mismatch");
    FXHENN_ASSERT(domain_ == other.domain_, "operand domain mismatch");
}

void
RnsPoly::addInplace(const RnsPoly &other)
{
    checkCompatible(other);
    const auto &kern = simd::kernels();
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
        auto &dst = limbs_[i];
        kern.addArray(dst.data(), dst.data(), other.limbs_[i].data(),
                      dst.size(), limbModulus(i));
    }
}

void
RnsPoly::subInplace(const RnsPoly &other)
{
    checkCompatible(other);
    const auto &kern = simd::kernels();
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
        auto &dst = limbs_[i];
        kern.subArray(dst.data(), dst.data(), other.limbs_[i].data(),
                      dst.size(), limbModulus(i));
    }
}

void
RnsPoly::negateInplace()
{
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &q = limbModulus(i);
        for (auto &x : limbs_[i])
            x = q.negate(x);
    }
}

void
RnsPoly::mulInplace(const RnsPoly &other)
{
    checkCompatible(other);
    FXHENN_ASSERT(domain_ == PolyDomain::ntt,
                  "element-wise multiply requires NTT domain");
    const auto &kern = simd::kernels();
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
        auto &dst = limbs_[i];
        kern.mulArray(dst.data(), dst.data(), other.limbs_[i].data(),
                      dst.size(), limbModulus(i));
    }
}

void
RnsPoly::addProduct(const RnsPoly &a, const RnsPoly &b)
{
    checkCompatible(a);
    checkCompatible(b);
    FXHENN_ASSERT(domain_ == PolyDomain::ntt,
                  "addProduct requires NTT domain");
    const auto &kern = simd::kernels();
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        FXHENN_TELEM_COUNT("modarith.simd.dispatches", 1);
        auto &dst = limbs_[i];
        kern.fmaModArray(dst.data(), a.limbs_[i].data(),
                         b.limbs_[i].data(), dst.size(), limbModulus(i));
    }
}

void
RnsPoly::mulScalarPerLimb(std::span<const std::uint64_t> scalars)
{
    FXHENN_ASSERT(scalars.size() == limbs_.size(),
                  "one scalar per limb required");
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &q = limbModulus(i);
        const std::uint64_t s = scalars[i];
        for (auto &x : limbs_[i])
            x = q.mul(x, s);
    }
}

void
RnsPoly::toNtt()
{
    FXHENN_ASSERT(domain_ == PolyDomain::coeff, "already in NTT domain");
    // Limbs are independent polynomials mod distinct primes — the same
    // parallelism the FPGA design's P_intra knob exploits (Sec. V-B).
    parallelFor(limbs_.size(), [this](std::size_t i) {
        limbNtt(i).forward(limbs_[i]);
    });
    domain_ = PolyDomain::ntt;
}

void
RnsPoly::fromNtt()
{
    FXHENN_ASSERT(domain_ == PolyDomain::ntt,
                  "already in coefficient domain");
    parallelFor(limbs_.size(), [this](std::size_t i) {
        limbNtt(i).inverse(limbs_[i]);
    });
    domain_ = PolyDomain::coeff;
}

void
RnsPoly::rescaleLastPrime()
{
    FXHENN_ASSERT(domain_ == PolyDomain::coeff,
                  "rescale requires coefficient domain");
    FXHENN_ASSERT(!hasSpecial_, "rescale with special limb present");
    FXHENN_ASSERT(level_ >= 2, "cannot rescale a level-1 polynomial");

    const std::size_t last = level_ - 1;
    const Modulus &q_last = basis_->q(last);
    const std::uint64_t half = q_last.value() / 2;
    const auto &tail = limbs_[last];

    // Remaining limbs are written disjointly (all read only the tail).
    parallelFor(last, [&](std::size_t j) {
        const Modulus &q = basis_->q(j);
        const std::uint64_t inv = basis_->invLastPrime(level_, j);
        const std::uint64_t invShoup = q.shoupConstant(inv);
        const std::uint64_t qlast_mod = q_last.value() % q.value();
        // tail[k] < q_last, so Barrett reduce() applies whenever the
        // dropped prime fits its x < 2^(2*bits()) contract.
        const bool barrett = q_last.bits() < 2 * q.bits();
        auto &dst = limbs_[j];
        for (std::size_t k = 0; k < dst.size(); ++k) {
            // Centered representative of the tail residue, so the
            // division rounds instead of truncating.
            const std::uint64_t res =
                barrett ? q.reduce(tail[k]) : tail[k] % q.value();
            const std::uint64_t centered =
                tail[k] > half ? q.sub(res, qlast_mod) : res;
            dst[k] = q.mulShoup(q.sub(dst[k], centered), inv, invShoup);
        }
    });
    limbs_.pop_back();
    --level_;
}

void
RnsPoly::modDownSpecial()
{
    FXHENN_ASSERT(domain_ == PolyDomain::coeff,
                  "modDown requires coefficient domain");
    FXHENN_ASSERT(hasSpecial_, "no special limb to remove");

    const Modulus &p = basis_->specialPrime();
    const std::uint64_t half = p.value() / 2;
    const auto &tail = limbs_.back();

    // Data limbs are written disjointly (all read only the special
    // limb), so ModDown parallelizes across limbs like the NTTs.
    parallelFor(level_, [&](std::size_t j) {
        const Modulus &q = basis_->q(j);
        const std::uint64_t inv = basis_->invSpecial(j);
        const std::uint64_t invShoup = q.shoupConstant(inv);
        const std::uint64_t p_mod = p.value() % q.value();
        // tail[k] < p, so Barrett reduce() applies whenever the special
        // prime fits its x < 2^(2*bits()) contract (always true for the
        // preset chains: specialBits <= qBits + 10 < 2*qBits).
        const bool barrett = p.bits() < 2 * q.bits();
        auto &dst = limbs_[j];
        for (std::size_t k = 0; k < dst.size(); ++k) {
            const std::uint64_t res =
                barrett ? q.reduce(tail[k]) : tail[k] % q.value();
            const std::uint64_t centered =
                tail[k] > half ? q.sub(res, p_mod) : res;
            dst[k] = q.mulShoup(q.sub(dst[k], centered), inv, invShoup);
        }
    });
    limbs_.pop_back();
    hasSpecial_ = false;
}

void
RnsPoly::dropLastPrime()
{
    FXHENN_ASSERT(!hasSpecial_, "drop with special limb present");
    FXHENN_ASSERT(level_ >= 2, "cannot drop below level 1");
    limbs_.pop_back();
    --level_;
}

void
RnsPoly::sampleUniform(Rng &rng)
{
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &q = limbModulus(i);
        for (auto &x : limbs_[i])
            x = rng.uniform(q.value());
    }
    domain_ = PolyDomain::coeff;
}

void
RnsPoly::sampleTernary(Rng &rng)
{
    const std::uint64_t n = basis_->n();
    std::vector<std::int64_t> secret(n);
    for (auto &s : secret)
        s = rng.ternary();
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &q = limbModulus(i);
        for (std::size_t k = 0; k < n; ++k)
            limbs_[i][k] = q.reduceSigned(secret[k]);
    }
    domain_ = PolyDomain::coeff;
}

void
RnsPoly::sampleGaussian(Rng &rng, double sigma)
{
    const std::uint64_t n = basis_->n();
    std::vector<std::int64_t> err(n);
    for (auto &e : err)
        e = rng.gaussian(sigma);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &q = limbModulus(i);
        for (std::size_t k = 0; k < n; ++k)
            limbs_[i][k] = q.reduceSigned(err[k]);
    }
    domain_ = PolyDomain::coeff;
}

RnsPoly
RnsPoly::galois(std::uint64_t galoisElt) const
{
    FXHENN_ASSERT(domain_ == PolyDomain::coeff,
                  "galois requires coefficient domain");
    FXHENN_ASSERT(galoisElt % 2 == 1, "galois element must be odd");

    const std::uint64_t n = basis_->n();
    RnsPoly out(*basis_, level_, hasSpecial_, PolyDomain::coeff);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &q = limbModulus(i);
        const auto &src = limbs_[i];
        auto dst = out.limb(i);
        for (std::uint64_t k = 0; k < n; ++k) {
            // X^k -> X^(k * elt mod 2N), with sign flip when the image
            // exponent wraps past N (negacyclic ring).
            const std::uint64_t idx = (k * galoisElt) % (2 * n);
            if (idx < n) {
                dst[idx] = src[k];
            } else {
                dst[idx - n] = q.negate(src[k]);
            }
        }
    }
    return out;
}

RnsPoly
RnsPoly::permuteNtt(std::span<const std::uint32_t> perm) const
{
    FXHENN_ASSERT(domain_ == PolyDomain::ntt,
                  "permuteNtt requires NTT domain");
    FXHENN_ASSERT(perm.size() == basis_->n(),
                  "permutation table size mismatch");
    RnsPoly out(*basis_, level_, hasSpecial_, PolyDomain::ntt);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const auto &src = limbs_[i];
        auto dst = out.limb(i);
        for (std::size_t t = 0; t < dst.size(); ++t)
            dst[t] = src[perm[t]];
    }
    return out;
}

bool
RnsPoly::operator==(const RnsPoly &other) const
{
    return basis_ == other.basis_ && level_ == other.level_ &&
           hasSpecial_ == other.hasSpecial_ && domain_ == other.domain_ &&
           limbs_ == other.limbs_;
}

namespace {

/** Flatten (poly, limb) pairs so one parallelFor spans all of them. */
std::vector<std::pair<RnsPoly *, std::size_t>>
limbJobs(std::span<RnsPoly *const> polys)
{
    std::vector<std::pair<RnsPoly *, std::size_t>> jobs;
    std::size_t total = 0;
    for (RnsPoly *p : polys)
        total += p->limbCount();
    jobs.reserve(total);
    for (RnsPoly *p : polys)
        for (std::size_t i = 0; i < p->limbCount(); ++i)
            jobs.emplace_back(p, i);
    return jobs;
}

} // namespace

void
batchFromNtt(std::span<RnsPoly *const> polys)
{
    for (RnsPoly *p : polys)
        FXHENN_ASSERT(p->domain() == PolyDomain::ntt,
                      "batchFromNtt operand already in coeff domain");
    const auto jobs = limbJobs(polys);
    parallelFor(jobs.size(), [&jobs](std::size_t j) {
        auto [p, i] = jobs[j];
        p->limbNtt(i).inverse(p->limb(i));
    });
    for (RnsPoly *p : polys)
        p->setDomain(PolyDomain::coeff);
}

void
batchToNtt(std::span<RnsPoly *const> polys)
{
    for (RnsPoly *p : polys)
        FXHENN_ASSERT(p->domain() == PolyDomain::coeff,
                      "batchToNtt operand already in NTT domain");
    const auto jobs = limbJobs(polys);
    parallelFor(jobs.size(), [&jobs](std::size_t j) {
        auto [p, i] = jobs[j];
        p->limbNtt(i).forward(p->limb(i));
    });
    for (RnsPoly *p : polys)
        p->setDomain(PolyDomain::ntt);
}

} // namespace fxhenn
