/**
 * @file
 * Thread-local scratch-buffer pool for the RNS hot paths.
 *
 * Key switching, rescale, ModUp/ModDown and rotation all need
 * limb-sized (N x u64) scratch vectors and 128-bit accumulator rows.
 * Allocating those per operation puts the allocator on the critical
 * path of every HE op; the pool instead leases buffers from a
 * per-thread freelist and takes them back on release, so steady-state
 * inference performs no limb allocations at all.
 *
 * The freelists are thread_local: a lease never contends with other
 * threads and needs no locks (buffers may migrate between threads —
 * a buffer leased on one thread and released on another simply joins
 * the releasing thread's freelist). Each list is capped, so a burst of
 * concurrent requests cannot pin unbounded memory.
 */
#ifndef FXHENN_RNS_WORKSPACE_POOL_HPP
#define FXHENN_RNS_WORKSPACE_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fxhenn::rns {

/** Per-thread lease/release counters (for tests and diagnostics). */
struct WorkspaceStats
{
    std::uint64_t hits = 0;   ///< leases served from the freelist
    std::uint64_t misses = 0; ///< leases that had to allocate
};

/**
 * Static facade over the per-thread freelists. Leased vectors have the
 * requested size but unspecified contents — callers overwrite or zero.
 * Telemetry: every lease bumps "rns.workspace.hits" or
 * "rns.workspace.misses".
 */
class WorkspacePool
{
  public:
    /** Buffers kept per freelist; surplus releases deallocate. */
    static constexpr std::size_t kMaxFree = 64;

    /** Lease an n-element u64 buffer (contents unspecified). */
    static std::vector<std::uint64_t> leaseU64(std::size_t n);
    /** Release a buffer back to the calling thread's freelist. */
    static void release(std::vector<std::uint64_t> &&buf);

    /** Lease an n-element 128-bit accumulator row (unspecified). */
    static std::vector<unsigned __int128> leaseU128(std::size_t n);
    static void release(std::vector<unsigned __int128> &&buf);

    /** Counters of the calling thread. */
    static WorkspaceStats threadStats();
    /** Zero the calling thread's counters. */
    static void resetThreadStats();
    /** Drop every buffer held by the calling thread's freelists. */
    static void trimThread();
};

/**
 * A u64 buffer leased from the WorkspacePool for its whole lifetime.
 * Value semantics (copies lease their own buffer), contiguous-range
 * interface — this is the storage type behind every RnsPoly limb, so
 * ciphertext copies and temporaries recycle instead of allocating.
 */
class PooledBuffer
{
  public:
    PooledBuffer() = default;

    /** Lease an n-element buffer, zero-filled. */
    explicit PooledBuffer(std::size_t n);

    PooledBuffer(const PooledBuffer &other);
    PooledBuffer &operator=(const PooledBuffer &other);
    PooledBuffer(PooledBuffer &&other) noexcept = default;
    PooledBuffer &operator=(PooledBuffer &&other) noexcept;
    ~PooledBuffer();

    std::size_t size() const { return buf_.size(); }
    std::uint64_t *data() { return buf_.data(); }
    const std::uint64_t *data() const { return buf_.data(); }
    std::uint64_t *begin() { return buf_.data(); }
    std::uint64_t *end() { return buf_.data() + buf_.size(); }
    const std::uint64_t *begin() const { return buf_.data(); }
    const std::uint64_t *end() const { return buf_.data() + buf_.size(); }
    std::uint64_t &operator[](std::size_t i) { return buf_[i]; }
    const std::uint64_t &operator[](std::size_t i) const
    {
        return buf_[i];
    }

    bool
    operator==(const PooledBuffer &other) const
    {
        return buf_ == other.buf_;
    }

  private:
    std::vector<std::uint64_t> buf_;
};

} // namespace fxhenn::rns

#endif // FXHENN_RNS_WORKSPACE_POOL_HPP
