/**
 * @file
 * Polynomials in RNS (double-CRT) representation.
 *
 * An RnsPoly is an element of R_Q = Z_Q[X]/(X^N + 1) stored as one limb
 * of N residues per active data prime, plus an optional extra limb for
 * the key-switching special prime. Each limb is independently in either
 * coefficient or NTT (evaluation) domain; the whole polynomial carries a
 * single domain tag, matching the per-RNS-polynomial processing the
 * paper's HE operation modules pipeline over (Sec. V-B).
 */
#ifndef FXHENN_RNS_RNS_POLY_HPP
#define FXHENN_RNS_RNS_POLY_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.hpp"
#include "src/rns/lazy_accumulator.hpp"
#include "src/rns/rns_basis.hpp"
#include "src/rns/workspace_pool.hpp"

namespace fxhenn {

/** Representation domain of an RnsPoly. */
enum class PolyDomain { coeff, ntt };

/** An element of R_{Q_level} (optionally extended by the special prime). */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /**
     * Construct the zero polynomial.
     *
     * @param basis       the RNS basis (must outlive the polynomial)
     * @param level       number of active data primes (1..basis.levels())
     * @param withSpecial also allocate the special-prime limb
     * @param domain      initial domain tag
     */
    RnsPoly(const RnsBasis &basis, std::size_t level,
            bool withSpecial = false, PolyDomain domain = PolyDomain::ntt);

    const RnsBasis &basis() const { return *basis_; }
    std::size_t level() const { return level_; }
    bool hasSpecial() const { return hasSpecial_; }
    PolyDomain domain() const { return domain_; }
    void setDomain(PolyDomain d) { domain_ = d; }
    std::uint64_t n() const { return basis_->n(); }

    /** Number of limbs including the special limb when present. */
    std::size_t limbCount() const { return limbs_.size(); }

    /** Mutable access to data limb @p i (special limb = index level()). */
    std::span<std::uint64_t> limb(std::size_t i);
    std::span<const std::uint64_t> limb(std::size_t i) const;

    /** Modulus of limb @p i (the special prime for i == level()). */
    const Modulus &limbModulus(std::size_t i) const;

    /** NTT tables of limb @p i. */
    const NttTables &limbNtt(std::size_t i) const;

    // --- element-wise arithmetic (operands must share basis/level/domain)

    /** this += other */
    void addInplace(const RnsPoly &other);
    /** this -= other */
    void subInplace(const RnsPoly &other);
    /** this = -this */
    void negateInplace();
    /** this *= other, element-wise; both must be in NTT domain. */
    void mulInplace(const RnsPoly &other);
    /** this += a * b, element-wise; all in NTT domain. */
    void addProduct(const RnsPoly &a, const RnsPoly &b);
    /** Multiply every limb j by scalar[j] (one scalar per limb). */
    void mulScalarPerLimb(std::span<const std::uint64_t> scalars);

    // --- domain conversion

    /** Convert all limbs coefficient -> NTT domain. */
    void toNtt();
    /** Convert all limbs NTT -> coefficient domain. */
    void fromNtt();

    // --- level management

    /**
     * Drop the last data prime with scaling: the RNS-CKKS Rescale core.
     * For each remaining limb j:
     *     c_j <- (c_j - [c_last]) * q_last^-1  (mod q_j)
     * The polynomial must be in coefficient domain and have no special
     * limb. Decreases level() by one.
     */
    void rescaleLastPrime();

    /**
     * Exact divide-and-round by the special prime (hybrid key-switch
     * ModDown). Requires coefficient domain and a special limb; removes
     * the special limb.
     */
    void modDownSpecial();

    /** Drop the last data prime without scaling (ModSwitch). */
    void dropLastPrime();

    // --- sampling (all produce coefficient-domain polynomials)

    /** Fill with uniform residues (independent per limb). */
    void sampleUniform(Rng &rng);
    /** Fill with a shared ternary secret across all limbs. */
    void sampleTernary(Rng &rng);
    /** Fill with a shared centered Gaussian error across all limbs. */
    void sampleGaussian(Rng &rng, double sigma);

    /**
     * Apply the Galois automorphism X -> X^galoisElt to a coefficient
     * domain polynomial. @p galoisElt must be odd.
     */
    RnsPoly galois(std::uint64_t galoisElt) const;

    /**
     * Apply a Galois automorphism to an NTT-domain polynomial as a
     * pure permutation of every limb: out.limb(i)[t] =
     * limb(i)[perm[t]]. The table comes from the context's Galois
     * cache (the automorphism permutes the odd 2N-th roots, so in
     * evaluation form it is a gather with no negations and no domain
     * round trip).
     */
    RnsPoly permuteNtt(std::span<const std::uint32_t> perm) const;

    /**
     * Lazy (unreduced) FMA of one limb into a 128-bit accumulator:
     * acc[k] += limb(i)[k] * key[k]. The caller reduces once via
     * LazyLimbAccumulator::reduceInto() — the keyswitch digit inner
     * product path.
     */
    void
    fmaLazyInto(rns::LazyLimbAccumulator &acc, std::size_t i,
                std::span<const std::uint64_t> key) const
    {
        acc.fma(limb(i), key);
    }

    bool operator==(const RnsPoly &other) const;

  private:
    void checkCompatible(const RnsPoly &other) const;

    const RnsBasis *basis_ = nullptr;
    std::size_t level_ = 0;
    bool hasSpecial_ = false;
    PolyDomain domain_ = PolyDomain::ntt;
    /** Pooled storage: limb buffers recycle through the WorkspacePool. */
    std::vector<rns::PooledBuffer> limbs_;
};

/**
 * Convert several polynomials NTT -> coefficient domain with ONE
 * parallelFor over every (polynomial, limb) job — the batched form the
 * keyswitch core uses so limb-level parallelism spans all its
 * polynomials instead of synchronizing per polynomial.
 */
void batchFromNtt(std::span<RnsPoly *const> polys);

/** Batched counterpart of toNtt() (coefficient -> NTT domain). */
void batchToNtt(std::span<RnsPoly *const> polys);

} // namespace fxhenn

#endif // FXHENN_RNS_RNS_POLY_HPP
