#include "src/rns/rns_basis.hpp"

#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"

namespace fxhenn {

RnsBasis::RnsBasis(std::uint64_t n, std::vector<std::uint64_t> dataPrimes,
                   std::uint64_t specialPrime)
    : n_(n), specialModulus_(specialPrime)
{
    FXHENN_FATAL_IF(!isPowerOfTwo(n), "ring degree must be a power of two");
    FXHENN_FATAL_IF(dataPrimes.empty(), "at least one data prime required");

    dataModuli_.reserve(dataPrimes.size());
    for (std::uint64_t q : dataPrimes) {
        FXHENN_FATAL_IF(q == specialPrime,
                        "special prime collides with a data prime");
        dataModuli_.emplace_back(q);
    }

    nttTables_.reserve(dataModuli_.size());
    for (const auto &q : dataModuli_)
        nttTables_.push_back(std::make_unique<NttTables>(n, q));
    specialNtt_ = std::make_unique<NttTables>(n, specialModulus_);

    const std::size_t levels = dataModuli_.size();
    invQ_.assign(levels, std::vector<std::uint64_t>(levels, 0));
    for (std::size_t i = 0; i < levels; ++i) {
        for (std::size_t j = 0; j < levels; ++j) {
            if (i == j)
                continue;
            invQ_[i][j] =
                dataModuli_[j].inverse(dataModuli_[i].value() %
                                       dataModuli_[j].value());
        }
    }
    invSpecialModQ_.resize(levels);
    for (std::size_t j = 0; j < levels; ++j) {
        invSpecialModQ_[j] = dataModuli_[j].inverse(
            specialModulus_.value() % dataModuli_[j].value());
    }
}

double
RnsBasis::logQ(std::size_t level) const
{
    FXHENN_ASSERT(level <= levels(), "level out of range");
    double bits = 0.0;
    for (std::size_t i = 0; i < level; ++i)
        bits += std::log2(static_cast<double>(dataModuli_[i].value()));
    return bits;
}

} // namespace fxhenn
