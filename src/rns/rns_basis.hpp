/**
 * @file
 * RNS modulus chain for RNS-CKKS.
 *
 * The coefficient modulus Q = q_0 * q_1 * ... * q_{L-1} is decomposed
 * into word-size primes (Sec. II-A of the paper). One extra "special"
 * prime p is kept at the end of the chain for hybrid key switching: keys
 * live modulo Q * p, and the key-switch result is scaled back down by p.
 *
 * The basis owns the NTT tables for every prime and the cross-prime
 * constants needed by Rescale and the key-switch ModDown:
 *   - q_last^-1 mod q_j         (Rescale, drop the last data prime)
 *   - p^-1 mod q_j              (ModDown after key switching)
 */
#ifndef FXHENN_RNS_RNS_BASIS_HPP
#define FXHENN_RNS_RNS_BASIS_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/modarith/modulus.hpp"
#include "src/modarith/ntt.hpp"

namespace fxhenn {

/** The prime chain q_0..q_{L-1}, p plus per-prime NTT tables. */
class RnsBasis
{
  public:
    /**
     * Build a basis for ring degree @p n.
     *
     * @param n            ring degree (power of two)
     * @param dataPrimes   the data primes q_0..q_{L-1}, q_0 first
     * @param specialPrime the key-switching prime p (> every q_i ideally)
     */
    RnsBasis(std::uint64_t n, std::vector<std::uint64_t> dataPrimes,
             std::uint64_t specialPrime);

    std::uint64_t n() const { return n_; }

    /** Number of data primes L (the maximum ciphertext level). */
    std::size_t levels() const { return dataModuli_.size(); }

    /** Data prime q_i. */
    const Modulus &q(std::size_t i) const { return dataModuli_[i]; }

    /** The key-switching special prime p. */
    const Modulus &specialPrime() const { return specialModulus_; }

    /** NTT tables for data prime @p i. */
    const NttTables &ntt(std::size_t i) const { return *nttTables_[i]; }

    /** NTT tables for the special prime. */
    const NttTables &nttSpecial() const { return *specialNtt_; }

    /** q_last^-1 mod q_j where q_last = q(level-1), for Rescale. */
    std::uint64_t
    invLastPrime(std::size_t level, std::size_t j) const
    {
        return invQ_[level - 1][j];
    }

    /** p^-1 mod q_j, for the key-switch ModDown. */
    std::uint64_t
    invSpecial(std::size_t j) const
    {
        return invSpecialModQ_[j];
    }

    /** log2(Q) over the first @p level primes, for noise budgeting. */
    double logQ(std::size_t level) const;

  private:
    std::uint64_t n_;
    std::vector<Modulus> dataModuli_;
    Modulus specialModulus_;
    std::vector<std::unique_ptr<NttTables>> nttTables_;
    std::unique_ptr<NttTables> specialNtt_;
    /** invQ_[i][j] = q_i^-1 mod q_j (j != i; diagonal unused). */
    std::vector<std::vector<std::uint64_t>> invQ_;
    std::vector<std::uint64_t> invSpecialModQ_;
};

} // namespace fxhenn

#endif // FXHENN_RNS_RNS_BASIS_HPP
