/**
 * @file
 * The HE-CNN compiler: lowers a plaintext CNN to an HeNetworkPlan.
 *
 * Packing strategy (LoLa-style, Sec. II-B and Listing 1 of the paper):
 *
 *  - First-layer convolution ("tap packing"): one input ciphertext per
 *    kernel tap; slot (f * P + p) of tap ciphertext i holds the input
 *    pixel that tap i needs for output position p. The layer is then a
 *    single loop of PCmult / Rescale / CCadd over the taps — an NKS
 *    layer (75 HOPs for LoLa-MNIST Cnv1, matching Table IV).
 *
 *  - Square activation: CCmult + Relinearize + Rescale per ciphertext
 *    (a KS layer via Relinearize).
 *
 *  - Dense (and mid-network convolution via implicit im2col): the
 *    rotate-and-sum matrix-vector product of Sec. V-A. When the input is
 *    one ciphertext with contiguous elements, the vector is replicated
 *    into slots/vpad copies and whole row groups are processed by a
 *    single PCmult + log2(vpad) Rotate/CCadd pipeline; otherwise each
 *    row is reduced with a full-width rotate-and-sum. Both are KS
 *    layers dominated by Rotate.
 *
 * Non-final dense layers merge their scattered row results into one
 * ciphertext with mask multiplies (one extra level); the final layer
 * leaves results scattered so the total depth fits L = 7 (Sec. VII-A).
 */
#ifndef FXHENN_HECNN_COMPILER_HPP
#define FXHENN_HECNN_COMPILER_HPP

#include "src/ckks/params.hpp"
#include "src/hecnn/plan.hpp"
#include "src/nn/network.hpp"

namespace fxhenn::hecnn {

/** Compiler knobs. */
struct CompileOptions
{
    /**
     * Build a statistics-only plan: plaintext payloads are dropped
     * (counts, levels and layouts stay exact). Needed for CIFAR10-scale
     * plans whose packed weights would occupy hundreds of megabytes.
     */
    bool elideValues = false;

    /**
     * Decompose arbitrary rotation amounts (the dense layers' group
     * offsets) into power-of-two steps. Trades a few extra Rotate HOPs
     * for a logarithmic Galois key count — each rotation key is
     * 2L(L+1)N words (Table VI scale), so key material shrinks
     * substantially for wide dense layers.
     */
    bool decomposeRotations = false;

    /**
     * Run the plan verifier over the lowered plan before returning it
     * (a miscompile becomes a ConfigError at the compiler's doorstep
     * instead of garbage at decrypt time). Defaults to on in debug
     * builds; a no-op when no verifier is linked in — see
     * plan_check.hpp.
     */
#ifdef NDEBUG
    bool selfCheck = false;
#else
    bool selfCheck = true;
#endif

    /**
     * Re-place rescales with the certified waterline rewriter
     * (rescale_rewriter.hpp): sink each eager per-tap rescale to its
     * first use and merge deferred rescales at accumulation adds. The
     * rewrite is applied only when the static noise certifier proves
     * the rewritten plan's minimum headroom is no worse and the
     * rescale count strictly drops; otherwise the plan is unchanged.
     */
    bool rescaleWaterline = false;

    /**
     * Run the static noise-budget certifier (noise_cert.hpp) over the
     * lowered plan and refuse (ConfigError) any plan whose certified
     * minimum headroom is negative — i.e. a plan that can overflow the
     * modulus for an in-spec input. Same default policy as selfCheck.
     */
#ifdef NDEBUG
    bool certifyNoise = false;
#else
    bool certifyNoise = true;
#endif

    /**
     * Cross-request slot batching factor B: compile the network into
     * (N/2)/B virtual slots per request and interleave B independent
     * requests lane-wise in shared ciphertexts (request b's virtual
     * slot s maps to physical slot s*B + b). Weight plaintexts are
     * broadcast across lanes, rotations become stride-B (provably
     * lane-preserving, including the cyclic wraparound, because
     * B divides N/2), and the batch-layout lint pass rejects any
     * lane-crossing artifact. B = 1 (the default) is bit-identical to
     * the unbatched compiler. B must divide N/2 and leave enough
     * virtual slots for the network's widest layer (ConfigError
     * otherwise).
     */
    std::size_t batchLanes = 1;
};

/** Lower @p net under CKKS parameters @p params. */
HeNetworkPlan compile(const nn::Network &net,
                      const ckks::CkksParams &params,
                      const CompileOptions &options = {});

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_COMPILER_HPP
