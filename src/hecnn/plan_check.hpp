/**
 * @file
 * Process-wide plan-verifier hook.
 *
 * The static-analysis library (src/analysis) depends on fxhenn_hecnn
 * for the plan IR, so fxhenn_hecnn cannot link it back. Instead the
 * compiler self-check and plan_io's --verify-plan load call the
 * verifier through this registry; analysis::installPlanVerifier()
 * fills it in at program start (the CLI and the tests do this).
 *
 * When no verifier is installed, runPlanVerifier() is a no-op — cores
 * that never link fxhenn_analysis keep working unchanged.
 */
#ifndef FXHENN_HECNN_PLAN_CHECK_HPP
#define FXHENN_HECNN_PLAN_CHECK_HPP

#include <functional>
#include <string>

namespace fxhenn::hecnn {

struct HeNetworkPlan;

/**
 * A plan verifier: inspects @p plan and throws ConfigError (with the
 * full diagnostic report as the message) when the plan is malformed.
 * @p origin names the call site ("compile", "plan-load", ...).
 */
using PlanVerifier = std::function<void(const HeNetworkPlan &plan,
                                        const std::string &origin)>;

/**
 * Install the process-wide verifier. The first installation wins;
 * later calls with a non-empty verifier are ignored (returns false)
 * so tests cannot silently displace the standard pipeline. Passing an
 * empty function uninstalls (test seam).
 */
bool setPlanVerifier(PlanVerifier verifier);

/** @return true when a verifier is currently installed. */
bool planVerifierInstalled();

/**
 * Run the installed verifier over @p plan; no-op when none is
 * installed. Propagates whatever the verifier throws.
 */
void runPlanVerifier(const HeNetworkPlan &plan,
                     const std::string &origin);

/**
 * Toggle verification inside plan_io::loadPlan (--verify-plan).
 * Enabling without an installed verifier is a configuration error at
 * load time, not silently ignored.
 */
void setLoadVerification(bool enabled);

/** @return true when loadPlan should verify every loaded plan. */
bool loadVerificationEnabled();

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_PLAN_CHECK_HPP
