#include "src/hecnn/plan_printer.hpp"

#include <ostream>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/table_printer.hpp"
#include "src/hecnn/stats.hpp"

namespace fxhenn::hecnn {

void
summarize(const HeNetworkPlan &plan, std::ostream &os)
{
    os << "HE-CNN plan: " << plan.name << " ("
       << plan.params.describe() << ")\n"
       << "Input ciphertexts: " << plan.inputCiphertexts()
       << ", registers: " << plan.regCount
       << ", plaintexts: " << plan.plaintexts.size()
       << (plan.valuesElided ? " (values elided)" : "") << "\n";

    TablePrinter table({"Layer", "Class", "L_in", "N_in", "PCmult",
                        "CCadd", "CCmult", "Rescale", "KeySwitch",
                        "Total"});
    for (const auto &layer : plan.layers) {
        const HeOpCounts c = layer.counts();
        table.addRow({layer.name,
                      layer.cls == LayerClass::ks ? "KS" : "NKS",
                      fmtI(static_cast<long long>(layer.levelIn)),
                      fmtI(static_cast<long long>(layer.nIn)),
                      fmtI(static_cast<long long>(c.pcMult)),
                      fmtI(static_cast<long long>(c.ccAdd)),
                      fmtI(static_cast<long long>(c.ccMult)),
                      fmtI(static_cast<long long>(c.rescale)),
                      fmtI(static_cast<long long>(c.keySwitch())),
                      fmtI(static_cast<long long>(c.total()))});
    }
    const HeOpCounts total = plan.totalCounts();
    table.addSeparator();
    table.addRow({"Total", "", "", "",
                  fmtI(static_cast<long long>(total.pcMult)),
                  fmtI(static_cast<long long>(total.ccAdd)),
                  fmtI(static_cast<long long>(total.ccMult)),
                  fmtI(static_cast<long long>(total.rescale)),
                  fmtI(static_cast<long long>(total.keySwitch())),
                  fmtI(static_cast<long long>(total.total()))});
    table.print(os);
}

std::string
formatInstr(const HeInstr &instr)
{
    std::ostringstream oss;
    oss << opName(instr.kind) << " r" << instr.dst;
    switch (instr.kind) {
      case HeOpKind::pcMult:
        oss << " <- r" << instr.src << " * pt" << instr.pt;
        break;
      case HeOpKind::pcAdd:
        oss << " <- r" << instr.src << " + pt" << instr.pt;
        break;
      case HeOpKind::ccAdd:
        oss << " += r" << instr.src;
        break;
      case HeOpKind::ccMult:
        oss << " <- r" << instr.src << "^2";
        break;
      case HeOpKind::relinearize:
      case HeOpKind::rescale:
      case HeOpKind::copy:
        oss << " <- r" << instr.src;
        break;
      case HeOpKind::rotate:
        oss << " <- rot(r" << instr.src << ", " << instr.step << ")";
        break;
    }
    return oss.str();
}

void
disassemble(const HeNetworkPlan &plan, std::size_t layerIndex,
            std::ostream &os, std::size_t maxInstrs)
{
    FXHENN_FATAL_IF(layerIndex >= plan.layers.size(),
                    "layer index out of range");
    const auto &layer = plan.layers[layerIndex];
    os << "Layer " << layer.name << " ("
       << (layer.cls == LayerClass::ks ? "KS" : "NKS") << ", "
       << layer.instrs.size() << " instructions):\n";
    std::size_t shown = 0;
    for (const auto &instr : layer.instrs) {
        if (maxInstrs != 0 && shown == maxInstrs) {
            os << "  ... (" << layer.instrs.size() - shown
               << " more)\n";
            break;
        }
        os << "  " << formatInstr(instr) << "\n";
        ++shown;
    }
}

} // namespace fxhenn::hecnn
