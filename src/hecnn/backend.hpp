/**
 * @file
 * Pluggable execution backends for the plan interpreter.
 *
 * PlanExecutor never calls ckks::Evaluator directly any more: every HE
 * operation of a run goes through a BackendRun obtained from an
 * ExecutionBackend, and backends are looked up by name in a process-wide
 * registry (name -> factory, first installation wins — the same hook
 * discipline as plan_check.hpp's setPlanVerifier()). This is the
 * one-interface/many-targets seam that lets the same compiled plan run
 * on the host CPU path or on the cycle-approximate FPGA pipeline
 * simulator, and later on real accelerator targets (ROADMAP item 4).
 *
 * Built-in backends (registered by this library itself):
 *
 *  - "cpu": the reference path — a per-run ckks::Evaluator using the
 *    executor's KswMode and whatever SIMD level FXHENN_SIMD resolved.
 *    Every other backend must be bitwise identical to it.
 *  - "cpu-ref": differential-debugging path — forces KswMode::eager
 *    and pins the scalar modular-arithmetic kernels for the lifetime
 *    of the backend instance. The pin is process-global (the SIMD
 *    dispatch table is), which is safe because all kernel levels are
 *    bitwise identical; only timing changes for concurrent runs.
 *
 * "fpga-sim" is NOT registered here: it lives in src/fpga (mechanics)
 * and src/dse (design-point resolution) because fxhenn_hecnn sits
 * below both in the link graph. Binaries wanting it call
 * dse::installFpgaSimBackend() at startup, exactly like
 * analysis::installPlanVerifier().
 *
 * Selection contract (mirrors FXHENN_SIMD): an explicit name (CLI
 * --backend / ExecOptions::backend) wins; otherwise the FXHENN_BACKEND
 * environment variable; otherwise "cpu". An unknown name throws
 * ConfigError (CLI exit code 3) listing the registered names. Creating
 * a backend publishes the "backend.name.<name>" telemetry counter;
 * every dispatched op counts "backend.dispatches".
 */
#ifndef FXHENN_HECNN_BACKEND_HPP
#define FXHENN_HECNN_BACKEND_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/ckks/context.hpp"
#include "src/ckks/evaluator.hpp"
#include "src/ckks/keys.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/**
 * One per-layer row of a simulated-latency timeline. Backends that
 * model hardware (simulatesLatency()) fill one row per executed layer;
 * the cpu paths return an empty timeline.
 */
struct SimLayerLatency
{
    std::string layer;
    /** Event-driven simulated cost of the layer's executed ops. */
    double simulatedCycles = 0.0;
    double simulatedSeconds = 0.0;
    /** Closed-form (Eq. 1-10) prediction at the same design point —
     * what dse::Explorer minimized. */
    double predictedCycles = 0.0;
    double predictedSeconds = 0.0;

    /** |simulated - predicted| / predicted (0 when nothing was
     * predicted). */
    double
    errorFrac() const
    {
        if (predictedCycles <= 0.0)
            return 0.0;
        const double d = simulatedCycles - predictedCycles;
        return (d < 0.0 ? -d : d) / predictedCycles;
    }
};

/** Everything a backend needs to start one run. All pointers borrow
 * state owned by the PlanExecutor and outlive the run. */
struct BackendRunContext
{
    const HeNetworkPlan *plan = nullptr;
    const ckks::CkksContext *context = nullptr;
    const ckks::RelinKey *relin = nullptr;
    const ckks::GaloisKeys *galois = nullptr;
    /** Keyswitch strategy requested by ExecOptions (backends may
     * override it — cpu-ref forces eager). */
    ckks::KswMode kswMode = ckks::KswMode::lazy;
};

/**
 * The per-request op interface the plan interpreter dispatches
 * through. One BackendRun serves exactly one execute() call and is
 * never shared between threads; distinct runs of the same backend may
 * be concurrent. Semantics of every op match ckks::Evaluator's method
 * of the same name — results must be bitwise identical to the "cpu"
 * backend for identical inputs.
 */
class BackendRun
{
  public:
    virtual ~BackendRun() = default;

    virtual ckks::Ciphertext mulPlain(const ckks::Ciphertext &a,
                                      const ckks::Plaintext &p) = 0;
    virtual ckks::Ciphertext addPlain(const ckks::Ciphertext &a,
                                      const ckks::Plaintext &p) = 0;
    virtual void addInplace(ckks::Ciphertext &dst,
                            const ckks::Ciphertext &src) = 0;
    virtual ckks::Ciphertext mulNoRelin(const ckks::Ciphertext &a,
                                        const ckks::Ciphertext &b) = 0;
    virtual ckks::Ciphertext relinearize(const ckks::Ciphertext &a) = 0;
    virtual ckks::Ciphertext rescale(const ckks::Ciphertext &a) = 0;
    virtual void rescaleInplace(ckks::Ciphertext &a) = 0;
    virtual ckks::Ciphertext rotate(const ckks::Ciphertext &a,
                                    int step) = 0;
    /** Hoisted rotation group: one shared digit decomposition. */
    virtual std::vector<ckks::Ciphertext> rotateHoisted(
        const ckks::Ciphertext &a, const std::vector<int> &steps) = 0;

    /** Executed-op counters accumulated over this run. */
    virtual const ckks::OpCounts &counts() const = 0;

    /** Layer-boundary hooks (the simulator's charging points). */
    virtual void
    beginLayer(const HeLayerPlan &layer)
    {
        (void)layer;
    }
    virtual void
    endLayer(const HeLayerPlan &layer)
    {
        (void)layer;
    }

    /** Per-layer simulated-latency rows accumulated so far; empty for
     * backends that do not model hardware. */
    virtual std::vector<SimLayerLatency>
    timeline() const
    {
        return {};
    }
};

/** A named execution target. Instances are created per PlanExecutor
 * through the registry and must be safe to beginRun() concurrently. */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /** Registry name ("cpu", "cpu-ref", "fpga-sim", ...). */
    virtual const std::string &name() const = 0;

    /** Start one run. Called once per execute(); may be concurrent. */
    virtual std::unique_ptr<BackendRun> beginRun(
        const BackendRunContext &ctx) const = 0;

    /** True when runs charge a simulated-latency timeline. */
    virtual bool
    simulatesLatency() const
    {
        return false;
    }
};

using BackendFactory =
    std::function<std::unique_ptr<ExecutionBackend>()>;

/**
 * Register @p factory under @p name. The first installation wins;
 * a later call with an already-registered name is ignored and returns
 * false (parity with setPlanVerifier()), so tests cannot silently
 * displace a production backend. Thread-safe.
 */
bool registerBackend(const std::string &name, BackendFactory factory);

/**
 * Test seam: remove a registered backend. The built-in names ("cpu",
 * "cpu-ref") are refused — returns false and leaves them installed.
 */
bool unregisterBackend(const std::string &name);

/** @return true when @p name is registered. */
bool backendRegistered(const std::string &name);

/** Registered names, sorted (the ConfigError candidate list). */
std::vector<std::string> registeredBackendNames();

/**
 * Instantiate the backend registered under @p name. Throws ConfigError
 * listing the registered names when @p name is unknown. Publishes the
 * "backend.name.<name>" telemetry counter.
 */
std::unique_ptr<ExecutionBackend> createBackend(
    const std::string &name);

/**
 * The selection rule shared by the CLI, the executor and the benches:
 * @p requested (non-empty) wins, else the FXHENN_BACKEND environment
 * variable, else "cpu". The resolved name must be registered — an
 * unknown name throws ConfigError (CLI exit code 3), so resolve once
 * up front, before any work runs.
 */
std::string resolveBackendName(const std::string &requested = "");

/**
 * The "cpu" op implementation as a building block: a run wrapping a
 * fresh ckks::Evaluator(ctx.context, ctx.kswMode). Backends that only
 * change accounting (fpga-sim) delegate their arithmetic here so
 * bitwise identity with "cpu" holds by construction.
 */
std::unique_ptr<BackendRun> makeCpuBackendRun(
    const BackendRunContext &ctx);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_BACKEND_HPP
