#include "src/hecnn/plan_check.hpp"

#include <utility>

namespace fxhenn::hecnn {

namespace {

PlanVerifier &
verifierSlot()
{
    static PlanVerifier verifier;
    return verifier;
}

bool &
loadVerificationSlot()
{
    static bool enabled = false;
    return enabled;
}

} // namespace

bool
setPlanVerifier(PlanVerifier verifier)
{
    PlanVerifier &slot = verifierSlot();
    if (!verifier) {
        slot = nullptr; // uninstall (test seam)
        return true;
    }
    if (slot)
        return false; // first installation wins
    slot = std::move(verifier);
    return true;
}

bool
planVerifierInstalled()
{
    return static_cast<bool>(verifierSlot());
}

void
runPlanVerifier(const HeNetworkPlan &plan, const std::string &origin)
{
    if (const PlanVerifier &verifier = verifierSlot())
        verifier(plan, origin);
}

void
setLoadVerification(bool enabled)
{
    loadVerificationSlot() = enabled;
}

bool
loadVerificationEnabled()
{
    return loadVerificationSlot();
}

} // namespace fxhenn::hecnn
