/**
 * @file
 * Plan-aware runtime guard: statically simulates the (level, scale,
 * parts) state of every register as the Runtime executes a plan, using
 * the exact double arithmetic the evaluator applies. On a healthy run
 * the prediction matches the ciphertext tags bit-for-bit; a dropped
 * rescale, perturbed scale or corrupted plan shows up as divergence at
 * the next layer boundary. The guard also tracks the predicted
 * noise-budget headroom per layer and flags exhaustion before the
 * message overflows the modulus.
 */
#ifndef FXHENN_HECNN_GUARD_HPP
#define FXHENN_HECNN_GUARD_HPP

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/ckks/ciphertext.hpp"
#include "src/ckks/context.hpp"
#include "src/hecnn/noise_cert.hpp"
#include "src/hecnn/plan.hpp"
#include "src/robustness/guard.hpp"

namespace fxhenn::hecnn {

/** Per-inference invariant tracker owned by hecnn::Runtime. */
class RuntimeGuard
{
  public:
    /**
     * Construction certifies the plan once with the static noise
     * certifier (at GuardOptions::messageBits); checkLayerEnd then
     * consumes the per-layer certified bounds instead of re-deriving
     * an ad-hoc worst-case headroom. An invalid certificate (e.g. a
     * malformed plan that still executes) degrades gracefully to the
     * noise-free headroom formula.
     */
    RuntimeGuard(const HeNetworkPlan &plan,
                 const ckks::CkksContext &context,
                 robustness::GuardOptions options);

    const robustness::GuardOptions &options() const { return options_; }

    /** The static certificate computed at construction. */
    const NoiseCertificate &certificate() const { return cert_; }

    /** Reset predicted state to "inputs freshly encrypted". */
    void beginInfer();

    /**
     * Validate @p instr against the predicted register state before it
     * executes: operands written, levels/scales compatible, part
     * counts as the op expects. @return the violation, or nullopt.
     */
    std::optional<std::string> preCheck(const HeInstr &instr) const;

    /** Advance the predicted state across @p instr. */
    void apply(const HeInstr &instr);

    /**
     * Layer-boundary check: compare every predicted register against
     * the actual ciphertexts, validate the plan's levelOut metadata,
     * append this layer's BudgetSample, and flag predicted headroom
     * exhaustion. @return the first violation found, or nullopt.
     */
    std::optional<std::string> checkLayerEnd(
        const HeLayerPlan &layer,
        std::span<const std::optional<ckks::Ciphertext>> regs);

    /** Predicted headroom trajectory of the current inference. */
    const std::vector<robustness::BudgetSample> &trajectory() const
    {
        return trajectory_;
    }

  private:
    struct RegState
    {
        bool written = false;
        std::size_t level = 0;
        double scale = 0.0;
        std::size_t parts = 2;
    };

    const HeNetworkPlan &plan_;
    const ckks::CkksContext &context_;
    robustness::GuardOptions options_;
    NoiseCertificate cert_;
    std::vector<RegState> regs_;
    std::vector<robustness::BudgetSample> trajectory_;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_GUARD_HPP
