/**
 * @file
 * The server role of the MLaaS split: a plan interpreter over the
 * register file, with no key generation and no secret-key access.
 *
 * A PlanExecutor borrows everything it needs by const reference — the
 * compiled plan, the CKKS context, the relinearization/Galois keys and
 * the precomputed PlaintextPool — and keeps no per-request state in
 * the object: every execute() call starts its own backend run, guard
 * and register file on the stack. Every HE op dispatches through the
 * ExecutionBackend named in ExecOptions::backend (src/hecnn/backend.hpp),
 * so the same interpreter drives the host CPU path and the
 * cycle-approximate FPGA pipeline simulator unchanged. One executor
 * therefore serves any number
 * of concurrent requests (the InferenceEngine's worker pool), and the
 * FxHENN verification loop (Sec. VII) gets the plan-interpreter half
 * without dragging in the client role.
 */
#ifndef FXHENN_HECNN_PLAN_EXECUTOR_HPP
#define FXHENN_HECNN_PLAN_EXECUTOR_HPP

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/ckks/encoder.hpp"
#include "src/ckks/evaluator.hpp"
#include "src/ckks/keys.hpp"
#include "src/hecnn/backend.hpp"
#include "src/hecnn/guard.hpp"
#include "src/hecnn/plaintext_pool.hpp"
#include "src/hecnn/plan.hpp"
#include "src/hecnn/stats.hpp"
#include "src/robustness/guard.hpp"

namespace fxhenn::hecnn {

/** Execution strategy knobs of one PlanExecutor. */
struct ExecOptions
{
    /**
     * Dispatch consecutive same-source rotations as one hoisted group
     * (one shared digit decomposition) instead of serial rotates.
     * Results are bitwise identical either way — the serial and
     * hoisted paths share the same decompose-then-permute core.
     */
    bool hoistRotations = true;
    /** Keyswitch reduction strategy for the per-run evaluators. */
    ckks::KswMode kswMode = ckks::KswMode::lazy;
    /**
     * Execution backend every HE op of this executor dispatches
     * through, by registry name ("cpu", "cpu-ref", "fpga-sim", ...).
     * Empty resolves the FXHENN_BACKEND environment variable and
     * falls back to "cpu" (hecnn::resolveBackendName()); an unknown
     * name is a ConfigError at executor construction.
     */
    std::string backend;
    /**
     * Honor RunControl::deadline at layer boundaries: an in-flight
     * request whose budget is blown aborts cooperatively with a
     * FailureReport (op "deadline") instead of running to completion.
     * Off means deadlines are checked only at admission.
     */
    bool deadlineCheckpoints = true;
};

/**
 * Per-call serving controls of one execute(). Unlike ExecOptions
 * (fixed per executor) these vary request by request, so the engine
 * passes them per call; the executor stays stateless.
 */
struct RunControl
{
    /**
     * Cooperative abort-by time. Checked between layers (the
     * checkpoint granularity of the interpreter); a blown deadline
     * degrades the run with a FailureReport regardless of the guard
     * policy — lateness is a serving concern, not a broken invariant.
     */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /**
     * Observer invoked at each layer boundary (after the layer's
     * instructions ran, before the guard's layer-end check) with the
     * layer index and the live register file. The noise differential
     * tests use it to measure per-layer headroom against the static
     * certificate — square layers overwrite their inputs in place, so
     * intermediate states are unobservable after the run. Must not
     * mutate the registers; exceptions propagate like layer errors.
     */
    std::function<void(std::size_t layerIndex,
                       std::span<const std::optional<ckks::Ciphertext>>
                           regs)>
        layerProbe;
};

/** Everything one encrypted run produced, scoped to that request. */
struct ExecutionResult
{
    /** Final register file (the output registers hold the logits). */
    std::vector<std::optional<ckks::Ciphertext>> regs;
    /** Wall time + executed-op breakdown per layer. */
    std::vector<MeasuredLayerStats> layerStats;
    /** Backend op counters accumulated over the run. */
    ckks::OpCounts executed;
    /** Registry name of the backend that ran the request. */
    std::string backendName;
    /**
     * Per-layer simulated-latency timeline, one row per executed
     * layer; empty unless the backend simulates hardware (fpga-sim).
     */
    std::vector<SimLayerLatency> simulated;
    /** Set when the run degraded (GuardPolicy::degrade). */
    std::optional<robustness::FailureReport> failure;
    /** Predicted per-layer noise-budget trajectory. */
    std::vector<robustness::BudgetSample> budget;

    bool degraded() const { return failure.has_value(); }
};

/** Stateless-per-request interpreter of one compiled HE-CNN plan. */
class PlanExecutor
{
  public:
    /**
     * Borrow @p plan, @p context, the evaluation keys and @p pool.
     * All five must outlive the executor and stay unmodified; the pool
     * must have been built from the same plan/context.
     */
    PlanExecutor(const HeNetworkPlan &plan,
                 const ckks::CkksContext &context,
                 const ckks::RelinKey &relin,
                 const ckks::GaloisKeys &galois,
                 const PlaintextPool &pool,
                 robustness::GuardOptions guard = {},
                 ExecOptions exec = {});

    /**
     * Run every layer of the plan over @p inputs (the client's
     * encrypted input registers, in plan order). Under
     * GuardPolicy::degrade a violation or mid-layer
     * ConfigError/InternalError aborts the run with a FailureReport in
     * the result instead of propagating. Safe to call concurrently.
     */
    ExecutionResult execute(std::vector<ckks::Ciphertext> inputs) const;

    /**
     * execute() with per-request serving controls: when
     * ExecOptions::deadlineCheckpoints is on and @p control carries a
     * deadline, the run checks it at every layer boundary and aborts
     * with a FailureReport (op "deadline") once it is past — the
     * partial trajectory up to the abort is preserved.
     */
    ExecutionResult execute(std::vector<ckks::Ciphertext> inputs,
                            const RunControl &control) const;

    const HeNetworkPlan &plan() const { return plan_; }
    const robustness::GuardOptions &guardOptions() const
    {
        return guardOptions_;
    }
    const ExecOptions &execOptions() const { return execOptions_; }

    /** The execution backend every op of this executor runs through
     * (resolved once at construction from ExecOptions::backend). */
    const ExecutionBackend &backend() const { return *backend_; }

  private:
    /** Mutable state of one in-flight request, stack-allocated. */
    struct Run
    {
        std::unique_ptr<BackendRun> ops;
        RuntimeGuard guard;
        std::vector<std::optional<ckks::Ciphertext>> regs;
        std::vector<MeasuredLayerStats> layerStats;
    };

    void executeLayer(Run &run, const HeLayerPlan &layer) const;
    void guardViolation(Run &run, const std::string &layer,
                        const char *op, const std::string &reason) const;

    const HeNetworkPlan &plan_;
    const ckks::CkksContext &context_;
    const ckks::RelinKey &relin_;
    const ckks::GaloisKeys &galois_;
    const PlaintextPool &pool_;
    ckks::Encoder encoder_; ///< re-entrant (bias encodes at run scale)
    robustness::GuardOptions guardOptions_;
    ExecOptions execOptions_;
    std::unique_ptr<ExecutionBackend> backend_;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_PLAN_EXECUTOR_HPP
