#include "src/hecnn/stats.hpp"

#include "src/ckks/size_model.hpp"

namespace fxhenn::hecnn {

std::vector<LayerStats>
layerStats(const HeNetworkPlan &plan)
{
    std::vector<LayerStats> rows;
    rows.reserve(plan.layers.size());
    for (const auto &layer : plan.layers) {
        rows.push_back(LayerStats{layer.name, layer.cls, layer.nIn,
                                  layer.levelIn, layer.counts()});
    }
    return rows;
}

ModelSize
modelSize(const HeNetworkPlan &plan)
{
    ModelSize size;
    for (const auto &pt : plan.plaintexts)
        size.weightPlaintexts +=
            ckks::plaintextBytes(plan.params, pt.level);
    size.relinKey = ckks::kswKeyBytes(plan.params);
    size.galoisKeys =
        plan.rotationSteps().size() * ckks::kswKeyBytes(plan.params);
    return size;
}

std::string
layerSummary(const HeNetworkPlan &plan)
{
    std::string out;
    for (const auto &layer : plan.layers) {
        if (!out.empty())
            out += ", ";
        out += layer.name;
    }
    return out;
}

} // namespace fxhenn::hecnn
