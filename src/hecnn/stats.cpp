#include "src/hecnn/stats.hpp"

#include <ostream>
#include <sstream>

#include "src/ckks/size_model.hpp"
#include "src/common/table_printer.hpp"

namespace fxhenn::hecnn {

std::vector<LayerStats>
layerStats(const HeNetworkPlan &plan)
{
    std::vector<LayerStats> rows;
    rows.reserve(plan.layers.size());
    for (const auto &layer : plan.layers) {
        rows.push_back(LayerStats{layer.name, layer.cls, layer.nIn,
                                  layer.levelIn, layer.counts()});
    }
    return rows;
}

ModelSize
modelSize(const HeNetworkPlan &plan)
{
    ModelSize size;
    for (const auto &pt : plan.plaintexts)
        size.weightPlaintexts +=
            ckks::plaintextBytes(plan.params, pt.level);
    size.relinKey = ckks::kswKeyBytes(plan.params);
    size.galoisKeys =
        plan.rotationSteps().size() * ckks::kswKeyBytes(plan.params);
    return size;
}

std::string
layerSummary(const HeNetworkPlan &plan)
{
    std::string out;
    for (const auto &layer : plan.layers) {
        if (!out.empty())
            out += ", ";
        out += layer.name;
    }
    return out;
}

void
writeMeasuredStatsJson(std::span<const MeasuredLayerStats> rows,
                       std::ostream &os)
{
    os << "[";
    bool first = true;
    for (const auto &row : rows) {
        os << (first ? "\n" : ",\n") << "  {\"layer\": \"" << row.name
           << "\", \"seconds\": " << row.seconds << ", \"ops\": {"
           << "\"cc_add\": " << row.executed.ccAdd
           << ", \"pc_add\": " << row.executed.pcAdd
           << ", \"pc_mult\": " << row.executed.pcMult
           << ", \"cc_mult\": " << row.executed.ccMult
           << ", \"rescale\": " << row.executed.rescale
           << ", \"relinearize\": " << row.executed.relinearize
           << ", \"rotate\": " << row.executed.rotate << "}}";
        first = false;
    }
    os << (first ? "]" : "\n]") << "\n";
}

std::string
renderMeasuredStats(std::span<const MeasuredLayerStats> rows)
{
    TablePrinter table({"Layer", "Time (ms)", "HOP", "KS", "PCmult",
                        "Rot"});
    double total_s = 0.0;
    std::uint64_t total_hop = 0;
    for (const auto &row : rows) {
        table.addRow({row.name, fmtF(row.seconds * 1e3),
                      fmtI(static_cast<long long>(row.executed.total())),
                      fmtI(static_cast<long long>(
                          row.executed.keySwitch())),
                      fmtI(static_cast<long long>(row.executed.pcMult)),
                      fmtI(static_cast<long long>(row.executed.rotate))});
        total_s += row.seconds;
        total_hop += row.executed.total();
    }
    table.addSeparator();
    table.addRow({"total", fmtF(total_s * 1e3),
                  fmtI(static_cast<long long>(total_hop)), "", "", ""});
    std::ostringstream oss;
    table.print(oss);
    return oss.str();
}

} // namespace fxhenn::hecnn
