/**
 * @file
 * Static noise-budget certifier over the plan IR.
 *
 * certifyPlan() abstract-interprets a compiled HeNetworkPlan with the
 * ckks::NoiseModel growth rules (fresh-encryption bound, pcMult / add /
 * square / keyswitch / rescale) over the exact NTT prime chain and
 * emits a per-layer certificate: the worst-case noise trajectory and
 * the minimum modulus headroom any execution can have. A negative
 * certified headroom means the plan can overflow the modulus for some
 * in-spec input — `fxhenn lint` refuses such plans (exit 4) and
 * hecnn::compile's self-check rejects them before they are saved.
 *
 * The certificate is also the contract the runtime checks against:
 * RuntimeGuard replays the certified trajectory, and the differential
 * tests assert measured headroom >= certified headroom at every layer
 * of every zoo model. This file lives in src/hecnn (not src/analysis)
 * because fxhenn_analysis links fxhenn_hecnn, never the reverse; the
 * analysis NoiseBudgetPass is a thin wrapper over certifyPlan().
 */
#ifndef FXHENN_HECNN_NOISE_CERT_HPP
#define FXHENN_HECNN_NOISE_CERT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/** Knobs for the static certifier. */
struct CertifyOptions
{
    /**
     * log2 of the maximum |message| the client promises per slot.
     * Matches robustness::GuardOptions::messageBits (zoo inputs are
     * normalized well below 1.0).
     */
    double messageBits = -2.0;

    /**
     * Certify the plan as if it ran with `levelShift` fewer data
     * primes: plan level l maps to l - levelShift over a freshly
     * generated (levels - levelShift)-prime chain. Used by the DSE
     * explorer to find the shortest modulus chain a plan still
     * certifies on.
     */
    std::size_t levelShift = 0;
};

/** Certified worst-case bound at one layer boundary. */
struct LayerNoiseBound
{
    std::string layer;
    std::size_t level = 0;      ///< effective level after the layer
    double scaleBits = 0.0;     ///< log2(max output register scale)
    double noiseBits = 0.0;     ///< log2 worst-case coefficient noise
    /** min over output registers of logQ(level)-1 - logAdd(message,
     *  noise); negative = the modulus can overflow here. */
    double headroomBits = 0.0;
};

/** The full certificate for one plan. */
struct NoiseCertificate
{
    std::string plan;         ///< plan name
    bool valid = false;       ///< false: certification itself failed
    std::string invalidReason;
    double messageBits = 0.0; ///< assumption baked into the bound
    std::size_t levels = 0;   ///< effective modulus-chain length
    std::vector<LayerNoiseBound> layers;
    double minHeadroomBits = 0.0; ///< min over layers (0 if no layers)

    /** Artifact traceability (set by callers that loaded a file). */
    std::string artifactPath;
    std::uint32_t artifactCrc32 = 0;
    bool hasArtifact = false;

    /** True when the plan is certified safe: valid and headroom >= 0. */
    bool certified() const { return valid && minHeadroomBits >= 0.0; }

    /** Human-readable trajectory table. */
    std::string renderText() const;

    /** Machine-readable certificate ("fxhenn-noise-cert-v1"). */
    std::string renderJson() const;
};

/**
 * Statically certify @p plan. Never throws: any internal failure
 * (invalid params, malformed register use, level underflow under a
 * levelShift) is reported as valid = false with a reason.
 */
NoiseCertificate certifyPlan(const HeNetworkPlan &plan,
                             const CertifyOptions &opts = {});

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_NOISE_CERT_HPP
