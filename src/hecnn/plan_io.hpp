/**
 * @file
 * Binary serialization of compiled HE-CNN plans.
 *
 * Deployment split (Sec. I's MLaaS setting): the model owner compiles
 * the network once — packing layouts, instruction streams, encoded
 * weight payloads — and ships the plan to the accelerator host; clients
 * only ever ship ciphertexts. The wire format mirrors the CKKS object
 * format (magic/version header + parameter fingerprint) so plans cannot
 * be loaded into a mismatched context.
 */
#ifndef FXHENN_HECNN_PLAN_IO_HPP
#define FXHENN_HECNN_PLAN_IO_HPP

#include <iosfwd>

#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/** Serialize @p plan to @p os (payloads included unless elided). */
void savePlan(const HeNetworkPlan &plan, std::ostream &os);

/** Deserialize a plan; validates framing and internal consistency. */
HeNetworkPlan loadPlan(std::istream &is);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_PLAN_IO_HPP
