/**
 * @file
 * Binary serialization of compiled HE-CNN plans.
 *
 * Deployment split (Sec. I's MLaaS setting): the model owner compiles
 * the network once — packing layouts, instruction streams, encoded
 * weight payloads — and ships the plan to the accelerator host; clients
 * only ever ship ciphertexts. The wire format mirrors the CKKS object
 * format (magic/version header + parameter fingerprint) so plans cannot
 * be loaded into a mismatched context.
 */
#ifndef FXHENN_HECNN_PLAN_IO_HPP
#define FXHENN_HECNN_PLAN_IO_HPP

#include <cstdint>
#include <iosfwd>

#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/** Newest plan stream version this build reads and writes. */
std::uint32_t planStreamVersion();

/** Serialize @p plan to @p os (payloads included unless elided). */
void savePlan(const HeNetworkPlan &plan, std::ostream &os);

/**
 * Serialize @p plan in an older stream layout: version 1 has no CRC-32
 * trailer, version 2 omits the per-plaintext maxAbs field. Exists so
 * backward-compatibility tests exercise genuine legacy byte streams
 * instead of hand-patched modern ones. Throws ConfigError for an
 * unknown @p version.
 */
void savePlanAsVersion(const HeNetworkPlan &plan, std::ostream &os,
                       std::uint32_t version);

/** Deserialize a plan; validates framing and internal consistency. */
HeNetworkPlan loadPlan(std::istream &is);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_PLAN_IO_HPP
