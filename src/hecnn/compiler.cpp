#include "src/hecnn/compiler.hpp"

#include <functional>

#include "src/common/assert.hpp"
#include "src/common/math_util.hpp"
#include "src/hecnn/noise_cert.hpp"
#include "src/hecnn/plan_check.hpp"
#include "src/hecnn/rescale_rewriter.hpp"

namespace fxhenn::hecnn {

namespace {

/** Sparse row visitor: emit(elementIndex, weight) for one output row. */
using RowVisitor =
    std::function<void(std::size_t row,
                       const std::function<void(std::size_t, double)> &)>;

/** Builds one HeNetworkPlan; transient state machine. */
class PlanBuilder
{
  public:
    PlanBuilder(const nn::Network &net, const ckks::CkksParams &params,
                const CompileOptions &options)
        : net_(net), params_(params), options_(options),
          // Batched compiles run entirely in virtual slot space: each
          // of the B interleaved requests sees (N/2)/B slots, and
          // applyBatchStride() stretches the finished plan onto the
          // physical slot ring afterwards.
          slots_((params.n / 2) / std::max<std::size_t>(
                                      options.batchLanes, 1))
    {}

    HeNetworkPlan
    build()
    {
        plan_.name = net_.name();
        plan_.params = params_;
        plan_.valuesElided = options_.elideValues;
        level_ = params_.levels;

        for (std::size_t i = 0; i < net_.layerCount(); ++i) {
            const nn::Layer &layer = net_.layer(i);
            const bool is_last = (i + 1 == net_.layerCount());
            switch (layer.kind()) {
              case nn::LayerKind::conv2d: {
                const auto &conv = static_cast<const nn::Conv2D &>(layer);
                if (i == 0) {
                    compileFirstConv(conv);
                } else {
                    compileConvAsDense(conv, !is_last);
                }
                break;
              }
              case nn::LayerKind::dense: {
                const auto &dense = static_cast<const nn::Dense &>(layer);
                if (i == 0)
                    setupDenseFirstInput(dense.inSize());
                compileDenseLayer(dense, !is_last);
                break;
              }
              case nn::LayerKind::square:
                compileSquare(static_cast<const nn::SquareActivation &>(
                    layer));
                break;
              case nn::LayerKind::avgPool:
                FXHENN_FATAL_IF(i == 0,
                                "pooling cannot be the first layer");
                compileAvgPool(static_cast<const nn::AvgPool2D &>(layer),
                               !is_last);
                break;
              case nn::LayerKind::flatten:
                break; // layouts are already flat
            }
        }

        plan_.outputLayout = layout_;
        plan_.regCount = regCount_;
        return std::move(plan_);
    }

  private:
    // --- infrastructure ---------------------------------------------------

    std::int32_t newReg() { return regCount_++; }

    std::int32_t
    addPlaintext(std::vector<double> values, std::size_t level,
                 bool atSchemeScale)
    {
        PlanPlaintext pt;
        pt.level = level;
        pt.atSchemeScale = atSchemeScale;
        for (const double v : values)
            pt.maxAbs = std::max(pt.maxAbs, std::abs(v));
        if (!options_.elideValues)
            pt.values = std::move(values);
        plan_.plaintexts.push_back(std::move(pt));
        return static_cast<std::int32_t>(plan_.plaintexts.size() - 1);
    }

    void
    emit(HeLayerPlan &lp, HeOpKind kind, std::int32_t dst,
         std::int32_t src, std::int32_t pt = -1, std::int32_t step = 0)
    {
        lp.instrs.push_back(HeInstr{kind, dst, src, pt, step});
    }

    /**
     * Emit a rotation by @p step, decomposed into signed power-of-two
     * sub-rotations when the option is set (dst may alias src).
     */
    void
    emitRotate(HeLayerPlan &lp, std::int32_t dst, std::int32_t src,
               std::int32_t step)
    {
        if (!options_.decomposeRotations || step == 0 ||
            (step & (step - 1)) == 0 ||
            (-step > 0 && ((-step) & (-step - 1)) == 0)) {
            emit(lp, HeOpKind::rotate, dst, src, -1, step);
            return;
        }
        const std::int32_t sign = step < 0 ? -1 : 1;
        std::uint32_t magnitude =
            static_cast<std::uint32_t>(sign * step);
        std::int32_t current = src;
        for (std::uint32_t bit = 1; magnitude != 0; bit <<= 1) {
            if (magnitude & bit) {
                emit(lp, HeOpKind::rotate, dst, current, -1,
                     sign * static_cast<std::int32_t>(bit));
                current = dst;
                magnitude &= ~bit;
            }
        }
    }

    HeLayerPlan &
    beginLayer(const std::string &name, std::size_t n_in)
    {
        plan_.layers.emplace_back();
        HeLayerPlan &lp = plan_.layers.back();
        lp.name = name;
        lp.levelIn = level_;
        lp.nIn = n_in;
        return lp;
    }

    void
    finishLayer(HeLayerPlan &lp, SlotLayout layout)
    {
        lp.levelOut = level_;
        lp.outputLayout = layout;
        lp.classify();
        layout_ = std::move(layout);
    }

    void
    consumeLevel(std::size_t count = 1)
    {
        FXHENN_FATAL_IF(level_ < count + 1,
                        "network depth exceeds the CKKS level budget; "
                        "increase params.levels");
        level_ -= count;
    }

    /** Dense-first networks: pack the flat input contiguously. */
    void
    setupDenseFirstInput(std::size_t v)
    {
        const std::size_t regs_needed = divCeil(v, slots_);
        plan_.inputGather.assign(regs_needed,
                                 std::vector<std::int32_t>(slots_, -1));
        SlotLayout layout;
        for (std::size_t c = 0; c < regs_needed; ++c) {
            const std::int32_t reg = newReg();
            layout.regs.push_back(reg);
            for (std::size_t s = 0; s < slots_; ++s) {
                const std::size_t e = c * slots_ + s;
                if (e < v) {
                    plan_.inputGather[c][s] =
                        static_cast<std::int32_t>(e);
                    layout.pos.emplace_back(
                        reg, static_cast<std::int32_t>(s));
                }
            }
        }
        layout_ = std::move(layout);
    }

    // --- first-layer convolution (tap packing) ---------------------------

    void
    compileFirstConv(const nn::Conv2D &conv)
    {
        const std::size_t taps =
            conv.inChannels() * conv.kernel() * conv.kernel();
        const std::size_t pixels = conv.outHeight() * conv.outWidth();
        FXHENN_FATAL_IF(pixels > slots_,
                        "one output map does not fit the slot count");
        const std::size_t f_per_ct =
            std::min<std::size_t>(conv.outChannels(), slots_ / pixels);
        const std::size_t groups =
            divCeil(conv.outChannels(), f_per_ct);

        // Client-side gather: identical for every output group.
        plan_.inputGather.assign(taps,
                                 std::vector<std::int32_t>(slots_, -1));
        std::size_t tap = 0;
        for (std::size_t c = 0; c < conv.inChannels(); ++c) {
            for (std::size_t ky = 0; ky < conv.kernel(); ++ky) {
                for (std::size_t kx = 0; kx < conv.kernel(); ++kx) {
                    auto &gather = plan_.inputGather[tap];
                    for (std::size_t f_local = 0; f_local < f_per_ct;
                         ++f_local) {
                        for (std::size_t y = 0; y < conv.outHeight();
                             ++y) {
                            for (std::size_t x = 0; x < conv.outWidth();
                                 ++x) {
                                const std::size_t p =
                                    y * conv.outWidth() + x;
                                const std::size_t slot =
                                    f_local * pixels + p;
                                // -1 (zero slot) for padded taps.
                                gather[slot] = static_cast<std::int32_t>(
                                    conv.inputIndex(c, ky, kx, y, x));
                            }
                        }
                    }
                    ++tap;
                }
            }
        }

        // Input registers 0..taps-1 hold the client's ciphertexts.
        std::vector<std::int32_t> in_regs(taps);
        for (std::size_t i = 0; i < taps; ++i)
            in_regs[i] = newReg();

        HeLayerPlan &lp = beginLayer(conv.name(), taps);

        SlotLayout out;
        const std::int32_t tmp = newReg();
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t f_lo = g * f_per_ct;
            const std::size_t f_hi =
                std::min<std::size_t>(conv.outChannels(),
                                      f_lo + f_per_ct);
            const std::int32_t acc = newReg();

            tap = 0;
            for (std::size_t c = 0; c < conv.inChannels(); ++c) {
                for (std::size_t ky = 0; ky < conv.kernel(); ++ky) {
                    for (std::size_t kx = 0; kx < conv.kernel(); ++kx) {
                        std::vector<double> w(slots_, 0.0);
                        for (std::size_t f = f_lo; f < f_hi; ++f) {
                            const double weight =
                                conv.weight(f, c, ky, kx);
                            for (std::size_t p = 0; p < pixels; ++p)
                                w[(f - f_lo) * pixels + p] = weight;
                        }
                        const std::int32_t pt =
                            addPlaintext(std::move(w), level_, true);
                        const std::int32_t dst = (tap == 0) ? acc : tmp;
                        emit(lp, HeOpKind::pcMult, dst,
                             in_regs[tap], pt);
                        emit(lp, HeOpKind::rescale, dst, dst);
                        if (tap != 0)
                            emit(lp, HeOpKind::ccAdd, acc, tmp);
                        ++tap;
                    }
                }
            }

            // Bias at every output slot of this group.
            std::vector<double> bias(slots_, 0.0);
            for (std::size_t f = f_lo; f < f_hi; ++f) {
                for (std::size_t p = 0; p < pixels; ++p)
                    bias[(f - f_lo) * pixels + p] = conv.bias(f);
            }
            const std::int32_t bias_pt =
                addPlaintext(std::move(bias), level_ - 1, false);
            emit(lp, HeOpKind::pcAdd, acc, acc, bias_pt);

            for (std::size_t f = f_lo; f < f_hi; ++f) {
                for (std::size_t p = 0; p < pixels; ++p) {
                    out.pos.emplace_back(
                        acc, static_cast<std::int32_t>(
                                 (f - f_lo) * pixels + p));
                }
            }
            out.regs.push_back(acc);
        }

        consumeLevel();
        finishLayer(lp, std::move(out));
    }

    // --- square activation ------------------------------------------------

    void
    compileSquare(const nn::SquareActivation &act)
    {
        HeLayerPlan &lp = beginLayer(act.name(), layout_.regs.size());
        for (std::int32_t reg : layout_.regs) {
            emit(lp, HeOpKind::ccMult, reg, reg);
            emit(lp, HeOpKind::relinearize, reg, reg);
            emit(lp, HeOpKind::rescale, reg, reg);
        }
        consumeLevel();
        finishLayer(lp, layout_);
    }

    // --- dense / conv-as-dense --------------------------------------------

    void
    compileDenseLayer(const nn::Dense &dense, bool merge)
    {
        RowVisitor rows = [&dense](std::size_t row, const auto &visit) {
            for (std::size_t col = 0; col < dense.inSize(); ++col)
                visit(col, dense.weight(row, col));
        };
        compileMatVec(dense.name(), dense.outputSize(), rows,
                      [&dense](std::size_t r) { return dense.bias(r); },
                      merge);
    }

    void
    compileConvAsDense(const nn::Conv2D &conv, bool merge)
    {
        // Implicit im2col: output row (f, y, x); element index follows
        // the CHW flattening of the conv's input tensor.
        const std::size_t ow = conv.outWidth();
        const std::size_t oh = conv.outHeight();
        RowVisitor rows = [&conv, ow, oh](std::size_t row,
                                          const auto &visit) {
            const std::size_t f = row / (oh * ow);
            const std::size_t y = (row / ow) % oh;
            const std::size_t x = row % ow;
            for (std::size_t c = 0; c < conv.inChannels(); ++c) {
                for (std::size_t ky = 0; ky < conv.kernel(); ++ky) {
                    for (std::size_t kx = 0; kx < conv.kernel(); ++kx) {
                        const std::int64_t e =
                            conv.inputIndex(c, ky, kx, y, x);
                        if (e >= 0) {
                            visit(static_cast<std::size_t>(e),
                                  conv.weight(f, c, ky, kx));
                        }
                    }
                }
            }
        };
        compileMatVec(conv.name(), conv.outputSize(), rows,
                      [&conv, oh, ow](std::size_t r) {
                          return conv.bias(r / (oh * ow));
                      },
                      merge);
    }

    void
    compileAvgPool(const nn::AvgPool2D &pool, bool merge)
    {
        // Average pooling is a sparse linear map: each output averages
        // its k*k window, so it reuses the matrix-vector machinery with
        // constant 1/k^2 weights and no bias.
        const std::size_t ow = pool.outWidth();
        const std::size_t oh = pool.outHeight();
        const double inv = 1.0 / static_cast<double>(pool.kernel() *
                                                     pool.kernel());
        RowVisitor rows = [&pool, ow, oh, inv](std::size_t row,
                                               const auto &visit) {
            const std::size_t c = row / (oh * ow);
            const std::size_t y = (row / ow) % oh;
            const std::size_t x = row % ow;
            for (std::size_t ky = 0; ky < pool.kernel(); ++ky) {
                for (std::size_t kx = 0; kx < pool.kernel(); ++kx) {
                    const std::size_t e =
                        (c * pool.inHeight() + y * pool.stride() + ky) *
                            pool.inWidth() +
                        x * pool.stride() + kx;
                    visit(e, inv);
                }
            }
        };
        compileMatVec(pool.name(), pool.outputSize(), rows,
                      [](std::size_t) { return 0.0; }, merge);
    }

    /** Shared matrix-vector lowering for Dense and mid-network Conv2D. */
    void
    compileMatVec(const std::string &name, std::size_t out_rows,
                  const RowVisitor &rows,
                  const std::function<double(std::size_t)> &bias,
                  bool merge)
    {
        const std::size_t v = layout_.elements();
        const std::size_t vpad = std::size_t(1) << ceilLog2(v);
        if (layout_.isContiguousSingleReg() && vpad * 2 <= slots_) {
            compileMatVecReplicated(name, out_rows, v, vpad, rows, bias,
                                    merge);
        } else {
            compileMatVecGeneral(name, out_rows, rows, bias, merge);
        }
    }

    /** Replicated path: one contiguous input ciphertext (Fig. 3 style). */
    void
    compileMatVecReplicated(const std::string &name, std::size_t out_rows,
                            std::size_t v, std::size_t vpad,
                            const RowVisitor &rows,
                            const std::function<double(std::size_t)> &bias,
                            bool merge)
    {
        const std::size_t copies = slots_ / vpad;
        const std::size_t groups = divCeil(out_rows, copies);
        HeLayerPlan &lp = beginLayer(name, groups);

        const std::int32_t src = layout_.regs[0];
        const std::int32_t rep = newReg();
        const std::int32_t tmp = newReg();

        // Replicate the vector into `copies` aligned blocks by doubling.
        emit(lp, HeOpKind::copy, rep, src);
        for (std::size_t block = 1; block < copies; block <<= 1) {
            emit(lp, HeOpKind::rotate, tmp, rep, -1,
                 -static_cast<std::int32_t>(vpad * block));
            emit(lp, HeOpKind::ccAdd, rep, tmp);
        }

        const std::int32_t work = newReg();
        const std::int32_t masked = newReg();
        const std::int32_t out = merge ? newReg() : -1;

        SlotLayout out_layout;
        out_layout.pos.resize(out_rows);

        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t rows_here =
                std::min(copies, out_rows - g * copies);

            // Filled even for elided plans: the slot vector is
            // transient there, but its maxAbs feeds the certifier.
            std::vector<double> w(slots_, 0.0);
            for (std::size_t k = 0; k < rows_here; ++k) {
                rows(g * copies + k,
                     [&](std::size_t e, double weight) {
                         w[k * vpad + e] += weight;
                     });
            }
            const std::int32_t w_pt =
                addPlaintext(std::move(w), level_, true);
            emit(lp, HeOpKind::pcMult, work, rep, w_pt);
            emit(lp, HeOpKind::rescale, work, work);

            // Rotate-and-sum within each vpad-aligned block.
            for (std::size_t step = vpad / 2; step >= 1; step >>= 1) {
                emit(lp, HeOpKind::rotate, tmp, work, -1,
                     static_cast<std::int32_t>(step));
                emit(lp, HeOpKind::ccAdd, work, tmp);
            }

            if (merge) {
                // Extract the block heads and park row g*copies+k at
                // slot k*vpad + g via one mask and one rotation.
                std::vector<double> mask(slots_, 0.0);
                for (std::size_t k = 0; k < rows_here; ++k)
                    mask[k * vpad] = 1.0;
                const std::int32_t mask_pt =
                    addPlaintext(std::move(mask), level_ - 1, true);
                emit(lp, HeOpKind::pcMult, masked, work, mask_pt);
                emit(lp, HeOpKind::rescale, masked, masked);
                if (g > 0) {
                    emitRotate(lp, masked, masked,
                               -static_cast<std::int32_t>(g));
                }
                if (g == 0) {
                    emit(lp, HeOpKind::copy, out, masked);
                } else {
                    emit(lp, HeOpKind::ccAdd, out, masked);
                }
                for (std::size_t k = 0; k < rows_here; ++k) {
                    out_layout.pos[g * copies + k] = {
                        out,
                        static_cast<std::int32_t>(k * vpad + g)};
                }
            } else {
                // Keep the group register; heads live at k*vpad.
                const std::int32_t kept = newReg();
                emit(lp, HeOpKind::copy, kept, work);
                std::vector<double> b(slots_, 0.0);
                for (std::size_t k = 0; k < rows_here; ++k)
                    b[k * vpad] = bias(g * copies + k);
                const std::int32_t b_pt =
                    addPlaintext(std::move(b), level_ - 1, false);
                emit(lp, HeOpKind::pcAdd, kept, kept, b_pt);
                for (std::size_t k = 0; k < rows_here; ++k) {
                    out_layout.pos[g * copies + k] = {
                        kept, static_cast<std::int32_t>(k * vpad)};
                }
                out_layout.regs.push_back(kept);
            }
        }

        if (merge) {
            std::vector<double> b(slots_, 0.0);
            for (std::size_t r = 0; r < out_rows; ++r)
                b[(r % copies) * vpad + r / copies] = bias(r);
            const std::int32_t b_pt =
                addPlaintext(std::move(b), level_ - 2, false);
            emit(lp, HeOpKind::pcAdd, out, out, b_pt);
            out_layout.regs.push_back(out);
            consumeLevel(2);
        } else {
            consumeLevel(1);
        }
        (void)v;
        finishLayer(lp, std::move(out_layout));
    }

    /** General path: scattered or multi-ciphertext inputs. */
    void
    compileMatVecGeneral(const std::string &name, std::size_t out_rows,
                         const RowVisitor &rows,
                         const std::function<double(std::size_t)> &bias,
                         bool merge)
    {
        FXHENN_FATAL_IF(merge && out_rows > slots_,
                        "merged dense output exceeds slot count");
        HeLayerPlan &lp = beginLayer(name, out_rows);

        const std::size_t reg_count = layout_.regs.size();
        // reg -> dense index for plaintext bucketing
        std::map<std::int32_t, std::size_t> reg_index;
        for (std::size_t i = 0; i < reg_count; ++i)
            reg_index[layout_.regs[i]] = i;

        const std::int32_t acc = newReg();
        const std::int32_t part = newReg();
        const std::int32_t tmp = newReg();
        const std::int32_t masked = newReg();
        const std::int32_t out = merge ? newReg() : -1;

        SlotLayout out_layout;
        out_layout.pos.resize(out_rows);

        for (std::size_t r = 0; r < out_rows; ++r) {
            // Bucket this row's weights per input register.
            std::vector<std::vector<double>> w(
                reg_count, std::vector<double>(slots_, 0.0));
            std::vector<bool> touched(reg_count, false);
            rows(r, [&](std::size_t e, double weight) {
                const auto [reg, slot] = layout_.pos[e];
                const std::size_t i = reg_index.at(reg);
                w[i][static_cast<std::size_t>(slot)] += weight;
                touched[i] = true;
            });

            bool first = true;
            for (std::size_t i = 0; i < reg_count; ++i) {
                if (!touched[i])
                    continue;
                const std::int32_t pt =
                    addPlaintext(std::move(w[i]), level_, true);
                const std::int32_t dst = first ? acc : part;
                emit(lp, HeOpKind::pcMult, dst, layout_.regs[i], pt);
                if (!first)
                    emit(lp, HeOpKind::ccAdd, acc, part);
                first = false;
            }
            FXHENN_ASSERT(!first, "row with no weights");
            emit(lp, HeOpKind::rescale, acc, acc);

            // Full-width rotate-and-sum: the total lands in every slot.
            for (std::size_t step = slots_ / 2; step >= 1; step >>= 1) {
                emit(lp, HeOpKind::rotate, tmp, acc, -1,
                     static_cast<std::int32_t>(step));
                emit(lp, HeOpKind::ccAdd, acc, tmp);
            }

            if (merge) {
                std::vector<double> mask(slots_, 0.0);
                mask[r % slots_] = 1.0;
                const std::int32_t mask_pt =
                    addPlaintext(std::move(mask), level_ - 1, true);
                emit(lp, HeOpKind::pcMult, masked, acc, mask_pt);
                emit(lp, HeOpKind::rescale, masked, masked);
                if (r == 0) {
                    emit(lp, HeOpKind::copy, out, masked);
                } else {
                    emit(lp, HeOpKind::ccAdd, out, masked);
                }
                out_layout.pos[r] = {out,
                                     static_cast<std::int32_t>(r %
                                                               slots_)};
            } else {
                const std::int32_t kept = newReg();
                emit(lp, HeOpKind::copy, kept, acc);
                std::vector<double> b(slots_, 0.0);
                b[0] = bias(r);
                const std::int32_t b_pt =
                    addPlaintext(std::move(b), level_ - 1, false);
                emit(lp, HeOpKind::pcAdd, kept, kept, b_pt);
                out_layout.pos[r] = {kept, 0};
                out_layout.regs.push_back(kept);
            }
        }

        if (merge) {
            std::vector<double> b(slots_, 0.0);
            for (std::size_t r = 0; r < out_rows; ++r)
                b[r] = bias(r);
            const std::int32_t b_pt =
                addPlaintext(std::move(b), level_ - 2, false);
            emit(lp, HeOpKind::pcAdd, out, out, b_pt);
            out_layout.regs.push_back(out);
            consumeLevel(2);
        } else {
            consumeLevel(1);
        }
        finishLayer(lp, std::move(out_layout));
    }

    const nn::Network &net_;
    const ckks::CkksParams &params_;
    const CompileOptions &options_;
    const std::size_t slots_;

    HeNetworkPlan plan_;
    SlotLayout layout_;
    std::size_t level_ = 0;
    std::int32_t regCount_ = 0;
};

/** Stretch one virtual-slot layout onto the stride-B physical ring. */
void
stretchLayout(SlotLayout &layout, std::size_t lanes)
{
    for (auto &[reg, slot] : layout.pos)
        slot = static_cast<std::int32_t>(
            static_cast<std::size_t>(slot) * lanes);
}

/**
 * Map a plan compiled in (N/2)/B virtual slots onto the physical slot
 * ring: virtual slot s becomes physical slot s*B (lane 0), leaving
 * lanes 1..B-1 free for the sibling requests the client interleaves at
 * encrypt time.
 *
 *  - input gathers expand to N/2 entries with the lane-0 positions
 *    populated and every other physical slot zeroed (-1);
 *  - plaintexts broadcast each virtual value across all B lanes, so
 *    one pcMult applies the same weight to every request;
 *  - rotation steps scale by B: rotating the physical ring by k*B
 *    moves physical slot s*B+b to ((s-k) mod (N/2)/B)*B + b — it
 *    permutes virtual slots within each lane and never crosses lanes
 *    (B divides N/2, so the cyclic wraparound is lane-preserving too);
 *  - slot layouts scale their slot coordinates by B.
 *
 * lanes <= 1 is a strict no-op, keeping B=1 plans bit-identical to the
 * unbatched compiler.
 */
void
applyBatchStride(HeNetworkPlan &plan, std::size_t lanes)
{
    if (lanes <= 1)
        return;
    const std::size_t physSlots = plan.params.n / 2;
    const std::size_t virtSlots = physSlots / lanes;

    for (auto &gather : plan.inputGather) {
        std::vector<std::int32_t> phys(physSlots, -1);
        for (std::size_t s = 0; s < gather.size(); ++s)
            phys[s * lanes] = gather[s];
        gather = std::move(phys);
    }

    for (auto &pt : plan.plaintexts) {
        if (pt.values.empty())
            continue; // elided (stats-only) payload
        std::vector<double> phys(physSlots, 0.0);
        for (std::size_t s = 0; s < virtSlots; ++s) {
            for (std::size_t b = 0; b < lanes; ++b)
                phys[s * lanes + b] = pt.values[s];
        }
        pt.values = std::move(phys);
    }

    for (auto &layer : plan.layers) {
        for (auto &instr : layer.instrs) {
            if (instr.kind == HeOpKind::rotate)
                instr.step = static_cast<std::int32_t>(
                    instr.step * static_cast<std::int32_t>(lanes));
        }
        stretchLayout(layer.outputLayout, lanes);
        layer.classify();
    }
    stretchLayout(plan.outputLayout, lanes);
    plan.batchLanes = lanes;
}

} // namespace

HeNetworkPlan
compile(const nn::Network &net, const ckks::CkksParams &params,
        const CompileOptions &options)
{
    FXHENN_FATAL_IF(net.layerCount() == 0, "cannot compile empty network");
    FXHENN_FATAL_IF(net.layer(0).kind() != nn::LayerKind::conv2d &&
                        net.layer(0).kind() != nn::LayerKind::dense,
                    "first layer must be conv2d or dense");
    const std::size_t lanes = options.batchLanes;
    FXHENN_FATAL_IF(lanes == 0,
                    "compile: batchLanes must be at least 1");
    FXHENN_FATAL_IF((params.n / 2) % lanes != 0,
                    "compile: batchLanes must divide the slot count " +
                        std::to_string(params.n / 2));
    FXHENN_FATAL_IF((params.n / 2) / lanes < 2,
                    "compile: batchLanes " + std::to_string(lanes) +
                        " leaves fewer than 2 virtual slots per request");
    // Dense-first networks pack the flat input contiguously (into the
    // per-request virtual slot space when batching).
    if (net.layer(0).kind() == nn::LayerKind::dense) {
        FXHENN_FATAL_IF(net.inputSize() > (params.n / 2) / lanes,
                        "dense-first input exceeds one ciphertext");
    }
    PlanBuilder builder(net, params, options);
    HeNetworkPlan plan = builder.build();
    applyBatchStride(plan, lanes);
    if (options.rescaleWaterline)
        rewriteRescales(plan); // certified: no-op unless provably safe
    if (options.selfCheck)
        runPlanVerifier(plan, "compile");
    if (options.certifyNoise) {
        const NoiseCertificate cert = certifyPlan(plan);
        FXHENN_FATAL_IF(!cert.valid,
                        "compile: noise certification failed for '" +
                            plan.name + "': " + cert.invalidReason);
        FXHENN_FATAL_IF(
            !cert.certified(),
            "compile: plan '" + plan.name +
                "' is not noise-safe: certified minimum headroom " +
                std::to_string(cert.minHeadroomBits) +
                " bits is negative (the message can overflow the "
                "modulus; use more levels or wider primes)");
    }
    return plan;
}

} // namespace fxhenn::hecnn
