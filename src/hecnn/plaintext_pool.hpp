/**
 * @file
 * Precomputed pool of encoded scheme-scale plaintexts for one plan.
 *
 * Every pcMult instruction references a PlanPlaintext that encodes at
 * the fixed scheme scale Delta and a fixed level, so its encoding is
 * identical for every request. The pool encodes each such plaintext
 * exactly once at build time and is then shared read-only by all
 * concurrent PlanExecutors — replacing the per-Runtime lazy
 * std::map cache, which both re-encoded per Runtime object and could
 * not be shared across threads.
 *
 * pcAdd (bias) plaintexts encode at the *current ciphertext scale*,
 * which depends on run state, so they are intentionally not pooled.
 */
#ifndef FXHENN_HECNN_PLAINTEXT_POOL_HPP
#define FXHENN_HECNN_PLAINTEXT_POOL_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "src/ckks/context.hpp"
#include "src/ckks/plaintext.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/** Immutable pt_id -> encoded Plaintext table for one plan. */
class PlaintextPool
{
  public:
    PlaintextPool() = default;

    /**
     * Encode every scheme-scale plaintext any pcMult instruction of
     * @p plan references. Encoding is data-parallel over the distinct
     * pt_ids (the encoder is re-entrant).
     */
    PlaintextPool(const HeNetworkPlan &plan,
                  const ckks::CkksContext &context);

    /** The pooled encoding of @p pt_id (must be a pooled id). */
    const ckks::Plaintext &at(std::int32_t pt_id) const;

    /** @return true when @p pt_id was pooled at build time. */
    bool contains(std::int32_t pt_id) const;

    /** Number of pooled plaintexts. */
    std::size_t size() const { return count_; }

    /** Approximate resident bytes of the pooled polynomials. */
    std::size_t bytes() const { return bytes_; }

  private:
    std::vector<std::optional<ckks::Plaintext>> pool_;
    std::size_t count_ = 0;
    std::size_t bytes_ = 0;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_PLAINTEXT_POOL_HPP
