#include "src/hecnn/rescale_rewriter.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "src/hecnn/plan_check.hpp"
#include "src/modarith/primes.hpp"

namespace fxhenn::hecnn {

namespace {

/** Simulated register state over the *emitted* instruction stream. */
struct SimReg
{
    bool written = false;
    std::size_t level = 0;
    double scale = 0.0;
};

bool
scalesMatch(double a, double b)
{
    const double ratio = a / b;
    return ratio > 0.99 && ratio < 1.01;
}

/**
 * Per-layer live-out sets by backward dataflow: liveOut[i] holds the
 * registers whose values layer i must leave in their original
 * (post-rescale) state because a later layer reads them or the plan's
 * final output decodes them.
 */
std::vector<std::set<std::int32_t>>
computeLiveOut(const HeNetworkPlan &plan)
{
    std::vector<std::set<std::int32_t>> liveOut(plan.layers.size());
    std::set<std::int32_t> live(plan.outputLayout.regs.begin(),
                                plan.outputLayout.regs.end());
    for (std::size_t i = plan.layers.size(); i-- > 0;) {
        liveOut[i] = live;
        const auto &instrs = plan.layers[i].instrs;
        for (std::size_t j = instrs.size(); j-- > 0;) {
            const HeInstr &in = instrs[j];
            if (in.kind != HeOpKind::ccAdd)
                live.erase(in.dst); // pure definition
            live.insert(in.src);
            if (in.kind == HeOpKind::ccAdd)
                live.insert(in.dst); // dst is read too
        }
    }
    return liveOut;
}

/** The sinking pass itself; produces a rewritten copy of the plan. */
struct Sinker
{
    const HeNetworkPlan &plan;
    std::vector<double> primes; ///< exact q_i as doubles
    std::vector<SimReg> sim;
    std::vector<bool> pending; ///< register owes one deferred rescale
    std::vector<HeInstr> *out = nullptr;

    explicit Sinker(const HeNetworkPlan &p) : plan(p)
    {
        const auto raw = generateNttPrimes(
            p.params.qBits, p.params.n, p.params.levels);
        primes.reserve(raw.size());
        for (const std::uint64_t q : raw)
            primes.push_back(static_cast<double>(q));
        sim.assign(static_cast<std::size_t>(
                       std::max(p.regCount, std::int32_t{0})),
                   SimReg{});
        pending.assign(sim.size(), false);
        for (std::size_t i = 0; i < p.inputGather.size(); ++i) {
            if (i >= sim.size())
                break;
            sim[i] = {true, p.params.levels, p.params.scale};
        }
    }

    bool
    inRange(std::int32_t r) const
    {
        return r >= 0 && r < static_cast<std::int32_t>(sim.size());
    }

    /** Apply one emitted instruction to the simulated state. */
    void
    apply(const HeInstr &in)
    {
        const SimReg src = sim[static_cast<std::size_t>(in.src)];
        SimReg &dst = sim[static_cast<std::size_t>(in.dst)];
        switch (in.kind) {
          case HeOpKind::pcMult:
            dst = src;
            dst.scale = src.scale * plan.params.scale;
            break;
          case HeOpKind::pcAdd:
            dst = src;
            break;
          case HeOpKind::ccAdd:
            break;
          case HeOpKind::ccMult:
            dst = src;
            dst.scale = src.scale * src.scale;
            break;
          case HeOpKind::rescale:
            dst = src;
            if (src.level >= 2) {
                dst.scale = src.scale / primes[src.level - 1];
                dst.level = src.level - 1;
            }
            break;
          case HeOpKind::relinearize:
          case HeOpKind::rotate:
          case HeOpKind::copy:
            dst = src;
            break;
        }
        dst.written = true;
    }

    void
    emit(const HeInstr &in)
    {
        out->push_back(in);
        apply(in);
    }

    /** Discharge the deferred rescale on @p r (emits `rescale r,r`). */
    void
    flush(std::int32_t r)
    {
        if (!inRange(r) || !pending[static_cast<std::size_t>(r)])
            return;
        pending[static_cast<std::size_t>(r)] = false;
        emit({HeOpKind::rescale, r, r, -1, 0});
    }

    /** Rewrite one layer; false = bail out (malformed instruction). */
    bool
    rewriteLayer(const HeLayerPlan &layer,
                 const std::set<std::int32_t> &liveOut,
                 std::vector<HeInstr> &rewritten)
    {
        out = &rewritten;
        for (const HeInstr &in : layer.instrs) {
            if (!inRange(in.dst) || !inRange(in.src))
                return false;
            const auto dst = static_cast<std::size_t>(in.dst);
            const auto src = static_cast<std::size_t>(in.src);

            if (in.kind == HeOpKind::rescale && in.dst == in.src) {
                // Defer. A register already owing a rescale discharges
                // it first so at most one is ever outstanding.
                if (pending[src])
                    flush(in.src);
                pending[src] = true;
                continue;
            }
            if (in.kind == HeOpKind::ccAdd) {
                if (pending[dst] && pending[src] &&
                    sim[dst].written && sim[src].written &&
                    sim[dst].level == sim[src].level &&
                    scalesMatch(sim[dst].scale, sim[src].scale)) {
                    // Both operands ride at the same pre-rescale
                    // state: add first, rescale the sum once later.
                    // This is the elimination that turns K rescales
                    // per accumulation into one.
                    emit(in);
                    continue;
                }
                flush(in.dst);
                flush(in.src);
                emit(in);
                continue;
            }
            if (in.kind == HeOpKind::rescale) {
                // rescale r_a, r_b with a != b: not a sinkable form;
                // pass it through against the flushed source.
                flush(in.src);
                pending[dst] = false; // dst overwritten
                emit(in);
                continue;
            }

            // Every other opcode reads src at its original state —
            // including rotate/relinearize, where deferral would run
            // the keyswitch at the higher level for no savings.
            flush(in.src);
            if (in.dst != in.src)
                pending[dst] = false; // pure overwrite kills the debt
            emit(in);
        }

        // Layer boundary: discharge what later layers (or the guard's
        // layer-end metadata check) can observe; drop debts on dead
        // registers — their rescale is the one we eliminated.
        std::set<std::int32_t> keep(layer.outputLayout.regs.begin(),
                                    layer.outputLayout.regs.end());
        if (keep.empty()) {
            // No declared outputs: the runtime guard then checks every
            // written register against levelOut, so flush them all.
            for (std::size_t r = 0; r < pending.size(); ++r)
                flush(static_cast<std::int32_t>(r));
        } else {
            keep.insert(liveOut.begin(), liveOut.end());
            for (std::size_t r = 0; r < pending.size(); ++r) {
                if (pending[r] &&
                    keep.count(static_cast<std::int32_t>(r)))
                    flush(static_cast<std::int32_t>(r));
                else
                    pending[r] = false;
            }
        }
        out = nullptr;
        return true;
    }
};

} // namespace

std::string
RewriteSummary::describe() const
{
    std::ostringstream oss;
    oss.precision(4);
    if (applied) {
        oss << "rescale rewrite applied: " << rescalesBefore << " -> "
            << rescalesAfter << " rescales, certified min headroom "
            << minHeadroomBefore << " -> " << minHeadroomAfter
            << " bits";
    } else {
        oss << "rescale rewrite not applied (" << reason
            << "); plan unchanged";
    }
    return oss.str();
}

RewriteSummary
rewriteRescales(HeNetworkPlan &plan, const CertifyOptions &copts)
{
    RewriteSummary summary;
    summary.rescalesBefore = plan.totalCounts().rescale;
    summary.rescalesAfter = summary.rescalesBefore;

    const NoiseCertificate before = certifyPlan(plan, copts);
    summary.minHeadroomBefore = before.minHeadroomBits;
    summary.minHeadroomAfter = before.minHeadroomBits;
    if (!before.valid) {
        summary.reason =
            "original plan did not certify: " + before.invalidReason;
        return summary;
    }

    HeNetworkPlan rewritten = plan;
    try {
        Sinker sinker(plan);
        const auto liveOut = computeLiveOut(plan);
        for (std::size_t i = 0; i < plan.layers.size(); ++i) {
            std::vector<HeInstr> instrs;
            instrs.reserve(plan.layers[i].instrs.size());
            if (!sinker.rewriteLayer(plan.layers[i], liveOut[i],
                                     instrs)) {
                summary.reason = "malformed instruction in layer " +
                                 plan.layers[i].name;
                return summary;
            }
            rewritten.layers[i].instrs = std::move(instrs);
            rewritten.layers[i].classify();
        }
    } catch (const std::exception &e) {
        summary.reason = e.what();
        return summary;
    }

    summary.rescalesAfter = rewritten.totalCounts().rescale;
    if (summary.rescalesAfter >= summary.rescalesBefore) {
        summary.reason = "no rescale could be eliminated";
        summary.rescalesAfter = summary.rescalesBefore;
        return summary;
    }

    const NoiseCertificate after = certifyPlan(rewritten, copts);
    summary.minHeadroomAfter = after.minHeadroomBits;
    if (!after.valid) {
        summary.reason =
            "rewritten plan did not certify: " + after.invalidReason;
        summary.rescalesAfter = summary.rescalesBefore;
        summary.minHeadroomAfter = summary.minHeadroomBefore;
        return summary;
    }
    if (after.minHeadroomBits < before.minHeadroomBits - 1e-9) {
        std::ostringstream oss;
        oss.precision(4);
        oss << "certified headroom would drop "
            << before.minHeadroomBits << " -> "
            << after.minHeadroomBits << " bits";
        summary.reason = oss.str();
        summary.rescalesAfter = summary.rescalesBefore;
        return summary;
    }
    if (planVerifierInstalled()) {
        try {
            runPlanVerifier(rewritten, "rescale-rewrite");
        } catch (const std::exception &e) {
            summary.reason =
                std::string("plan verifier rejected the rewrite: ") +
                e.what();
            summary.rescalesAfter = summary.rescalesBefore;
            summary.minHeadroomAfter = summary.minHeadroomBefore;
            return summary;
        }
    }

    plan = std::move(rewritten);
    summary.applied = true;
    return summary;
}

} // namespace fxhenn::hecnn
