/**
 * @file
 * Executes a compiled HeNetworkPlan on real CKKS ciphertexts.
 *
 * This is the functional-verification half of FxHENN: the same plan the
 * FPGA model analyses is run through the software evaluator so
 * encrypted inference can be compared slot-for-slot against plaintext
 * inference. It also plays the client role (packing + encryption of the
 * input, decryption + logit extraction of the output).
 */
#ifndef FXHENN_HECNN_RUNTIME_HPP
#define FXHENN_HECNN_RUNTIME_HPP

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/evaluator.hpp"
#include "src/ckks/keygen.hpp"
#include "src/hecnn/plan.hpp"
#include "src/hecnn/stats.hpp"
#include "src/nn/tensor.hpp"

namespace fxhenn::hecnn {

/** Client + server runtime for one compiled HE-CNN. */
class Runtime
{
  public:
    /**
     * Generate all key material (public, relinearization, and the
     * Galois keys for every rotation step the plan uses).
     */
    Runtime(const HeNetworkPlan &plan, const ckks::CkksContext &context,
            std::uint64_t seed = 1);

    /**
     * Full encrypted inference: pack + encrypt @p input, execute every
     * layer homomorphically, decrypt and extract the logits.
     */
    std::vector<double> infer(const nn::Tensor &input);

    /** Executed-operation counters from the last inference. */
    const ckks::OpCounts &executedCounts() const;

    /**
     * Measured per-layer statistics of the last infer(): wall time and
     * executed-op breakdown. Always collected (the cost is two clock
     * reads per layer); also mirrored into the telemetry registry as
     * "hecnn.layer.<name>.ns" histograms when telemetry is enabled.
     */
    const std::vector<MeasuredLayerStats> &lastLayerStats() const
    {
        return layerStats_;
    }

    /** Number of Galois keys generated (rotation key footprint). */
    std::size_t galoisKeyCount() const { return galois_.keys.size(); }

  private:
    /** Pack the input tensor into per-register slot vectors. */
    std::vector<std::vector<double>> packInput(
        const nn::Tensor &input) const;

    /** Encode (with caching for scheme-scale plaintexts). */
    const ckks::Plaintext &encodePooled(std::int32_t pt_id);

    void execute(const HeLayerPlan &layer);

    const HeNetworkPlan &plan_;
    const ckks::CkksContext &context_;
    Rng rng_;
    ckks::KeyGenerator keygen_;
    ckks::Encoder encoder_;
    ckks::Encryptor encryptor_;
    ckks::Decryptor decryptor_;
    ckks::Evaluator evaluator_;
    ckks::RelinKey relin_;
    ckks::GaloisKeys galois_;

    std::vector<std::optional<ckks::Ciphertext>> regs_;
    std::map<std::int32_t, ckks::Plaintext> plaintextCache_;
    std::vector<MeasuredLayerStats> layerStats_;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_RUNTIME_HPP
