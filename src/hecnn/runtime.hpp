/**
 * @file
 * Single-tenant façade over the layered inference engine.
 *
 * Historically Runtime fused the client role (keygen, packing,
 * encrypt/decrypt) and the server role (plan interpretation) into one
 * monolith. Those now live in ClientSession and PlanExecutor; Runtime
 * composes them behind the original API so the verification loop, the
 * guard simulation, the examples and the tests keep working unchanged.
 * Concurrent batched inference over the same split lives in
 * engine::InferenceEngine (src/engine).
 *
 * Each infer() call consumes the next per-request noise stream
 * (request index 0, 1, 2, ...), so N serial infer() calls produce
 * bitwise the same logits as the engine running the same N inputs on
 * any number of workers with the same key seed.
 */
#ifndef FXHENN_HECNN_RUNTIME_HPP
#define FXHENN_HECNN_RUNTIME_HPP

#include <memory>
#include <optional>
#include <vector>

#include "src/hecnn/client_session.hpp"
#include "src/hecnn/plan_executor.hpp"
#include "src/hecnn/plaintext_pool.hpp"
#include "src/hecnn/stats.hpp"
#include "src/nn/tensor.hpp"
#include "src/robustness/guard.hpp"

namespace fxhenn::hecnn {

/**
 * Outcome of one guarded encrypted inference. Either `logits` holds
 * the decrypted result, or `failure` explains why the run was aborted
 * (GuardPolicy::degrade) — never garbage logits.
 */
struct InferOutcome
{
    std::vector<double> logits;
    std::optional<robustness::FailureReport> failure;
    /** Predicted per-layer noise-budget trajectory. */
    std::vector<robustness::BudgetSample> budget;
    /** Registry name of the execution backend that ran the request. */
    std::string backendName;
    /** HE ops the backend dispatched for this request. */
    std::uint64_t opsExecuted = 0;
    /** Per-layer simulated-latency timeline (empty unless the backend
     * simulates hardware, e.g. "fpga-sim"). */
    std::vector<SimLayerLatency> simulated;

    bool degraded() const { return failure.has_value(); }

    /** Total simulated seconds across the timeline (0 when empty). */
    double
    simulatedSeconds() const
    {
        double total = 0.0;
        for (const auto &row : simulated)
            total += row.simulatedSeconds;
        return total;
    }
};

/** Client + server runtime for one compiled HE-CNN. */
class Runtime
{
  public:
    /**
     * Generate all key material (public, relinearization, and the
     * Galois keys for every rotation step the plan uses) and build the
     * shared plaintext pool. @p guard selects what happens when a
     * runtime invariant breaks; the default (warn) preserves the
     * historical behavior.
     */
    Runtime(const HeNetworkPlan &plan, const ckks::CkksContext &context,
            std::uint64_t seed = 1,
            robustness::GuardOptions guard = {}, ExecOptions exec = {});

    /**
     * Full encrypted inference: pack + encrypt @p input, execute every
     * layer homomorphically, decrypt and extract the logits. Throws
     * InternalError if the run degrades (use inferGuarded() for the
     * structured report).
     */
    std::vector<double> infer(const nn::Tensor &input);

    /**
     * Like infer(), but under GuardPolicy::degrade a guard violation
     * aborts the encrypted run at the failing layer and returns a
     * FailureReport (with the headroom trajectory) instead of garbage
     * logits. ConfigError/InternalError thrown mid-layer are converted
     * into the report too, so a degraded run never escapes as an
     * exception.
     */
    InferOutcome inferGuarded(const nn::Tensor &input);

    /**
     * Measured headroom of the output registers after the last
     * inference: min over output ciphertexts of
     * ckks::headroomBits(). Negative means the logits are garbage.
     */
    double outputHeadroomBits() const;

    /** Executed-operation counters from the last inference. */
    const ckks::OpCounts &executedCounts() const { return lastCounts_; }

    /**
     * Measured per-layer statistics of the last infer(): wall time and
     * executed-op breakdown. Always collected (the cost is two clock
     * reads per layer); also mirrored into the telemetry registry as
     * "hecnn.layer.<name>.ns" histograms when telemetry is enabled.
     */
    const std::vector<MeasuredLayerStats> &lastLayerStats() const
    {
        return lastLayerStats_;
    }

    /** Simulated-latency timeline of the last inference (empty unless
     * the executor runs a hardware-simulating backend). */
    const std::vector<SimLayerLatency> &lastSimulatedLatency() const
    {
        return lastSimulated_;
    }

    /** Registry name of the executor's backend. */
    const std::string &backendName() const
    {
        return executor_.backend().name();
    }

    /** Number of Galois keys generated (rotation key footprint). */
    std::size_t galoisKeyCount() const
    {
        return session_.galoisKeyCount();
    }

    /** The client half (key material, packing, encrypt/decrypt). */
    const ClientSession &session() const { return session_; }

    /** The server half (stateless plan interpreter). */
    const PlanExecutor &executor() const { return executor_; }

  private:
    ClientSession session_;
    PlaintextPool pool_;
    PlanExecutor executor_;
    std::uint64_t nextRequest_ = 0;
    ckks::OpCounts lastCounts_;
    std::vector<MeasuredLayerStats> lastLayerStats_;
    std::vector<SimLayerLatency> lastSimulated_;
    std::vector<std::optional<ckks::Ciphertext>> lastRegs_;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_RUNTIME_HPP
