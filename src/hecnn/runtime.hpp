/**
 * @file
 * Executes a compiled HeNetworkPlan on real CKKS ciphertexts.
 *
 * This is the functional-verification half of FxHENN: the same plan the
 * FPGA model analyses is run through the software evaluator so
 * encrypted inference can be compared slot-for-slot against plaintext
 * inference. It also plays the client role (packing + encryption of the
 * input, decryption + logit extraction of the output).
 */
#ifndef FXHENN_HECNN_RUNTIME_HPP
#define FXHENN_HECNN_RUNTIME_HPP

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/evaluator.hpp"
#include "src/ckks/keygen.hpp"
#include "src/hecnn/guard.hpp"
#include "src/hecnn/plan.hpp"
#include "src/hecnn/stats.hpp"
#include "src/nn/tensor.hpp"
#include "src/robustness/guard.hpp"

namespace fxhenn::hecnn {

/**
 * Outcome of one guarded encrypted inference. Either `logits` holds
 * the decrypted result, or `failure` explains why the run was aborted
 * (GuardPolicy::degrade) — never garbage logits.
 */
struct InferOutcome
{
    std::vector<double> logits;
    std::optional<robustness::FailureReport> failure;
    /** Predicted per-layer noise-budget trajectory. */
    std::vector<robustness::BudgetSample> budget;

    bool degraded() const { return failure.has_value(); }
};

/** Client + server runtime for one compiled HE-CNN. */
class Runtime
{
  public:
    /**
     * Generate all key material (public, relinearization, and the
     * Galois keys for every rotation step the plan uses). @p guard
     * selects what happens when a runtime invariant breaks; the
     * default (warn) preserves the historical behavior.
     */
    Runtime(const HeNetworkPlan &plan, const ckks::CkksContext &context,
            std::uint64_t seed = 1,
            robustness::GuardOptions guard = {});

    /**
     * Full encrypted inference: pack + encrypt @p input, execute every
     * layer homomorphically, decrypt and extract the logits. Throws
     * InternalError if the run degrades (use inferGuarded() for the
     * structured report).
     */
    std::vector<double> infer(const nn::Tensor &input);

    /**
     * Like infer(), but under GuardPolicy::degrade a guard violation
     * aborts the encrypted run at the failing layer and returns a
     * FailureReport (with the headroom trajectory) instead of garbage
     * logits. ConfigError/InternalError thrown mid-layer are converted
     * into the report too, so a degraded run never escapes as an
     * exception.
     */
    InferOutcome inferGuarded(const nn::Tensor &input);

    /**
     * Measured headroom of the output registers after the last
     * inference: min over output ciphertexts of
     * ckks::headroomBits(). Negative means the logits are garbage.
     */
    double outputHeadroomBits() const;

    /** Executed-operation counters from the last inference. */
    const ckks::OpCounts &executedCounts() const;

    /**
     * Measured per-layer statistics of the last infer(): wall time and
     * executed-op breakdown. Always collected (the cost is two clock
     * reads per layer); also mirrored into the telemetry registry as
     * "hecnn.layer.<name>.ns" histograms when telemetry is enabled.
     */
    const std::vector<MeasuredLayerStats> &lastLayerStats() const
    {
        return layerStats_;
    }

    /** Number of Galois keys generated (rotation key footprint). */
    std::size_t galoisKeyCount() const { return galois_.keys.size(); }

  private:
    /** Pack the input tensor into per-register slot vectors. */
    std::vector<std::vector<double>> packInput(
        const nn::Tensor &input) const;

    /** Encode (with caching for scheme-scale plaintexts). */
    const ckks::Plaintext &encodePooled(std::int32_t pt_id);

    void execute(const HeLayerPlan &layer);

    /** Dispatch a guard violation according to the active policy. */
    void guardViolation(const std::string &layer, const char *op,
                        const std::string &reason);

    const HeNetworkPlan &plan_;
    const ckks::CkksContext &context_;
    Rng rng_;
    ckks::KeyGenerator keygen_;
    ckks::Encoder encoder_;
    ckks::Encryptor encryptor_;
    ckks::Decryptor decryptor_;
    ckks::Evaluator evaluator_;
    ckks::RelinKey relin_;
    ckks::GaloisKeys galois_;

    std::vector<std::optional<ckks::Ciphertext>> regs_;
    std::map<std::int32_t, ckks::Plaintext> plaintextCache_;
    std::vector<MeasuredLayerStats> layerStats_;
    RuntimeGuard guard_;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_RUNTIME_HPP
