#include "src/hecnn/runtime.hpp"

#include "src/common/assert.hpp"

namespace fxhenn::hecnn {

Runtime::Runtime(const HeNetworkPlan &plan,
                 const ckks::CkksContext &context, std::uint64_t seed,
                 robustness::GuardOptions guard, ExecOptions exec)
    : session_(plan, context, seed), pool_(plan, context),
      executor_(plan, context, session_.relinKey(),
                session_.galoisKeys(), pool_, guard, exec)
{}

InferOutcome
Runtime::inferGuarded(const nn::Tensor &input)
{
    auto result =
        executor_.execute(session_.encryptInput(input, nextRequest_++));
    lastCounts_ = result.executed;
    lastLayerStats_ = std::move(result.layerStats);
    lastSimulated_ = result.simulated;
    lastRegs_ = std::move(result.regs);

    InferOutcome out;
    out.budget = std::move(result.budget);
    out.backendName = std::move(result.backendName);
    out.opsExecuted = result.executed.total();
    out.simulated = std::move(result.simulated);
    if (result.failure) {
        out.failure = std::move(result.failure);
        return out; // degraded: no decryption, no garbage logits
    }
    out.logits = session_.decryptLogits(lastRegs_);
    return out;
}

std::vector<double>
Runtime::infer(const nn::Tensor &input)
{
    auto out = inferGuarded(input);
    if (out.failure)
        FXHENN_PANIC_IF(true, "encrypted inference degraded at layer " +
                                  out.failure->layer + ": " +
                                  out.failure->reason);
    return std::move(out.logits);
}

double
Runtime::outputHeadroomBits() const
{
    return session_.outputHeadroomBits(lastRegs_);
}

} // namespace fxhenn::hecnn
