#include "src/hecnn/runtime.hpp"

#include <iostream>
#include <limits>
#include <set>

#include "src/ckks/noise.hpp"
#include "src/common/assert.hpp"
#include "src/common/timer.hpp"
#include "src/robustness/fault_injection.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::hecnn {

namespace {

/**
 * Internal control-flow signal for GuardPolicy::degrade: thrown by
 * guardViolation(), caught in inferGuarded(), never escapes.
 */
struct DegradeSignal
{
    robustness::FailureReport report;
};

} // namespace

Runtime::Runtime(const HeNetworkPlan &plan,
                 const ckks::CkksContext &context, std::uint64_t seed,
                 robustness::GuardOptions guard)
    : plan_(plan), context_(context), rng_(seed), keygen_(context, rng_),
      encoder_(context), encryptor_(context, keygen_.makePublicKey(),
                                    rng_),
      decryptor_(context, keygen_.secretKey()), evaluator_(context),
      relin_(keygen_.makeRelinKey()), guard_(plan, context, guard)
{
    FXHENN_FATAL_IF(plan.valuesElided,
                    "plan was compiled with elideValues=true and "
                    "cannot be executed");
    for (std::int32_t step : plan.rotationSteps())
        keygen_.addGaloisKey(galois_, step);
    regs_.resize(static_cast<std::size_t>(plan.regCount));
}

std::vector<std::vector<double>>
Runtime::packInput(const nn::Tensor &input) const
{
    const std::size_t slots = context_.slots();
    std::vector<std::vector<double>> packed;
    packed.reserve(plan_.inputGather.size());
    for (const auto &gather : plan_.inputGather) {
        std::vector<double> v(slots, 0.0);
        for (std::size_t s = 0; s < slots; ++s) {
            if (gather[s] >= 0)
                v[s] = input.data()[static_cast<std::size_t>(gather[s])];
        }
        packed.push_back(std::move(v));
    }
    return packed;
}

const ckks::Plaintext &
Runtime::encodePooled(std::int32_t pt_id)
{
    auto it = plaintextCache_.find(pt_id);
    if (it != plaintextCache_.end())
        return it->second;
    const PlanPlaintext &pt =
        plan_.plaintexts[static_cast<std::size_t>(pt_id)];
    FXHENN_ASSERT(pt.atSchemeScale,
                  "only scheme-scale plaintexts are cacheable");
    auto encoded = encoder_.encode(std::span<const double>(pt.values),
                                   context_.params().scale, pt.level);
    return plaintextCache_.emplace(pt_id, std::move(encoded))
        .first->second;
}

void
Runtime::guardViolation(const std::string &layer, const char *op,
                        const std::string &reason)
{
    FXHENN_TELEM_COUNT("robustness.guard.violations", 1);
    switch (guard_.options().policy) {
      case robustness::GuardPolicy::strict:
        FXHENN_PANIC_IF(true, "guard: " + reason + " (layer " + layer +
                                  ", op " + std::string(op) + ")");
        break;
      case robustness::GuardPolicy::warn:
        std::cerr << "fxhenn guard warning: " << reason << " (layer "
                  << layer << ", op " << op << ")\n";
        break;
      case robustness::GuardPolicy::degrade: {
        robustness::FailureReport report;
        report.layer = layer;
        report.op = op;
        report.reason = reason;
        report.trajectory = guard_.trajectory();
        throw DegradeSignal{std::move(report)};
      }
    }
}

void
Runtime::execute(const HeLayerPlan &layer)
{
    auto reg = [&](std::int32_t id) -> ckks::Ciphertext & {
        auto &slot = regs_[static_cast<std::size_t>(id)];
        FXHENN_ASSERT(slot.has_value(), "read of unwritten register");
        return *slot;
    };

    for (const auto &instr : layer.instrs) {
        if (auto reason = guard_.preCheck(instr))
            guardViolation(layer.name, opName(instr.kind), *reason);
        switch (instr.kind) {
          case HeOpKind::pcMult: {
            const auto &pt = encodePooled(instr.pt);
            regs_[static_cast<std::size_t>(instr.dst)] =
                evaluator_.mulPlain(reg(instr.src), pt);
            break;
          }
          case HeOpKind::pcAdd: {
            // Bias adds encode at the ciphertext's current scale.
            const PlanPlaintext &pool =
                plan_.plaintexts[static_cast<std::size_t>(instr.pt)];
            ckks::Ciphertext &target = reg(instr.src);
            const auto encoded = encoder_.encode(
                std::span<const double>(pool.values), target.scale,
                target.level());
            regs_[static_cast<std::size_t>(instr.dst)] =
                evaluator_.addPlain(target, encoded);
            break;
          }
          case HeOpKind::ccAdd:
            evaluator_.addInplace(reg(instr.dst), reg(instr.src));
            break;
          case HeOpKind::ccMult: {
            const ckks::Ciphertext &src = reg(instr.src);
            regs_[static_cast<std::size_t>(instr.dst)] =
                evaluator_.mulNoRelin(src, src);
            break;
          }
          case HeOpKind::relinearize:
            regs_[static_cast<std::size_t>(instr.dst)] =
                evaluator_.relinearize(reg(instr.src), relin_);
            break;
          case HeOpKind::rescale:
            if (instr.dst == instr.src) {
                evaluator_.rescaleInplace(reg(instr.dst));
            } else {
                regs_[static_cast<std::size_t>(instr.dst)] =
                    evaluator_.rescale(reg(instr.src));
            }
            break;
          case HeOpKind::rotate:
            regs_[static_cast<std::size_t>(instr.dst)] =
                evaluator_.rotate(reg(instr.src), instr.step, galois_);
            break;
          case HeOpKind::copy:
            regs_[static_cast<std::size_t>(instr.dst)] = reg(instr.src);
            break;
        }
        guard_.apply(instr);
    }
}

InferOutcome
Runtime::inferGuarded(const nn::Tensor &input)
{
    evaluator_.resetCounts();
    layerStats_.clear();
    layerStats_.reserve(plan_.layers.size());
    FXHENN_TELEM_SCOPED_TIMER("hecnn.infer.ns");
    FXHENN_TELEM_COUNT("hecnn.inferences", 1);
    guard_.beginInfer();
    InferOutcome out;

    // Client: pack, encode, encrypt into the input registers.
    const auto packed = packInput(input);
    for (std::size_t i = 0; i < packed.size(); ++i) {
        const auto plain =
            encoder_.encode(std::span<const double>(packed[i]),
                            context_.params().scale,
                            context_.maxLevel());
        regs_[i] = encryptor_.encrypt(plain);
    }

    // Server: run every layer, recording wall time and the delta of
    // the evaluator's op counters across each layer. Under
    // GuardPolicy::degrade any violation (or a mid-layer
    // ConfigError/InternalError) aborts the run with a report instead
    // of propagating or producing garbage.
    const bool degrade = guard_.options().policy ==
                         robustness::GuardPolicy::degrade;
    for (const auto &layer : plan_.layers) {
        try {
            if (auto fault = robustness::fireFault("ciphertext.limb")) {
                for (auto &slot : regs_) {
                    if (slot.has_value() && !slot->parts.empty()) {
                        robustness::corruptResidues(slot->parts[0],
                                                    fault->seed);
                        break;
                    }
                }
            }
            const ckks::OpCounts before = evaluator_.counts();
            Timer timer;
            execute(layer);
            MeasuredLayerStats row;
            row.name = layer.name;
            row.seconds = timer.elapsedSeconds();
            const ckks::OpCounts &after = evaluator_.counts();
            row.executed.ccAdd = after.ccAdd - before.ccAdd;
            row.executed.pcAdd = after.pcAdd - before.pcAdd;
            row.executed.pcMult = after.pcMult - before.pcMult;
            row.executed.ccMult = after.ccMult - before.ccMult;
            row.executed.rescale = after.rescale - before.rescale;
            row.executed.relinearize =
                after.relinearize - before.relinearize;
            row.executed.rotate = after.rotate - before.rotate;
            if (telemetry::enabled()) {
                telemetry::histogram("hecnn.layer." + layer.name +
                                     ".ns")
                    .record(static_cast<std::uint64_t>(row.seconds *
                                                       1e9));
            }
            layerStats_.push_back(std::move(row));
            if (auto reason = guard_.checkLayerEnd(layer, regs_))
                guardViolation(layer.name, "layer-end", *reason);
        } catch (DegradeSignal &sig) {
            out.failure = std::move(sig.report);
        } catch (const ConfigError &e) {
            if (!degrade)
                throw;
            robustness::FailureReport report;
            report.layer = layer.name;
            report.op = "exception";
            report.reason = e.what();
            report.trajectory = guard_.trajectory();
            out.failure = std::move(report);
        } catch (const InternalError &e) {
            if (!degrade)
                throw;
            robustness::FailureReport report;
            report.layer = layer.name;
            report.op = "exception";
            report.reason = e.what();
            report.trajectory = guard_.trajectory();
            out.failure = std::move(report);
        }
        if (out.failure)
            break;
    }
    out.budget = guard_.trajectory();
    if (out.failure) {
        FXHENN_TELEM_COUNT("robustness.guard.degraded_runs", 1);
        return out; // degraded: no decryption, no garbage logits
    }

    // Client: decrypt the output registers once each, extract logits.
    std::map<std::int32_t, std::vector<double>> decoded;
    std::vector<double> logits(plan_.outputLayout.elements(), 0.0);
    for (std::size_t e = 0; e < logits.size(); ++e) {
        const auto [reg_id, slot] = plan_.outputLayout.pos[e];
        auto it = decoded.find(reg_id);
        if (it == decoded.end()) {
            auto &ct = regs_[static_cast<std::size_t>(reg_id)];
            FXHENN_ASSERT(ct.has_value(), "output register unwritten");
            it = decoded
                     .emplace(reg_id, encoder_.decodeReal(
                                          decryptor_.decrypt(*ct)))
                     .first;
        }
        logits[e] = it->second[static_cast<std::size_t>(slot)];
    }
    out.logits = std::move(logits);
    return out;
}

std::vector<double>
Runtime::infer(const nn::Tensor &input)
{
    auto out = inferGuarded(input);
    if (out.failure)
        FXHENN_PANIC_IF(true, "encrypted inference degraded at layer " +
                                  out.failure->layer + ": " +
                                  out.failure->reason);
    return std::move(out.logits);
}

double
Runtime::outputHeadroomBits() const
{
    double headroom = std::numeric_limits<double>::infinity();
    std::set<std::int32_t> seen;
    for (const auto &pos : plan_.outputLayout.pos) {
        const std::int32_t reg_id = pos.first;
        if (!seen.insert(reg_id).second)
            continue;
        const auto &ct = regs_[static_cast<std::size_t>(reg_id)];
        FXHENN_ASSERT(ct.has_value(), "output register unwritten");
        headroom = std::min(
            headroom, ckks::headroomBits(*ct, context_, decryptor_));
    }
    return headroom;
}

const ckks::OpCounts &
Runtime::executedCounts() const
{
    return evaluator_.counts();
}

} // namespace fxhenn::hecnn
