#include "src/hecnn/plan.hpp"

#include "src/common/assert.hpp"

namespace fxhenn::hecnn {

const char *
opModuleLabel(HeOpKind kind)
{
    switch (kind) {
      case HeOpKind::ccAdd:
      case HeOpKind::pcAdd:
        return "OP1";
      case HeOpKind::pcMult:
        return "OP2";
      case HeOpKind::ccMult:
        return "OP3";
      case HeOpKind::rescale:
        return "OP4";
      case HeOpKind::relinearize:
      case HeOpKind::rotate:
        return "OP5";
      case HeOpKind::copy:
        return "-";
    }
    return "?";
}

const char *
opName(HeOpKind kind)
{
    switch (kind) {
      case HeOpKind::pcMult:
        return "PCmult";
      case HeOpKind::pcAdd:
        return "PCadd";
      case HeOpKind::ccAdd:
        return "CCadd";
      case HeOpKind::ccMult:
        return "CCmult";
      case HeOpKind::relinearize:
        return "Relinearize";
      case HeOpKind::rescale:
        return "Rescale";
      case HeOpKind::rotate:
        return "Rotate";
      case HeOpKind::copy:
        return "Copy";
    }
    return "?";
}

bool
SlotLayout::isContiguousSingleReg() const
{
    if (regs.size() != 1)
        return false;
    for (std::size_t e = 0; e < pos.size(); ++e) {
        if (pos[e].first != regs[0] ||
            pos[e].second != static_cast<std::int32_t>(e)) {
            return false;
        }
    }
    return true;
}

std::uint64_t
HeLayerPlan::kindCount(HeOpKind kind) const
{
    if (counted_)
        return kindCounts_[static_cast<std::size_t>(kind)];
    // A plan built by hand (or mutated) without calling classify():
    // recount instead of reporting zeros, but into a local — writing
    // the member here would data-race once two executors share the
    // plan. cls stays untouched on this path by design.
    std::uint64_t n = 0;
    for (const auto &instr : instrs) {
        if (instr.kind == kind)
            ++n;
    }
    return n;
}

HeOpCounts
HeLayerPlan::counts() const
{
    HeOpCounts c;
    c.ccAdd = kindCount(HeOpKind::ccAdd) + kindCount(HeOpKind::pcAdd);
    c.pcMult = kindCount(HeOpKind::pcMult);
    c.ccMult = kindCount(HeOpKind::ccMult);
    c.rescale = kindCount(HeOpKind::rescale);
    c.relin = kindCount(HeOpKind::relinearize);
    c.rotate = kindCount(HeOpKind::rotate);
    return c;
}

void
HeLayerPlan::classify()
{
    kindCounts_ = {};
    for (const auto &instr : instrs)
        ++kindCounts_[static_cast<std::size_t>(instr.kind)];
    counted_ = true;
    cls = counts().keySwitch() > 0 ? LayerClass::ks : LayerClass::nks;
}

HeOpCounts
HeNetworkPlan::totalCounts() const
{
    HeOpCounts total;
    for (const auto &layer : layers) {
        const HeOpCounts c = layer.counts();
        total.ccAdd += c.ccAdd;
        total.pcMult += c.pcMult;
        total.ccMult += c.ccMult;
        total.rescale += c.rescale;
        total.relin += c.relin;
        total.rotate += c.rotate;
    }
    return total;
}

std::set<std::int32_t>
HeNetworkPlan::rotationSteps() const
{
    std::set<std::int32_t> steps;
    for (const auto &layer : layers) {
        for (const auto &instr : layer.instrs) {
            if (instr.kind == HeOpKind::rotate && instr.step != 0)
                steps.insert(instr.step);
        }
    }
    return steps;
}

std::size_t
HeNetworkPlan::depth() const
{
    FXHENN_ASSERT(!layers.empty(), "empty plan");
    return layers.front().levelIn - layers.back().levelOut;
}

} // namespace fxhenn::hecnn
