#include "src/hecnn/backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/modarith/simd_dispatch.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::hecnn {

namespace {

/**
 * The host-CPU op path: a per-run Evaluator plus the evaluation keys
 * borrowed from the run context. This is the bitwise reference every
 * other backend is tested against, and the delegation target of
 * accounting-only backends (makeCpuBackendRun()).
 */
class CpuBackendRun : public BackendRun
{
  public:
    explicit CpuBackendRun(const BackendRunContext &ctx)
        : evaluator_(*ctx.context, ctx.kswMode), relin_(ctx.relin),
          galois_(ctx.galois)
    {}

    ckks::Ciphertext
    mulPlain(const ckks::Ciphertext &a, const ckks::Plaintext &p)
        override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        return evaluator_.mulPlain(a, p);
    }

    ckks::Ciphertext
    addPlain(const ckks::Ciphertext &a, const ckks::Plaintext &p)
        override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        return evaluator_.addPlain(a, p);
    }

    void
    addInplace(ckks::Ciphertext &dst, const ckks::Ciphertext &src)
        override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        evaluator_.addInplace(dst, src);
    }

    ckks::Ciphertext
    mulNoRelin(const ckks::Ciphertext &a, const ckks::Ciphertext &b)
        override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        return evaluator_.mulNoRelin(a, b);
    }

    ckks::Ciphertext
    relinearize(const ckks::Ciphertext &a) override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        return evaluator_.relinearize(a, *relin_);
    }

    ckks::Ciphertext
    rescale(const ckks::Ciphertext &a) override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        return evaluator_.rescale(a);
    }

    void
    rescaleInplace(ckks::Ciphertext &a) override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        evaluator_.rescaleInplace(a);
    }

    ckks::Ciphertext
    rotate(const ckks::Ciphertext &a, int step) override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        return evaluator_.rotate(a, step, *galois_);
    }

    std::vector<ckks::Ciphertext>
    rotateHoisted(const ckks::Ciphertext &a,
                  const std::vector<int> &steps) override
    {
        FXHENN_TELEM_COUNT("backend.dispatches", 1);
        return evaluator_.rotateHoisted(a, steps, *galois_);
    }

    const ckks::OpCounts &
    counts() const override
    {
        return evaluator_.counts();
    }

  private:
    ckks::Evaluator evaluator_;
    const ckks::RelinKey *relin_;
    const ckks::GaloisKeys *galois_;
};

class CpuBackend : public ExecutionBackend
{
  public:
    const std::string &
    name() const override
    {
        static const std::string kName = "cpu";
        return kName;
    }

    std::unique_ptr<BackendRun>
    beginRun(const BackendRunContext &ctx) const override
    {
        return std::make_unique<CpuBackendRun>(ctx);
    }
};

/**
 * Differential-debugging reference: eager keyswitch reduction and
 * scalar kernels, regardless of what ExecOptions or FXHENN_SIMD asked
 * for. The scalar pin is process-global (the SIMD dispatch table is
 * one per process) and held for the backend instance's lifetime;
 * concurrent runs on other backends only slow down — all kernel
 * levels are bitwise identical, so results are unaffected.
 */
class CpuRefBackend : public ExecutionBackend
{
  public:
    const std::string &
    name() const override
    {
        static const std::string kName = "cpu-ref";
        return kName;
    }

    std::unique_ptr<BackendRun>
    beginRun(const BackendRunContext &ctx) const override
    {
        BackendRunContext eager = ctx;
        eager.kswMode = ckks::KswMode::eager;
        return std::make_unique<CpuBackendRun>(eager);
    }

  private:
    simd::ScopedLevel pin_{simd::Level::scalar};
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, BackendFactory> factories;
};

Registry &
registry()
{
    static Registry *instance = [] {
        auto *r = new Registry;
        r->factories.emplace("cpu", [] {
            return std::make_unique<CpuBackend>();
        });
        r->factories.emplace("cpu-ref", [] {
            return std::make_unique<CpuRefBackend>();
        });
        return r;
    }();
    return *instance;
}

bool
builtinName(const std::string &name)
{
    return name == "cpu" || name == "cpu-ref";
}

std::string
knownNames(const Registry &reg)
{
    std::ostringstream oss;
    bool first = true;
    for (const auto &[key, factory] : reg.factories) {
        (void)factory;
        oss << (first ? "" : ", ") << key;
        first = false;
    }
    return oss.str();
}

} // namespace

std::unique_ptr<BackendRun>
makeCpuBackendRun(const BackendRunContext &ctx)
{
    return std::make_unique<CpuBackendRun>(ctx);
}

bool
registerBackend(const std::string &name, BackendFactory factory)
{
    FXHENN_FATAL_IF(name.empty(),
                    "execution-backend name must not be empty");
    FXHENN_FATAL_IF(!factory,
                    "execution backend '" + name +
                        "' registered without a factory");
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.factories.emplace(name, std::move(factory)).second;
}

bool
unregisterBackend(const std::string &name)
{
    if (builtinName(name))
        return false;
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.factories.erase(name) > 0;
}

bool
backendRegistered(const std::string &name)
{
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.factories.count(name) > 0;
}

std::vector<std::string>
registeredBackendNames()
{
    auto &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.factories.size());
    for (const auto &[key, factory] : reg.factories) {
        (void)factory;
        names.push_back(key);
    }
    return names; // std::map iterates sorted
}

std::unique_ptr<ExecutionBackend>
createBackend(const std::string &name)
{
    BackendFactory factory;
    {
        auto &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        auto it = reg.factories.find(name);
        FXHENN_FATAL_IF(it == reg.factories.end(),
                        "unknown execution backend '" + name +
                            "' (registered: " + knownNames(reg) + ")");
        factory = it->second;
    }
    auto backend = factory();
    FXHENN_PANIC_IF(!backend, "backend factory for '" + name +
                                  "' returned null");
    FXHENN_PANIC_IF(backend->name() != name,
                    "backend factory for '" + name +
                        "' built a backend named '" + backend->name() +
                        "'");
    if (telemetry::enabled())
        telemetry::counter("backend.name." + name).add(1);
    return backend;
}

std::string
resolveBackendName(const std::string &requested)
{
    std::string name = requested;
    if (name.empty()) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe) resolved once up front
        const char *env = std::getenv("FXHENN_BACKEND");
        name = (env != nullptr) ? env : "";
    }
    if (name.empty())
        name = "cpu";
    {
        auto &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        FXHENN_FATAL_IF(reg.factories.count(name) == 0,
                        "unknown execution backend '" + name +
                            "' (registered: " + knownNames(reg) + ")");
    }
    return name;
}

} // namespace fxhenn::hecnn
