#include "src/hecnn/noise_cert.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <sstream>

#include "src/ckks/noise.hpp"
#include "src/common/assert.hpp"
#include "src/modarith/primes.hpp"

namespace fxhenn::hecnn {

namespace {

/** Abstract state of one ciphertext register. */
struct AbsReg
{
    bool written = false;
    std::size_t level = 0;  ///< effective level (after levelShift)
    double scale = 0.0;     ///< exact replay of the evaluator's double
    double noiseBits = 0.0; ///< log2 worst-case coefficient noise
};

std::string
fmtBits(double v)
{
    std::ostringstream oss;
    oss.precision(3);
    oss << v;
    return oss.str();
}

void
jsonEscapeInto(std::ostringstream &oss, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
          case '"': oss << "\\\""; break;
          case '\\': oss << "\\\\"; break;
          case '\n': oss << "\\n"; break;
          case '\t': oss << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                oss << buf;
            } else {
                oss << c;
            }
        }
    }
}

/** log2 bound on a plaintext's scaled slot values. */
double
ptSlotBits(const PlanPlaintext &pt, double ciphertextScale,
           double schemeScale)
{
    // The compiler records maxAbs even for elided plans (v3 streams);
    // a plan without it (legacy v2 elided stream) falls back to the
    // |v| <= 1.0 bound the zoo's normalized weights satisfy.
    double max_abs = pt.maxAbs;
    if (max_abs == 0.0) {
        if (!pt.values.empty())
            return -1074.0; // genuinely all-zero plaintext
        max_abs = 1.0;
    }
    const double enc_scale = pt.atSchemeScale ? schemeScale
                                              : ciphertextScale;
    return std::log2(enc_scale * max_abs);
}

struct Certifier
{
    const HeNetworkPlan &plan;
    const CertifyOptions &opts;
    const ckks::NoiseModel model;
    std::vector<AbsReg> regs;

    /** Interpret one instruction; returns an error string on abstract
     *  failure (out-of-range register, read-before-write, rescale at
     *  the chain floor). */
    std::optional<std::string>
    step(const HeInstr &instr)
    {
        const auto regCount = static_cast<std::int32_t>(regs.size());
        if (instr.dst < 0 || instr.dst >= regCount || instr.src < 0 ||
            instr.src >= regCount)
            return "instruction register out of range (dst r" +
                   std::to_string(instr.dst) + ", src r" +
                   std::to_string(instr.src) + ")";
        const AbsReg src = regs[static_cast<std::size_t>(instr.src)];
        AbsReg &dst = regs[static_cast<std::size_t>(instr.dst)];
        if (!src.written)
            return "read of unwritten register r" +
                   std::to_string(instr.src);

        const double scheme_scale = model.params().scale;
        switch (instr.kind) {
          case HeOpKind::pcMult: {
            if (instr.pt < 0 ||
                instr.pt >= static_cast<std::int32_t>(
                                plan.plaintexts.size()))
                return "plaintext index out of range (pt " +
                       std::to_string(instr.pt) + ")";
            const auto &pt =
                plan.plaintexts[static_cast<std::size_t>(instr.pt)];
            const double msg_bits =
                (src.scale > 0.0 ? std::log2(src.scale) : 0.0) +
                opts.messageBits;
            dst = src;
            dst.scale = src.scale * scheme_scale;
            dst.noiseBits = model.pcMultNoiseBits(
                src.noiseBits,
                ptSlotBits(pt, src.scale, scheme_scale), msg_bits);
            break;
          }
          case HeOpKind::pcAdd:
            dst = src;
            dst.noiseBits = model.pcAddNoiseBits(src.noiseBits);
            break;
          case HeOpKind::ccAdd: {
            if (!dst.written)
                return "read of unwritten register r" +
                       std::to_string(instr.dst);
            dst.noiseBits =
                model.ccAddNoiseBits(dst.noiseBits, src.noiseBits);
            break;
          }
          case HeOpKind::ccMult: {
            // msg slot bound: scale * max|m| per the certified
            // message assumption.
            const double msg_bits =
                (src.scale > 0.0 ? std::log2(src.scale) : 0.0) +
                opts.messageBits;
            dst = src;
            dst.scale = src.scale * src.scale;
            dst.noiseBits =
                model.ccMultNoiseBits(src.noiseBits, msg_bits);
            break;
          }
          case HeOpKind::relinearize:
          case HeOpKind::rotate:
            dst = src;
            dst.noiseBits =
                model.keySwitchedNoiseBits(src.noiseBits, src.level);
            break;
          case HeOpKind::rescale:
            if (src.level < 2)
                return "rescale at effective level " +
                       std::to_string(src.level) +
                       ": no prime left to rescale into";
            dst = src;
            dst.scale =
                src.scale / std::exp2(model.logPrime(src.level - 1));
            dst.noiseBits =
                model.rescaleNoiseBits(src.noiseBits, src.level);
            dst.level = src.level - 1;
            break;
          case HeOpKind::copy:
            dst = src;
            break;
        }
        dst.written = true;
        return std::nullopt;
    }

    /** Bound at a layer boundary, mirroring RuntimeGuard's sample. */
    LayerNoiseBound
    layerBound(const HeLayerPlan &layer) const
    {
        const std::vector<std::int32_t> *out_regs =
            &layer.outputLayout.regs;
        std::vector<std::int32_t> fallback;
        if (out_regs->empty()) {
            for (std::size_t i = 0; i < regs.size(); ++i) {
                if (regs[i].written)
                    fallback.push_back(static_cast<std::int32_t>(i));
            }
            out_regs = &fallback;
        }

        LayerNoiseBound bound;
        bound.layer = layer.name;
        bound.level = layer.levelOut >= opts.levelShift
                          ? layer.levelOut - opts.levelShift
                          : 0;
        bound.headroomBits = std::numeric_limits<double>::infinity();
        bool any = false;
        for (const std::int32_t r : *out_regs) {
            if (r < 0 || r >= static_cast<std::int32_t>(regs.size()))
                continue;
            const AbsReg &s = regs[static_cast<std::size_t>(r)];
            if (!s.written)
                continue;
            any = true;
            const double scale_bits =
                s.scale > 0.0 ? std::log2(s.scale) : 0.0;
            const double headroom = model.headroomBits(
                scale_bits + opts.messageBits, s.noiseBits, s.level);
            bound.scaleBits = std::max(bound.scaleBits, scale_bits);
            bound.noiseBits = std::max(bound.noiseBits, s.noiseBits);
            bound.headroomBits =
                std::min(bound.headroomBits, headroom);
        }
        if (!any)
            bound.headroomBits = 0.0;
        return bound;
    }
};

} // namespace

NoiseCertificate
certifyPlan(const HeNetworkPlan &plan, const CertifyOptions &opts)
{
    NoiseCertificate cert;
    cert.plan = plan.name;
    cert.messageBits = opts.messageBits;
    try {
        plan.params.validate();
        if (opts.levelShift >= plan.params.levels) {
            cert.invalidReason = "levelShift " +
                                 std::to_string(opts.levelShift) +
                                 " leaves no data primes";
            return cert;
        }
        const std::size_t eff_levels =
            plan.params.levels - opts.levelShift;
        const auto primes = generateNttPrimes(
            plan.params.qBits, plan.params.n, eff_levels);
        const ckks::NoiseModel model(
            [&] {
                ckks::CkksParams p = plan.params;
                p.levels = eff_levels;
                return p;
            }(),
            primes);
        cert.levels = eff_levels;

        Certifier certifier{plan, opts, model, {}};
        certifier.regs.assign(
            static_cast<std::size_t>(std::max(plan.regCount,
                                              std::int32_t{0})),
            AbsReg{});
        const double fresh = ckks::NoiseModel::logAdd(
            model.freshNoiseBits(), model.encodingRoundBits());
        for (std::size_t i = 0; i < plan.inputGather.size(); ++i) {
            if (i >= certifier.regs.size())
                break;
            AbsReg &s = certifier.regs[i];
            s.written = true;
            s.level = eff_levels;
            s.scale = plan.params.scale;
            s.noiseBits = fresh;
        }

        cert.minHeadroomBits =
            std::numeric_limits<double>::infinity();
        for (const HeLayerPlan &layer : plan.layers) {
            for (const HeInstr &instr : layer.instrs) {
                if (auto err = certifier.step(instr)) {
                    cert.invalidReason =
                        "layer " + layer.name + ": " + *err;
                    cert.minHeadroomBits = 0.0;
                    return cert;
                }
            }
            const LayerNoiseBound bound =
                certifier.layerBound(layer);
            cert.minHeadroomBits =
                std::min(cert.minHeadroomBits, bound.headroomBits);
            cert.layers.push_back(bound);
        }
        if (cert.layers.empty())
            cert.minHeadroomBits = 0.0;
        cert.valid = true;
    } catch (const std::exception &e) {
        cert.valid = false;
        cert.invalidReason = e.what();
        cert.minHeadroomBits = 0.0;
    }
    return cert;
}

std::string
NoiseCertificate::renderText() const
{
    std::ostringstream oss;
    oss << "noise certificate for plan '" << plan << "' (message <= 2^"
        << fmtBits(messageBits) << ", " << levels
        << "-prime chain)\n";
    if (hasArtifact)
        oss << "  artifact: " << artifactPath << " (crc32 "
            << artifactCrc32 << ")\n";
    if (!valid) {
        oss << "  NOT CERTIFIED: " << invalidReason << "\n";
        return oss.str();
    }
    for (const LayerNoiseBound &b : layers) {
        oss << "  " << b.layer << "  level " << b.level << "  scale 2^"
            << fmtBits(b.scaleBits) << "  noise 2^"
            << fmtBits(b.noiseBits) << "  headroom "
            << (b.headroomBits >= 0.0 ? "+" : "")
            << fmtBits(b.headroomBits) << " bits\n";
    }
    oss << "  certified minimum headroom: "
        << (minHeadroomBits >= 0.0 ? "+" : "")
        << fmtBits(minHeadroomBits) << " bits ("
        << (certified() ? "SAFE" : "UNSAFE") << ")\n";
    return oss.str();
}

std::string
NoiseCertificate::renderJson() const
{
    std::ostringstream oss;
    oss << "{\n  \"schema\": \"fxhenn-noise-cert-v1\",\n";
    oss << "  \"plan\": \"";
    jsonEscapeInto(oss, plan);
    oss << "\",\n";
    if (hasArtifact) {
        oss << "  \"plan_file\": \"";
        jsonEscapeInto(oss, artifactPath);
        oss << "\",\n  \"plan_crc32\": " << artifactCrc32 << ",\n";
    }
    oss << "  \"valid\": " << (valid ? "true" : "false") << ",\n";
    if (!valid) {
        oss << "  \"invalid_reason\": \"";
        jsonEscapeInto(oss, invalidReason);
        oss << "\",\n";
    }
    oss << "  \"certified\": " << (certified() ? "true" : "false")
        << ",\n";
    oss << "  \"message_bits\": " << messageBits << ",\n";
    oss << "  \"levels\": " << levels << ",\n";
    oss << "  \"min_headroom_bits\": " << minHeadroomBits << ",\n";
    oss << "  \"layers\": [";
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerNoiseBound &b = layers[i];
        oss << (i ? "," : "") << "\n    {\"layer\": \"";
        jsonEscapeInto(oss, b.layer);
        oss << "\", \"level\": " << b.level
            << ", \"scale_bits\": " << b.scaleBits
            << ", \"noise_bits\": " << b.noiseBits
            << ", \"headroom_bits\": " << b.headroomBits << "}";
    }
    oss << (layers.empty() ? "]" : "\n  ]") << "\n}\n";
    return oss.str();
}

} // namespace fxhenn::hecnn
