#include "src/hecnn/plan_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/crc32.hpp"
#include "src/hecnn/plan_check.hpp"
#include "src/robustness/fault_injection.hpp"

namespace fxhenn::hecnn {

namespace {

constexpr std::uint64_t kMagic = 0x4678504c414e3031ull; // "FxPLAN01"
/**
 * Version 2 appends a CRC-32 trailer over everything before it.
 * Version 3 adds each plaintext's maxAbs so elided (stats-only) plans
 * stay noise-certifiable. Version 4 adds the cross-request batch lane
 * count after regCount; older streams load as batchLanes = 1, and a
 * batched plan refuses to serialize at a version that would silently
 * drop its lane structure. Version-1 (no trailer), version-2 and
 * version-3 streams remain readable; v2 plaintexts derive maxAbs from
 * their values (0 when elided, which the certifier treats as
 * |v| <= 1).
 */
constexpr std::uint32_t kVersion = 4;
constexpr std::size_t kHeaderSize =
    sizeof(std::uint64_t) + sizeof(std::uint32_t); // magic + version

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    FXHENN_FATAL_IF(!is, "truncated plan stream");
    return value;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/**
 * Bytes left between the current read position and end-of-stream, or
 * UINT64_MAX when the stream is not seekable. Size fields read from the
 * wire are checked against this before any allocation, so a corrupted
 * length that still clears the element-count cap cannot trigger a
 * multi-gigabyte allocation for data that is not there.
 */
std::uint64_t
remainingBytes(std::istream &is)
{
    const auto cur = is.tellg();
    if (cur < 0)
        return std::numeric_limits<std::uint64_t>::max();
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(cur);
    if (end < cur)
        return 0;
    return static_cast<std::uint64_t>(end - cur);
}

std::string
readString(std::istream &is)
{
    const auto size = readPod<std::uint32_t>(is);
    FXHENN_FATAL_IF(size > 4096, "implausible string length in plan");
    FXHENN_FATAL_IF(size > remainingBytes(is),
                    "string length exceeds remaining plan bytes");
    std::string s(size, '\0');
    is.read(s.data(), size);
    FXHENN_FATAL_IF(!is, "truncated plan stream");
    return s;
}

template <typename T>
void
writeVector(std::ostream &os, const std::vector<T> &v)
{
    writePod(os, static_cast<std::uint64_t>(v.size()));
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/**
 * HeInstr has three padding bytes between its u8 opcode and the first
 * i32 field; aggregate initialization leaves them indeterminate, so a
 * raw struct write would make savePlan's bytes (and the CRC trailer)
 * vary between otherwise identical compiles. Re-copy each record into
 * a zeroed staging struct first: the wire layout is unchanged, the
 * padding is deterministically zero.
 */
void
writeVector(std::ostream &os, const std::vector<HeInstr> &v)
{
    static_assert(sizeof(HeInstr) == 20,
                  "wire layout: u8 kind + 3 pad + 4 x i32");
    writePod(os, static_cast<std::uint64_t>(v.size()));
    constexpr char pad[3] = {0, 0, 0};
    for (const HeInstr &instr : v) {
        writePod(os, static_cast<std::uint8_t>(instr.kind));
        os.write(pad, sizeof(pad));
        writePod(os, instr.dst);
        writePod(os, instr.src);
        writePod(os, instr.pt);
        writePod(os, instr.step);
    }
}

template <typename T>
std::vector<T>
readVector(std::istream &is, std::uint64_t maxElems)
{
    const auto size = readPod<std::uint64_t>(is);
    FXHENN_FATAL_IF(size > maxElems, "implausible vector size in plan");
    FXHENN_FATAL_IF(size * sizeof(T) > remainingBytes(is),
                    "vector size exceeds remaining plan bytes");
    std::vector<T> v(size);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    FXHENN_FATAL_IF(!is, "truncated plan stream");
    return v;
}

void
writeLayout(std::ostream &os, const SlotLayout &layout)
{
    writePod(os, static_cast<std::uint64_t>(layout.pos.size()));
    for (const auto &[reg, slot] : layout.pos) {
        writePod(os, reg);
        writePod(os, slot);
    }
    writeVector(os, layout.regs);
}

SlotLayout
readLayout(std::istream &is)
{
    SlotLayout layout;
    const auto count = readPod<std::uint64_t>(is);
    FXHENN_FATAL_IF(count > (1u << 24), "implausible layout size");
    FXHENN_FATAL_IF(count * (sizeof(std::int32_t) * 2) >
                        remainingBytes(is),
                    "layout size exceeds remaining plan bytes");
    layout.pos.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto reg = readPod<std::int32_t>(is);
        const auto slot = readPod<std::int32_t>(is);
        layout.pos.emplace_back(reg, slot);
    }
    layout.regs = readVector<std::int32_t>(is, 1u << 24);
    return layout;
}

} // namespace

std::uint32_t
planStreamVersion()
{
    return kVersion;
}

void
savePlan(const HeNetworkPlan &plan, std::ostream &outer)
{
    savePlanAsVersion(plan, outer, kVersion);
}

void
savePlanAsVersion(const HeNetworkPlan &plan, std::ostream &outer,
                  std::uint32_t version)
{
    FXHENN_FATAL_IF(version == 0 || version > kVersion,
                    "unknown plan stream version " +
                        std::to_string(version));
    FXHENN_FATAL_IF(plan.batchLanes > 1 && version < 4,
                    "plan stream version " + std::to_string(version) +
                        " cannot represent a batched plan (batchLanes " +
                        std::to_string(plan.batchLanes) +
                        "); use version 4 or later");
    // Serialize into a buffer first so the CRC-32 trailer can cover
    // the whole payload.
    std::ostringstream os;
    writePod(os, kMagic);
    writePod(os, version);
    writeString(os, plan.name);
    writePod(os, static_cast<std::uint64_t>(plan.params.n));
    writePod(os, static_cast<std::uint64_t>(plan.params.levels));
    writePod(os, plan.params.qBits);
    writePod(os, plan.params.specialBits);
    writePod(os, plan.params.scale);
    writePod(os, plan.params.sigma);
    writePod(os, static_cast<std::uint8_t>(plan.valuesElided ? 1 : 0));
    writePod(os, plan.regCount);
    if (version >= 4)
        writePod(os, static_cast<std::uint32_t>(plan.batchLanes));

    writePod(os, static_cast<std::uint64_t>(plan.inputGather.size()));
    for (const auto &gather : plan.inputGather)
        writeVector(os, gather);

    writePod(os, static_cast<std::uint64_t>(plan.layers.size()));
    for (const auto &layer : plan.layers) {
        writeString(os, layer.name);
        writePod(os, static_cast<std::uint64_t>(layer.levelIn));
        writePod(os, static_cast<std::uint64_t>(layer.levelOut));
        writePod(os, static_cast<std::uint64_t>(layer.nIn));
        writeVector(os, layer.instrs);
        writeLayout(os, layer.outputLayout);
    }

    writePod(os, static_cast<std::uint64_t>(plan.plaintexts.size()));
    for (const auto &pt : plan.plaintexts) {
        writePod(os, static_cast<std::uint64_t>(pt.level));
        writePod(os,
                 static_cast<std::uint8_t>(pt.atSchemeScale ? 1 : 0));
        if (version >= 3)
            writePod(os, pt.maxAbs);
        writeVector(os, pt.values);
    }

    writeLayout(os, plan.outputLayout);

    const std::string bytes = os.str();
    outer.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    if (version >= 2)
        writePod(outer, crc32(bytes.data(), bytes.size()));
}

HeNetworkPlan
loadPlan(std::istream &stream)
{
    std::string bytes{std::istreambuf_iterator<char>(stream),
                      std::istreambuf_iterator<char>()};
    if (auto fault = robustness::fireFault("plan.load")) {
        if (fault->kind == "truncate") {
            bytes.resize(bytes.size() * 2 / 3);
        } else if (fault->kind == "corrupt" && !bytes.empty()) {
            bytes[bytes.size() / 2] =
                static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
        }
    }
    FXHENN_FATAL_IF(bytes.size() < kHeaderSize,
                    "truncated plan stream");
    std::uint64_t magic = 0;
    std::memcpy(&magic, bytes.data(), sizeof(magic));
    FXHENN_FATAL_IF(magic != kMagic, "not an FxHENN plan stream");
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(magic),
                sizeof(version));
    FXHENN_FATAL_IF(version == 0 || version > kVersion,
                    "unsupported plan version");

    std::size_t payload_size = bytes.size();
    if (version >= 2) {
        FXHENN_FATAL_IF(bytes.size() <
                            kHeaderSize + sizeof(std::uint32_t),
                        "truncated plan stream (checksum missing)");
        payload_size = bytes.size() - sizeof(std::uint32_t);
        std::uint32_t stored = 0;
        std::memcpy(&stored, bytes.data() + payload_size,
                    sizeof(stored));
        FXHENN_FATAL_IF(stored != crc32(bytes.data(), payload_size),
                        "plan checksum mismatch (corrupted plan "
                        "file)");
    }

    std::istringstream is(bytes.substr(0, payload_size));
    is.ignore(static_cast<std::streamsize>(kHeaderSize));

    HeNetworkPlan plan;
    plan.name = readString(is);
    plan.params.n = readPod<std::uint64_t>(is);
    plan.params.levels = readPod<std::uint64_t>(is);
    plan.params.qBits = readPod<unsigned>(is);
    plan.params.specialBits = readPod<unsigned>(is);
    plan.params.scale = readPod<double>(is);
    plan.params.sigma = readPod<double>(is);
    plan.params.validate();
    plan.valuesElided = readPod<std::uint8_t>(is) != 0;
    plan.regCount = readPod<std::int32_t>(is);
    FXHENN_FATAL_IF(plan.regCount < 0 || plan.regCount > (1 << 24),
                    "implausible register count");
    if (version >= 4) {
        plan.batchLanes = readPod<std::uint32_t>(is);
        FXHENN_FATAL_IF(plan.batchLanes == 0 ||
                            (plan.params.n / 2) % plan.batchLanes != 0,
                        "corrupt batch lane count");
    }

    const auto gathers = readPod<std::uint64_t>(is);
    FXHENN_FATAL_IF(gathers > 65536, "implausible input count");
    for (std::uint64_t i = 0; i < gathers; ++i) {
        plan.inputGather.push_back(
            readVector<std::int32_t>(is, plan.params.n));
        FXHENN_FATAL_IF(plan.inputGather.back().size() !=
                            plan.params.n / 2,
                        "gather length does not match slot count");
    }

    const auto layers = readPod<std::uint64_t>(is);
    FXHENN_FATAL_IF(layers == 0 || layers > 4096,
                    "implausible layer count");
    for (std::uint64_t i = 0; i < layers; ++i) {
        HeLayerPlan layer;
        layer.name = readString(is);
        layer.levelIn = readPod<std::uint64_t>(is);
        layer.levelOut = readPod<std::uint64_t>(is);
        layer.nIn = readPod<std::uint64_t>(is);
        layer.instrs = readVector<HeInstr>(is, 1u << 26);
        layer.outputLayout = readLayout(is);
        FXHENN_FATAL_IF(layer.levelIn == 0 ||
                            layer.levelIn > plan.params.levels ||
                            layer.levelOut > layer.levelIn,
                        "corrupt layer levels");
        layer.classify();
        plan.layers.push_back(std::move(layer));
    }

    const auto plaintexts = readPod<std::uint64_t>(is);
    FXHENN_FATAL_IF(plaintexts > (1u << 26),
                    "implausible plaintext count");
    for (std::uint64_t i = 0; i < plaintexts; ++i) {
        PlanPlaintext pt;
        pt.level = readPod<std::uint64_t>(is);
        pt.atSchemeScale = readPod<std::uint8_t>(is) != 0;
        if (version >= 3)
            pt.maxAbs = readPod<double>(is);
        pt.values = readVector<double>(is, plan.params.n);
        if (version < 3) {
            for (const double v : pt.values)
                pt.maxAbs = std::max(pt.maxAbs, std::abs(v));
        }
        FXHENN_FATAL_IF(pt.level == 0 ||
                            pt.level > plan.params.levels,
                        "corrupt plaintext level");
        FXHENN_FATAL_IF(!std::isfinite(pt.maxAbs) || pt.maxAbs < 0.0,
                        "corrupt plaintext magnitude");
        FXHENN_FATAL_IF(!plan.valuesElided &&
                            pt.values.size() != plan.params.n / 2,
                        "plaintext length does not match slot count");
        plan.plaintexts.push_back(std::move(pt));
    }

    plan.outputLayout = readLayout(is);
    // Instruction references must stay inside the pools.
    for (const auto &layer : plan.layers) {
        for (const auto &instr : layer.instrs) {
            FXHENN_FATAL_IF(instr.dst < 0 ||
                                instr.dst >= plan.regCount ||
                                instr.src < 0 ||
                                instr.src >= plan.regCount,
                            "instruction register out of range");
            FXHENN_FATAL_IF(
                instr.pt >= static_cast<std::int32_t>(
                                plan.plaintexts.size()),
                "instruction plaintext out of range");
        }
    }
    if (loadVerificationEnabled()) {
        FXHENN_FATAL_IF(!planVerifierInstalled(),
                        "--verify-plan requested but no plan verifier "
                        "is linked into this binary");
        runPlanVerifier(plan, "plan-load");
    }
    return plan;
}

} // namespace fxhenn::hecnn
