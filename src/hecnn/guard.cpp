#include "src/hecnn/guard.hpp"

#include <cmath>
#include <sstream>

#include "src/common/assert.hpp"

namespace fxhenn::hecnn {

namespace {

std::string
fmtBits(double v)
{
    std::ostringstream oss;
    oss.precision(3);
    oss << v;
    return oss.str();
}

} // namespace

RuntimeGuard::RuntimeGuard(const HeNetworkPlan &plan,
                           const ckks::CkksContext &context,
                           robustness::GuardOptions options)
    : plan_(plan), context_(context), options_(options)
{
    CertifyOptions copts;
    copts.messageBits = options_.messageBits;
    cert_ = certifyPlan(plan_, copts);
}

void
RuntimeGuard::beginInfer()
{
    regs_.assign(static_cast<std::size_t>(plan_.regCount), RegState{});
    trajectory_.clear();
    for (std::size_t i = 0; i < plan_.inputGather.size(); ++i) {
        RegState &s = regs_[i];
        s.written = true;
        s.level = context_.maxLevel();
        s.scale = context_.params().scale;
        s.parts = 2;
    }
}

std::optional<std::string>
RuntimeGuard::preCheck(const HeInstr &instr) const
{
    const auto regCount = static_cast<std::int32_t>(regs_.size());
    auto bad = [&](std::int32_t id) {
        return id < 0 || id >= regCount;
    };
    if (bad(instr.dst) || bad(instr.src))
        return "instruction register out of range (dst r" +
               std::to_string(instr.dst) + ", src r" +
               std::to_string(instr.src) + ")";
    const RegState &src = regs_[static_cast<std::size_t>(instr.src)];
    if (!src.written)
        return "read of unwritten register r" +
               std::to_string(instr.src);

    switch (instr.kind) {
      case HeOpKind::pcMult:
      case HeOpKind::pcAdd: {
        if (instr.pt < 0 ||
            instr.pt >= static_cast<std::int32_t>(
                            plan_.plaintexts.size()))
            return "plaintext index out of range (pt " +
                   std::to_string(instr.pt) + ")";
        if (instr.kind == HeOpKind::pcMult) {
            const auto &pt =
                plan_.plaintexts[static_cast<std::size_t>(instr.pt)];
            if (pt.level != src.level)
                return "plaintext level " + std::to_string(pt.level) +
                       " does not match ciphertext level " +
                       std::to_string(src.level) + " at r" +
                       std::to_string(instr.src);
        }
        break;
      }
      case HeOpKind::ccAdd: {
        const RegState &dst =
            regs_[static_cast<std::size_t>(instr.dst)];
        if (!dst.written)
            return "read of unwritten register r" +
                   std::to_string(instr.dst);
        if (dst.level != src.level)
            return "ccAdd level mismatch: r" +
                   std::to_string(instr.dst) + " at level " +
                   std::to_string(dst.level) + ", r" +
                   std::to_string(instr.src) + " at level " +
                   std::to_string(src.level);
        if (dst.parts != src.parts)
            return "ccAdd part-count mismatch";
        const double ratio = dst.scale / src.scale;
        if (ratio < 0.99 || ratio > 1.01)
            return "ccAdd scale mismatch: r" +
                   std::to_string(instr.dst) + " at 2^" +
                   fmtBits(std::log2(dst.scale)) + ", r" +
                   std::to_string(instr.src) + " at 2^" +
                   fmtBits(std::log2(src.scale));
        break;
      }
      case HeOpKind::ccMult:
        if (src.parts != 2)
            return "ccMult expects a 2-part operand, r" +
                   std::to_string(instr.src) + " has " +
                   std::to_string(src.parts);
        break;
      case HeOpKind::relinearize:
        if (src.parts != 3)
            return "relinearize expects a 3-part operand, r" +
                   std::to_string(instr.src) + " has " +
                   std::to_string(src.parts);
        break;
      case HeOpKind::rescale:
        if (src.level < 2)
            return "rescale at level " + std::to_string(src.level) +
                   ": no prime left to rescale into";
        break;
      case HeOpKind::rotate:
        if (src.parts != 2)
            return "rotate expects a 2-part operand";
        break;
      case HeOpKind::copy:
        break;
    }
    return std::nullopt;
}

void
RuntimeGuard::apply(const HeInstr &instr)
{
    const auto regCount = static_cast<std::int32_t>(regs_.size());
    if (instr.dst < 0 || instr.dst >= regCount || instr.src < 0 ||
        instr.src >= regCount)
        return; // preCheck already reported; keep the tracker alive
    const RegState src = regs_[static_cast<std::size_t>(instr.src)];
    RegState &dst = regs_[static_cast<std::size_t>(instr.dst)];

    // Replays the evaluator's own double arithmetic so healthy runs
    // predict the ciphertext scale tags bit-for-bit.
    switch (instr.kind) {
      case HeOpKind::pcMult:
        dst = src;
        dst.scale = src.scale * context_.params().scale;
        break;
      case HeOpKind::pcAdd:
        dst = src; // bias encodes at the ciphertext's current scale
        break;
      case HeOpKind::ccAdd:
        break; // dst shape unchanged
      case HeOpKind::ccMult:
        dst = src;
        dst.scale = src.scale * src.scale;
        dst.parts = 3;
        break;
      case HeOpKind::relinearize:
        dst = src;
        dst.parts = 2;
        break;
      case HeOpKind::rescale:
        dst = src;
        if (src.level >= 2) {
            dst.scale = src.scale /
                        static_cast<double>(
                            context_.basis().q(src.level - 1).value());
            dst.level = src.level - 1;
        }
        break;
      case HeOpKind::rotate:
      case HeOpKind::copy:
        dst = src;
        break;
    }
    dst.written = true;
}

std::optional<std::string>
RuntimeGuard::checkLayerEnd(
    const HeLayerPlan &layer,
    std::span<const std::optional<ckks::Ciphertext>> regs)
{
    // 1. Predicted-vs-actual divergence over every tracked register.
    //    The prediction replays the evaluator's arithmetic exactly, so
    //    any mismatch means the executed ops differ from the plan
    //    (dropped rescale, perturbed scale, corrupted state).
    std::optional<std::string> divergence;
    for (std::size_t i = 0; i < regs_.size() && !divergence; ++i) {
        const RegState &pred = regs_[i];
        if (!pred.written)
            continue;
        const auto &actual = regs[i];
        if (!actual.has_value()) {
            divergence = "register r" + std::to_string(i) +
                         " predicted written but holds no ciphertext";
            break;
        }
        if (actual->level() != pred.level) {
            divergence =
                "level diverged at r" + std::to_string(i) +
                ": predicted " + std::to_string(pred.level) +
                ", actual " + std::to_string(actual->level()) +
                " (rescale dropped or misapplied?)";
            break;
        }
        if (actual->size() != pred.parts) {
            divergence = "part count diverged at r" +
                         std::to_string(i);
            break;
        }
        const double rel =
            std::abs(actual->scale - pred.scale) /
            std::max(std::abs(pred.scale), 1e-300);
        if (rel > options_.scaleRelTolerance) {
            divergence = "scale diverged at r" + std::to_string(i) +
                         ": predicted 2^" +
                         fmtBits(std::log2(pred.scale)) +
                         ", actual 2^" +
                         fmtBits(std::log2(actual->scale));
        }
    }

    // 2. Plan metadata consistency + this layer's budget sample.
    std::optional<std::string> metadata;
    const std::vector<std::int32_t> *out_regs = &layer.outputLayout.regs;
    std::vector<std::int32_t> fallback;
    if (out_regs->empty()) {
        for (std::size_t i = 0; i < regs_.size(); ++i) {
            if (regs_[i].written)
                fallback.push_back(static_cast<std::int32_t>(i));
        }
        out_regs = &fallback;
    }
    double max_scale = 0.0;
    for (std::int32_t r : *out_regs) {
        if (r < 0 || r >= static_cast<std::int32_t>(regs_.size()))
            continue;
        const RegState &pred = regs_[static_cast<std::size_t>(r)];
        if (!pred.written) {
            if (!metadata)
                metadata = "plan output register r" +
                           std::to_string(r) + " was never written";
            continue;
        }
        max_scale = std::max(max_scale, pred.scale);
        if (pred.level != layer.levelOut && !metadata)
            metadata = "plan metadata mismatch: r" +
                       std::to_string(r) + " predicted at level " +
                       std::to_string(pred.level) +
                       " but the plan says levelOut " +
                       std::to_string(layer.levelOut);
    }

    robustness::BudgetSample sample;
    sample.layer = layer.name;
    sample.level = layer.levelOut;
    sample.scaleBits = max_scale > 0.0 ? std::log2(max_scale) : 0.0;
    // Prefer the statically certified per-layer bound (which accounts
    // for accumulated crypto noise, not just the message magnitude);
    // an invalid certificate falls back to the noise-free formula.
    const std::size_t idx = trajectory_.size();
    if (cert_.valid && idx < cert_.layers.size() &&
        cert_.layers[idx].layer == layer.name) {
        sample.noiseBits = cert_.layers[idx].noiseBits;
        sample.headroomBits = cert_.layers[idx].headroomBits;
    } else {
        sample.headroomBits =
            (context_.basis().logQ(layer.levelOut) - 1.0) -
            sample.scaleBits - options_.messageBits;
    }
    trajectory_.push_back(sample);

    if (divergence)
        return divergence;
    if (metadata)
        return metadata;
    if (sample.headroomBits < 0.0)
        return "predicted noise budget exhausted after layer " +
               layer.name + ": certified headroom " +
               fmtBits(sample.headroomBits) +
               " bits (the message no longer fits the modulus and "
               "decryption would be garbage)";
    return std::nullopt;
}

} // namespace fxhenn::hecnn
