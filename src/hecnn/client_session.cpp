#include "src/hecnn/client_session.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "src/ckks/noise.hpp"
#include "src/common/assert.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::hecnn {

namespace {

/** splitmix64-style mix of (seed, requestIndex) into one 64-bit seed. */
std::uint64_t
mixRequestSeed(std::uint64_t seed, std::uint64_t request)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (request + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

ClientSession::ClientSession(const HeNetworkPlan &plan,
                             const ckks::CkksContext &context,
                             std::uint64_t seed)
    : plan_(plan), context_(context), seed_(seed), rng_(seed),
      keygen_(context, rng_), encoder_(context),
      encryptor_(context, keygen_.makePublicKey(), rng_),
      decryptor_(context, keygen_.secretKey()),
      relin_(keygen_.makeRelinKey())
{
    FXHENN_FATAL_IF(plan.valuesElided,
                    "plan was compiled with elideValues=true and "
                    "cannot be executed");
    for (std::int32_t step : plan.rotationSteps())
        keygen_.addGaloisKey(galois_, step);
    for (const auto &gather : plan.inputGather) {
        for (const std::int32_t idx : gather) {
            if (idx >= 0)
                minInputElements_ = std::max(
                    minInputElements_,
                    static_cast<std::size_t>(idx) + 1);
        }
    }
}

void
ClientSession::validateInput(const nn::Tensor &input) const
{
    FXHENN_FATAL_IF(input.size() < minInputElements_,
                    "input tensor has " + std::to_string(input.size()) +
                        " elements but the plan gathers up to index " +
                        std::to_string(minInputElements_ - 1));
}

std::uint64_t
ClientSession::batchRequestKey(
    std::span<const std::uint64_t> memberIndices)
{
    FXHENN_FATAL_IF(memberIndices.empty(),
                    "batchRequestKey: empty member list");
    // A one-member fold is the member index itself, so a B=1 batch
    // draws exactly the noise stream encryptInput(input, r) draws.
    std::uint64_t key = memberIndices[0];
    for (std::size_t i = 1; i < memberIndices.size(); ++i)
        key = mixRequestSeed(key, memberIndices[i]);
    return key;
}

std::vector<ckks::Ciphertext>
ClientSession::encryptInput(const nn::Tensor &input,
                            std::uint64_t requestIndex) const
{
    validateInput(input);
    FXHENN_TELEM_SCOPED_TIMER("hecnn.client.encrypt.ns");
    Rng rng(mixRequestSeed(seed_, requestIndex));
    const std::size_t slots = context_.slots();
    std::vector<ckks::Ciphertext> cts;
    cts.reserve(plan_.inputGather.size());
    for (const auto &gather : plan_.inputGather) {
        std::vector<double> v(slots, 0.0);
        for (std::size_t s = 0; s < slots; ++s) {
            if (gather[s] >= 0)
                v[s] = input.data()[static_cast<std::size_t>(gather[s])];
        }
        const auto plain =
            encoder_.encode(std::span<const double>(v),
                            context_.params().scale,
                            context_.maxLevel());
        cts.push_back(encryptor_.encrypt(plain, rng));
    }
    return cts;
}

std::vector<ckks::Ciphertext>
ClientSession::encryptInputBatch(
    std::span<const nn::Tensor *const> inputs,
    std::uint64_t requestKey) const
{
    const std::size_t lanes = plan_.batchLanes;
    FXHENN_FATAL_IF(inputs.size() != lanes,
                    "encryptInputBatch: " +
                        std::to_string(inputs.size()) +
                        " member inputs for a plan with " +
                        std::to_string(lanes) + " batch lanes");
    for (const nn::Tensor *member : inputs) {
        if (member != nullptr)
            validateInput(*member);
    }
    FXHENN_TELEM_SCOPED_TIMER("hecnn.client.encrypt.ns");
    Rng rng(mixRequestSeed(seed_, requestKey));
    const std::size_t slots = context_.slots();
    std::vector<ckks::Ciphertext> cts;
    cts.reserve(plan_.inputGather.size());
    for (const auto &gather : plan_.inputGather) {
        std::vector<double> v(slots, 0.0);
        // The stride-B gather populates lane 0 only; the client fills
        // member b's data into the sibling slot s*B + b.
        for (std::size_t s = 0; s + lanes <= slots; s += lanes) {
            const std::int32_t e = gather[s];
            if (e < 0)
                continue;
            for (std::size_t b = 0; b < lanes; ++b) {
                if (inputs[b] != nullptr) {
                    v[s + b] = inputs[b]->data()[
                        static_cast<std::size_t>(e)];
                }
            }
        }
        const auto plain =
            encoder_.encode(std::span<const double>(v),
                            context_.params().scale,
                            context_.maxLevel());
        cts.push_back(encryptor_.encrypt(plain, rng));
    }
    return cts;
}

std::vector<std::vector<double>>
ClientSession::decryptLogitsBatch(
    std::span<const std::optional<ckks::Ciphertext>> regs) const
{
    FXHENN_TELEM_SCOPED_TIMER("hecnn.client.decrypt.ns");
    const std::size_t lanes = plan_.batchLanes;
    std::map<std::int32_t, std::vector<double>> decoded;
    std::vector<std::vector<double>> logits(
        lanes,
        std::vector<double>(plan_.outputLayout.elements(), 0.0));
    for (std::size_t e = 0; e < plan_.outputLayout.elements(); ++e) {
        const auto [reg_id, slot] = plan_.outputLayout.pos[e];
        auto it = decoded.find(reg_id);
        if (it == decoded.end()) {
            const auto &ct = regs[static_cast<std::size_t>(reg_id)];
            FXHENN_ASSERT(ct.has_value(), "output register unwritten");
            it = decoded
                     .emplace(reg_id, encoder_.decodeReal(
                                          decryptor_.decrypt(*ct)))
                     .first;
        }
        for (std::size_t b = 0; b < lanes; ++b)
            logits[b][e] =
                it->second[static_cast<std::size_t>(slot) + b];
    }
    return logits;
}

std::vector<double>
ClientSession::decryptLogits(
    std::span<const std::optional<ckks::Ciphertext>> regs) const
{
    FXHENN_TELEM_SCOPED_TIMER("hecnn.client.decrypt.ns");
    std::map<std::int32_t, std::vector<double>> decoded;
    std::vector<double> logits(plan_.outputLayout.elements(), 0.0);
    for (std::size_t e = 0; e < logits.size(); ++e) {
        const auto [reg_id, slot] = plan_.outputLayout.pos[e];
        auto it = decoded.find(reg_id);
        if (it == decoded.end()) {
            const auto &ct = regs[static_cast<std::size_t>(reg_id)];
            FXHENN_ASSERT(ct.has_value(), "output register unwritten");
            it = decoded
                     .emplace(reg_id, encoder_.decodeReal(
                                          decryptor_.decrypt(*ct)))
                     .first;
        }
        logits[e] = it->second[static_cast<std::size_t>(slot)];
    }
    return logits;
}

double
ClientSession::outputHeadroomBits(
    std::span<const std::optional<ckks::Ciphertext>> regs) const
{
    double headroom = std::numeric_limits<double>::infinity();
    std::set<std::int32_t> seen;
    for (const auto &pos : plan_.outputLayout.pos) {
        const std::int32_t reg_id = pos.first;
        if (!seen.insert(reg_id).second)
            continue;
        const auto &ct = regs[static_cast<std::size_t>(reg_id)];
        FXHENN_ASSERT(ct.has_value(), "output register unwritten");
        headroom = std::min(
            headroom, ckks::headroomBits(*ct, context_, decryptor_));
    }
    return headroom;
}

double
ClientSession::headroomBits(const ckks::Ciphertext &ct) const
{
    return ckks::headroomBits(ct, context_, decryptor_);
}

} // namespace fxhenn::hecnn
