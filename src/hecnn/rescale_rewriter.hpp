/**
 * @file
 * Certified waterline rescale re-placement over the plan IR.
 *
 * The compiler emits one Rescale per pcMult (eager placement). That is
 * simple and always safe, but in accumulation trees it pays the O(N L)
 * rescale cost once per tap when once per accumulator would do: the
 * adds commute with the division. rewriteRescales() sinks each rescale
 * down the instruction stream ("waterline" style: values ride at the
 * pre-rescale scale until something actually needs the post-rescale
 * form) and merges deferred rescales that meet at a ccAdd, so a K-tap
 * accumulation needs one rescale instead of K.
 *
 * The rewrite is *certified*: the rewritten plan is accepted only when
 * the static noise certifier (noise_cert.hpp) proves its minimum
 * headroom is no worse than the original's, the rescale count strictly
 * drops, and the installed plan verifier (when present) accepts the
 * result. Otherwise the plan is left byte-identical and the summary
 * says why. Deferral deliberately stops at keyswitch reads: sinking a
 * rescale past a Rotate would run the keyswitch at the higher level
 * and cost more than the rescale saves.
 */
#ifndef FXHENN_HECNN_RESCALE_REWRITER_HPP
#define FXHENN_HECNN_RESCALE_REWRITER_HPP

#include <cstdint>
#include <string>

#include "src/hecnn/noise_cert.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/** Outcome of one rewriteRescales() run. */
struct RewriteSummary
{
    bool applied = false; ///< true: the plan was mutated
    std::string reason;   ///< why the rewrite was rejected (if so)
    std::uint64_t rescalesBefore = 0;
    std::uint64_t rescalesAfter = 0;
    double minHeadroomBefore = 0.0; ///< certified, original plan
    double minHeadroomAfter = 0.0;  ///< certified, rewritten plan

    /** One-line human-readable report (the certificate diff). */
    std::string describe() const;
};

/**
 * Re-place rescales in @p plan (waterline sinking + ccAdd merging) and
 * mutate it in place only when the certifier proves the rewritten
 * plan's minimum headroom >= the original's and at least one rescale
 * was eliminated. Never throws; a failed certification or verifier
 * rejection leaves @p plan untouched with the reason in the summary.
 *
 * @param copts certify options used for both before/after certificates
 */
RewriteSummary rewriteRescales(HeNetworkPlan &plan,
                               const CertifyOptions &copts = {});

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_RESCALE_REWRITER_HPP
