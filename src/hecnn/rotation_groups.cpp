#include "src/hecnn/rotation_groups.hpp"

namespace fxhenn::hecnn {

std::vector<RotationGroup>
findRotationGroups(std::span<const HeInstr> instrs)
{
    std::vector<RotationGroup> groups;
    std::size_t i = 0;
    while (i < instrs.size()) {
        if (instrs[i].kind != HeOpKind::rotate) {
            ++i;
            continue;
        }
        const std::int32_t src = instrs[i].src;
        RotationGroup group{i, 0};
        while (i < instrs.size() &&
               instrs[i].kind == HeOpKind::rotate &&
               instrs[i].src == src) {
            ++group.count;
            const bool clobbers_src = instrs[i].dst == src;
            ++i;
            if (clobbers_src)
                break; // the shared source just changed value
        }
        groups.push_back(group);
    }
    return groups;
}

std::size_t
countHoistedDecompositions(std::span<const HeInstr> instrs)
{
    std::size_t n = findRotationGroups(instrs).size();
    for (const auto &instr : instrs)
        if (instr.kind == HeOpKind::relinearize)
            ++n;
    return n;
}

} // namespace fxhenn::hecnn
