/**
 * @file
 * Compiled HE-CNN representation: layer plans over a register file.
 *
 * The compiler lowers each CNN layer to a list of HeInstr plus the
 * plaintexts (packed weights, masks, biases) the instructions reference.
 * This single artifact drives three consumers:
 *   1. the runtime, which executes it on real ciphertexts;
 *   2. the statistics pass (HOP / KS counts, Tables IV, VI, VII);
 *   3. the FPGA performance model and DSE (per-layer op counts, N_in,
 *      ciphertext level, KS/NKS class).
 */
#ifndef FXHENN_HECNN_PLAN_HPP
#define FXHENN_HECNN_PLAN_HPP

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ckks/params.hpp"
#include "src/hecnn/he_op.hpp"

namespace fxhenn::hecnn {

/** KS/NKS layer classes of Sec. V-A. */
enum class LayerClass { nks, ks };

/** Where each logical activation element lives: (register, slot). */
struct SlotLayout
{
    /** element index -> (register id, slot index) */
    std::vector<std::pair<std::int32_t, std::int32_t>> pos;

    /** registers that carry this layout, in order. */
    std::vector<std::int32_t> regs;

    std::size_t elements() const { return pos.size(); }

    /**
     * @return true when the layout is one register with element e at
     * slot e (the precondition for the replicated dense path).
     */
    bool isContiguousSingleReg() const;
};

/** A plaintext the plan references: slot values + how to encode it. */
struct PlanPlaintext
{
    std::vector<double> values; ///< slot vector (size = N/2)
    std::size_t level = 0;      ///< encoding level
    /**
     * true: encode at the scheme scale Delta (multiplicands);
     * false: encode at the current ciphertext scale (bias adds).
     */
    bool atSchemeScale = true;
    /**
     * max |slot value|. The compiler records it even when the values
     * themselves are elided (stats-only plans), so the static noise
     * certifier can bound pcMult growth with the real weight magnitude
     * instead of a pessimistic |v| <= 1 assumption.
     */
    double maxAbs = 0.0;
};

/** Per-layer HE operation counts, in the paper's taxonomy. */
struct HeOpCounts
{
    std::uint64_t ccAdd = 0;   ///< OP1 (includes plaintext adds)
    std::uint64_t pcMult = 0;  ///< OP2
    std::uint64_t ccMult = 0;  ///< OP3
    std::uint64_t rescale = 0; ///< OP4
    std::uint64_t relin = 0;   ///< OP5 (Relinearize)
    std::uint64_t rotate = 0;  ///< OP5 (Rotate)

    std::uint64_t
    total() const
    {
        return ccAdd + pcMult + ccMult + rescale + relin + rotate;
    }
    std::uint64_t keySwitch() const { return relin + rotate; }
};

/** One compiled HE-CNN layer. */
struct HeLayerPlan
{
    std::string name;
    LayerClass cls = LayerClass::nks;
    std::size_t levelIn = 0;  ///< ciphertext level at layer entry
    std::size_t levelOut = 0; ///< level after the layer
    std::size_t nIn = 0;      ///< independent input ciphertext count
    std::vector<HeInstr> instrs;
    SlotLayout outputLayout;

    /** Count instructions by paper operation class. */
    HeOpCounts counts() const;

    /**
     * Instructions of one opcode. O(1) once classify() (called by the
     * compiler and the plan loader) has populated the cache; a plan
     * built by hand without classify() recounts on every call instead
     * of silently returning zeros. Neither path mutates the layer, so
     * concurrent readers sharing one plan are safe; the uncached path
     * never touches cls, so a stale KS/NKS class is still observable
     * (and diagnosed by the layer-class verifier pass).
     */
    std::uint64_t kindCount(HeOpKind kind) const;

    /** Cache the opcode counts and set the KS/NKS class (Sec. V-A). */
    void classify();

  private:
    /** Opcode-count cache, populated only by classify() so that
     *  kindCount() stays const in the strict sense — executors share
     *  plans read-only across threads. */
    std::array<std::uint64_t, 8> kindCounts_{};
    bool counted_ = false;
};

/** A full compiled network. */
struct HeNetworkPlan
{
    std::string name;
    ckks::CkksParams params;

    /** Client-side packing: per input register, slot -> input element
     *  index (or -1 for a zero slot). */
    std::vector<std::vector<std::int32_t>> inputGather;

    std::vector<HeLayerPlan> layers;
    std::vector<PlanPlaintext> plaintexts; ///< shared pool
    bool valuesElided = false; ///< true: stats-only, not executable
    std::int32_t regCount = 0;

    /**
     * Cross-request slot batching factor B. A batched plan interleaves
     * B independent requests lane-wise: request b's virtual slot s
     * lives at physical slot s*B + b, every rotation step is a
     * multiple of B (lane-preserving), and every plaintext is
     * broadcast across the B lanes. B = 1 is the classic
     * single-request plan.
     */
    std::size_t batchLanes = 1;

    /** Final layout: logit index -> (register, slot). */
    SlotLayout outputLayout;

    /** Aggregate operation counts over all layers. */
    HeOpCounts totalCounts() const;

    /** All distinct rotation steps used (for Galois key generation). */
    std::set<std::int32_t> rotationSteps() const;

    /** Multiplicative depth consumed (levels used). */
    std::size_t depth() const;

    /** Number of client-supplied input ciphertexts. */
    std::size_t inputCiphertexts() const { return inputGather.size(); }
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_PLAN_HPP
