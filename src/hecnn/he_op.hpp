/**
 * @file
 * The HE instruction set the HE-CNN compiler targets.
 *
 * Each instruction maps onto one of the paper's HE operation modules
 * (Table I): OP1 CCadd (+ plaintext add), OP2 PCmult, OP3 CCmult,
 * OP4 Rescale, OP5 KeySwitch (Relinearize / Rotate).
 */
#ifndef FXHENN_HECNN_HE_OP_HPP
#define FXHENN_HECNN_HE_OP_HPP

#include <cstdint>
#include <string>

namespace fxhenn::hecnn {

/** HE instruction opcodes. */
enum class HeOpKind : std::uint8_t {
    pcMult,      ///< OP2: dst = src * plaintext[pt]
    pcAdd,       ///< OP1 variant: dst = src + plaintext[pt]
    ccAdd,       ///< OP1: dst = dst + src
    ccMult,      ///< OP3: dst = src * src (3-part result; HE-CNN square)
    relinearize, ///< OP5: dst = relin(src)
    rescale,     ///< OP4: dst = rescale(src)
    rotate,      ///< OP5: dst = rot(src, step)
    copy,        ///< bookkeeping only (no HE cost)
};

/** @return the paper's module label ("OP1".."OP5") for an opcode. */
const char *opModuleLabel(HeOpKind kind);

/** @return a human-readable opcode name. */
const char *opName(HeOpKind kind);

/** @return true when the opcode is a KeySwitch (Relinearize/Rotate). */
constexpr bool
isKeySwitch(HeOpKind kind)
{
    return kind == HeOpKind::relinearize || kind == HeOpKind::rotate;
}

/** One HE instruction over the register file of a network plan. */
struct HeInstr
{
    HeOpKind kind;
    std::int32_t dst = -1;  ///< destination register
    std::int32_t src = -1;  ///< source register
    std::int32_t pt = -1;   ///< plaintext pool index (pcMult/pcAdd)
    std::int32_t step = 0;  ///< rotation amount (rotate)
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_HE_OP_HPP
