/**
 * @file
 * Detection of hoistable rotation groups in a compiled layer.
 *
 * A rotation group is a maximal run of consecutive rotate instructions
 * reading the same source register. Such a run can execute as one
 * hoisted keyswitch (Halevi-Shoup): the expensive digit decomposition
 * of the shared c1 happens once and every member reuses it through its
 * own Galois permutation. The PlanExecutor uses the groups to dispatch
 * Evaluator::rotateHoisted; the lint OpCountPass uses the same
 * function so its predicted decomposition count matches what the
 * runtime reports (a group of k rotations costs 1 decomposition, not
 * k).
 */
#ifndef FXHENN_HECNN_ROTATION_GROUPS_HPP
#define FXHENN_HECNN_ROTATION_GROUPS_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "src/hecnn/he_op.hpp"

namespace fxhenn::hecnn {

/** One maximal run of same-source rotate instructions. */
struct RotationGroup
{
    std::size_t begin = 0; ///< index of the first member in the instrs
    std::size_t count = 0; ///< number of consecutive rotate members

    bool hoistable() const { return count >= 2; }
};

/**
 * Find every rotation group in @p instrs (single-member runs
 * included). A member that overwrites the shared source (dst == src)
 * ends its group: later rotations of that register read a different
 * value and must start a fresh decomposition.
 */
std::vector<RotationGroup>
findRotationGroups(std::span<const HeInstr> instrs);

/**
 * Number of keyswitch digit decompositions the instruction stream
 * needs when rotation groups are hoisted: one per relinearize plus one
 * per rotation group (instead of one per rotate).
 */
std::size_t countHoistedDecompositions(std::span<const HeInstr> instrs);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_ROTATION_GROUPS_HPP
