/**
 * @file
 * The client role of the MLaaS split (Sec. I): key generation, input
 * packing + encryption, output decryption + logit extraction.
 *
 * A ClientSession owns everything derived from the secret key for one
 * (plan, context) pair: the secret/public keys, the relinearization
 * key and the Galois keys for every rotation step the plan uses. The
 * evaluation keys are exposed by const reference so any number of
 * PlanExecutors (server role) can borrow them concurrently; the secret
 * key never leaves the session.
 *
 * Thread-safety: immutable after construction. encryptInput() derives
 * an independent noise stream per requestIndex, so concurrent requests
 * encrypt deterministically — request r of a batch produces bitwise
 * the same ciphertexts whether it runs serially or on a worker pool.
 */
#ifndef FXHENN_HECNN_CLIENT_SESSION_HPP
#define FXHENN_HECNN_CLIENT_SESSION_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/keygen.hpp"
#include "src/hecnn/plan.hpp"
#include "src/nn/tensor.hpp"

namespace fxhenn::hecnn {

/** Client-side key material + codec for one compiled HE-CNN. */
class ClientSession
{
  public:
    /**
     * Generate all key material for @p plan (public, relinearization,
     * and the Galois keys for every rotation step the plan uses) from
     * @p seed. Throws ConfigError for a values-elided plan.
     */
    ClientSession(const HeNetworkPlan &plan,
                  const ckks::CkksContext &context,
                  std::uint64_t seed = 1);

    const HeNetworkPlan &plan() const { return plan_; }
    const ckks::CkksContext &context() const { return context_; }

    /** Evaluation keys, shared read-only with the server role. */
    const ckks::RelinKey &relinKey() const { return relin_; }
    const ckks::GaloisKeys &galoisKeys() const { return galois_; }

    /** Number of Galois keys generated (rotation key footprint). */
    std::size_t galoisKeyCount() const { return galois_.keys.size(); }

    /**
     * Pack @p input per the plan's gather spec, encode and encrypt it
     * into the plan's input registers. @p requestIndex selects the
     * deterministic per-request noise stream; distinct indices give
     * statistically independent encryption randomness. Throws
     * ConfigError when the tensor's element count does not match the
     * plan's input.
     */
    std::vector<ckks::Ciphertext> encryptInput(
        const nn::Tensor &input, std::uint64_t requestIndex = 0) const;

    /**
     * Decrypt the output registers (each at most once) and extract the
     * logits per the plan's output layout.
     */
    std::vector<double> decryptLogits(
        std::span<const std::optional<ckks::Ciphertext>> regs) const;

    /**
     * Measured headroom over the output registers of @p regs: min of
     * ckks::headroomBits(). Negative means the logits are garbage.
     */
    double outputHeadroomBits(
        std::span<const std::optional<ckks::Ciphertext>> regs) const;

    /**
     * Measured headroom of one ciphertext (ckks::headroomBits with
     * this session's secret key). The noise differential tests probe
     * intermediate layers with it; production servers never see this
     * side of the split.
     */
    double headroomBits(const ckks::Ciphertext &ct) const;

  private:
    const HeNetworkPlan &plan_;
    const ckks::CkksContext &context_;
    std::uint64_t seed_;
    std::size_t minInputElements_ = 0; ///< from the gather spec
    Rng rng_; ///< key-generation stream only
    ckks::KeyGenerator keygen_;
    ckks::Encoder encoder_;
    ckks::Encryptor encryptor_;
    ckks::Decryptor decryptor_;
    ckks::RelinKey relin_;
    ckks::GaloisKeys galois_;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_CLIENT_SESSION_HPP
