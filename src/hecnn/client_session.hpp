/**
 * @file
 * The client role of the MLaaS split (Sec. I): key generation, input
 * packing + encryption, output decryption + logit extraction.
 *
 * A ClientSession owns everything derived from the secret key for one
 * (plan, context) pair: the secret/public keys, the relinearization
 * key and the Galois keys for every rotation step the plan uses. The
 * evaluation keys are exposed by const reference so any number of
 * PlanExecutors (server role) can borrow them concurrently; the secret
 * key never leaves the session.
 *
 * Thread-safety: immutable after construction. encryptInput() derives
 * an independent noise stream per requestIndex, so concurrent requests
 * encrypt deterministically — request r of a batch produces bitwise
 * the same ciphertexts whether it runs serially or on a worker pool.
 */
#ifndef FXHENN_HECNN_CLIENT_SESSION_HPP
#define FXHENN_HECNN_CLIENT_SESSION_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/keygen.hpp"
#include "src/hecnn/plan.hpp"
#include "src/nn/tensor.hpp"

namespace fxhenn::hecnn {

/** Client-side key material + codec for one compiled HE-CNN. */
class ClientSession
{
  public:
    /**
     * Generate all key material for @p plan (public, relinearization,
     * and the Galois keys for every rotation step the plan uses) from
     * @p seed. Throws ConfigError for a values-elided plan.
     */
    ClientSession(const HeNetworkPlan &plan,
                  const ckks::CkksContext &context,
                  std::uint64_t seed = 1);

    const HeNetworkPlan &plan() const { return plan_; }
    const ckks::CkksContext &context() const { return context_; }

    /** Evaluation keys, shared read-only with the server role. */
    const ckks::RelinKey &relinKey() const { return relin_; }
    const ckks::GaloisKeys &galoisKeys() const { return galois_; }

    /** Number of Galois keys generated (rotation key footprint). */
    std::size_t galoisKeyCount() const { return galois_.keys.size(); }

    /** Batch lane count B of the plan (1 = unbatched). */
    std::size_t batchLanes() const { return plan_.batchLanes; }

    /**
     * Check @p input against the plan's gather spec without encrypting
     * anything; throws the same ConfigError encryptInput would. The
     * engine pre-validates batch members with this so one malformed
     * request degrades alone instead of poisoning its batch.
     */
    void validateInput(const nn::Tensor &input) const;

    /**
     * Deterministic encryption-stream key for a batch composed of
     * @p memberIndices (per-request indices, in lane order): a
     * splitmix64 fold, so any distinct member composition draws an
     * independent noise stream and the same composition reproduces
     * bitwise. A single-member fold of {r} equals the stream
     * encryptInput(input, r) uses, keeping B = 1 batches bit-identical
     * to the unbatched path.
     */
    static std::uint64_t batchRequestKey(
        std::span<const std::uint64_t> memberIndices);

    /**
     * Pack B = batchLanes() member inputs lane-wise per the plan's
     * stride-B gather spec and encrypt the shared ciphertexts: member
     * b's element e lands at physical slot s*B + b where the gather
     * places e at lane-0 slot s*B. A null member pointer leaves its
     * lane zeroed (partial batch). @p requestKey selects the noise
     * stream — pass batchRequestKey() over the member indices.
     * Throws ConfigError when inputs.size() != batchLanes() or any
     * non-null member fails validateInput().
     */
    std::vector<ckks::Ciphertext> encryptInputBatch(
        std::span<const nn::Tensor *const> inputs,
        std::uint64_t requestKey) const;

    /**
     * Decrypt the output registers once and demux the per-lane logits:
     * result[b][e] is member b's logit e, read from physical slot
     * outputLayout.pos[e].slot + b. The demux is pure slot extraction
     * — no arithmetic — so each member's logits are a deterministic
     * function of the shared ciphertexts.
     */
    std::vector<std::vector<double>> decryptLogitsBatch(
        std::span<const std::optional<ckks::Ciphertext>> regs) const;

    /**
     * Pack @p input per the plan's gather spec, encode and encrypt it
     * into the plan's input registers. @p requestIndex selects the
     * deterministic per-request noise stream; distinct indices give
     * statistically independent encryption randomness. Throws
     * ConfigError when the tensor's element count does not match the
     * plan's input.
     */
    std::vector<ckks::Ciphertext> encryptInput(
        const nn::Tensor &input, std::uint64_t requestIndex = 0) const;

    /**
     * Decrypt the output registers (each at most once) and extract the
     * logits per the plan's output layout.
     */
    std::vector<double> decryptLogits(
        std::span<const std::optional<ckks::Ciphertext>> regs) const;

    /**
     * Measured headroom over the output registers of @p regs: min of
     * ckks::headroomBits(). Negative means the logits are garbage.
     */
    double outputHeadroomBits(
        std::span<const std::optional<ckks::Ciphertext>> regs) const;

    /**
     * Measured headroom of one ciphertext (ckks::headroomBits with
     * this session's secret key). The noise differential tests probe
     * intermediate layers with it; production servers never see this
     * side of the split.
     */
    double headroomBits(const ckks::Ciphertext &ct) const;

  private:
    const HeNetworkPlan &plan_;
    const ckks::CkksContext &context_;
    std::uint64_t seed_;
    std::size_t minInputElements_ = 0; ///< from the gather spec
    Rng rng_; ///< key-generation stream only
    ckks::KeyGenerator keygen_;
    ckks::Encoder encoder_;
    ckks::Encryptor encryptor_;
    ckks::Decryptor decryptor_;
    ckks::RelinKey relin_;
    ckks::GaloisKeys galois_;
};

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_CLIENT_SESSION_HPP
