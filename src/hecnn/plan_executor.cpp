#include "src/hecnn/plan_executor.hpp"

#include <iostream>

#include "src/common/assert.hpp"
#include "src/common/timer.hpp"
#include "src/hecnn/rotation_groups.hpp"
#include "src/robustness/fault_injection.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::hecnn {

namespace {

/**
 * Internal control-flow signal for GuardPolicy::degrade: thrown by
 * guardViolation(), caught in execute(), never escapes.
 */
struct DegradeSignal
{
    robustness::FailureReport report;
};

} // namespace

PlanExecutor::PlanExecutor(const HeNetworkPlan &plan,
                           const ckks::CkksContext &context,
                           const ckks::RelinKey &relin,
                           const ckks::GaloisKeys &galois,
                           const PlaintextPool &pool,
                           robustness::GuardOptions guard,
                           ExecOptions exec)
    : plan_(plan), context_(context), relin_(relin), galois_(galois),
      pool_(pool), encoder_(context), guardOptions_(guard),
      execOptions_(exec),
      backend_(createBackend(resolveBackendName(exec.backend)))
{
    FXHENN_FATAL_IF(plan.valuesElided,
                    "plan was compiled with elideValues=true and "
                    "cannot be executed");
}

void
PlanExecutor::guardViolation(Run &run, const std::string &layer,
                             const char *op,
                             const std::string &reason) const
{
    FXHENN_TELEM_COUNT("robustness.guard.violations", 1);
    switch (guardOptions_.policy) {
      case robustness::GuardPolicy::strict:
        FXHENN_PANIC_IF(true, "guard: " + reason + " (layer " + layer +
                                  ", op " + std::string(op) + ")");
        break;
      case robustness::GuardPolicy::warn: {
        // One formatted write: concurrent requests each emit a whole
        // line instead of interleaving operator<< fragments.
        FXHENN_TELEM_COUNT("robustness.guard.warnings", 1);
        std::string line = "fxhenn guard warning: " + reason +
                           " (layer " + layer + ", op " + op + ")\n";
        std::cerr << line;
        break;
      }
      case robustness::GuardPolicy::degrade: {
        robustness::FailureReport report;
        report.layer = layer;
        report.op = op;
        report.reason = reason;
        report.trajectory = run.guard.trajectory();
        throw DegradeSignal{std::move(report)};
      }
    }
}

void
PlanExecutor::executeLayer(Run &run, const HeLayerPlan &layer) const
{
    auto &regs = run.regs;
    auto reg = [&](std::int32_t id) -> ckks::Ciphertext & {
        auto &slot = regs[static_cast<std::size_t>(id)];
        FXHENN_ASSERT(slot.has_value(), "read of unwritten register");
        return *slot;
    };

    // Consecutive same-source rotations dispatch as one hoisted group
    // (shared digit decomposition). The groups are recomputed per call
    // from the immutable plan, so the executor stays stateless.
    std::vector<RotationGroup> groups;
    std::size_t next_group = 0;
    if (execOptions_.hoistRotations)
        groups = findRotationGroups(layer.instrs);

    for (std::size_t idx = 0; idx < layer.instrs.size(); ++idx) {
        const auto &instr = layer.instrs[idx];
        while (next_group < groups.size() &&
               groups[next_group].begin < idx)
            ++next_group;
        if (next_group < groups.size() &&
            groups[next_group].begin == idx &&
            groups[next_group].hoistable()) {
            // Guard bookkeeping runs per member up front; a rotate's
            // apply() only forwards the source's predicted state to
            // the destination, and no member (except a trailing
            // dst == src) writes the shared source, so this ordering
            // is equivalent to the serial interleaving.
            const RotationGroup &group = groups[next_group];
            std::vector<int> steps;
            std::vector<std::int32_t> dsts;
            steps.reserve(group.count);
            dsts.reserve(group.count);
            for (std::size_t m = 0; m < group.count; ++m) {
                const auto &member = layer.instrs[group.begin + m];
                if (auto reason = run.guard.preCheck(member))
                    guardViolation(run, layer.name,
                                   opName(member.kind), *reason);
                steps.push_back(member.step);
                dsts.push_back(member.dst);
                run.guard.apply(member);
            }
            auto rotated = run.ops->rotateHoisted(reg(instr.src),
                                                  steps);
            for (std::size_t m = 0; m < group.count; ++m)
                regs[static_cast<std::size_t>(dsts[m])] =
                    std::move(rotated[m]);
            idx = group.begin + group.count - 1;
            continue;
        }
        if (auto reason = run.guard.preCheck(instr))
            guardViolation(run, layer.name, opName(instr.kind),
                           *reason);
        switch (instr.kind) {
          case HeOpKind::pcMult: {
            const auto &pt = pool_.at(instr.pt);
            regs[static_cast<std::size_t>(instr.dst)] =
                run.ops->mulPlain(reg(instr.src), pt);
            break;
          }
          case HeOpKind::pcAdd: {
            // Bias adds encode at the ciphertext's current scale.
            const PlanPlaintext &pool =
                plan_.plaintexts[static_cast<std::size_t>(instr.pt)];
            ckks::Ciphertext &target = reg(instr.src);
            const auto encoded = encoder_.encode(
                std::span<const double>(pool.values), target.scale,
                target.level());
            regs[static_cast<std::size_t>(instr.dst)] =
                run.ops->addPlain(target, encoded);
            break;
          }
          case HeOpKind::ccAdd:
            run.ops->addInplace(reg(instr.dst), reg(instr.src));
            break;
          case HeOpKind::ccMult: {
            const ckks::Ciphertext &src = reg(instr.src);
            regs[static_cast<std::size_t>(instr.dst)] =
                run.ops->mulNoRelin(src, src);
            break;
          }
          case HeOpKind::relinearize:
            regs[static_cast<std::size_t>(instr.dst)] =
                run.ops->relinearize(reg(instr.src));
            break;
          case HeOpKind::rescale:
            if (instr.dst == instr.src) {
                run.ops->rescaleInplace(reg(instr.dst));
            } else {
                regs[static_cast<std::size_t>(instr.dst)] =
                    run.ops->rescale(reg(instr.src));
            }
            break;
          case HeOpKind::rotate:
            regs[static_cast<std::size_t>(instr.dst)] =
                run.ops->rotate(reg(instr.src), instr.step);
            break;
          case HeOpKind::copy:
            regs[static_cast<std::size_t>(instr.dst)] = reg(instr.src);
            break;
        }
        run.guard.apply(instr);
    }
}

ExecutionResult
PlanExecutor::execute(std::vector<ckks::Ciphertext> inputs) const
{
    return execute(std::move(inputs), RunControl{});
}

ExecutionResult
PlanExecutor::execute(std::vector<ckks::Ciphertext> inputs,
                      const RunControl &control) const
{
    FXHENN_FATAL_IF(inputs.size() != plan_.inputCiphertexts(),
                    "plan expects " +
                        std::to_string(plan_.inputCiphertexts()) +
                        " input ciphertexts, got " +
                        std::to_string(inputs.size()));
    FXHENN_TELEM_SCOPED_TIMER("hecnn.infer.ns");
    FXHENN_TELEM_COUNT("hecnn.inferences", 1);

    BackendRunContext runCtx;
    runCtx.plan = &plan_;
    runCtx.context = &context_;
    runCtx.relin = &relin_;
    runCtx.galois = &galois_;
    runCtx.kswMode = execOptions_.kswMode;
    Run run{backend_->beginRun(runCtx),
            RuntimeGuard(plan_, context_, guardOptions_),
            {},
            {}};
    run.regs.resize(static_cast<std::size_t>(plan_.regCount));
    run.layerStats.reserve(plan_.layers.size());
    run.guard.beginInfer();
    for (std::size_t i = 0; i < inputs.size(); ++i)
        run.regs[i] = std::move(inputs[i]);

    ExecutionResult out;
    const bool degrade =
        guardOptions_.policy == robustness::GuardPolicy::degrade;
    for (const auto &layer : plan_.layers) {
        // Cooperative between-layer deadline checkpoint: a request
        // that blew its latency budget degrades here instead of
        // burning worker time on layers nobody will wait for. This is
        // independent of the guard policy — lateness is not an
        // invariant violation.
        if (execOptions_.deadlineCheckpoints && control.deadline &&
            std::chrono::steady_clock::now() > *control.deadline) {
            robustness::FailureReport report;
            report.layer = layer.name;
            report.op = "deadline";
            report.reason = "request deadline exceeded before layer '" +
                            layer.name + "' (cooperative abort)";
            report.trajectory = run.guard.trajectory();
            out.failure = std::move(report);
            break;
        }
        try {
            if (auto fault = robustness::fireFault("ciphertext.limb")) {
                for (auto &slot : run.regs) {
                    if (slot.has_value() && !slot->parts.empty()) {
                        robustness::corruptResidues(slot->parts[0],
                                                    fault->seed);
                        break;
                    }
                }
            }
            const ckks::OpCounts before = run.ops->counts();
            Timer timer;
            run.ops->beginLayer(layer);
            executeLayer(run, layer);
            run.ops->endLayer(layer);
            MeasuredLayerStats row;
            row.name = layer.name;
            row.seconds = timer.elapsedSeconds();
            const ckks::OpCounts &after = run.ops->counts();
            row.executed.ccAdd = after.ccAdd - before.ccAdd;
            row.executed.pcAdd = after.pcAdd - before.pcAdd;
            row.executed.pcMult = after.pcMult - before.pcMult;
            row.executed.ccMult = after.ccMult - before.ccMult;
            row.executed.rescale = after.rescale - before.rescale;
            row.executed.relinearize =
                after.relinearize - before.relinearize;
            row.executed.rotate = after.rotate - before.rotate;
            if (telemetry::enabled()) {
                telemetry::histogram("hecnn.layer." + layer.name +
                                     ".ns")
                    .record(static_cast<std::uint64_t>(row.seconds *
                                                       1e9));
            }
            run.layerStats.push_back(std::move(row));
            if (control.layerProbe)
                control.layerProbe(
                    static_cast<std::size_t>(&layer -
                                             plan_.layers.data()),
                    run.regs);
            if (auto reason = run.guard.checkLayerEnd(layer, run.regs))
                guardViolation(run, layer.name, "layer-end", *reason);
        } catch (DegradeSignal &sig) {
            out.failure = std::move(sig.report);
        } catch (const ConfigError &e) {
            if (!degrade)
                throw;
            robustness::FailureReport report;
            report.layer = layer.name;
            report.op = "exception";
            report.reason = e.what();
            report.trajectory = run.guard.trajectory();
            out.failure = std::move(report);
        } catch (const InternalError &e) {
            if (!degrade)
                throw;
            robustness::FailureReport report;
            report.layer = layer.name;
            report.op = "exception";
            report.reason = e.what();
            report.trajectory = run.guard.trajectory();
            out.failure = std::move(report);
        }
        if (out.failure)
            break;
    }
    out.budget = run.guard.trajectory();
    out.executed = run.ops->counts();
    out.backendName = backend_->name();
    out.simulated = run.ops->timeline();
    out.layerStats = std::move(run.layerStats);
    out.regs = std::move(run.regs);
    if (out.failure)
        FXHENN_TELEM_COUNT("robustness.guard.degraded_runs", 1);
    return out;
}

} // namespace fxhenn::hecnn
