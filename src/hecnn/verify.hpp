/**
 * @file
 * One-call encrypted-vs-plaintext verification.
 *
 * The repository's correctness metric (DESIGN.md): compile a network,
 * run one input through both the plaintext forward pass and the full
 * encrypted pipeline, and compare logits. Shared by the CLI `verify`
 * command, the examples and the test suite.
 */
#ifndef FXHENN_HECNN_VERIFY_HPP
#define FXHENN_HECNN_VERIFY_HPP

#include <cstdint>
#include <vector>

#include "src/ckks/params.hpp"
#include "src/hecnn/stats.hpp"
#include "src/nn/network.hpp"

namespace fxhenn::hecnn {

/** Result of one encrypted-vs-plaintext comparison. */
struct VerifyResult
{
    double maxAbsError = 0.0;  ///< max |encrypted - plaintext| logit
    bool argmaxMatches = false;
    std::uint64_t hopsExecuted = 0;
    std::vector<double> encryptedLogits;
    std::vector<double> plaintextLogits;
    /** Measured per-layer wall time + op breakdown of the run. */
    std::vector<MeasuredLayerStats> layers;

    /** Pass criterion used across the repository. */
    bool passed(double tolerance = 1e-2) const
    {
        return maxAbsError < tolerance && argmaxMatches;
    }
};

/**
 * Compile @p net under @p params, run encrypted inference on a seeded
 * synthetic input, and compare against the plaintext forward pass.
 *
 * @param inputSeed seed of the synthetic input image
 * @param keySeed   seed of the key material / encryption randomness
 */
VerifyResult verifyAgainstPlaintext(const nn::Network &net,
                                    const ckks::CkksParams &params,
                                    std::uint64_t inputSeed = 1,
                                    std::uint64_t keySeed = 1);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_VERIFY_HPP
