/**
 * @file
 * One-call encrypted-vs-plaintext verification.
 *
 * The repository's correctness metric (DESIGN.md): compile a network,
 * run one input through both the plaintext forward pass and the full
 * encrypted pipeline, and compare logits. Shared by the CLI `verify`
 * command, the examples and the test suite.
 */
#ifndef FXHENN_HECNN_VERIFY_HPP
#define FXHENN_HECNN_VERIFY_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ckks/params.hpp"
#include "src/hecnn/backend.hpp"
#include "src/hecnn/stats.hpp"
#include "src/nn/network.hpp"
#include "src/robustness/guard.hpp"

namespace fxhenn::hecnn {

/** Knobs of one verifyAgainstPlaintext() run. */
struct VerifyOptions
{
    /** Seed of the synthetic input image. */
    std::uint64_t inputSeed = 1;
    /** Seed of the key material / encryption randomness. */
    std::uint64_t keySeed = 1;
    /** Guard options for the encrypted run; degrade by default so a
     * broken run yields a FailureReport instead of garbage logits. */
    robustness::GuardOptions guard{robustness::GuardPolicy::degrade};
    /**
     * Execution backend of the encrypted run, by registry name (empty
     * resolves FXHENN_BACKEND, default "cpu"). With a simulating
     * backend ("fpga-sim") the result also carries the per-layer
     * predicted-vs-simulated latency classification.
     */
    std::string backend;
    /**
     * Warn-level gate on the simulated latency: a layer whose
     * event-driven cost diverges from the DSE's closed-form prediction
     * by more than this fraction sets VerifyResult::latencyWarning
     * (layer "backend", op "latency"). Latency divergence never fails
     * passed() — the model being off is a modeling bug, not a crypto
     * one. The default matches the agreement the pipeline-sim tests
     * pin (±25 % per layer) with headroom for small layers.
     */
    double latencyToleranceFrac = 0.5;
};

/** Result of one encrypted-vs-plaintext comparison. */
struct VerifyResult
{
    double maxAbsError = 0.0;  ///< max |encrypted - plaintext| logit
    bool argmaxMatches = false;
    std::uint64_t hopsExecuted = 0;
    std::vector<double> encryptedLogits;
    std::vector<double> plaintextLogits;
    /** Measured per-layer wall time + op breakdown of the run. */
    std::vector<MeasuredLayerStats> layers;
    /**
     * Failure diagnosis: set when the guarded run degraded, when the
     * measured output headroom went negative, or when the logits
     * diverged catastrophically (corrupted ciphertext state). A set
     * failure always fails passed().
     */
    std::optional<robustness::FailureReport> failure;
    /** Predicted per-layer noise-budget trajectory. */
    std::vector<robustness::BudgetSample> noiseBudget;
    /** Predicted headroom after the final layer (bits). */
    double predictedHeadroomBits = 0.0;
    /** Measured headroom of the output ciphertexts (bits). */
    double measuredHeadroomBits = 0.0;
    /** Registry name of the backend that ran the encrypted side. */
    std::string backendName;
    /** Per-layer predicted-vs-simulated latency rows (empty unless the
     * backend simulates hardware, e.g. "fpga-sim"). */
    std::vector<SimLayerLatency> simulatedLatency;
    /** Max per-layer |simulated - predicted| / predicted. */
    double maxLatencyErrorFrac = 0.0;
    /**
     * Warn-level classification: set when some layer's simulated
     * latency diverged from the DSE prediction beyond
     * VerifyOptions::latencyToleranceFrac (layer "backend", op
     * "latency"). Rendered by renderDiagnosis() but never fails
     * passed() — see VerifyOptions.
     */
    std::optional<robustness::FailureReport> latencyWarning;

    /** Pass criterion used across the repository. */
    bool passed(double tolerance = 1e-2) const
    {
        return !failure.has_value() && maxAbsError < tolerance &&
               argmaxMatches;
    }

    /**
     * Render the failure-diagnosis section: the predicted headroom
     * trajectory, measured-vs-predicted output headroom, and the
     * FailureReport when the run failed.
     */
    std::string renderDiagnosis() const;
};

/**
 * Compile @p net under @p params, run encrypted inference on a seeded
 * synthetic input, and compare against the plaintext forward pass.
 *
 * @param inputSeed seed of the synthetic input image
 * @param keySeed   seed of the key material / encryption randomness
 * @param guard     guard options for the encrypted run; defaults to
 *                  GuardPolicy::degrade so a broken run yields a
 *                  FailureReport instead of garbage logits
 */
VerifyResult verifyAgainstPlaintext(
    const nn::Network &net, const ckks::CkksParams &params,
    std::uint64_t inputSeed = 1, std::uint64_t keySeed = 1,
    const robustness::GuardOptions &guard = {
        robustness::GuardPolicy::degrade});

/** verifyAgainstPlaintext() with the full option set (backend
 * selection and the predicted-vs-measured latency gate). */
VerifyResult verifyAgainstPlaintext(const nn::Network &net,
                                    const ckks::CkksParams &params,
                                    const VerifyOptions &options);

/**
 * Render the per-layer predicted-vs-simulated latency table of a
 * simulated run (the `fxhenn verify --backend fpga-sim` output).
 * Returns "" when @p rows is empty.
 */
std::string renderLatencyTable(
    const std::vector<SimLayerLatency> &rows);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_VERIFY_HPP
