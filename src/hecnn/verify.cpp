#include "src/hecnn/verify.hpp"

#include <cmath>
#include <sstream>

#include "src/ckks/context.hpp"
#include "src/common/table_printer.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {

namespace {

std::string
fmtBits(double v)
{
    std::ostringstream oss;
    oss.precision(3);
    oss << v;
    return oss.str();
}

} // namespace

std::string
VerifyResult::renderDiagnosis() const
{
    std::ostringstream oss;
    oss << "noise-budget trajectory (predicted):\n";
    if (noiseBudget.empty())
        oss << "    (none recorded)\n";
    else
        oss << robustness::renderTrajectory(noiseBudget) << "\n";
    oss << "  predicted output headroom: "
        << fmtBits(predictedHeadroomBits) << " bits\n";
    oss << "  measured output headroom:  "
        << fmtBits(measuredHeadroomBits) << " bits\n";
    if (latencyWarning) {
        // Warn level: rendered, never fatal — see VerifyOptions.
        oss << "warning (non-fatal):\n" << latencyWarning->render();
    }
    if (failure)
        oss << failure->render();
    return oss.str();
}

std::string
renderLatencyTable(const std::vector<SimLayerLatency> &rows)
{
    if (rows.empty())
        return "";
    TablePrinter table({"Layer", "Predicted (ms)", "Simulated (ms)",
                        "Error (%)"});
    double predicted = 0.0;
    double simulated = 0.0;
    for (const auto &row : rows) {
        predicted += row.predictedSeconds;
        simulated += row.simulatedSeconds;
        table.addRow({row.layer, fmtF(row.predictedSeconds * 1e3, 3),
                      fmtF(row.simulatedSeconds * 1e3, 3),
                      fmtF(row.errorFrac() * 100.0, 2)});
    }
    table.addSeparator();
    const double totalErr =
        predicted > 0.0
            ? std::abs(simulated - predicted) / predicted
            : 0.0;
    table.addRow({"total", fmtF(predicted * 1e3, 3),
                  fmtF(simulated * 1e3, 3),
                  fmtF(totalErr * 100.0, 2)});
    std::ostringstream oss;
    table.print(oss);
    return oss.str();
}

VerifyResult
verifyAgainstPlaintext(const nn::Network &net,
                       const ckks::CkksParams &params,
                       std::uint64_t inputSeed, std::uint64_t keySeed,
                       const robustness::GuardOptions &guard)
{
    VerifyOptions options;
    options.inputSeed = inputSeed;
    options.keySeed = keySeed;
    options.guard = guard;
    return verifyAgainstPlaintext(net, params, options);
}

VerifyResult
verifyAgainstPlaintext(const nn::Network &net,
                       const ckks::CkksParams &params,
                       const VerifyOptions &options)
{
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    ExecOptions exec;
    exec.backend = options.backend;
    Runtime runtime(plan, ctx, options.keySeed, options.guard, exec);

    const nn::Tensor input = nn::syntheticInput(net, options.inputSeed);
    const nn::Tensor expected = net.forward(input);

    VerifyResult result;
    auto outcome = runtime.inferGuarded(input);
    result.backendName = outcome.backendName;
    result.simulatedLatency = std::move(outcome.simulated);
    result.noiseBudget = std::move(outcome.budget);
    if (!result.noiseBudget.empty())
        result.predictedHeadroomBits =
            result.noiseBudget.back().headroomBits;
    result.hopsExecuted = runtime.executedCounts().total();
    result.layers = runtime.lastLayerStats();
    if (outcome.failure) {
        result.failure = std::move(outcome.failure);
        return result;
    }

    result.encryptedLogits = std::move(outcome.logits);
    result.plaintextLogits.assign(expected.data().begin(),
                                  expected.data().end());
    result.measuredHeadroomBits = runtime.outputHeadroomBits();

    std::size_t argmax_he = 0, argmax_pt = 0;
    for (std::size_t i = 0; i < result.encryptedLogits.size(); ++i) {
        result.maxAbsError = std::max(
            result.maxAbsError,
            std::abs(result.encryptedLogits[i] -
                     result.plaintextLogits[i]));
        if (result.encryptedLogits[i] >
            result.encryptedLogits[argmax_he])
            argmax_he = i;
        if (result.plaintextLogits[i] >
            result.plaintextLogits[argmax_pt])
            argmax_pt = i;
    }
    result.argmaxMatches = (argmax_he == argmax_pt);

    // Post-hoc classification. A negative measured headroom means the
    // message overflowed the modulus. The predicted trajectory is a
    // worst-case bound on coefficient growth, so a healthy run can
    // never measure below it: a deficit proves non-modeled noise,
    // i.e. ciphertext corruption (residue damage saturates near
    // q/2/scale and so never trips a naive divergence threshold).
    const std::string where =
        result.layers.empty() ? std::string("output")
                              : result.layers.back().name;
    if (result.measuredHeadroomBits < 0.0) {
        robustness::FailureReport report;
        report.layer = where;
        report.op = "decrypt";
        report.reason = "noise budget exhausted: measured output "
                        "headroom " +
                        fmtBits(result.measuredHeadroomBits) + " bits";
        report.trajectory = result.noiseBudget;
        result.failure = std::move(report);
    } else if (!result.noiseBudget.empty() &&
               result.measuredHeadroomBits <
                   result.predictedHeadroomBits - 0.5) {
        robustness::FailureReport report;
        report.layer = where;
        report.op = "decrypt";
        report.reason =
            "measured output headroom " +
            fmtBits(result.measuredHeadroomBits) +
            " bits fell below the worst-case prediction of " +
            fmtBits(result.predictedHeadroomBits) +
            " bits: ciphertext state corrupted";
        report.trajectory = result.noiseBudget;
        result.failure = std::move(report);
    } else if (result.maxAbsError > 1e3) {
        robustness::FailureReport report;
        report.layer = where;
        report.op = "decrypt";
        report.reason = "catastrophic logit divergence (max |err| = " +
                        fmtBits(result.maxAbsError) +
                        "): ciphertext state corrupted";
        report.trajectory = result.noiseBudget;
        result.failure = std::move(report);
    }

    // Predicted-vs-measured latency classification — the latency twin
    // of the headroom check above, fed by a simulating backend's
    // timeline. Gated at warn level: a divergent layer means the
    // closed-form model and the event-driven schedule disagree, which
    // is a performance-model bug to investigate, not a wrong result.
    const SimLayerLatency *worst = nullptr;
    for (const auto &row : result.simulatedLatency) {
        const double err = row.errorFrac();
        if (err > result.maxLatencyErrorFrac) {
            result.maxLatencyErrorFrac = err;
            worst = &row;
        }
    }
    if (worst != nullptr &&
        result.maxLatencyErrorFrac > options.latencyToleranceFrac) {
        robustness::FailureReport report;
        report.layer = "backend";
        report.op = "latency";
        report.reason =
            "simulated latency of layer '" + worst->layer +
            "' diverges from the DSE prediction by " +
            fmtBits(result.maxLatencyErrorFrac * 100.0) +
            "% (tolerance " +
            fmtBits(options.latencyToleranceFrac * 100.0) + "%)";
        result.latencyWarning = std::move(report);
    }
    return result;
}

} // namespace fxhenn::hecnn
