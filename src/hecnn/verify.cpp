#include "src/hecnn/verify.hpp"

#include <cmath>

#include "src/ckks/context.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {

VerifyResult
verifyAgainstPlaintext(const nn::Network &net,
                       const ckks::CkksParams &params,
                       std::uint64_t inputSeed, std::uint64_t keySeed)
{
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, keySeed);

    const nn::Tensor input = nn::syntheticInput(net, inputSeed);
    const nn::Tensor expected = net.forward(input);

    VerifyResult result;
    result.encryptedLogits = runtime.infer(input);
    result.plaintextLogits.assign(expected.data().begin(),
                                  expected.data().end());
    result.hopsExecuted = runtime.executedCounts().total();
    result.layers = runtime.lastLayerStats();

    std::size_t argmax_he = 0, argmax_pt = 0;
    for (std::size_t i = 0; i < result.encryptedLogits.size(); ++i) {
        result.maxAbsError = std::max(
            result.maxAbsError,
            std::abs(result.encryptedLogits[i] -
                     result.plaintextLogits[i]));
        if (result.encryptedLogits[i] >
            result.encryptedLogits[argmax_he])
            argmax_he = i;
        if (result.plaintextLogits[i] >
            result.plaintextLogits[argmax_pt])
            argmax_pt = i;
    }
    result.argmaxMatches = (argmax_he == argmax_pt);
    return result;
}

} // namespace fxhenn::hecnn
