#include "src/hecnn/verify.hpp"

#include <cmath>
#include <sstream>

#include "src/ckks/context.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {

namespace {

std::string
fmtBits(double v)
{
    std::ostringstream oss;
    oss.precision(3);
    oss << v;
    return oss.str();
}

} // namespace

std::string
VerifyResult::renderDiagnosis() const
{
    std::ostringstream oss;
    oss << "noise-budget trajectory (predicted):\n";
    if (noiseBudget.empty())
        oss << "    (none recorded)\n";
    else
        oss << robustness::renderTrajectory(noiseBudget) << "\n";
    oss << "  predicted output headroom: "
        << fmtBits(predictedHeadroomBits) << " bits\n";
    oss << "  measured output headroom:  "
        << fmtBits(measuredHeadroomBits) << " bits\n";
    if (failure)
        oss << failure->render();
    return oss.str();
}

VerifyResult
verifyAgainstPlaintext(const nn::Network &net,
                       const ckks::CkksParams &params,
                       std::uint64_t inputSeed, std::uint64_t keySeed,
                       const robustness::GuardOptions &guard)
{
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, keySeed, guard);

    const nn::Tensor input = nn::syntheticInput(net, inputSeed);
    const nn::Tensor expected = net.forward(input);

    VerifyResult result;
    auto outcome = runtime.inferGuarded(input);
    result.noiseBudget = std::move(outcome.budget);
    if (!result.noiseBudget.empty())
        result.predictedHeadroomBits =
            result.noiseBudget.back().headroomBits;
    result.hopsExecuted = runtime.executedCounts().total();
    result.layers = runtime.lastLayerStats();
    if (outcome.failure) {
        result.failure = std::move(outcome.failure);
        return result;
    }

    result.encryptedLogits = std::move(outcome.logits);
    result.plaintextLogits.assign(expected.data().begin(),
                                  expected.data().end());
    result.measuredHeadroomBits = runtime.outputHeadroomBits();

    std::size_t argmax_he = 0, argmax_pt = 0;
    for (std::size_t i = 0; i < result.encryptedLogits.size(); ++i) {
        result.maxAbsError = std::max(
            result.maxAbsError,
            std::abs(result.encryptedLogits[i] -
                     result.plaintextLogits[i]));
        if (result.encryptedLogits[i] >
            result.encryptedLogits[argmax_he])
            argmax_he = i;
        if (result.plaintextLogits[i] >
            result.plaintextLogits[argmax_pt])
            argmax_pt = i;
    }
    result.argmaxMatches = (argmax_he == argmax_pt);

    // Post-hoc classification. A negative measured headroom means the
    // message overflowed the modulus. The predicted trajectory is a
    // worst-case bound on coefficient growth, so a healthy run can
    // never measure below it: a deficit proves non-modeled noise,
    // i.e. ciphertext corruption (residue damage saturates near
    // q/2/scale and so never trips a naive divergence threshold).
    const std::string where =
        result.layers.empty() ? std::string("output")
                              : result.layers.back().name;
    if (result.measuredHeadroomBits < 0.0) {
        robustness::FailureReport report;
        report.layer = where;
        report.op = "decrypt";
        report.reason = "noise budget exhausted: measured output "
                        "headroom " +
                        fmtBits(result.measuredHeadroomBits) + " bits";
        report.trajectory = result.noiseBudget;
        result.failure = std::move(report);
    } else if (!result.noiseBudget.empty() &&
               result.measuredHeadroomBits <
                   result.predictedHeadroomBits - 0.5) {
        robustness::FailureReport report;
        report.layer = where;
        report.op = "decrypt";
        report.reason =
            "measured output headroom " +
            fmtBits(result.measuredHeadroomBits) +
            " bits fell below the worst-case prediction of " +
            fmtBits(result.predictedHeadroomBits) +
            " bits: ciphertext state corrupted";
        report.trajectory = result.noiseBudget;
        result.failure = std::move(report);
    } else if (result.maxAbsError > 1e3) {
        robustness::FailureReport report;
        report.layer = where;
        report.op = "decrypt";
        report.reason = "catastrophic logit divergence (max |err| = " +
                        fmtBits(result.maxAbsError) +
                        "): ciphertext state corrupted";
        report.trajectory = result.noiseBudget;
        result.failure = std::move(report);
    }
    return result;
}

} // namespace fxhenn::hecnn
