#include "src/hecnn/plaintext_pool.hpp"

#include "src/ckks/encoder.hpp"
#include "src/common/assert.hpp"
#include "src/common/parallel.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::hecnn {

PlaintextPool::PlaintextPool(const HeNetworkPlan &plan,
                             const ckks::CkksContext &context)
{
    FXHENN_TELEM_SCOPED_TIMER("hecnn.plaintext_pool.build.ns");
    pool_.resize(plan.plaintexts.size());

    // Collect the distinct pt_ids pcMult references (pcAdd encodings
    // depend on the run-time ciphertext scale and stay per-request).
    std::vector<std::int32_t> wanted;
    std::vector<bool> seen(plan.plaintexts.size(), false);
    for (const auto &layer : plan.layers) {
        for (const auto &instr : layer.instrs) {
            if (instr.kind != HeOpKind::pcMult)
                continue;
            const auto id = static_cast<std::size_t>(instr.pt);
            FXHENN_ASSERT(id < plan.plaintexts.size(),
                          "pcMult references an out-of-range pt_id");
            if (!seen[id]) {
                seen[id] = true;
                wanted.push_back(instr.pt);
            }
        }
    }

    const ckks::Encoder encoder(context);
    const double scale = context.params().scale;
    parallelFor(wanted.size(), [&](std::size_t w) {
        const auto id = static_cast<std::size_t>(wanted[w]);
        const PlanPlaintext &pt = plan.plaintexts[id];
        FXHENN_ASSERT(pt.atSchemeScale,
                      "only scheme-scale plaintexts are poolable");
        pool_[id] = encoder.encode(std::span<const double>(pt.values),
                                   scale, pt.level);
    });

    count_ = wanted.size();
    for (const auto &slot : pool_) {
        if (slot.has_value())
            bytes_ += slot->poly.limbCount() * slot->poly.n() *
                      sizeof(std::uint64_t);
    }
    FXHENN_TELEM_COUNT("hecnn.plaintext_pool.entries", count_);
}

const ckks::Plaintext &
PlaintextPool::at(std::int32_t pt_id) const
{
    const auto id = static_cast<std::size_t>(pt_id);
    FXHENN_ASSERT(id < pool_.size() && pool_[id].has_value(),
                  "plaintext pool lookup of an unpooled pt_id");
    return *pool_[id];
}

bool
PlaintextPool::contains(std::int32_t pt_id) const
{
    return pt_id >= 0 && static_cast<std::size_t>(pt_id) < pool_.size() &&
           pool_[static_cast<std::size_t>(pt_id)].has_value();
}

} // namespace fxhenn::hecnn
