/**
 * @file
 * Static statistics over compiled HE-CNN plans, plus the measured
 * per-layer runtime statistics the telemetry layer collects.
 *
 * Produces the quantities the paper tabulates: per-layer and total HOP
 * counts, KeySwitch counts (Tables IV, VI, VII), and the server-side
 * model size — packed weight plaintexts plus relinearization and Galois
 * keys (the "Mod.Size" column of Table VI). The measured side
 * (MeasuredLayerStats) is the dynamic counterpart: wall time and
 * executed-op breakdown per layer from an actual encrypted inference,
 * the software analogue of the paper's Fig. 7 layer breakdown.
 */
#ifndef FXHENN_HECNN_STATS_HPP
#define FXHENN_HECNN_STATS_HPP

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/ckks/evaluator.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/** One row of the per-layer statistics table. */
struct LayerStats
{
    std::string name;
    LayerClass cls;
    std::size_t nIn;     ///< independent input streams
    std::size_t levelIn; ///< ciphertext level at entry
    HeOpCounts counts;
};

/** Per-layer rows for @p plan. */
std::vector<LayerStats> layerStats(const HeNetworkPlan &plan);

/** Breakdown of the server-side model footprint in bytes. */
struct ModelSize
{
    std::size_t weightPlaintexts = 0; ///< packed weights, masks, biases
    std::size_t relinKey = 0;
    std::size_t galoisKeys = 0;

    std::size_t
    total() const
    {
        return weightPlaintexts + relinKey + galoisKeys;
    }
    double totalMB() const { return double(total()) / (1024.0 * 1024.0); }
};

/** Compute the model footprint of @p plan. */
ModelSize modelSize(const HeNetworkPlan &plan);

/** The paper's layer label string, e.g. "Cnv1, Act1, Fc1, Act2, Fc2". */
std::string layerSummary(const HeNetworkPlan &plan);

/**
 * One measured layer of an encrypted inference: wall time plus the
 * evaluator ops the layer actually executed (delta of the evaluator's
 * counters across the layer).
 */
struct MeasuredLayerStats
{
    std::string name;
    double seconds = 0.0;
    ckks::OpCounts executed;
};

/**
 * Render measured layers as a JSON array:
 * [{"layer": n, "seconds": s, "ops": {"cc_add": .., "pc_add": ..,
 *   "pc_mult": .., "cc_mult": .., "rescale": .., "relinearize": ..,
 *   "rotate": ..}}, ...]
 */
void writeMeasuredStatsJson(std::span<const MeasuredLayerStats> rows,
                            std::ostream &os);

/** Render measured layers as a human-readable table. */
std::string renderMeasuredStats(
    std::span<const MeasuredLayerStats> rows);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_STATS_HPP
