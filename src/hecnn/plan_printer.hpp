/**
 * @file
 * Human-readable rendering of compiled HE-CNN plans.
 *
 * Two levels of detail:
 *  - summarize(): one table row per layer (class, level, N_in, op
 *    counts) — the Listing-1-style view the paper extracts from LoLa;
 *  - disassemble(): the full instruction stream of one layer, for
 *    debugging packings.
 */
#ifndef FXHENN_HECNN_PLAN_PRINTER_HPP
#define FXHENN_HECNN_PLAN_PRINTER_HPP

#include <iosfwd>
#include <string>

#include "src/hecnn/plan.hpp"

namespace fxhenn::hecnn {

/** Print the per-layer summary table of @p plan to @p os. */
void summarize(const HeNetworkPlan &plan, std::ostream &os);

/** Render one instruction as text (e.g. "PCmult r5 <- r2 * pt17"). */
std::string formatInstr(const HeInstr &instr);

/**
 * Print the instruction stream of layer @p layerIndex, at most
 * @p maxInstrs lines (0 = all).
 */
void disassemble(const HeNetworkPlan &plan, std::size_t layerIndex,
                 std::ostream &os, std::size_t maxInstrs = 0);

} // namespace fxhenn::hecnn

#endif // FXHENN_HECNN_PLAN_PRINTER_HPP
