#include "src/telemetry/telemetry.hpp"

#include <bit>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "src/common/thread_annotations.hpp"

namespace fxhenn::telemetry {

namespace {

std::atomic<bool> g_enabled{false};

/**
 * Name -> metric maps. Node-based so references handed out by
 * counter()/histogram() stay valid forever; ordered so the JSON export
 * is deterministic.
 */
struct Registry
{
    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }

    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
        FXHENN_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms FXHENN_GUARDED_BY(mutex);
};

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

} // namespace

#if FXHENN_TELEMETRY_ENABLED
bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}
#endif

void
setEnabled(bool on)
{
    g_enabled.store(on && compiledIn(), std::memory_order_relaxed);
}

void
Histogram::record(std::uint64_t value)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);

    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }

    const std::size_t idx =
        value == 0 ? 0
                   : std::min<std::size_t>(std::bit_width(value),
                                           kBuckets - 1);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~0ull, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

Counter &
counter(std::string_view name)
{
    auto &reg = Registry::instance();
    std::scoped_lock lock(reg.mutex);
    auto it = reg.counters.find(name);
    if (it == reg.counters.end()) {
        it = reg.counters
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Histogram &
histogram(std::string_view name)
{
    auto &reg = Registry::instance();
    std::scoped_lock lock(reg.mutex);
    auto it = reg.histograms.find(name);
    if (it == reg.histograms.end()) {
        it = reg.histograms
                 .emplace(std::string(name),
                          std::make_unique<Histogram>())
                 .first;
    }
    return *it->second;
}

void
reset()
{
    auto &reg = Registry::instance();
    std::scoped_lock lock(reg.mutex);
    for (auto &[name, c] : reg.counters)
        c->reset();
    for (auto &[name, h] : reg.histograms)
        h->reset();
}

void
writeJson(std::ostream &os)
{
    auto &reg = Registry::instance();
    std::scoped_lock lock(reg.mutex);

    os << "{\n  \"schema\": \"fxhenn-telemetry-v1\",\n"
       << "  \"compiled\": " << (compiledIn() ? "true" : "false")
       << ",\n  \"enabled\": " << (enabled() ? "true" : "false")
       << ",\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : reg.counters) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        os << ": " << c->value();
    }
    os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";

    first = true;
    for (const auto &[name, h] : reg.histograms) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        const std::uint64_t count = h->count();
        os << ": {\"count\": " << count << ", \"sum\": " << h->sum()
           << ", \"min\": " << (count == 0 ? 0 : h->min())
           << ", \"max\": " << h->max() << ", \"mean\": "
           << (count == 0
                   ? 0.0
                   : static_cast<double>(h->sum()) /
                         static_cast<double>(count))
           << ", \"buckets\": {";
        bool bfirst = true;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            const std::uint64_t b = h->bucket(i);
            if (b == 0)
                continue;
            if (!bfirst)
                os << ", ";
            bfirst = false;
            os << '"' << i << "\": " << b;
        }
        os << "}}";
    }
    os << (first ? "}" : "\n  }") << "\n}\n";
}

std::string
toJson()
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

bool
writeJsonFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return static_cast<bool>(os);
}

} // namespace fxhenn::telemetry
