/**
 * @file
 * Lightweight telemetry for the HE-CNN stack: monotonic counters,
 * scoped wall-clock timers and log2-bucketed histograms behind a
 * process-global registry, exported as JSON.
 *
 * The instrumentation is the measured counterpart of the paper's
 * analytical latency model (Eqs. 1-9): the evaluator reports how many
 * HE ops and NTT transforms actually ran and how long they took, so
 * every perf PR can prove itself against a recorded baseline
 * (BENCH_kernels.json).
 *
 * Overhead discipline, two gates:
 *  - compile time: building with FXHENN_TELEMETRY_ENABLED=0 (CMake
 *    option FXHENN_TELEMETRY=OFF) expands every probe macro to nothing,
 *    removing telemetry from the hot paths entirely;
 *  - run time: probes compiled in are still inert until setEnabled(true)
 *    — the only cost on a disabled probe is one relaxed atomic load and
 *    a predicted branch.
 *
 * All recording paths are thread-safe (atomics with relaxed ordering;
 * the registry map is mutex-guarded and only touched on first lookup of
 * a metric name — probe macros cache the resulting reference in a
 * function-local static).
 */
#ifndef FXHENN_TELEMETRY_TELEMETRY_HPP
#define FXHENN_TELEMETRY_TELEMETRY_HPP

#ifndef FXHENN_TELEMETRY_ENABLED
#define FXHENN_TELEMETRY_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace fxhenn::telemetry {

/** @return true when probes were compiled in (FXHENN_TELEMETRY). */
constexpr bool
compiledIn()
{
    return FXHENN_TELEMETRY_ENABLED != 0;
}

#if FXHENN_TELEMETRY_ENABLED
/** @return true when recording is live (compiled in AND enabled). */
bool enabled();
#else
constexpr bool enabled() { return false; }
#endif

/** Turn recording on or off (no-op when compiled out). */
void setEnabled(bool on);

/** A named monotonic counter. */
class Counter
{
  public:
    void
    add(std::uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A named distribution: count, sum, min, max plus power-of-two buckets
 * (bucket i counts values v with 2^(i-1) <= v < 2^i; bucket 0 counts
 * zeros). Timers record nanoseconds into histograms named "*.ns".
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void record(std::uint64_t value);

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Minimum recorded value (UINT64_MAX when empty). */
    std::uint64_t
    min() const
    {
        return min_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucket(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~0ull};
    std::atomic<std::uint64_t> max_{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/**
 * Find-or-create the counter named @p name. The reference stays valid
 * for the process lifetime (reset() zeroes values, never removes
 * metrics).
 */
Counter &counter(std::string_view name);

/** Find-or-create the histogram named @p name. */
Histogram &histogram(std::string_view name);

/** Zero every registered metric (names stay registered). */
void reset();

/**
 * Export every registered metric as one JSON document:
 * {"schema": "fxhenn-telemetry-v1", "compiled": b, "enabled": b,
 *  "counters": {name: value}, "histograms": {name: {count, sum, min,
 *  max, mean, buckets: {log2_exponent: count}}}}.
 */
void writeJson(std::ostream &os);

/** writeJson() into a string. */
std::string toJson();

/** writeJson() into @p path; @return false when the file can't open. */
bool writeJsonFile(const std::string &path);

/**
 * Records the wall time of a scope into a Histogram, in nanoseconds.
 * Pass nullptr to make the timer inert (the disabled-probe path).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *stat)
        : stat_(stat),
          start_(stat ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{})
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (!stat_)
            return;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        stat_->record(static_cast<std::uint64_t>(ns));
    }

  private:
    Histogram *stat_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace fxhenn::telemetry

#define FXHENN_TELEM_CONCAT2(a, b) a##b
#define FXHENN_TELEM_CONCAT(a, b) FXHENN_TELEM_CONCAT2(a, b)

#if FXHENN_TELEMETRY_ENABLED

/**
 * Add @p delta to the counter @p name (a string literal). The registry
 * lookup happens once per call site, on the first enabled pass.
 */
#define FXHENN_TELEM_COUNT(name, delta)                                     \
    do {                                                                    \
        if (::fxhenn::telemetry::enabled()) {                               \
            static ::fxhenn::telemetry::Counter &fxhenn_telem_c_ =          \
                ::fxhenn::telemetry::counter(name);                         \
            fxhenn_telem_c_.add(delta);                                     \
        }                                                                   \
    } while (0)

/** Time the rest of the enclosing scope into histogram @p name. */
#define FXHENN_TELEM_SCOPED_TIMER(name)                                     \
    ::fxhenn::telemetry::ScopedTimer FXHENN_TELEM_CONCAT(                   \
        fxhenn_telem_scope_, __LINE__)(                                     \
        ::fxhenn::telemetry::enabled()                                      \
            ? &[]() -> ::fxhenn::telemetry::Histogram & {                   \
                  static ::fxhenn::telemetry::Histogram &h =                \
                      ::fxhenn::telemetry::histogram(name);                 \
                  return h;                                                 \
              }()                                                           \
            : nullptr)

#else // !FXHENN_TELEMETRY_ENABLED

#define FXHENN_TELEM_COUNT(name, delta)                                     \
    do {                                                                    \
    } while (0)
#define FXHENN_TELEM_SCOPED_TIMER(name)                                     \
    do {                                                                    \
    } while (0)

#endif // FXHENN_TELEMETRY_ENABLED

#endif // FXHENN_TELEMETRY_TELEMETRY_HPP
