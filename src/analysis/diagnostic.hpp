/**
 * @file
 * Diagnostics for the plan static-analysis framework.
 *
 * Every verifier pass reports findings as Diagnostic records: a
 * severity, a location inside the plan (layer index, instruction
 * index — or network scope), the producing pass, a message and an
 * optional fix-it hint. An AnalysisReport collects the findings of one
 * verification run; its text rendering is deterministic, so two runs
 * over structurally identical plans (e.g. pre/post serialization)
 * produce byte-identical reports.
 */
#ifndef FXHENN_ANALYSIS_DIAGNOSTIC_HPP
#define FXHENN_ANALYSIS_DIAGNOSTIC_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fxhenn::analysis {

/** Finding severity, ordered from informational to fatal. */
enum class Severity { note, warning, error };

/** @return "note", "warning" or "error". */
const char *severityName(Severity severity);

/** One finding, anchored to a location inside the plan. */
struct Diagnostic
{
    Severity severity = Severity::error;
    std::string pass;        ///< producing pass name
    std::int32_t layer = -1; ///< layer index, -1 = network scope
    std::int64_t instr = -1; ///< instruction index in layer, -1 = none
    std::string layerName;   ///< resolved layer name ("" for network)
    std::string message;
    std::string hint;        ///< optional fix-it hint ("" = none)
};

/** The findings of one verification run. */
class AnalysisReport
{
  public:
    void add(Diagnostic diagnostic);

    /** Shorthand used by the passes. */
    void addNetwork(Severity severity, const std::string &pass,
                    const std::string &message,
                    const std::string &hint = "");
    void addLayer(Severity severity, const std::string &pass,
                  std::size_t layer, const std::string &layerName,
                  const std::string &message,
                  const std::string &hint = "");
    void addInstr(Severity severity, const std::string &pass,
                  std::size_t layer, const std::string &layerName,
                  std::size_t instr, const std::string &message,
                  const std::string &hint = "");

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    /**
     * Record which on-disk plan artifact this report describes. Both
     * renderings then carry the path and the CRC-32 of the raw bytes,
     * so an archived report can be matched to the exact plan file it
     * was produced from. In-memory verification runs (compiler
     * self-check, plan-load hook) leave this unset.
     */
    void setArtifact(const std::string &path, std::uint32_t crc32);
    bool hasArtifact() const { return hasArtifact_; }
    const std::string &artifactPath() const { return artifactPath_; }
    std::uint32_t artifactCrc32() const { return artifactCrc32_; }

    std::size_t count(Severity severity) const;
    std::size_t errorCount() const { return count(Severity::error); }
    std::size_t warningCount() const
    {
        return count(Severity::warning);
    }
    bool clean() const { return errorCount() == 0; }

    /**
     * Render as clang-style text, one finding per line (plus an
     * indented hint line when present), followed by a summary line.
     */
    void renderText(std::ostream &os) const;
    std::string toText() const;

    /**
     * Render as one JSON document:
     * {"schema": "fxhenn-lint-v1", "errors": n, "warnings": n,
     *  "notes": n, "diagnostics": [{severity, pass, layer, instr,
     *  layer_name, message, hint}]}.
     */
    void renderJson(std::ostream &os) const;
    std::string toJson() const;

  private:
    std::vector<Diagnostic> diagnostics_;
    bool hasArtifact_ = false;
    std::string artifactPath_;
    std::uint32_t artifactCrc32_ = 0;
};

} // namespace fxhenn::analysis

#endif // FXHENN_ANALYSIS_DIAGNOSTIC_HPP
