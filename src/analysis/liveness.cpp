#include "src/analysis/liveness.hpp"

#include <algorithm>

namespace fxhenn::analysis {

LivenessInfo
computeLiveness(const hecnn::HeNetworkPlan &plan)
{
    using hecnn::HeOpKind;

    LivenessInfo info;
    const std::size_t layer_count = plan.layers.size();
    info.peakLive.assign(layer_count, 0);
    const std::int32_t reg_count = std::max(plan.regCount, 0);

    std::vector<char> live(static_cast<std::size_t>(reg_count), 0);
    unsigned live_size = 0;
    auto set_live = [&](std::int32_t reg) {
        if (reg < 0 || reg >= reg_count)
            return;
        if (!live[static_cast<std::size_t>(reg)]) {
            live[static_cast<std::size_t>(reg)] = 1;
            ++live_size;
        }
    };
    auto kill = [&](std::int32_t reg) {
        if (reg < 0 || reg >= reg_count)
            return;
        if (live[static_cast<std::size_t>(reg)]) {
            live[static_cast<std::size_t>(reg)] = 0;
            --live_size;
        }
    };

    // Live-out: exactly what the client decrypts.
    for (const auto &[reg, slot] : plan.outputLayout.pos) {
        (void)slot;
        set_live(reg);
    }
    for (std::int32_t reg : plan.outputLayout.regs)
        set_live(reg);

    for (std::size_t li = layer_count; li-- > 0;) {
        const hecnn::HeLayerPlan &layer = plan.layers[li];
        unsigned peak = live_size;
        for (std::size_t ii = layer.instrs.size(); ii-- > 0;) {
            const hecnn::HeInstr &instr = layer.instrs[ii];
            const bool result_used =
                instr.dst >= 0 && instr.dst < reg_count &&
                live[static_cast<std::size_t>(instr.dst)];
            if (!result_used)
                info.deadInstrs.push_back(DeadInstr{li, ii});
            // Treat dead instructions as executed (the runtime does):
            // their operands stay live and they still occupy a slot in
            // the peak, so the DSE bound remains sound.
            kill(instr.dst);
            set_live(instr.src);
            if (instr.kind == HeOpKind::ccAdd)
                set_live(instr.dst); // dst += src reads dst too
            peak = std::max(peak, live_size);
        }
        info.peakLive[li] = std::max(peak, 1u);
        info.peakLiveOverall =
            std::max(info.peakLiveOverall, info.peakLive[li]);
    }
    // Restore source order: the sweep collected dead instrs backwards.
    std::reverse(info.deadInstrs.begin(), info.deadInstrs.end());
    return info;
}

} // namespace fxhenn::analysis
