#include "src/analysis/diagnostic.hpp"

#include <ostream>
#include <sstream>

namespace fxhenn::analysis {

namespace {

/** Minimal JSON string escaping (control chars, quote, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::note:
        return "note";
      case Severity::warning:
        return "warning";
      case Severity::error:
        return "error";
    }
    return "?";
}

void
AnalysisReport::add(Diagnostic diagnostic)
{
    diagnostics_.push_back(std::move(diagnostic));
}

void
AnalysisReport::addNetwork(Severity severity, const std::string &pass,
                           const std::string &message,
                           const std::string &hint)
{
    Diagnostic d;
    d.severity = severity;
    d.pass = pass;
    d.message = message;
    d.hint = hint;
    diagnostics_.push_back(std::move(d));
}

void
AnalysisReport::addLayer(Severity severity, const std::string &pass,
                         std::size_t layer,
                         const std::string &layerName,
                         const std::string &message,
                         const std::string &hint)
{
    Diagnostic d;
    d.severity = severity;
    d.pass = pass;
    d.layer = static_cast<std::int32_t>(layer);
    d.layerName = layerName;
    d.message = message;
    d.hint = hint;
    diagnostics_.push_back(std::move(d));
}

void
AnalysisReport::addInstr(Severity severity, const std::string &pass,
                         std::size_t layer,
                         const std::string &layerName,
                         std::size_t instr, const std::string &message,
                         const std::string &hint)
{
    Diagnostic d;
    d.severity = severity;
    d.pass = pass;
    d.layer = static_cast<std::int32_t>(layer);
    d.instr = static_cast<std::int64_t>(instr);
    d.layerName = layerName;
    d.message = message;
    d.hint = hint;
    diagnostics_.push_back(std::move(d));
}

void
AnalysisReport::setArtifact(const std::string &path,
                            std::uint32_t crc32)
{
    hasArtifact_ = true;
    artifactPath_ = path;
    artifactCrc32_ = crc32;
}

std::size_t
AnalysisReport::count(Severity severity) const
{
    std::size_t n = 0;
    for (const auto &d : diagnostics_)
        n += d.severity == severity ? 1 : 0;
    return n;
}

void
AnalysisReport::renderText(std::ostream &os) const
{
    if (hasArtifact_)
        os << "plan file: " << artifactPath_ << " (crc32 "
           << artifactCrc32_ << ")\n";
    for (const auto &d : diagnostics_) {
        os << severityName(d.severity) << ": [" << d.pass << "]";
        if (d.layer >= 0) {
            os << " layer " << d.layer;
            if (!d.layerName.empty())
                os << " (" << d.layerName << ")";
            if (d.instr >= 0)
                os << " instr " << d.instr;
        }
        os << ": " << d.message << "\n";
        if (!d.hint.empty())
            os << "  hint: " << d.hint << "\n";
    }
    os << errorCount() << " error(s), " << warningCount()
       << " warning(s), " << count(Severity::note) << " note(s)\n";
}

std::string
AnalysisReport::toText() const
{
    std::ostringstream oss;
    renderText(oss);
    return oss.str();
}

void
AnalysisReport::renderJson(std::ostream &os) const
{
    os << "{\"schema\": \"fxhenn-lint-v1\", ";
    if (hasArtifact_)
        os << "\"plan_file\": \"" << jsonEscape(artifactPath_)
           << "\", \"plan_crc32\": " << artifactCrc32_ << ", ";
    os << "\"errors\": " << errorCount()
       << ", \"warnings\": " << warningCount()
       << ", \"notes\": " << count(Severity::note)
       << ", \"diagnostics\": [";
    bool first = true;
    for (const auto &d : diagnostics_) {
        if (!first)
            os << ", ";
        first = false;
        os << "{\"severity\": \"" << severityName(d.severity)
           << "\", \"pass\": \"" << jsonEscape(d.pass)
           << "\", \"layer\": " << d.layer << ", \"instr\": " << d.instr
           << ", \"layer_name\": \"" << jsonEscape(d.layerName)
           << "\", \"message\": \"" << jsonEscape(d.message)
           << "\", \"hint\": \"" << jsonEscape(d.hint) << "\"}";
    }
    os << "]}\n";
}

std::string
AnalysisReport::toJson() const
{
    std::ostringstream oss;
    renderJson(oss);
    return oss.str();
}

} // namespace fxhenn::analysis
