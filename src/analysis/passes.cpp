/**
 * @file
 * The standard verification passes over the HE-CNN plan IR.
 *
 * Each pass is a self-contained dataflow check; together they form the
 * contract a well-formed HeNetworkPlan satisfies before the runtime,
 * the statistics pass or the FPGA model may trust it (see
 * docs/ARCHITECTURE.md section 8 for the taxonomy):
 *
 *   1. def-use            register def-before-use and output coverage
 *   2. scale-level        abstract interpretation of (level, scale, parts)
 *   3. liveness           dead results + per-layer peak live registers
 *   4. rotation-keys      Galois key coverage of every rotate step
 *   5. slot-layout        SlotLayout / inputGather / plaintext pool sanity
 *   6. op-counts          cached kind counts vs a recount of the stream
 *   7. layer-class        NKS/KS classification (Sec. V-A)
 *   8. noise-budget       static noise certification (docs sec. 13)
 *   9. rescale-placement  redundant / deferrable / missing rescales
 */
#include "src/analysis/pass_manager.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "src/analysis/liveness.hpp"
#include "src/hecnn/noise_cert.hpp"
#include "src/hecnn/rotation_groups.hpp"
#include "src/modarith/primes.hpp"

namespace fxhenn::analysis {

using hecnn::HeInstr;
using hecnn::HeLayerPlan;
using hecnn::HeNetworkPlan;
using hecnn::HeOpKind;

PlanFacts
makePlanFacts(const HeNetworkPlan &plan)
{
    PlanFacts facts{plan};
    facts.slots = static_cast<std::size_t>(plan.params.n / 2);
    facts.schemeScale = plan.params.scale;
    try {
        plan.params.validate();
        const auto primes = generateNttPrimes(
            plan.params.qBits, plan.params.n, plan.params.levels);
        facts.primes.reserve(primes.size());
        for (std::uint64_t q : primes)
            facts.primes.push_back(static_cast<double>(q));
        facts.paramsValid = true;
    } catch (const std::exception &) {
        // Diagnosed by the passes that need the prime chain.
    }
    return facts;
}

namespace {

std::string
regName(std::int32_t reg)
{
    return "r" + std::to_string(reg);
}

// --- pass 1: def-before-use ------------------------------------------------

class DefUsePass final : public AnalysisPass
{
  public:
    const char *name() const override { return "def-use"; }
    const char *
    description() const override
    {
        return "register def-before-use, operand ranges and output "
               "coverage";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const HeNetworkPlan &plan = facts.plan;
        if (plan.inputGather.size() >
            static_cast<std::size_t>(std::max(plan.regCount, 0))) {
            report.addNetwork(
                Severity::error, name(),
                "plan declares " +
                    std::to_string(plan.inputGather.size()) +
                    " input ciphertexts but only " +
                    std::to_string(plan.regCount) + " registers",
                "raise regCount to cover the input registers");
        }
        std::vector<char> written(
            static_cast<std::size_t>(std::max(plan.regCount, 0)), 0);
        for (std::size_t i = 0;
             i < plan.inputGather.size() && i < written.size(); ++i)
            written[i] = 1;

        for (std::size_t li = 0; li < plan.layers.size(); ++li) {
            const HeLayerPlan &layer = plan.layers[li];
            for (std::size_t ii = 0; ii < layer.instrs.size(); ++ii) {
                const HeInstr &instr = layer.instrs[ii];
                if (!facts.regOk(instr.dst) || !facts.regOk(instr.src)) {
                    report.addInstr(
                        Severity::error, name(), li, layer.name, ii,
                        std::string(opName(instr.kind)) +
                            " references a register outside the file "
                            "(dst " +
                            regName(instr.dst) + ", src " +
                            regName(instr.src) + ", regCount " +
                            std::to_string(plan.regCount) + ")");
                    continue;
                }
                auto require_written = [&](std::int32_t reg) {
                    if (!written[static_cast<std::size_t>(reg)]) {
                        report.addInstr(
                            Severity::error, name(), li, layer.name,
                            ii,
                            std::string(opName(instr.kind)) +
                                " reads " + regName(reg) +
                                " before any instruction writes it",
                            "reorder the stream or initialize the "
                            "register");
                    }
                };
                require_written(instr.src);
                if (instr.kind == HeOpKind::ccAdd &&
                    instr.dst != instr.src)
                    require_written(instr.dst);
                written[static_cast<std::size_t>(instr.dst)] = 1;
            }
        }

        std::set<std::int32_t> reported;
        for (const auto &[reg, slot] : plan.outputLayout.pos) {
            (void)slot;
            if (facts.regOk(reg) &&
                !written[static_cast<std::size_t>(reg)] &&
                reported.insert(reg).second) {
                report.addNetwork(
                    Severity::error, name(),
                    "output register " + regName(reg) +
                        " is never written by any layer",
                    "the client would decrypt an empty ciphertext");
            }
        }
    }
};

// --- pass 2: scale & level abstract interpretation -------------------------

class ScaleLevelPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "scale-level"; }
    const char *
    description() const override
    {
        return "abstract interpretation of (level, scale, parts) per "
               "register";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const HeNetworkPlan &plan = facts.plan;
        if (!facts.paramsValid) {
            report.addNetwork(Severity::error, name(),
                              "CKKS parameters are invalid; cannot "
                              "derive the prime chain",
                              "fix plan.params before re-linting");
            return;
        }

        // log2 of the modulus at each level (prefix products).
        std::vector<double> log_q(plan.params.levels + 1, 0.0);
        for (std::size_t l = 1; l <= plan.params.levels; ++l)
            log_q[l] = log_q[l - 1] + std::log2(facts.primes[l - 1]);

        struct RegState
        {
            bool written = false;
            std::size_t level = 0;
            double scale = 0.0;
            std::size_t parts = 2;
        };
        std::vector<RegState> regs(
            static_cast<std::size_t>(std::max(plan.regCount, 0)));
        for (std::size_t i = 0;
             i < plan.inputGather.size() && i < regs.size(); ++i) {
            regs[i] = {true, plan.params.levels, facts.schemeScale, 2};
        }

        for (std::size_t li = 0; li < plan.layers.size(); ++li) {
            const HeLayerPlan &layer = plan.layers[li];
            checkLevelChain(facts, li, report);
            for (std::size_t ii = 0; ii < layer.instrs.size(); ++ii) {
                const HeInstr &instr = layer.instrs[ii];
                if (!facts.regOk(instr.dst) || !facts.regOk(instr.src))
                    continue; // def-use reports the range violation
                RegState &src =
                    regs[static_cast<std::size_t>(instr.src)];
                RegState &dst =
                    regs[static_cast<std::size_t>(instr.dst)];
                if (!src.written)
                    continue; // def-use reports the uninitialized read
                checkInstr(facts, li, ii, instr, src, dst, log_q,
                           report);
                apply(facts, instr, src, dst);
            }
            checkLayerExit(facts, li, regs, report);
        }
    }

  private:
    template <typename RegState>
    void
    checkInstr(const PlanFacts &facts, std::size_t li, std::size_t ii,
               const HeInstr &instr, const RegState &src,
               const RegState &dst,
               const std::vector<double> &log_q,
               AnalysisReport &report) const
    {
        const HeNetworkPlan &plan = facts.plan;
        const std::string &lname = plan.layers[li].name;
        switch (instr.kind) {
          case HeOpKind::pcMult: {
            if (!facts.ptOk(instr.pt))
                break; // slot-layout reports the pool violation
            const auto &pt =
                plan.plaintexts[static_cast<std::size_t>(instr.pt)];
            if (pt.level != src.level) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "pcMult plaintext " + std::to_string(instr.pt) +
                        " is encoded at level " +
                        std::to_string(pt.level) +
                        " but operand " + regName(instr.src) +
                        " is at level " + std::to_string(src.level),
                    "re-encode the plaintext at level " +
                        std::to_string(src.level));
            }
            checkScaleFits(li, ii, lname,
                           src.scale * facts.schemeScale, src.level,
                           log_q, report);
            break;
          }
          case HeOpKind::pcAdd: {
            if (!facts.ptOk(instr.pt))
                break;
            const auto &pt =
                plan.plaintexts[static_cast<std::size_t>(instr.pt)];
            if (pt.level != src.level) {
                report.addInstr(
                    Severity::warning, name(), li, lname, ii,
                    "pcAdd plaintext " + std::to_string(instr.pt) +
                        " carries stale level metadata (" +
                        std::to_string(pt.level) + " vs operand " +
                        std::to_string(src.level) + ")",
                    "the runtime re-encodes bias adds at the "
                    "ciphertext level; fix the pool level anyway");
            }
            break;
          }
          case HeOpKind::ccAdd: {
            if (!dst.written)
                break; // def-use reports it
            if (dst.level != src.level) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "ccAdd level mismatch: " + regName(instr.dst) +
                        " at level " + std::to_string(dst.level) +
                        ", " + regName(instr.src) + " at level " +
                        std::to_string(src.level),
                    "rescale or mod-switch the higher operand first");
            } else if (dst.parts != src.parts) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "ccAdd part-count mismatch: " +
                        regName(instr.dst) + " has " +
                        std::to_string(dst.parts) + " parts, " +
                        regName(instr.src) + " has " +
                        std::to_string(src.parts),
                    "relinearize the 3-part operand first");
            } else if (scaleMismatch(dst.scale, src.scale)) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "ccAdd scale mismatch: " + regName(instr.dst) +
                        " at 2^" + fmtBits(std::log2(dst.scale)) +
                        ", " + regName(instr.src) + " at 2^" +
                        fmtBits(std::log2(src.scale)),
                    "the sum of mis-scaled operands decrypts to "
                    "garbage; align the rescale chains");
            }
            break;
          }
          case HeOpKind::ccMult:
            if (src.parts != 2) {
                report.addInstr(Severity::error, name(), li, lname,
                                ii,
                                "ccMult expects a 2-part operand, " +
                                    regName(instr.src) + " has " +
                                    std::to_string(src.parts),
                                "relinearize before multiplying");
            }
            checkScaleFits(li, ii, lname, src.scale * src.scale,
                           src.level, log_q, report);
            break;
          case HeOpKind::relinearize:
            if (src.parts != 3) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "relinearize expects a 3-part operand, " +
                        regName(instr.src) + " has " +
                        std::to_string(src.parts));
            }
            break;
          case HeOpKind::rescale:
            if (src.level < 2) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "level underflow: rescale at level " +
                        std::to_string(src.level) +
                        " has no prime left to drop",
                    "deepen the parameter set or shorten the "
                    "network");
            } else if (src.scale <
                       facts.schemeScale * 2.0) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "double rescale: " + regName(instr.src) +
                        " is already at scale 2^" +
                        fmtBits(std::log2(src.scale)) +
                        " (at or below the scheme scale)",
                    "a rescale without a preceding multiply divides "
                    "the message away");
            }
            break;
          case HeOpKind::rotate:
            if (src.parts != 2) {
                report.addInstr(
                    Severity::error, name(), li, lname, ii,
                    "rotate expects a 2-part operand, " +
                        regName(instr.src) + " has " +
                        std::to_string(src.parts),
                    "relinearize before rotating");
            }
            break;
          case HeOpKind::copy:
            break;
        }
    }

    void
    checkScaleFits(std::size_t li, std::size_t ii,
                   const std::string &lname, double product_scale,
                   std::size_t level, const std::vector<double> &log_q,
                   AnalysisReport &report) const
    {
        if (level == 0 || level >= log_q.size())
            return; // level chain errors are reported elsewhere
        // The evaluator's checkScaleFits: +2 bits of drift allowance.
        if (std::log2(product_scale) > log_q[level] + 2.0) {
            report.addInstr(
                Severity::error, name(), li, lname, ii,
                "product scale 2^" +
                    fmtBits(std::log2(product_scale)) +
                    " exceeds the modulus at level " +
                    std::to_string(level) + " (log Q = " +
                    fmtBits(log_q[level]) + ")",
                "rescale before multiplying again");
        }
    }

    void
    checkLevelChain(const PlanFacts &facts, std::size_t li,
                    AnalysisReport &report) const
    {
        const HeNetworkPlan &plan = facts.plan;
        const HeLayerPlan &layer = plan.layers[li];
        if (layer.levelIn == 0 ||
            layer.levelIn > plan.params.levels ||
            layer.levelOut > layer.levelIn) {
            report.addLayer(
                Severity::error, name(), li, layer.name,
                "corrupt layer levels: levelIn " +
                    std::to_string(layer.levelIn) + ", levelOut " +
                    std::to_string(layer.levelOut) + " (params have " +
                    std::to_string(plan.params.levels) + " levels)");
            return;
        }
        if (li == 0) {
            if (layer.levelIn != plan.params.levels) {
                report.addLayer(
                    Severity::error, name(), li, layer.name,
                    "first layer starts at level " +
                        std::to_string(layer.levelIn) +
                        " but fresh ciphertexts enter at level " +
                        std::to_string(plan.params.levels));
            }
        } else if (layer.levelIn != plan.layers[li - 1].levelOut) {
            report.addLayer(
                Severity::error, name(), li, layer.name,
                "level chain broken: levelIn " +
                    std::to_string(layer.levelIn) +
                    " does not match the previous layer's levelOut " +
                    std::to_string(plan.layers[li - 1].levelOut));
        }
    }

    template <typename RegStateVec>
    void
    checkLayerExit(const PlanFacts &facts, std::size_t li,
                   const RegStateVec &regs,
                   AnalysisReport &report) const
    {
        const HeLayerPlan &layer = facts.plan.layers[li];
        for (std::int32_t reg : layer.outputLayout.regs) {
            if (!facts.regOk(reg))
                continue; // slot-layout reports it
            const auto &state =
                regs[static_cast<std::size_t>(reg)];
            if (!state.written)
                continue; // def-use reports it
            if (state.level != layer.levelOut) {
                report.addLayer(
                    Severity::error, name(), li, layer.name,
                    "levelOut metadata disagrees with the "
                    "instruction stream: " +
                        regName(reg) + " ends at level " +
                        std::to_string(state.level) +
                        " but the plan says " +
                        std::to_string(layer.levelOut),
                    "recompute levelIn/levelOut from the lowered "
                    "stream");
                return; // one metadata finding per layer is enough
            }
        }
    }

    template <typename RegState>
    void
    apply(const PlanFacts &facts, const HeInstr &instr,
          const RegState &src_in, RegState &dst) const
    {
        const RegState src = src_in; // dst may alias src
        switch (instr.kind) {
          case HeOpKind::pcMult:
            dst = src;
            dst.scale = src.scale * facts.schemeScale;
            break;
          case HeOpKind::pcAdd:
            dst = src;
            break;
          case HeOpKind::ccAdd:
            break;
          case HeOpKind::ccMult:
            dst = src;
            dst.scale = src.scale * src.scale;
            dst.parts = 3;
            break;
          case HeOpKind::relinearize:
            dst = src;
            dst.parts = 2;
            break;
          case HeOpKind::rescale:
            dst = src;
            if (src.level >= 2) {
                dst.scale =
                    src.scale / facts.primes[src.level - 1];
                dst.level = src.level - 1;
            }
            break;
          case HeOpKind::rotate:
          case HeOpKind::copy:
            dst = src;
            break;
        }
        dst.written = true;
    }

    static bool
    scaleMismatch(double a, double b)
    {
        if (!(a > 0.0) || !(b > 0.0))
            return true;
        const double ratio = a / b;
        return ratio < 0.99 || ratio > 1.01;
    }

    static std::string
    fmtBits(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3g", v);
        return buf;
    }
};

// --- pass 3: liveness ------------------------------------------------------

class LivenessPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "liveness"; }
    const char *
    description() const override
    {
        return "dead results and per-layer peak live registers";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const LivenessInfo info = computeLiveness(facts.plan);
        for (const DeadInstr &dead : info.deadInstrs) {
            const HeLayerPlan &layer = facts.plan.layers[dead.layer];
            const HeInstr &instr = layer.instrs[dead.instr];
            report.addInstr(
                Severity::warning, name(), dead.layer, layer.name,
                dead.instr,
                std::string(opName(instr.kind)) + " result in " +
                    regName(instr.dst) +
                    " never reaches the network outputLayout",
                "delete the instruction or extend the output "
                "layout");
        }
        report.addNetwork(
            Severity::note, name(),
            "peak live registers: " +
                std::to_string(info.peakLiveOverall) +
                " (per-layer peaks drive the DSE buffer model)");
    }
};

// --- pass 4: rotation-key coverage -----------------------------------------

class RotationKeyPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "rotation-keys"; }
    const char *
    description() const override
    {
        return "Galois key coverage of every rotation step";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const HeNetworkPlan &plan = facts.plan;
        const auto steps = plan.rotationSteps();
        const auto slots = static_cast<std::int64_t>(facts.slots);
        for (std::size_t li = 0; li < plan.layers.size(); ++li) {
            const HeLayerPlan &layer = plan.layers[li];
            for (std::size_t ii = 0; ii < layer.instrs.size(); ++ii) {
                const HeInstr &instr = layer.instrs[ii];
                if (instr.kind != HeOpKind::rotate)
                    continue;
                if (instr.step == 0) {
                    report.addInstr(
                        Severity::error, name(), li, layer.name, ii,
                        "rotate by 0: rotationSteps() omits the "
                        "identity step, so no Galois key is ever "
                        "generated for it",
                        "replace the no-op rotate with a copy");
                } else if (std::abs(
                               static_cast<std::int64_t>(instr.step)) >=
                           slots) {
                    report.addInstr(
                        Severity::error, name(), li, layer.name, ii,
                        "rotation step " + std::to_string(instr.step) +
                            " is outside the slot ring (+-" +
                            std::to_string(slots) + ")",
                        "reduce the step modulo the slot count");
                } else if (steps.count(instr.step) == 0) {
                    // Unreachable through rotationSteps() itself; kept
                    // so a future keyset source cannot silently drift.
                    report.addInstr(
                        Severity::error, name(), li, layer.name, ii,
                        "rotation step " + std::to_string(instr.step) +
                            " is not covered by the Galois key set");
                }
            }
        }
        if (steps.size() > 48) {
            report.addNetwork(
                Severity::warning, name(),
                "plan uses " + std::to_string(steps.size()) +
                    " distinct rotation steps; each Galois key is "
                    "2L(L+1)N words of key material",
                "enable CompileOptions::decomposeRotations to shrink "
                "the key set to O(log slots)");
        }
    }
};

// --- pass 5: slot-layout consistency ---------------------------------------

class LayoutPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "slot-layout"; }
    const char *
    description() const override
    {
        return "SlotLayout, inputGather and plaintext-pool sanity";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const HeNetworkPlan &plan = facts.plan;
        for (std::size_t i = 0; i < plan.inputGather.size(); ++i) {
            const auto &gather = plan.inputGather[i];
            if (gather.size() != facts.slots) {
                report.addNetwork(
                    Severity::error, name(),
                    "inputGather[" + std::to_string(i) + "] has " +
                        std::to_string(gather.size()) +
                        " entries but the ring has " +
                        std::to_string(facts.slots) + " slots");
                continue;
            }
            for (std::size_t s = 0; s < gather.size(); ++s) {
                if (gather[s] < -1) {
                    report.addNetwork(
                        Severity::error, name(),
                        "inputGather[" + std::to_string(i) + "][" +
                            std::to_string(s) +
                            "] = " + std::to_string(gather[s]) +
                            " (entries are element indices or -1 "
                            "for a zero slot)");
                    break;
                }
            }
        }

        for (std::size_t li = 0; li < plan.layers.size(); ++li) {
            checkLayout(facts, plan.layers[li].outputLayout,
                        static_cast<std::int32_t>(li),
                        plan.layers[li].name, report);
            checkInstrPool(facts, li, report);
        }
        checkLayout(facts, plan.outputLayout, -1, "", report);

        for (std::size_t p = 0; p < plan.plaintexts.size(); ++p) {
            const auto &pt = plan.plaintexts[p];
            if (pt.level == 0 || pt.level > plan.params.levels) {
                report.addNetwork(
                    Severity::error, name(),
                    "plaintext " + std::to_string(p) +
                        " is encoded at level " +
                        std::to_string(pt.level) +
                        " (valid levels are 1.." +
                        std::to_string(plan.params.levels) + ")");
            }
            const bool empty_ok =
                plan.valuesElided && pt.values.empty();
            if (!empty_ok && pt.values.size() != facts.slots) {
                report.addNetwork(
                    Severity::error, name(),
                    "plaintext " + std::to_string(p) + " has " +
                        std::to_string(pt.values.size()) +
                        " values but the ring has " +
                        std::to_string(facts.slots) + " slots",
                    plan.valuesElided
                        ? "stats-only plans keep payloads empty"
                        : "re-encode the payload at the ring size");
            }
        }
    }

  private:
    void
    checkLayout(const PlanFacts &facts,
                const hecnn::SlotLayout &layout, std::int32_t li,
                const std::string &lname,
                AnalysisReport &report) const
    {
        auto add = [&](Severity sev, const std::string &msg,
                       const std::string &hint = "") {
            if (li >= 0)
                report.addLayer(sev, name(),
                                static_cast<std::size_t>(li), lname,
                                msg, hint);
            else
                report.addNetwork(sev, name(),
                                  "network outputLayout: " + msg,
                                  hint);
        };
        std::set<std::int32_t> carriers;
        for (std::int32_t reg : layout.regs) {
            if (!facts.regOk(reg)) {
                add(Severity::error,
                    "layout register " + regName(reg) +
                        " is outside the register file");
                continue;
            }
            if (!carriers.insert(reg).second)
                add(Severity::error, "layout lists register " +
                                         regName(reg) + " twice");
        }
        bool pos_ok = true;
        for (std::size_t e = 0; e < layout.pos.size() && pos_ok;
             ++e) {
            const auto &[reg, slot] = layout.pos[e];
            if (!facts.regOk(reg)) {
                add(Severity::error,
                    "element " + std::to_string(e) +
                        " lives in out-of-range register " +
                        regName(reg));
                pos_ok = false;
            } else if (slot < 0 ||
                       slot >= static_cast<std::int32_t>(
                                   facts.slots)) {
                add(Severity::error,
                    "element " + std::to_string(e) +
                        " lives at slot " + std::to_string(slot) +
                        " outside [0, " +
                        std::to_string(facts.slots) + ")");
                pos_ok = false;
            } else if (!carriers.empty() &&
                       carriers.count(reg) == 0) {
                add(Severity::error,
                    "element " + std::to_string(e) +
                        " lives in register " + regName(reg) +
                        " which the layout's carrier list omits",
                    "append the register to SlotLayout::regs");
                pos_ok = false;
            }
        }
        if (carriers.empty() && !layout.pos.empty()) {
            add(Severity::warning,
                "layout places " +
                    std::to_string(layout.pos.size()) +
                    " elements but lists no carrier registers",
                "consumers that iterate SlotLayout::regs will see "
                "an empty layout");
        }
    }

    void
    checkInstrPool(const PlanFacts &facts, std::size_t li,
                   AnalysisReport &report) const
    {
        const HeLayerPlan &layer = facts.plan.layers[li];
        for (std::size_t ii = 0; ii < layer.instrs.size(); ++ii) {
            const HeInstr &instr = layer.instrs[ii];
            const bool uses_pool = instr.kind == HeOpKind::pcMult ||
                                   instr.kind == HeOpKind::pcAdd;
            if (uses_pool && !facts.ptOk(instr.pt)) {
                report.addInstr(
                    Severity::error, name(), li, layer.name, ii,
                    std::string(opName(instr.kind)) +
                        " references plaintext " +
                        std::to_string(instr.pt) +
                        " outside the pool of " +
                        std::to_string(facts.plan.plaintexts.size()));
            } else if (!uses_pool && instr.pt != -1) {
                report.addInstr(
                    Severity::warning, name(), li, layer.name, ii,
                    std::string(opName(instr.kind)) +
                        " carries a stray plaintext operand (pt " +
                        std::to_string(instr.pt) + ")",
                    "set pt = -1 on non-plaintext opcodes");
            }
        }
    }
};

// --- pass 6: cached op counts vs recount -----------------------------------

class OpCountPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "op-counts"; }
    const char *
    description() const override
    {
        return "cached kindCounts/HeOpCounts vs a recount of the "
               "stream";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        for (std::size_t li = 0; li < facts.plan.layers.size(); ++li) {
            const HeLayerPlan &layer = facts.plan.layers[li];
            std::array<std::uint64_t, 8> recount{};
            for (const HeInstr &instr : layer.instrs)
                ++recount[static_cast<std::size_t>(instr.kind)];
            for (std::size_t k = 0; k < recount.size(); ++k) {
                const auto kind = static_cast<HeOpKind>(k);
                if (layer.kindCount(kind) != recount[k]) {
                    report.addLayer(
                        Severity::error, name(), li, layer.name,
                        "cached count for " +
                            std::string(opName(kind)) + " is " +
                            std::to_string(layer.kindCount(kind)) +
                            " but the stream holds " +
                            std::to_string(recount[k]),
                        "call HeLayerPlan::classify() after editing "
                        "the instruction stream");
                    break; // one stale-cache finding per layer
                }
            }
            // HeOpCounts cross-check: every instruction except copy
            // maps onto exactly one paper operation class.
            const std::uint64_t he_ops =
                layer.instrs.size() -
                recount[static_cast<std::size_t>(HeOpKind::copy)];
            if (layer.counts().total() != he_ops) {
                report.addLayer(
                    Severity::error, name(), li, layer.name,
                    "HeOpCounts total " +
                        std::to_string(layer.counts().total()) +
                        " does not match the " +
                        std::to_string(he_ops) +
                        " costed instructions in the stream",
                    "call HeLayerPlan::classify() after editing the "
                    "instruction stream");
            }
            // Keyswitch-decomposition model: rotation groups must
            // tile the rotates exactly (a hoisted group of k rotates
            // costs one digit decomposition at runtime; the telemetry
            // counter ckks.keyswitch.decompositions is predicted from
            // the same grouping).
            const auto groups =
                hecnn::findRotationGroups(layer.instrs);
            std::uint64_t grouped = 0;
            for (const auto &g : groups)
                grouped += g.count;
            if (grouped !=
                recount[static_cast<std::size_t>(HeOpKind::rotate)]) {
                report.addLayer(
                    Severity::error, name(), li, layer.name,
                    "rotation groups cover " + std::to_string(grouped) +
                        " rotates but the stream holds " +
                        std::to_string(recount[static_cast<std::size_t>(
                            HeOpKind::rotate)]),
                    "rotation-group detection and the instruction "
                    "stream disagree; this is an internal lint bug");
            }
        }
    }
};

// --- pass 7: NKS/KS classification -----------------------------------------

class LayerClassPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "layer-class"; }
    const char *
    description() const override
    {
        return "NKS/KS layer classification (Sec. V-A)";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        for (std::size_t li = 0; li < facts.plan.layers.size(); ++li) {
            const HeLayerPlan &layer = facts.plan.layers[li];
            bool has_ks = false;
            for (const HeInstr &instr : layer.instrs)
                has_ks = has_ks || isKeySwitch(instr.kind);
            const auto expected = has_ks ? hecnn::LayerClass::ks
                                         : hecnn::LayerClass::nks;
            if (layer.cls != expected) {
                report.addLayer(
                    Severity::error, name(), li, layer.name,
                    std::string("layer is tagged ") +
                        (layer.cls == hecnn::LayerClass::ks ? "KS"
                                                            : "NKS") +
                        " but its stream " +
                        (has_ks ? "contains" : "contains no") +
                        " KeySwitch operations",
                    "call HeLayerPlan::classify() to recompute the "
                    "class");
            }
            if (layer.nIn == 0) {
                report.addLayer(
                    Severity::warning, name(), li, layer.name,
                    "layer declares zero input ciphertexts (nIn)",
                    "the FPGA pipeline model clamps nIn to 1; fix "
                    "the metadata");
            }
        }
    }
};

// --- pass 8: static noise-budget certification -----------------------------

class NoiseBudgetPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "noise-budget"; }
    const char *
    description() const override
    {
        return "static noise-budget certification (abstract noise "
               "interpretation over the instruction stream)";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const hecnn::NoiseCertificate cert =
            hecnn::certifyPlan(facts.plan);
        if (!cert.valid) {
            report.addNetwork(
                Severity::warning, name(),
                "plan could not be noise-certified: " +
                    cert.invalidReason,
                "fix the structural findings first; the certifier "
                "needs a well-formed plan");
            return;
        }
        // Locate the pinch point (the layer with the least headroom).
        std::size_t pinch = 0;
        for (std::size_t i = 1; i < cert.layers.size(); ++i) {
            if (cert.layers[i].headroomBits <
                cert.layers[pinch].headroomBits)
                pinch = i;
        }
        const std::string where =
            cert.layers.empty() ? std::string("(no layers)")
                                : cert.layers[pinch].layer;
        if (cert.certified()) {
            report.addNetwork(
                Severity::note, name(),
                "certified minimum noise headroom " +
                    fmtSigned(cert.minHeadroomBits) +
                    " bits at layer '" + where + "' (message <= 2^" +
                    fmtBits(cert.messageBits) + ", " +
                    std::to_string(cert.levels) + "-prime chain)");
        } else {
            report.addLayer(
                Severity::error, name(), pinch, where,
                "certified noise headroom is negative: " +
                    fmtSigned(cert.minHeadroomBits) +
                    " bits (decryption of this layer's output would "
                    "be garbage)",
                "deepen the prime chain, lower the scale, or tighten "
                "the message-magnitude assumption");
        }
    }

  private:
    static std::string
    fmtBits(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3g", v);
        return buf;
    }

    static std::string
    fmtSigned(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%+.3f", v);
        return buf;
    }
};

// --- pass 9: rescale placement ---------------------------------------------

class RescalePlacementPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "rescale-placement"; }
    const char *
    description() const override
    {
        return "redundant rescales, deferrable rescales (waterline) "
               "and missing-rescale scale blowups";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const HeNetworkPlan &plan = facts.plan;
        if (!facts.paramsValid)
            return; // scale-level reports the broken prime chain

        struct St
        {
            bool written = false;
            std::size_t level = 0;
            double scale = 0.0;
            HeOpKind lastWriter = HeOpKind::copy;
            std::size_t lastWriterInstr = 0;
            bool readSinceWrite = false;
        };
        std::vector<St> regs(
            static_cast<std::size_t>(std::max(plan.regCount, 0)));
        for (std::size_t i = 0;
             i < plan.inputGather.size() && i < regs.size(); ++i)
            regs[i] = {true, plan.params.levels, facts.schemeScale,
                       HeOpKind::copy, 0, false};

        for (std::size_t li = 0; li < plan.layers.size(); ++li) {
            const HeLayerPlan &layer = plan.layers[li];
            std::size_t deferrable = 0;
            for (std::size_t ii = 0; ii < layer.instrs.size(); ++ii) {
                const HeInstr &instr = layer.instrs[ii];
                if (!facts.regOk(instr.dst) ||
                    !facts.regOk(instr.src))
                    continue; // def-use reports it
                St &src = regs[static_cast<std::size_t>(instr.src)];
                St &dst = regs[static_cast<std::size_t>(instr.dst)];
                if (!src.written)
                    continue; // def-use reports it

                // Missing rescale: an operand still carrying a full
                // multiply's scale growth is about to be multiplied
                // again — the product overshoots the waterline by a
                // whole scale factor.
                if ((instr.kind == HeOpKind::pcMult ||
                     instr.kind == HeOpKind::ccMult) &&
                    src.scale >=
                        facts.schemeScale * facts.schemeScale * 0.5) {
                    report.addInstr(
                        Severity::warning, name(), li, layer.name, ii,
                        "missing rescale: operand " +
                            regName(instr.src) + " at scale 2^" +
                            fmtBits(std::log2(src.scale)) +
                            " has not been rescaled since its last "
                            "multiply",
                        "insert a rescale before multiplying again to "
                        "stay at the scale waterline");
                }

                // Deferrable rescale: both operands of an aligned add
                // were produced directly by rescales — sinking the
                // rescale below the add saves one NTT-heavy op.
                if (instr.kind == HeOpKind::ccAdd && dst.written &&
                    dst.lastWriter == HeOpKind::rescale &&
                    src.lastWriter == HeOpKind::rescale &&
                    dst.level == src.level &&
                    scalesClose(dst.scale, src.scale))
                    ++deferrable;

                // Redundant rescale: the value a pure overwrite
                // clobbers was produced by a rescale nobody read.
                const bool pure_overwrite =
                    instr.kind != HeOpKind::ccAdd &&
                    instr.dst != instr.src;
                if (pure_overwrite && dst.written &&
                    dst.lastWriter == HeOpKind::rescale &&
                    !dst.readSinceWrite) {
                    report.addInstr(
                        Severity::warning, name(), li, layer.name,
                        dst.lastWriterInstr,
                        "redundant rescale: the result in " +
                            regName(instr.dst) +
                            " is overwritten before any use",
                        "delete the rescale or consume its result");
                }

                src.readSinceWrite = true;
                if (instr.kind == HeOpKind::ccAdd)
                    dst.readSinceWrite = true;
                apply(facts, instr, src, dst, ii);
            }
            if (deferrable > 0) {
                report.addLayer(
                    Severity::note, name(), li, layer.name,
                    std::to_string(deferrable) +
                        " addition(s) consume freshly rescaled "
                        "operands; deferring those rescales past the "
                        "adds would eliminate up to " +
                        std::to_string(deferrable) + " rescale op(s)",
                    "enable CompileOptions::rescaleWaterline for the "
                    "certified rewrite");
            }
        }

        // Wasted levels: a chain deeper than the network consumes.
        if (!plan.layers.empty()) {
            const std::size_t final_level =
                plan.layers.back().levelOut;
            if (final_level > 1) {
                report.addNetwork(
                    Severity::note, name(),
                    "plan finishes at level " +
                        std::to_string(final_level) + "; " +
                        std::to_string(final_level - 1) +
                        " data prime(s) are never consumed",
                    "a shallower prime chain shrinks every ciphertext "
                    "and keyswitch");
            }
        }
    }

  private:
    template <typename St>
    void
    apply(const PlanFacts &facts, const HeInstr &instr,
          const St &src_in, St &dst, std::size_t ii) const
    {
        const St src = src_in; // dst may alias src
        switch (instr.kind) {
          case HeOpKind::pcMult:
            dst = src;
            dst.scale = src.scale * facts.schemeScale;
            break;
          case HeOpKind::pcAdd:
            dst = src;
            break;
          case HeOpKind::ccAdd:
            break; // dst shape unchanged
          case HeOpKind::ccMult:
            dst = src;
            dst.scale = src.scale * src.scale;
            break;
          case HeOpKind::relinearize:
          case HeOpKind::rotate:
          case HeOpKind::copy:
            dst = src;
            break;
          case HeOpKind::rescale:
            dst = src;
            if (src.level >= 2) {
                dst.scale = src.scale / facts.primes[src.level - 1];
                dst.level = src.level - 1;
            }
            break;
        }
        dst.written = true;
        dst.lastWriter = instr.kind;
        dst.lastWriterInstr = ii;
        dst.readSinceWrite = false;
    }

    static bool
    scalesClose(double a, double b)
    {
        if (!(a > 0.0) || !(b > 0.0))
            return false;
        const double ratio = a / b;
        return ratio > 0.99 && ratio < 1.01;
    }

    static std::string
    fmtBits(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3g", v);
        return buf;
    }
};

// --- pass 10: batch-layout consistency -------------------------------------

/**
 * Cross-request batching invariants. A plan with batchLanes = B > 1
 * interleaves B independent requests lane-wise (request b's data at
 * physical slots s*B + b), so its correctness rests on structural
 * properties no other pass checks:
 *   - every rotation step is a multiple of B (a non-multiple permutes
 *     data BETWEEN requests — silent cross-tenant corruption);
 *   - every layout position and every active gather entry sits on a
 *     lane-0 slot (s % B == 0);
 *   - B divides the slot count (otherwise the cyclic wraparound of a
 *     rotation crosses lanes even for stride-B steps);
 *   - each register carries at most slots/B elements, i.e.
 *     nSlots >= B x per-request footprint;
 *   - every non-elided plaintext is lane-constant (broadcast), so one
 *     pcMult applies the same weight to every request.
 */
class BatchLayoutPass final : public AnalysisPass
{
  public:
    const char *name() const override { return "batch-layout"; }
    const char *
    description() const override
    {
        return "cross-request batch lane isolation and capacity";
    }

    void
    run(const PlanFacts &facts, AnalysisReport &report) const override
    {
        const HeNetworkPlan &plan = facts.plan;
        const std::size_t lanes = plan.batchLanes;
        if (lanes == 0) {
            report.addNetwork(
                Severity::error, name(),
                "batchLanes is 0 (a plan always has at least the "
                "single lane of an unbatched request)",
                "set batchLanes to 1 for an unbatched plan");
            return;
        }
        if (lanes == 1)
            return; // unbatched: nothing to isolate
        if (facts.slots % lanes != 0 || lanes > facts.slots) {
            report.addNetwork(
                Severity::error, name(),
                "batchLanes " + std::to_string(lanes) +
                    " does not divide the slot count " +
                    std::to_string(facts.slots) +
                    " (the rotation wraparound would cross lanes)",
                "use a power-of-two batch size that divides N/2");
            return; // every lane invariant below presumes divisibility
        }
        const std::size_t perRequest = facts.slots / lanes;

        for (std::size_t li = 0; li < plan.layers.size(); ++li) {
            const HeLayerPlan &layer = plan.layers[li];
            for (std::size_t ii = 0; ii < layer.instrs.size(); ++ii) {
                const HeInstr &instr = layer.instrs[ii];
                if (instr.kind != HeOpKind::rotate)
                    continue;
                const auto step =
                    static_cast<std::int64_t>(instr.step);
                if (step % static_cast<std::int64_t>(lanes) != 0) {
                    report.addInstr(
                        Severity::error, name(), li, layer.name, ii,
                        "rotation step " + std::to_string(instr.step) +
                            " is not a multiple of the " +
                            std::to_string(lanes) +
                            " batch lanes: it moves data between "
                            "requests",
                        "batched rotations must be stride-B; mask or "
                        "recompile with this batch size");
                }
            }
            checkBatchLayout(layer.outputLayout, lanes, perRequest,
                             static_cast<std::int32_t>(li), layer.name,
                             report);
        }
        checkBatchLayout(plan.outputLayout, lanes, perRequest, -1, "",
                         report);

        for (std::size_t i = 0; i < plan.inputGather.size(); ++i) {
            const auto &gather = plan.inputGather[i];
            for (std::size_t s = 0; s < gather.size(); ++s) {
                if (gather[s] >= 0 && s % lanes != 0) {
                    report.addNetwork(
                        Severity::error, name(),
                        "inputGather[" + std::to_string(i) +
                            "] places element " +
                            std::to_string(gather[s]) +
                            " at slot " + std::to_string(s) +
                            ", which is lane " +
                            std::to_string(s % lanes) +
                            " (the gather spec addresses lane 0 "
                            "only; siblings are filled at encrypt "
                            "time)");
                    break;
                }
            }
        }

        for (std::size_t p = 0; p < plan.plaintexts.size(); ++p) {
            const auto &values = plan.plaintexts[p].values;
            if (values.empty())
                continue; // elided payload: nothing to check
            for (std::size_t s = 0; s < values.size(); ++s) {
                if (values[s] != values[(s / lanes) * lanes]) {
                    report.addNetwork(
                        Severity::error, name(),
                        "plaintext " + std::to_string(p) +
                            " is not lane-constant at slot " +
                            std::to_string(s) +
                            ": a batched weight must broadcast the "
                            "same value to all " +
                            std::to_string(lanes) + " lanes");
                    break;
                }
            }
        }
    }

  private:
    /** Lane alignment + per-request slot capacity of one layout. */
    void
    checkBatchLayout(const hecnn::SlotLayout &layout, std::size_t lanes,
                     std::size_t perRequest, std::int32_t li,
                     const std::string &layerName,
                     AnalysisReport &report) const
    {
        const auto add = [&](const std::string &msg,
                             const std::string &hint = "") {
            if (li >= 0) {
                report.addLayer(Severity::error, name(),
                                static_cast<std::size_t>(li), layerName,
                                msg, hint);
            } else {
                report.addNetwork(Severity::error, name(), msg, hint);
            }
        };
        std::map<std::int32_t, std::size_t> elemsPerReg;
        for (const auto &[reg, slot] : layout.pos) {
            if (static_cast<std::size_t>(slot) % lanes != 0) {
                add("layout places an element at slot " +
                        std::to_string(slot) + " of register " +
                        std::to_string(reg) + ", which is lane " +
                        std::to_string(static_cast<std::size_t>(slot) %
                                       lanes) +
                        " (batched layouts address lane 0 only)");
                return;
            }
            ++elemsPerReg[reg];
        }
        for (const auto &[reg, count] : elemsPerReg) {
            if (count > perRequest) {
                add("register " + std::to_string(reg) + " carries " +
                        std::to_string(count) +
                        " elements but a " + std::to_string(lanes) +
                        "-lane batch leaves only " +
                        std::to_string(perRequest) +
                        " slots per request (nSlots >= B x footprint "
                        "is violated)",
                    "reduce the batch size or use larger CKKS N");
                return;
            }
        }
    }
};

} // namespace

// --- pass manager ----------------------------------------------------------

void
PassManager::add(std::unique_ptr<AnalysisPass> pass)
{
    passes_.push_back(std::move(pass));
}

AnalysisReport
PassManager::run(const hecnn::HeNetworkPlan &plan) const
{
    const PlanFacts facts = makePlanFacts(plan);
    AnalysisReport report;
    for (const auto &pass : passes_)
        pass->run(facts, report);
    return report;
}

PassManager
PassManager::standard()
{
    PassManager pm;
    pm.add(makeDefUsePass());
    pm.add(makeScaleLevelPass());
    pm.add(makeLivenessPass());
    pm.add(makeRotationKeyPass());
    pm.add(makeLayoutPass());
    pm.add(makeOpCountPass());
    pm.add(makeLayerClassPass());
    pm.add(makeNoiseBudgetPass());
    pm.add(makeRescalePlacementPass());
    pm.add(makeBatchLayoutPass());
    return pm;
}

std::unique_ptr<AnalysisPass>
makeDefUsePass()
{
    return std::make_unique<DefUsePass>();
}
std::unique_ptr<AnalysisPass>
makeScaleLevelPass()
{
    return std::make_unique<ScaleLevelPass>();
}
std::unique_ptr<AnalysisPass>
makeLivenessPass()
{
    return std::make_unique<LivenessPass>();
}
std::unique_ptr<AnalysisPass>
makeRotationKeyPass()
{
    return std::make_unique<RotationKeyPass>();
}
std::unique_ptr<AnalysisPass>
makeLayoutPass()
{
    return std::make_unique<LayoutPass>();
}
std::unique_ptr<AnalysisPass>
makeOpCountPass()
{
    return std::make_unique<OpCountPass>();
}
std::unique_ptr<AnalysisPass>
makeLayerClassPass()
{
    return std::make_unique<LayerClassPass>();
}
std::unique_ptr<AnalysisPass>
makeNoiseBudgetPass()
{
    return std::make_unique<NoiseBudgetPass>();
}
std::unique_ptr<AnalysisPass>
makeRescalePlacementPass()
{
    return std::make_unique<RescalePlacementPass>();
}
std::unique_ptr<AnalysisPass>
makeBatchLayoutPass()
{
    return std::make_unique<BatchLayoutPass>();
}

} // namespace fxhenn::analysis
