/**
 * @file
 * The analysis-pass interface and the shared facts every pass sees.
 *
 * A pass is a stateless dataflow check over one HeNetworkPlan; the
 * PassManager runs a pipeline of them and merges their findings into
 * one AnalysisReport. Passes never mutate the plan and never throw on
 * malformed input — a hostile plan produces diagnostics, not crashes,
 * so the verifier can always report *all* problems it finds.
 */
#ifndef FXHENN_ANALYSIS_PASS_HPP
#define FXHENN_ANALYSIS_PASS_HPP

#include <vector>

#include "src/analysis/diagnostic.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::analysis {

/**
 * Precomputed facts shared by the passes, derived once per run.
 *
 * The abstract prime chain replays the exact primes a CkksContext
 * would generate for plan.params, so the scale/level abstract
 * interpretation predicts the evaluator's double arithmetic
 * bit-for-bit without ever building NTT tables or keys.
 */
struct PlanFacts
{
    const hecnn::HeNetworkPlan &plan;
    std::size_t slots = 0;          ///< params.n / 2
    std::vector<double> primes;     ///< q_0..q_{L-1} (empty: params bad)
    double schemeScale = 0.0;       ///< encoding scale Delta
    bool paramsValid = false;

    /** @return true when @p reg indexes the plan's register file. */
    bool
    regOk(std::int32_t reg) const
    {
        return reg >= 0 && reg < plan.regCount;
    }

    /** @return true when @p pt indexes the plaintext pool. */
    bool
    ptOk(std::int32_t pt) const
    {
        return pt >= 0 &&
               pt < static_cast<std::int32_t>(plan.plaintexts.size());
    }
};

/** Derive the shared facts for @p plan (never throws). */
PlanFacts makePlanFacts(const hecnn::HeNetworkPlan &plan);

/** One static check over the plan IR. */
class AnalysisPass
{
  public:
    virtual ~AnalysisPass() = default;

    /** Stable identifier used in diagnostics ("def-use", ...). */
    virtual const char *name() const = 0;

    /** One-line description for `fxhenn lint --list-passes`. */
    virtual const char *description() const = 0;

    /** Append this pass's findings for @p facts to @p report. */
    virtual void run(const PlanFacts &facts,
                     AnalysisReport &report) const = 0;
};

} // namespace fxhenn::analysis

#endif // FXHENN_ANALYSIS_PASS_HPP
