/**
 * @file
 * Pass manager for the plan verifier.
 *
 * Owns an ordered pipeline of AnalysisPass instances and runs them
 * over one plan, collecting every finding into a single
 * AnalysisReport. The standard pipeline (standardPasses()) is the
 * contract `fxhenn lint`, the plan-load verification hook and the
 * compiler self-check all share.
 */
#ifndef FXHENN_ANALYSIS_PASS_MANAGER_HPP
#define FXHENN_ANALYSIS_PASS_MANAGER_HPP

#include <memory>
#include <vector>

#include "src/analysis/pass.hpp"

namespace fxhenn::analysis {

/** An ordered pipeline of analysis passes. */
class PassManager
{
  public:
    /** Append @p pass to the pipeline. */
    void add(std::unique_ptr<AnalysisPass> pass);

    /** The registered passes, in execution order. */
    const std::vector<std::unique_ptr<AnalysisPass>> &passes() const
    {
        return passes_;
    }

    /** Run every pass over @p plan and merge the findings. */
    AnalysisReport run(const hecnn::HeNetworkPlan &plan) const;

    /** The standard 10-pass verification pipeline. */
    static PassManager standard();

  private:
    std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

/** Factories for the individual standard passes (test seams). */
std::unique_ptr<AnalysisPass> makeDefUsePass();
std::unique_ptr<AnalysisPass> makeScaleLevelPass();
std::unique_ptr<AnalysisPass> makeLivenessPass();
std::unique_ptr<AnalysisPass> makeRotationKeyPass();
std::unique_ptr<AnalysisPass> makeLayoutPass();
std::unique_ptr<AnalysisPass> makeOpCountPass();
std::unique_ptr<AnalysisPass> makeLayerClassPass();
std::unique_ptr<AnalysisPass> makeNoiseBudgetPass();
std::unique_ptr<AnalysisPass> makeRescalePlacementPass();
std::unique_ptr<AnalysisPass> makeBatchLayoutPass();

} // namespace fxhenn::analysis

#endif // FXHENN_ANALYSIS_PASS_MANAGER_HPP
