/**
 * @file
 * Register liveness over the plan instruction stream.
 *
 * A compiled plan is straight-line code over a register file, so one
 * backward sweep computes exact liveness: a register is live at a
 * program point when its current value is still read on the way to the
 * network's outputLayout. Two consumers use the result:
 *
 *  - the liveness verifier pass flags dead instructions (results that
 *    never reach the output) and reports per-layer peaks;
 *  - dse::Explorer bounds the intra-layer ciphertext-buffer
 *    replication of the Eq. 8-9 BRAM model by the layer's peak live
 *    register count — a layer that never holds more than k live
 *    ciphertexts cannot need more than k resident stream buffers.
 */
#ifndef FXHENN_ANALYSIS_LIVENESS_HPP
#define FXHENN_ANALYSIS_LIVENESS_HPP

#include <cstdint>
#include <vector>

#include "src/hecnn/plan.hpp"

namespace fxhenn::analysis {

/** One instruction whose result never reaches the network output. */
struct DeadInstr
{
    std::size_t layer = 0; ///< layer index
    std::size_t instr = 0; ///< instruction index within the layer
};

/** The liveness solution for one plan. */
struct LivenessInfo
{
    /**
     * Per-layer peak of simultaneously live registers (any program
     * point inside the layer, including values carried across it).
     */
    std::vector<unsigned> peakLive;

    /** Maximum of peakLive over all layers. */
    unsigned peakLiveOverall = 0;

    /**
     * Instructions whose destination value is never read afterwards
     * and is not part of the network outputLayout. Only the last dead
     * write of a chain is reported: its operands count as used.
     */
    std::vector<DeadInstr> deadInstrs;
};

/**
 * Solve liveness for @p plan. Tolerates malformed plans (out-of-range
 * registers are ignored); pair with the def-use pass for validation.
 */
LivenessInfo computeLiveness(const hecnn::HeNetworkPlan &plan);

} // namespace fxhenn::analysis

#endif // FXHENN_ANALYSIS_LIVENESS_HPP
