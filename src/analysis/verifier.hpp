/**
 * @file
 * Convenience entry points for the standard plan verification pipeline.
 *
 * Three call sites share this facade (docs/ARCHITECTURE.md Sec. 8):
 *  - `fxhenn lint` renders the full report for the user;
 *  - plan_io::loadPlan (behind --verify-plan) and the compiler's
 *    debug-mode self-check call verifyPlanOrThrow() through the
 *    hecnn::plan_check hook so fxhenn_hecnn never links this library.
 */
#ifndef FXHENN_ANALYSIS_VERIFIER_HPP
#define FXHENN_ANALYSIS_VERIFIER_HPP

#include <string>

#include "src/analysis/diagnostic.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::analysis {

/** Run the standard 7-pass pipeline over @p plan. */
AnalysisReport verifyPlan(const hecnn::HeNetworkPlan &plan);

/**
 * Run the standard pipeline and throw ConfigError when it finds any
 * error-severity diagnostic. @p origin names the caller ("compile",
 * "plan-load", ...) and prefixes the exception message; the message
 * body is the full text report, so the failure is actionable.
 */
void verifyPlanOrThrow(const hecnn::HeNetworkPlan &plan,
                       const std::string &origin);

/**
 * Register verifyPlanOrThrow() as the process-wide plan verifier used
 * by hecnn::runPlanVerifier() (compiler self-check, --verify-plan
 * loads). Idempotent; returns true on first installation.
 */
bool installPlanVerifier();

} // namespace fxhenn::analysis

#endif // FXHENN_ANALYSIS_VERIFIER_HPP
