#include "src/analysis/verifier.hpp"

#include "src/analysis/pass_manager.hpp"
#include "src/common/assert.hpp"
#include "src/hecnn/plan_check.hpp"

namespace fxhenn::analysis {

AnalysisReport
verifyPlan(const hecnn::HeNetworkPlan &plan)
{
    return PassManager::standard().run(plan);
}

void
verifyPlanOrThrow(const hecnn::HeNetworkPlan &plan,
                  const std::string &origin)
{
    const AnalysisReport report = verifyPlan(plan);
    if (report.errorCount() == 0)
        return;
    throw ConfigError("plan verification failed (" + origin + "):\n" +
                      report.toText());
}

bool
installPlanVerifier()
{
    return hecnn::setPlanVerifier(&verifyPlanOrThrow);
}

} // namespace fxhenn::analysis
