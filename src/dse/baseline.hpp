/**
 * @file
 * The no-reuse baseline accelerator of Sec. VII-C (Table IX).
 *
 * Every layer receives dedicated module instances and private buffers —
 * no computation or storage resource is shared across layers. Resources
 * are divided between layers proportionally to their HE-MAC workload
 * ("an intuitive resource allocation so that more resources are
 * assigned to the heavily burdened CNN layers"), and each layer's
 * parallelism is then chosen greedily within its share.
 */
#ifndef FXHENN_DSE_BASELINE_HPP
#define FXHENN_DSE_BASELINE_HPP

#include <vector>

#include "src/fpga/device.hpp"
#include "src/fpga/layer_model.hpp"

namespace fxhenn::dse {

/** Result of the baseline allocation. */
struct BaselineResult
{
    std::vector<fpga::ModuleAllocation> perLayer;
    std::vector<double> bramLimits; ///< per-layer on-chip share
    fpga::NetworkPerf perf;
    double latencySeconds = 0.0;
};

/** Allocate and evaluate the baseline design for @p plan on @p device. */
BaselineResult allocateBaseline(const hecnn::HeNetworkPlan &plan,
                                const fpga::DeviceSpec &device);

} // namespace fxhenn::dse

#endif // FXHENN_DSE_BASELINE_HPP
