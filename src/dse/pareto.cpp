#include "src/dse/pareto.hpp"

#include <algorithm>

namespace fxhenn::dse {

bool
dominates(const ParetoSample &a, const ParetoSample &b)
{
    const bool no_worse = a.bramBlocks <= b.bramBlocks &&
                          a.latencySeconds <= b.latencySeconds;
    const bool better = a.bramBlocks < b.bramBlocks ||
                        a.latencySeconds < b.latencySeconds;
    return no_worse && better;
}

std::vector<ParetoSample>
paretoFront(std::vector<ParetoSample> samples)
{
    std::sort(samples.begin(), samples.end(),
              [](const ParetoSample &a, const ParetoSample &b) {
                  if (a.bramBlocks != b.bramBlocks)
                      return a.bramBlocks < b.bramBlocks;
                  return a.latencySeconds < b.latencySeconds;
              });
    std::vector<ParetoSample> front;
    double best_latency = -1.0;
    for (const auto &s : samples) {
        if (best_latency < 0.0 || s.latencySeconds < best_latency) {
            front.push_back(s);
            best_latency = s.latencySeconds;
        }
    }
    return front;
}

} // namespace fxhenn::dse
