#include "src/dse/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/assert.hpp"

namespace fxhenn::dse {

namespace {

using fpga::HeOpModule;
using fpga::ModuleAllocation;

/**
 * Pick the fastest allocation for one layer within (dspBudget,
 * bramBudget) by scanning the same knob ranges as the full DSE but
 * independently per layer.
 */
ModuleAllocation
allocateLayer(const hecnn::HeLayerPlan &layer, std::uint64_t n,
              double dspBudget, double bramBudget)
{
    // The DSP budget is a hard constraint; buffers that exceed the
    // layer's BRAM share spill to DRAM inside evaluateLayer and slow
    // the layer down, so the search trades parallelism against spill.
    ModuleAllocation best;
    double best_cycles = -1.0;

    for (unsigned nc : {2u, 4u, 8u}) {
        for (unsigned ks_intra = 1; ks_intra <= 7; ++ks_intra) {
            for (unsigned ks_inter = 1; ks_inter <= 6; ++ks_inter) {
                for (unsigned rs_intra = 1; rs_intra <= 7;
                     rs_intra += 2) {
                    ModuleAllocation alloc;
                    alloc[HeOpModule::ccAdd] = {nc, 1, 1};
                    alloc[HeOpModule::pcMult] = {nc, 1, 1};
                    alloc[HeOpModule::ccMult] = {nc, 1, 1};
                    alloc[HeOpModule::rescale] = {nc, rs_intra, 1};
                    alloc[HeOpModule::keySwitch] = {nc, ks_intra,
                                                    ks_inter};
                    const auto perf = fpga::evaluateLayer(
                        layer, n, alloc, bramBudget);
                    if (perf.dsp > dspBudget)
                        continue;
                    if (best_cycles < 0.0 ||
                        perf.cycles < best_cycles) {
                        best_cycles = perf.cycles;
                        best = alloc;
                    }
                }
            }
        }
    }
    FXHENN_FATAL_IF(best_cycles < 0.0,
                    "baseline: no feasible allocation for layer " +
                        layer.name + " within its resource share");
    return best;
}

} // namespace

BaselineResult
allocateBaseline(const hecnn::HeNetworkPlan &plan,
                 const fpga::DeviceSpec &device)
{
    FXHENN_FATAL_IF(plan.layers.empty(), "empty plan");
    const std::size_t layers = plan.layers.size();
    const double bram_cap =
        device.effectiveBramBlocks(plan.params.n / 4);

    // Blended shares: half the chip divided equally, half divided by
    // HE-MAC workload — the "intuitive allocation that favors heavily
    // burdened layers" of Sec. VII-C without starving the small ones.
    // A layer whose buffers exceed its share spills to DRAM (this is
    // exactly why Table II's 206 % aggregate demand forces the
    // baseline to be slow).
    std::vector<double> weight;
    double total = 0.0;
    for (const auto &layer : plan.layers) {
        const double w = std::max(
            fpga::layerModMuls(layer, plan.params.n), 1.0);
        weight.push_back(w);
        total += w;
    }
    for (auto &w : weight)
        w = 0.5 / static_cast<double>(layers) + 0.5 * (w / total);

    // DSP cannot spill: every layer is guaranteed the slices of its
    // minimum (all-knobs-at-one) module set, and only the surplus is
    // divided proportionally.
    std::vector<double> min_dsp(layers);
    double min_dsp_total = 0.0;
    for (std::size_t i = 0; i < layers; ++i) {
        ModuleAllocation floor_alloc;
        for (auto &op : floor_alloc.ops)
            op = {2, 1, 1};
        min_dsp[i] = fpga::evaluateLayer(plan.layers[i], plan.params.n,
                                         floor_alloc)
                         .dsp;
        min_dsp_total += min_dsp[i];
    }
    FXHENN_FATAL_IF(min_dsp_total > device.dspSlices,
                    "baseline (no module reuse) exceeds the device DSP "
                    "capacity even at minimum parallelism");
    const double spare_dsp = device.dspSlices - min_dsp_total;

    BaselineResult result;
    std::vector<double> limits;
    for (std::size_t i = 0; i < layers; ++i) {
        limits.push_back(weight[i] * bram_cap);
        result.perLayer.push_back(allocateLayer(
            plan.layers[i], plan.params.n,
            min_dsp[i] + weight[i] * spare_dsp, limits.back()));
    }
    result.bramLimits = limits;
    result.perf =
        fpga::evaluateNetworkDedicated(plan, result.perLayer, &limits);
    result.latencySeconds = device.seconds(result.perf.totalCycles);
    return result;
}

} // namespace fxhenn::dse
