/**
 * @file
 * Design space exploration (Sec. VI-B).
 *
 * Enumerates the parallelism knobs of every HE operation module class —
 * nc_NTT in {2,4,8}, P_intra in 1..L, P_inter — and minimizes the
 * aggregated layer latency (Eq. 10) subject to the device's DSP and
 * BRAM capacities:
 *
 *     min  sum_lr LAT_lr
 *     s.t. sum_op DSP_op           <= DSP_max
 *          max_lr BRAM_lr          <= BRAM_max   (inter-layer reuse)
 *
 * The space is a few hundred thousand points and is searched
 * exhaustively, mirroring the paper's choice ("solved within a few
 * seconds, negligible compared with FPGA synthesis").
 */
#ifndef FXHENN_DSE_EXPLORER_HPP
#define FXHENN_DSE_EXPLORER_HPP

#include <optional>
#include <vector>

#include "src/fpga/device.hpp"
#include "src/fpga/layer_model.hpp"

namespace fxhenn::dse {

/** One evaluated design point. */
struct DesignPoint
{
    fpga::ModuleAllocation alloc;
    fpga::NetworkPerf perf;
    double latencySeconds = 0.0;
    double dspFraction = 0.0;  ///< physical DSP / device DSP
    double bramFraction = 0.0; ///< physical BRAM / effective capacity
};

/** Explorer limits (defaults match the paper's observed optima). */
struct ExploreOptions
{
    std::vector<unsigned> ncNttChoices{2, 4, 8};
    unsigned maxIntraNtt = 7;    ///< Rescale/KeySwitch P_intra ceiling
    unsigned maxInterNtt = 6;    ///< Rescale/KeySwitch P_inter ceiling
    std::vector<unsigned> elementwiseIntra{1, 2, 4};
    std::vector<unsigned> elementwiseInter{1, 2};
    /** Override the device BRAM capacity (Fig. 9 budget sweep). */
    std::optional<double> bramBudgetBlocks;
    /** Keep every feasible point (Fig. 9 scatter), not just the best. */
    bool collectAll = false;
    /**
     * Return an empty result instead of throwing ConfigError when no
     * design point fits the device. Budget sweeps set this: an
     * infeasible budget is a data point there, not a user error.
     */
    bool allowInfeasible = false;

    /**
     * Tighten each layer's BRAM demand with its register-liveness
     * peak (analysis::computeLiveness): buffer replication beyond the
     * number of simultaneously live ciphertexts is provably unused.
     * The bound never grows, so the feasible set only expands and the
     * best latency can only improve or stay put.
     */
    bool livenessBuffers = false;

    /**
     * Replay the winning design point through the event-driven
     * pipeline simulator (fpga/pipeline_sim — the arithmetic core of
     * the "fpga-sim" execution backend) and report the per-layer
     * predicted-vs-simulated cycle error in ExploreResult::simReplay.
     * This is the DSE half of the predicted-vs-measured latency loop:
     * the closed forms the search minimized are checked against the
     * schedule an executed run would actually be charged.
     */
    bool replaySim = false;

    /**
     * Gate the search on the static noise certificate and prune the
     * prime-chain dimension with it: a plan whose certified minimum
     * headroom is negative produces garbage on ANY hardware, so
     * exploring it is a ConfigError (unless allowInfeasible). The
     * certifier is then re-run at shrinking chain depths (levelShift)
     * to report the minimum prime count that still certifies — every
     * level above it is a pruned design choice (smaller ciphertexts,
     * cheaper keyswitch) the compiler could claim by recompiling.
     */
    bool certifyNoise = false;
};

/** Per-layer predicted-vs-simulated latency of the winning point. */
struct ReplayRow
{
    std::string layer;
    double predictedCycles = 0.0; ///< closed form (what DSE minimized)
    double simulatedCycles = 0.0; ///< event-driven pipeline schedule
    /** |simulated - predicted| / predicted. */
    double errorFrac = 0.0;
};

/** Result of a search. */
struct ExploreResult
{
    std::optional<DesignPoint> best;
    std::vector<DesignPoint> all; ///< filled when collectAll is set
    std::size_t evaluated = 0;    ///< feasible design points seen
    std::size_t pruned = 0;       ///< points rejected by constraints

    // Filled when ExploreOptions::replaySim is set and a best exists.
    std::vector<ReplayRow> simReplay;
    double simReplayMaxErrorFrac = 0.0;

    // Filled when ExploreOptions::certifyNoise is set.
    /** Prime-chain depth the plan was compiled for. */
    std::size_t certifiedLevels = 0;
    /** Smallest chain depth whose certificate still shows headroom. */
    std::size_t minFeasibleLevels = 0;
    /** Certified minimum headroom at the compiled depth (bits). */
    double certifiedMinHeadroomBits = 0.0;
    /** Prime-count choices the certificate proved removable. */
    std::size_t levelChoicesPruned = 0;
};

/** Run the exhaustive DSE for @p plan on @p device. */
ExploreResult explore(const hecnn::HeNetworkPlan &plan,
                      const fpga::DeviceSpec &device,
                      const ExploreOptions &options = {});

} // namespace fxhenn::dse

#endif // FXHENN_DSE_EXPLORER_HPP
