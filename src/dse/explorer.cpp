#include "src/dse/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/analysis/liveness.hpp"
#include "src/common/assert.hpp"
#include "src/fpga/pipeline_sim.hpp"
#include "src/hecnn/noise_cert.hpp"
#include "src/robustness/fault_injection.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::dse {

namespace {

using fpga::HeOpModule;
using fpga::ModuleAllocation;
using fpga::OpAllocation;

/** Candidate (pIntra, pInter) pairs for one module class. */
std::vector<std::pair<unsigned, unsigned>>
pairChoices(const std::vector<unsigned> &intra,
            const std::vector<unsigned> &inter)
{
    std::vector<std::pair<unsigned, unsigned>> out;
    for (unsigned a : intra) {
        for (unsigned b : inter)
            out.emplace_back(a, b);
    }
    return out;
}

} // namespace

ExploreResult
explore(const hecnn::HeNetworkPlan &plan, const fpga::DeviceSpec &device,
        const ExploreOptions &options)
{
    FXHENN_FATAL_IF(plan.layers.empty(), "cannot explore an empty plan");
    FXHENN_TELEM_SCOPED_TIMER("dse.explore.ns");
    FXHENN_TELEM_COUNT("dse.explorations", 1);
    ExploreResult result;

    if (options.certifyNoise) {
        const auto cert = hecnn::certifyPlan(plan);
        FXHENN_FATAL_IF(!cert.valid && !options.allowInfeasible,
                        "cannot noise-certify plan '" + plan.name +
                            "' before exploration: " +
                            cert.invalidReason);
        if (cert.valid) {
            result.certifiedLevels = plan.params.levels;
            result.minFeasibleLevels = plan.params.levels;
            result.certifiedMinHeadroomBits = cert.minHeadroomBits;
            if (!cert.certified()) {
                std::ostringstream oss;
                oss << "plan '" << plan.name
                    << "' is not noise-safe: certified minimum "
                       "headroom "
                    << cert.minHeadroomBits
                    << " bits is negative — no hardware allocation "
                       "can fix a plan that decrypts to garbage";
                FXHENN_FATAL_IF(!options.allowInfeasible, oss.str());
            } else {
                // Shrink the chain until the certificate breaks: the
                // deepest shift that still certifies bounds the prime
                // count actually needed. Shifting below the plan's
                // final level is structurally impossible (the last
                // rescale would have no prime to drop into).
                const std::size_t max_shift =
                    plan.layers.back().levelOut > 0
                        ? plan.layers.back().levelOut - 1
                        : 0;
                for (std::size_t k = 1; k <= max_shift; ++k) {
                    hecnn::CertifyOptions copts;
                    copts.levelShift = k;
                    const auto shifted =
                        hecnn::certifyPlan(plan, copts);
                    if (!shifted.valid || !shifted.certified())
                        break;
                    result.minFeasibleLevels = plan.params.levels - k;
                }
                result.levelChoicesPruned =
                    result.certifiedLevels - result.minFeasibleLevels;
                FXHENN_TELEM_COUNT("dse.level_choices_pruned",
                                   result.levelChoicesPruned);
            }
        }
    }

    fpga::DeviceSpec spec = device;
    if (auto fault = robustness::fireFault("dse.device")) {
        if (fault->kind == "infeasible") {
            spec.dspSlices = 1;
            spec.bram36kBlocks = 1;
            spec.uramBlocks = 0;
        }
    }

    std::vector<unsigned> ntt_intra;
    for (unsigned i = 1; i <= options.maxIntraNtt; ++i)
        ntt_intra.push_back(i);
    std::vector<unsigned> ntt_inter;
    for (unsigned i = 1; i <= options.maxInterNtt; ++i)
        ntt_inter.push_back(i);

    const auto ew_pairs =
        pairChoices(options.elementwiseIntra, options.elementwiseInter);
    const auto ntt_pairs = pairChoices(ntt_intra, ntt_inter);

    // Per-layer peak live-register counts, solved once for the whole
    // search (the bound is allocation-independent).
    std::vector<unsigned> peak_live;
    if (options.livenessBuffers)
        peak_live = analysis::computeLiveness(plan).peakLive;
    const std::vector<unsigned> *peaks =
        options.livenessBuffers ? &peak_live : nullptr;

    // CCmult parallelism is pinned to 1: it runs once per activation
    // ciphertext and never bottlenecks (the paper's Fig. 10 note).
    const OpAllocation ccmult_alloc{2, 1, 1};

    double best_cycles = 0.0;
    unsigned min_dsp = std::numeric_limits<unsigned>::max();
    double min_bram = std::numeric_limits<double>::infinity();
    double last_bram_cap = 0.0;
    for (unsigned nc : options.ncNttChoices) {
        for (const auto &[ks_a, ks_b] : ntt_pairs) {
            for (const auto &[rs_a, rs_b] : ntt_pairs) {
                for (const auto &[ew_a, ew_b] : ew_pairs) {
                    ModuleAllocation alloc;
                    alloc[HeOpModule::ccAdd] = {nc, ew_a, ew_b};
                    alloc[HeOpModule::pcMult] = {nc, ew_a, ew_b};
                    alloc[HeOpModule::ccMult] = ccmult_alloc;
                    alloc[HeOpModule::ccMult].ncNtt = nc;
                    alloc[HeOpModule::rescale] = {nc, rs_a, rs_b};
                    alloc[HeOpModule::keySwitch] = {nc, ks_a, ks_b};

                    const auto perf =
                        fpga::evaluateNetworkShared(plan, alloc,
                                                    peaks);

                    const double bram_cap =
                        options.bramBudgetBlocks
                            ? *options.bramBudgetBlocks
                            : spec.effectiveBramBlocks(
                                  plan.params.n / (2 * nc));
                    min_dsp = std::min(min_dsp, perf.dspPhysical);
                    min_bram = std::min(min_bram, perf.bramPhysical);
                    last_bram_cap = bram_cap;
                    if (perf.dspPhysical > spec.dspSlices ||
                        (spec.luts != 0 &&
                         perf.lutPhysical > spec.luts) ||
                        perf.bramPhysical > bram_cap) {
                        ++result.pruned;
                        continue;
                    }

                    ++result.evaluated;
                    DesignPoint point;
                    point.alloc = alloc;
                    point.latencySeconds =
                        spec.seconds(perf.totalCycles);
                    point.dspFraction =
                        double(perf.dspPhysical) / spec.dspSlices;
                    point.bramFraction = perf.bramPhysical / bram_cap;
                    point.perf = perf;

                    if (!result.best ||
                        point.perf.totalCycles < best_cycles) {
                        best_cycles = point.perf.totalCycles;
                        result.best = point;
                    }
                    if (options.collectAll)
                        result.all.push_back(std::move(point));
                }
            }
        }
    }
    FXHENN_TELEM_COUNT("dse.points_evaluated", result.evaluated);
    FXHENN_TELEM_COUNT("dse.points_pruned", result.pruned);
    if (!result.best && !options.allowInfeasible) {
        std::ostringstream oss;
        oss << "design space exploration found no feasible point for "
               "plan '"
            << plan.name << "' on device '" << spec.name << "': all "
            << result.pruned << " candidates exceed the resource "
            << "constraints. The smallest candidate needs >= "
            << min_dsp << " DSP slices (device has " << spec.dspSlices
            << ") and >= " << std::llround(std::ceil(min_bram))
            << " BRAM blocks (capacity " << std::llround(last_bram_cap)
            << "); pick a larger device or raise the BRAM budget.";
        FXHENN_FATAL_IF(true, oss.str());
    }
    if (options.replaySim && result.best) {
        // Close the loop on the winner: the closed forms the search
        // ranked points by, checked against the event-driven schedule
        // the fpga-sim backend will actually charge.
        result.simReplay.reserve(plan.layers.size());
        for (std::size_t i = 0; i < plan.layers.size(); ++i) {
            ReplayRow row;
            row.layer = plan.layers[i].name;
            row.predictedCycles = result.best->perf.layers[i].cycles;
            row.simulatedCycles = fpga::simulateLayer(
                plan.layers[i], plan.params.n, result.best->alloc);
            if (row.predictedCycles > 0.0)
                row.errorFrac = std::abs(row.simulatedCycles -
                                         row.predictedCycles) /
                                row.predictedCycles;
            result.simReplayMaxErrorFrac = std::max(
                result.simReplayMaxErrorFrac, row.errorFrac);
            result.simReplay.push_back(std::move(row));
        }
    }
    return result;
}

} // namespace fxhenn::dse
