/**
 * @file
 * Registration hook wiring the DSE into the "fpga-sim" backend.
 *
 * fpga::PipelineSimBackend needs a concrete design point; the DSE
 * knows how to find the best one, but fxhenn_fpga cannot call back
 * into fxhenn_dse (the link graph goes the other way). So, exactly
 * like analysis::installPlanVerifier(), binaries that want the
 * simulated executor call installFpgaSimBackend() at startup: it
 * registers an "fpga-sim" backend whose design point is the DSE
 * winner for the executed plan, explored lazily on first use and
 * cached per executor.
 */
#ifndef FXHENN_DSE_SIM_BACKEND_INSTALL_HPP
#define FXHENN_DSE_SIM_BACKEND_INSTALL_HPP

#include "src/dse/explorer.hpp"
#include "src/fpga/device.hpp"

namespace fxhenn::dse {

/**
 * Register the "fpga-sim" execution backend, resolving each executed
 * plan's design point with explore(plan, @p device, @p options). An
 * infeasible plan/device pair surfaces as the explorer's ConfigError
 * on first use. First installation wins: returns false (and changes
 * nothing) when "fpga-sim" is already registered. Idempotent to call
 * from every entry point that might execute plans.
 */
bool installFpgaSimBackend(fpga::DeviceSpec device = fpga::acu9eg(),
                           ExploreOptions options = {});

} // namespace fxhenn::dse

#endif // FXHENN_DSE_SIM_BACKEND_INSTALL_HPP
