/**
 * @file
 * Pareto-front extraction for the Fig. 9 DSE scatter.
 */
#ifndef FXHENN_DSE_PARETO_HPP
#define FXHENN_DSE_PARETO_HPP

#include <vector>

#include "src/dse/explorer.hpp"

namespace fxhenn::dse {

/** (BRAM blocks, latency seconds) sample of one design point. */
struct ParetoSample
{
    double bramBlocks = 0.0;
    double latencySeconds = 0.0;
};

/**
 * @return the non-dominated subset of @p samples (smaller is better on
 * both axes), sorted by ascending BRAM usage.
 */
std::vector<ParetoSample> paretoFront(std::vector<ParetoSample> samples);

/** @return true when @p a dominates @p b (<= on both, < on one). */
bool dominates(const ParetoSample &a, const ParetoSample &b);

} // namespace fxhenn::dse

#endif // FXHENN_DSE_PARETO_HPP
