#include "src/dse/sim_backend_install.hpp"

#include <utility>

#include "src/common/assert.hpp"
#include "src/fpga/sim_backend.hpp"

namespace fxhenn::dse {

bool
installFpgaSimBackend(fpga::DeviceSpec device, ExploreOptions options)
{
    return fpga::installPipelineSimBackend(
        [device = std::move(device), options = std::move(options)](
            const hecnn::HeNetworkPlan &plan) {
            const auto result = explore(plan, device, options);
            FXHENN_FATAL_IF(!result.best,
                            "fpga-sim: no feasible design point for "
                            "plan '" +
                                plan.name + "' on device " +
                                device.name);
            fpga::SimDesign design;
            design.device = device;
            design.alloc = result.best->alloc;
            design.predictedLayerCycles.reserve(
                result.best->perf.layers.size());
            for (const auto &layer : result.best->perf.layers)
                design.predictedLayerCycles.push_back(layer.cycles);
            return design;
        });
}

} // namespace fxhenn::dse
