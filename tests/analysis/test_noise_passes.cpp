/**
 * @file
 * Per-pass tests of the two noise-aware lint passes: NoiseBudgetPass
 * (pass 8, the static certifier's lint frontend — its error severity
 * is what makes `fxhenn lint` exit 4 on an uncertifiable plan) and
 * RescalePlacementPass (pass 9: missing / redundant / deferrable
 * rescales). Follows the fixture style of test_verifier.cpp: one
 * minimal mutation of tinyPlan per finding.
 */
#include <gtest/gtest.h>

#include "plan_fixtures.hpp"

#include "src/analysis/pass_manager.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::analysis {
namespace {

using fixtures::hasMessage;
using fixtures::runPass;
using fixtures::tinyPlan;
using hecnn::HeOpKind;

/** Two back-to-back pcMults on a 2-prime chain: valid but UNSAFE. */
hecnn::HeNetworkPlan
hotPlan()
{
    auto plan = tinyPlan();
    plan.name = "hot";
    plan.params = ckks::testParams(1024, 2, 30);
    plan.plaintexts[0].level = plan.params.levels;
    auto &layer = plan.layers[0];
    layer.levelIn = plan.params.levels;
    layer.levelOut = plan.params.levels;
    layer.instrs.clear();
    layer.instrs.push_back({HeOpKind::pcMult, 1, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::pcMult, 1, 1, 0, 0});
    layer.classify();
    return plan;
}

TEST(NoiseBudgetPass, NotesCertifiedHeadroomOnCleanPlan)
{
    const auto report = runPass(makeNoiseBudgetPass(), tinyPlan());
    EXPECT_EQ(report.count(Severity::error), 0u);
    EXPECT_EQ(report.count(Severity::warning), 0u);
    EXPECT_TRUE(hasMessage(report, "certified minimum noise headroom"));
}

TEST(NoiseBudgetPass, ErrorsOnNegativeCertifiedHeadroom)
{
    const auto report = runPass(makeNoiseBudgetPass(), hotPlan());
    EXPECT_EQ(report.count(Severity::error), 1u);
    EXPECT_TRUE(
        hasMessage(report, "certified noise headroom is negative"));
}

TEST(NoiseBudgetPass, WarnsWhenCertificationItselfFails)
{
    auto plan = tinyPlan();
    plan.params.n = 0; // certifier reports invalid, never throws
    const auto report = runPass(makeNoiseBudgetPass(), plan);
    EXPECT_EQ(report.count(Severity::error), 0u);
    EXPECT_TRUE(hasMessage(report, "could not be noise-certified"));
}

TEST(NoiseBudgetPass, StandardPipelineExitsNonzeroOnUnsafePlan)
{
    // The `fxhenn lint` exit-4 contract rides on this: an UNSAFE plan
    // must produce at least one error-severity finding from the
    // standard pipeline.
    PassManager pm = PassManager::standard();
    const auto report = pm.run(hotPlan());
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(RescalePlacementPass, CleanPlanHasNoFindingsAboveNote)
{
    const auto report =
        runPass(makeRescalePlacementPass(), tinyPlan());
    EXPECT_EQ(report.count(Severity::error), 0u);
    EXPECT_EQ(report.count(Severity::warning), 0u);
}

TEST(RescalePlacementPass, FlagsMissingRescaleBeforeSecondMultiply)
{
    auto plan = tinyPlan();
    auto &layer = plan.layers[0];
    layer.instrs.clear();
    layer.instrs.push_back({HeOpKind::pcMult, 1, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::pcMult, 2, 1, 0, 0});
    layer.classify();

    const auto report = runPass(makeRescalePlacementPass(), plan);
    EXPECT_EQ(report.count(Severity::warning), 1u);
    EXPECT_TRUE(hasMessage(report, "missing rescale"));
}

TEST(RescalePlacementPass, FlagsRescaleResultOverwrittenUnread)
{
    auto plan = tinyPlan();
    auto &layer = plan.layers[0];
    layer.instrs.clear();
    layer.instrs.push_back({HeOpKind::pcMult, 1, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::rescale, 1, 1, -1, 0});
    layer.instrs.push_back({HeOpKind::copy, 1, 0, -1, 0});
    layer.classify();

    const auto report = runPass(makeRescalePlacementPass(), plan);
    EXPECT_EQ(report.count(Severity::warning), 1u);
    EXPECT_TRUE(hasMessage(report, "redundant rescale"));
}

TEST(RescalePlacementPass, NotesDeferrableRescalesAtAlignedAdds)
{
    auto plan = tinyPlan();
    auto &layer = plan.layers[0];
    layer.instrs.clear();
    layer.instrs.push_back({HeOpKind::pcMult, 1, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::rescale, 1, 1, -1, 0});
    layer.instrs.push_back({HeOpKind::pcMult, 2, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::rescale, 2, 2, -1, 0});
    layer.instrs.push_back({HeOpKind::ccAdd, 1, 2, -1, 0});
    layer.classify();

    const auto report = runPass(makeRescalePlacementPass(), plan);
    EXPECT_EQ(report.count(Severity::warning), 0u);
    EXPECT_TRUE(hasMessage(report, "deferring those rescales"));
}

} // namespace
} // namespace fxhenn::analysis
