#include <gtest/gtest.h>

#include "src/analysis/liveness.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/nn/model_zoo.hpp"
#include "tests/analysis/plan_fixtures.hpp"

namespace fxhenn::analysis {
namespace {

using fixtures::tinyPlan;
using hecnn::HeOpKind;

TEST(Liveness, TinyPlanHasNoDeadInstrs)
{
    const auto info = computeLiveness(tinyPlan());
    EXPECT_TRUE(info.deadInstrs.empty());
    ASSERT_EQ(info.peakLive.size(), 1u);
    EXPECT_GE(info.peakLive[0], 1u);
    EXPECT_EQ(info.peakLiveOverall, info.peakLive[0]);
}

TEST(Liveness, FlagsResultThatNeverReachesOutput)
{
    auto plan = tinyPlan();
    // r2 = r1 * pt0 is computed and never read again.
    plan.layers[0].instrs.push_back({HeOpKind::pcMult, 2, 1, 0, 0});
    plan.layers[0].classify();
    const auto info = computeLiveness(plan);
    ASSERT_EQ(info.deadInstrs.size(), 1u);
    EXPECT_EQ(info.deadInstrs[0].layer, 0u);
    EXPECT_EQ(info.deadInstrs[0].instr, 2u);
}

TEST(Liveness, OnlyLastDeadWriteOfChainIsReported)
{
    auto plan = tinyPlan();
    // Dead chain: r2 = r1 * pt0; r2 = rot(r2). The rotate's operand
    // keeps the first write alive, so only the rotate is flagged —
    // deleting it exposes the next dead write on a re-run.
    plan.layers[0].instrs.push_back({HeOpKind::pcMult, 2, 1, 0, 0});
    plan.layers[0].instrs.push_back({HeOpKind::rotate, 2, 2, -1, 1});
    plan.layers[0].classify();
    const auto info = computeLiveness(plan);
    ASSERT_EQ(info.deadInstrs.size(), 1u);
    EXPECT_EQ(info.deadInstrs[0].instr, 3u);
}

TEST(Liveness, PeakCountsSimultaneouslyLiveRegisters)
{
    using hecnn::HeLayerPlan;
    auto plan = tinyPlan();
    plan.inputGather.emplace_back(plan.params.n / 2, -1); // r1 input
    // r2 = r0 * pt0; r2 += r1: r0, r1 and r2 overlap in liveness.
    HeLayerPlan &layer = plan.layers[0];
    layer.instrs.clear();
    layer.instrs.push_back({HeOpKind::pcMult, 2, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::ccAdd, 2, 1, -1, 0});
    layer.levelOut = layer.levelIn;
    layer.outputLayout.pos.assign({{2, 0}});
    layer.outputLayout.regs.assign({2});
    layer.classify();
    plan.outputLayout = layer.outputLayout;
    const auto info = computeLiveness(plan);
    EXPECT_GE(info.peakLiveOverall, 2u);
    EXPECT_TRUE(info.deadInstrs.empty());
}

TEST(Liveness, CompiledMnistPlanIsFullyLive)
{
    const auto plan =
        hecnn::compile(nn::buildMnistNetwork(), ckks::mnistParams());
    const auto info = computeLiveness(plan);
    EXPECT_TRUE(info.deadInstrs.empty())
        << "the compiler must not emit instructions whose results "
           "never reach the output";
    ASSERT_EQ(info.peakLive.size(), plan.layers.size());
    for (unsigned peak : info.peakLive)
        EXPECT_GE(peak, 1u);
    // The first conv holds all input tap ciphertexts live at once.
    EXPECT_GE(info.peakLive[0],
              static_cast<unsigned>(plan.inputCiphertexts()));
}

TEST(Liveness, ToleratesOutOfRangeRegisters)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs.push_back({HeOpKind::copy, 99, -7, -1, 0});
    plan.layers[0].classify();
    const auto info = computeLiveness(plan); // must not crash
    EXPECT_GE(info.peakLiveOverall, 1u);
}

} // namespace
} // namespace fxhenn::analysis
