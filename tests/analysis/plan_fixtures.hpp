/**
 * @file
 * Hand-built plan fixtures for the verifier tests.
 *
 * tinyPlan() is the smallest plan the standard pipeline accepts with
 * zero findings; the per-pass negative tests each apply one minimal
 * mutation to it and assert the matching pass (and only the intended
 * check) fires.
 */
#ifndef FXHENN_TESTS_ANALYSIS_PLAN_FIXTURES_HPP
#define FXHENN_TESTS_ANALYSIS_PLAN_FIXTURES_HPP

#include <string>

#include "src/analysis/diagnostic.hpp"
#include "src/analysis/pass_manager.hpp"
#include "src/ckks/params.hpp"
#include "src/hecnn/plan.hpp"

namespace fxhenn::analysis::fixtures {

/** One clean layer: r1 = rescale(r0 * pt0), output in r1. */
inline hecnn::HeNetworkPlan
tinyPlan()
{
    using hecnn::HeOpKind;
    hecnn::HeNetworkPlan plan;
    plan.name = "tiny";
    plan.params = ckks::testParams(1024, 4, 30);
    const std::size_t slots = plan.params.n / 2;
    plan.regCount = 3;
    plan.inputGather.emplace_back(slots, -1);
    plan.inputGather[0][0] = 0;

    hecnn::PlanPlaintext pt;
    pt.values.assign(slots, 0.5);
    pt.level = plan.params.levels;
    pt.atSchemeScale = true;
    plan.plaintexts.push_back(std::move(pt));

    hecnn::HeLayerPlan layer;
    layer.name = "L0";
    layer.levelIn = plan.params.levels;
    layer.levelOut = plan.params.levels - 1;
    layer.nIn = 1;
    layer.instrs.push_back({HeOpKind::pcMult, 1, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::rescale, 1, 1, -1, 0});
    layer.outputLayout.pos.emplace_back(1, 0);
    layer.outputLayout.regs.push_back(1);
    layer.classify();
    plan.layers.push_back(std::move(layer));

    plan.outputLayout = plan.layers.back().outputLayout;
    return plan;
}

/** Run a single pass over @p plan. */
inline AnalysisReport
runPass(std::unique_ptr<AnalysisPass> pass,
        const hecnn::HeNetworkPlan &plan)
{
    PassManager pm;
    pm.add(std::move(pass));
    return pm.run(plan);
}

/** @return true when any diagnostic message contains @p needle. */
inline bool
hasMessage(const AnalysisReport &report, const std::string &needle)
{
    for (const auto &d : report.diagnostics()) {
        if (d.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

/** Count findings of @p severity. */
inline std::size_t
countSeverity(const AnalysisReport &report, Severity severity)
{
    return report.count(severity);
}

} // namespace fxhenn::analysis::fixtures

#endif // FXHENN_TESTS_ANALYSIS_PLAN_FIXTURES_HPP
