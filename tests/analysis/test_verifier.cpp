#include <gtest/gtest.h>

#include <sstream>

#include "src/analysis/verifier.hpp"
#include "src/common/assert.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_check.hpp"
#include "src/hecnn/plan_io.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/robustness/fault_injection.hpp"
#include "tests/analysis/plan_fixtures.hpp"

namespace fxhenn::analysis {
namespace {

using fixtures::tinyPlan;
using hecnn::HeOpKind;

/** Restores the hook/load-verification globals on scope exit. */
struct HookGuard
{
    ~HookGuard()
    {
        hecnn::setLoadVerification(false);
        hecnn::setPlanVerifier(nullptr);
        installPlanVerifier();
    }
};

hecnn::HeNetworkPlan
brokenButLoadablePlan()
{
    // rotate-by-0 passes every loadPlan framing check but is an
    // error-severity verifier finding.
    auto plan = tinyPlan();
    plan.layers[0].instrs.push_back({HeOpKind::rotate, 1, 1, -1, 0});
    plan.layers[0].classify();
    return plan;
}

TEST(Verifier, ModelZooPlansAreLintClean)
{
    {
        const auto plan = hecnn::compile(nn::buildMnistNetwork(),
                                         ckks::mnistParams());
        const auto report = verifyPlan(plan);
        EXPECT_EQ(report.errorCount(), 0u) << report.toText();
        EXPECT_EQ(report.warningCount(), 0u) << report.toText();
    }
    {
        hecnn::CompileOptions opts;
        opts.elideValues = true;
        const auto plan = hecnn::compile(nn::buildCifar10Network(),
                                         ckks::cifar10Params(), opts);
        const auto report = verifyPlan(plan);
        EXPECT_EQ(report.errorCount(), 0u) << report.toText();
        EXPECT_EQ(report.warningCount(), 0u) << report.toText();
    }
}

TEST(Verifier, ReportIsIdenticalAcrossSaveLoadRoundTrip)
{
    const auto plan = hecnn::compile(nn::buildTestNetwork(),
                                     ckks::testParams(2048, 7, 30));
    const auto before = verifyPlan(plan);
    EXPECT_EQ(before.errorCount(), 0u) << before.toText();

    std::stringstream ss;
    hecnn::savePlan(plan, ss);
    const auto loaded = hecnn::loadPlan(ss);
    const auto after = verifyPlan(loaded);

    EXPECT_EQ(before.toText(), after.toText())
        << "serialization must not change what the verifier sees";
    EXPECT_EQ(before.toJson(), after.toJson());
}

TEST(Verifier, VerifyPlanOrThrowRejectsBrokenPlans)
{
    EXPECT_NO_THROW(verifyPlanOrThrow(tinyPlan(), "test"));
    try {
        verifyPlanOrThrow(brokenButLoadablePlan(), "test");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "plan verification failed (test)"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("rotate by 0"),
                  std::string::npos);
    }
}

TEST(Verifier, HookRunsInstalledVerifier)
{
    HookGuard guard;
    installPlanVerifier();
    EXPECT_TRUE(hecnn::planVerifierInstalled());
    EXPECT_NO_THROW(hecnn::runPlanVerifier(tinyPlan(), "hook"));
    EXPECT_THROW(hecnn::runPlanVerifier(brokenButLoadablePlan(),
                                        "hook"),
                 ConfigError);
}

TEST(Verifier, FirstInstallationWins)
{
    HookGuard guard;
    installPlanVerifier();
    // A second (different) verifier must not displace the pipeline.
    const bool displaced = hecnn::setPlanVerifier(
        [](const hecnn::HeNetworkPlan &, const std::string &) {
            throw ConfigError("impostor");
        });
    EXPECT_FALSE(displaced);
    EXPECT_NO_THROW(hecnn::runPlanVerifier(tinyPlan(), "hook"));
}

TEST(Verifier, CompilerSelfCheckAcceptsItsOwnOutput)
{
    HookGuard guard;
    installPlanVerifier();
    hecnn::CompileOptions opts;
    opts.selfCheck = true;
    EXPECT_NO_THROW(hecnn::compile(nn::buildTestNetwork(),
                                   ckks::testParams(2048, 7, 30),
                                   opts));
}

TEST(Verifier, LoadVerificationRejectsBrokenPlanOnLoad)
{
    HookGuard guard;
    installPlanVerifier();
    hecnn::setLoadVerification(true);

    std::stringstream good;
    hecnn::savePlan(tinyPlan(), good);
    EXPECT_NO_THROW(hecnn::loadPlan(good));

    std::stringstream bad;
    hecnn::savePlan(brokenButLoadablePlan(), bad);
    try {
        hecnn::loadPlan(bad);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("plan-load"),
                  std::string::npos);
    }
}

TEST(Verifier, LoadVerificationWithoutVerifierIsAConfigError)
{
    HookGuard guard;
    hecnn::setPlanVerifier(nullptr); // simulate a core-only binary
    hecnn::setLoadVerification(true);
    std::stringstream ss;
    hecnn::savePlan(tinyPlan(), ss);
    EXPECT_THROW(hecnn::loadPlan(ss), ConfigError);
}

TEST(Verifier, TruncationFaultIsDetectedBeforeVerification)
{
    if (!robustness::faultInjectCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    HookGuard guard;
    installPlanVerifier();
    hecnn::setLoadVerification(true);
    robustness::armFault(
        robustness::parseFaultSpec("plan.load:truncate"));
    std::stringstream ss;
    hecnn::savePlan(tinyPlan(), ss);
    EXPECT_THROW(hecnn::loadPlan(ss), ConfigError);
    robustness::disarmFaults();
}

TEST(Verifier, CorruptionFaultIsDetectedBeforeVerification)
{
    if (!robustness::faultInjectCompiledIn())
        GTEST_SKIP() << "fault injection compiled out";
    HookGuard guard;
    installPlanVerifier();
    hecnn::setLoadVerification(true);
    robustness::armFault(
        robustness::parseFaultSpec("plan.load:corrupt"));
    std::stringstream ss;
    hecnn::savePlan(tinyPlan(), ss);
    EXPECT_THROW(hecnn::loadPlan(ss), ConfigError);
    robustness::disarmFaults();
}

} // namespace
} // namespace fxhenn::analysis
