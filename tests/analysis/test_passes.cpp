#include <gtest/gtest.h>

#include "src/analysis/pass_manager.hpp"
#include "tests/analysis/plan_fixtures.hpp"

namespace fxhenn::analysis {
namespace {

using fixtures::hasMessage;
using fixtures::runPass;
using fixtures::tinyPlan;
using hecnn::HeOpKind;

TEST(Passes, TinyPlanIsCleanUnderTheFullPipeline)
{
    const auto report = PassManager::standard().run(tinyPlan());
    EXPECT_EQ(report.errorCount(), 0u) << report.toText();
    EXPECT_EQ(report.warningCount(), 0u) << report.toText();
}

TEST(Passes, StandardPipelineHasTenPasses)
{
    const auto pm = PassManager::standard();
    EXPECT_EQ(pm.passes().size(), 10u);
    for (const auto &pass : pm.passes()) {
        EXPECT_NE(pass->name()[0], '\0');
        EXPECT_NE(pass->description()[0], '\0');
    }
}

// --- pass 1: def-use -------------------------------------------------------

TEST(DefUsePass, FlagsReadOfUnwrittenRegister)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs[0].src = 2; // r2 is never written
    const auto report = runPass(makeDefUsePass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "before any instruction writes"));
}

TEST(DefUsePass, FlagsOutOfRangeRegister)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs[0].dst = 7;
    const auto report = runPass(makeDefUsePass(), plan);
    EXPECT_GE(report.errorCount(), 1u);
    EXPECT_TRUE(hasMessage(report, "outside the file"));
}

TEST(DefUsePass, FlagsUnwrittenOutputRegister)
{
    auto plan = tinyPlan();
    plan.outputLayout.pos.assign({{2, 0}});
    plan.outputLayout.regs.assign({2});
    const auto report = runPass(makeDefUsePass(), plan);
    EXPECT_TRUE(hasMessage(report, "never written by any layer"));
}

TEST(DefUsePass, CcAddReadsItsDestination)
{
    auto plan = tinyPlan();
    // r2 += r1 with r2 unwritten: the accumulate reads garbage.
    plan.layers[0].instrs.push_back({HeOpKind::ccAdd, 2, 1, -1, 0});
    const auto report = runPass(makeDefUsePass(), plan);
    EXPECT_TRUE(hasMessage(report, "reads r2"));
}

// --- pass 2: scale & level -------------------------------------------------

TEST(ScaleLevelPass, FlagsPlaintextLevelMismatchOnPcMult)
{
    auto plan = tinyPlan();
    plan.plaintexts[0].level = 3; // operand arrives at level 4
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "encoded at level 3"));
}

TEST(ScaleLevelPass, WarnsOnStaleBiasLevelMetadata)
{
    auto plan = tinyPlan();
    // Bias add after the rescale: operand level 3, pool metadata 4.
    plan.plaintexts.push_back(plan.plaintexts[0]);
    plan.plaintexts[1].atSchemeScale = false;
    plan.layers[0].instrs.push_back({HeOpKind::pcAdd, 1, 1, 1, 0});
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_EQ(report.errorCount(), 0u) << report.toText();
    EXPECT_EQ(report.warningCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "stale level metadata"));
}

TEST(ScaleLevelPass, FlagsDoubleRescale)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs.push_back({HeOpKind::rescale, 1, 1, -1, 0});
    plan.layers[0].levelOut = 2;
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_TRUE(hasMessage(report, "double rescale"))
        << report.toText();
}

TEST(ScaleLevelPass, FlagsLevelUnderflow)
{
    auto plan = tinyPlan();
    auto &instrs = plan.layers[0].instrs;
    // Burn every level, then rescale once more at level 1.
    instrs.clear();
    for (int round = 0; round < 4; ++round) {
        instrs.push_back({HeOpKind::pcMult, 1, round == 0 ? 0 : 1, 0,
                          0});
        instrs.push_back({HeOpKind::rescale, 1, 1, -1, 0});
    }
    plan.layers[0].levelOut = 1;
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_TRUE(hasMessage(report, "level underflow"))
        << report.toText();
}

TEST(ScaleLevelPass, FlagsScaleMismatchedAdd)
{
    auto plan = tinyPlan();
    plan.inputGather.emplace_back(plan.params.n / 2, -1); // r1 input
    auto &layer = plan.layers[0];
    layer.instrs.clear();
    // r2 = r0 * pt0 (scale Delta^2); r2 += r1 (scale Delta). Garbage.
    layer.instrs.push_back({HeOpKind::pcMult, 2, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::ccAdd, 2, 1, -1, 0});
    layer.levelOut = layer.levelIn;
    layer.outputLayout.pos.assign({{2, 0}});
    layer.outputLayout.regs.assign({2});
    plan.outputLayout = layer.outputLayout;
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_TRUE(hasMessage(report, "ccAdd scale mismatch"))
        << report.toText();
}

TEST(ScaleLevelPass, FlagsLevelOutMetadataDisagreement)
{
    auto plan = tinyPlan();
    plan.layers[0].levelOut = 2; // stream actually ends at level 3
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_TRUE(
        hasMessage(report, "levelOut metadata disagrees"))
        << report.toText();
}

TEST(ScaleLevelPass, FlagsBrokenLevelChainBetweenLayers)
{
    auto plan = tinyPlan();
    hecnn::HeLayerPlan next;
    next.name = "L1";
    next.levelIn = 2; // L0 ends at 3
    next.levelOut = 2;
    next.nIn = 1;
    next.instrs.push_back({HeOpKind::copy, 2, 1, -1, 0});
    next.outputLayout.pos.assign({{2, 0}});
    next.outputLayout.regs.assign({2});
    next.classify();
    plan.layers.push_back(std::move(next));
    plan.outputLayout = plan.layers.back().outputLayout;
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_TRUE(hasMessage(report, "level chain broken"))
        << report.toText();
}

TEST(ScaleLevelPass, FlagsMultiplyWhoseScaleOverflowsTheModulus)
{
    auto plan = tinyPlan();
    // Back-to-back pcMult without rescale: scale Delta^3 = 2^90 at
    // level 4 still fits (log Q ~ 120), a third multiply does not.
    auto &instrs = plan.layers[0].instrs;
    instrs.clear();
    instrs.push_back({HeOpKind::pcMult, 1, 0, 0, 0});
    instrs.push_back({HeOpKind::pcMult, 1, 1, 0, 0});
    instrs.push_back({HeOpKind::pcMult, 1, 1, 0, 0});
    instrs.push_back({HeOpKind::pcMult, 1, 1, 0, 0});
    plan.layers[0].levelOut = 4;
    const auto report = runPass(makeScaleLevelPass(), plan);
    EXPECT_TRUE(hasMessage(report, "exceeds the modulus"))
        << report.toText();
}

// --- pass 3: liveness ------------------------------------------------------

TEST(LivenessPass, WarnsOnDeadInstructionAndReportsPeak)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs.push_back({HeOpKind::pcMult, 2, 1, 0, 0});
    const auto report = runPass(makeLivenessPass(), plan);
    EXPECT_EQ(report.warningCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "never reaches the network"));
    EXPECT_EQ(report.count(Severity::note), 1u);
    EXPECT_TRUE(hasMessage(report, "peak live registers"));
}

// --- pass 4: rotation keys -------------------------------------------------

TEST(RotationKeyPass, FlagsRotateByZero)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs.push_back({HeOpKind::rotate, 1, 1, -1, 0});
    const auto report = runPass(makeRotationKeyPass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "rotate by 0"));
}

TEST(RotationKeyPass, FlagsStepOutsideTheSlotRing)
{
    auto plan = tinyPlan(); // 512 slots
    plan.layers[0].instrs.push_back({HeOpKind::rotate, 1, 1, -1, 600});
    const auto report = runPass(makeRotationKeyPass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "outside the slot ring"));
}

TEST(RotationKeyPass, WarnsOnOversizedGaloisKeySet)
{
    auto plan = tinyPlan();
    for (int step = 1; step <= 49; ++step) {
        plan.layers[0].instrs.push_back(
            {HeOpKind::rotate, 1, 1, -1, step});
    }
    const auto report = runPass(makeRotationKeyPass(), plan);
    EXPECT_EQ(report.errorCount(), 0u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "distinct rotation steps"));
}

// --- pass 5: slot layout ---------------------------------------------------

TEST(LayoutPass, FlagsGatherSlotCountMismatch)
{
    auto plan = tinyPlan();
    plan.inputGather[0].resize(10);
    const auto report = runPass(makeLayoutPass(), plan);
    EXPECT_TRUE(hasMessage(report, "the ring has"))
        << report.toText();
}

TEST(LayoutPass, FlagsSlotOutsideTheRing)
{
    auto plan = tinyPlan();
    plan.outputLayout.pos.assign({{1, 5000}});
    const auto report = runPass(makeLayoutPass(), plan);
    EXPECT_TRUE(hasMessage(report, "outside [0, 512)"))
        << report.toText();
}

TEST(LayoutPass, FlagsCarrierListOmission)
{
    auto plan = tinyPlan();
    plan.layers[0].outputLayout.regs.assign({0}); // r1 holds the data
    const auto report = runPass(makeLayoutPass(), plan);
    EXPECT_TRUE(hasMessage(report, "carrier list omits"))
        << report.toText();
}

TEST(LayoutPass, FlagsCorruptPlaintextPool)
{
    auto plan = tinyPlan();
    plan.plaintexts[0].level = 0;
    plan.plaintexts[0].values.resize(5);
    const auto report = runPass(makeLayoutPass(), plan);
    EXPECT_GE(report.errorCount(), 2u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "encoded at level 0"));
    EXPECT_TRUE(hasMessage(report, "has 5 values"));
}

TEST(LayoutPass, FlagsOutOfPoolPlaintextReference)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs[0].pt = 42;
    const auto report = runPass(makeLayoutPass(), plan);
    EXPECT_TRUE(hasMessage(report, "outside the pool"))
        << report.toText();
}

TEST(LayoutPass, WarnsOnStrayPlaintextOperand)
{
    auto plan = tinyPlan();
    plan.layers[0].instrs[1].pt = 0; // rescale carries a pt
    const auto report = runPass(makeLayoutPass(), plan);
    EXPECT_EQ(report.errorCount(), 0u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "stray plaintext operand"));
}

// --- pass 6: op counts -----------------------------------------------------

TEST(OpCountPass, FlagsStaleKindCountCache)
{
    auto plan = tinyPlan();
    // classify() ran inside tinyPlan(); mutating the stream afterwards
    // leaves the cache stale — exactly the bug class this pass exists
    // to catch.
    plan.layers[0].instrs.push_back({HeOpKind::copy, 1, 1, -1, 0});
    const auto report = runPass(makeOpCountPass(), plan);
    EXPECT_GE(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "cached count"));
}

TEST(OpCountPass, LazyCountsOnNeverClassifiedPlanAreConsistent)
{
    auto plan = tinyPlan();
    hecnn::HeLayerPlan fresh;
    fresh.name = plan.layers[0].name;
    fresh.cls = plan.layers[0].cls;
    fresh.levelIn = plan.layers[0].levelIn;
    fresh.levelOut = plan.layers[0].levelOut;
    fresh.nIn = plan.layers[0].nIn;
    fresh.instrs = plan.layers[0].instrs;
    fresh.outputLayout = plan.layers[0].outputLayout;
    plan.layers[0] = std::move(fresh); // never classified
    const auto report = runPass(makeOpCountPass(), plan);
    EXPECT_EQ(report.errorCount(), 0u)
        << "kindCount() must recount lazily instead of returning "
           "zeros:\n"
        << report.toText();
}

// --- pass 7: layer class ---------------------------------------------------

TEST(LayerClassPass, FlagsWrongClassification)
{
    auto plan = tinyPlan();
    plan.layers[0].cls = hecnn::LayerClass::ks; // stream has no KS op
    const auto report = runPass(makeLayerClassPass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "tagged KS"));
}

TEST(LayerClassPass, WarnsOnZeroInputCiphertexts)
{
    auto plan = tinyPlan();
    plan.layers[0].nIn = 0;
    const auto report = runPass(makeLayerClassPass(), plan);
    EXPECT_EQ(report.warningCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "zero input ciphertexts"));
}

// --- pass 10: batch layout -------------------------------------------------

// tinyPlan() with B=2 lanes is already stride-aligned: its only data
// slot is 0 (lane 0 of virtual slot 0) and its plaintext is constant.
static hecnn::HeNetworkPlan
tinyBatchedPlan(std::size_t lanes = 2)
{
    auto plan = tinyPlan();
    plan.batchLanes = lanes;
    return plan;
}

TEST(BatchLayoutPass, CleanOnAlignedBatchedPlan)
{
    const auto report =
        runPass(makeBatchLayoutPass(), tinyBatchedPlan());
    EXPECT_EQ(report.errorCount(), 0u) << report.toText();
}

TEST(BatchLayoutPass, SilentOnUnbatchedPlan)
{
    const auto report = runPass(makeBatchLayoutPass(), tinyPlan());
    EXPECT_EQ(report.errorCount(), 0u) << report.toText();
    EXPECT_EQ(report.warningCount(), 0u) << report.toText();
}

TEST(BatchLayoutPass, FlagsZeroLanes)
{
    auto plan = tinyBatchedPlan(0);
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "batchLanes is 0"));
}

TEST(BatchLayoutPass, FlagsLaneCountNotDividingTheRing)
{
    auto plan = tinyBatchedPlan(3); // 512 % 3 != 0
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "does not divide the slot count"));
}

TEST(BatchLayoutPass, FlagsLaneCrossingRotation)
{
    auto plan = tinyBatchedPlan();
    // Stride-1 rotation on a 2-lane plan: permutes data BETWEEN the
    // two interleaved requests.
    plan.layers[0].instrs.push_back({HeOpKind::rotate, 1, 1, -1, 3});
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_EQ(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "moves data between requests"));
}

TEST(BatchLayoutPass, AcceptsStrideAlignedRotation)
{
    auto plan = tinyBatchedPlan();
    plan.layers[0].instrs.push_back({HeOpKind::rotate, 1, 1, -1, 4});
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_EQ(report.errorCount(), 0u) << report.toText();
}

TEST(BatchLayoutPass, FlagsMisalignedLayoutSlot)
{
    auto plan = tinyBatchedPlan();
    plan.outputLayout.pos.assign({{1, 1}}); // lane 1 of slot 0
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_GE(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "address lane 0 only"));
}

TEST(BatchLayoutPass, FlagsPerRequestCapacityOverflow)
{
    // 256 lanes on a 512-slot ring leave 2 virtual slots per request;
    // a register carrying 3 elements cannot fit any single lane.
    auto plan = tinyBatchedPlan(256);
    plan.layers[0].outputLayout.pos.assign({{1, 0}, {1, 0}, {1, 256}});
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_GE(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "slots per request"));
}

TEST(BatchLayoutPass, FlagsMisalignedGatherEntry)
{
    auto plan = tinyBatchedPlan();
    plan.inputGather[0][1] = 0; // element parked on lane 1
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_GE(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "siblings are filled at encrypt"));
}

TEST(BatchLayoutPass, FlagsNonBroadcastPlaintext)
{
    auto plan = tinyBatchedPlan();
    plan.plaintexts[0].values[1] = 0.7; // lane 1 differs from lane 0
    const auto report = runPass(makeBatchLayoutPass(), plan);
    EXPECT_GE(report.errorCount(), 1u) << report.toText();
    EXPECT_TRUE(hasMessage(report, "not lane-constant"));
}

// --- hostile input ---------------------------------------------------------

TEST(Passes, PipelineSurvivesInvalidParameters)
{
    auto plan = tinyPlan();
    plan.params.n = 17; // not a power of two
    const auto report = PassManager::standard().run(plan);
    EXPECT_GE(report.errorCount(), 1u);
    EXPECT_TRUE(hasMessage(report, "parameters are invalid"))
        << report.toText();
}

} // namespace
} // namespace fxhenn::analysis
