#include <gtest/gtest.h>

#include "src/analysis/diagnostic.hpp"

namespace fxhenn::analysis {
namespace {

TEST(Diagnostics, SeverityNames)
{
    EXPECT_STREQ(severityName(Severity::note), "note");
    EXPECT_STREQ(severityName(Severity::warning), "warning");
    EXPECT_STREQ(severityName(Severity::error), "error");
}

TEST(Diagnostics, CountsBySeverity)
{
    AnalysisReport report;
    EXPECT_TRUE(report.clean());
    report.addNetwork(Severity::note, "p", "n1");
    report.addNetwork(Severity::warning, "p", "w1");
    report.addNetwork(Severity::warning, "p", "w2");
    report.addLayer(Severity::error, "p", 0, "L0", "e1");
    EXPECT_EQ(report.count(Severity::note), 1u);
    EXPECT_EQ(report.warningCount(), 2u);
    EXPECT_EQ(report.errorCount(), 1u);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.diagnostics().size(), 4u);
}

TEST(Diagnostics, TextRenderingAnchorsLocations)
{
    AnalysisReport report;
    report.addInstr(Severity::error, "scale-level", 2, "Fc1", 17,
                    "bad scale", "rescale first");
    report.addNetwork(Severity::warning, "rotation-keys", "many keys");
    const std::string text = report.toText();
    EXPECT_NE(text.find("error: [scale-level] layer 2 (Fc1) instr 17: "
                        "bad scale"),
              std::string::npos);
    EXPECT_NE(text.find("  hint: rescale first"), std::string::npos);
    EXPECT_NE(text.find("warning: [rotation-keys]: many keys"),
              std::string::npos);
    EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 note(s)"),
              std::string::npos);
}

TEST(Diagnostics, JsonRenderingEscapesAndCounts)
{
    AnalysisReport report;
    report.addNetwork(Severity::error, "def-use",
                      "message with \"quotes\"\nand newline");
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\": \"fxhenn-lint-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.find("\\\"quotes\\\"\\nand newline"),
              std::string::npos);
    // Network scope renders as layer/instr -1.
    EXPECT_NE(json.find("\"layer\": -1"), std::string::npos);
    EXPECT_NE(json.find("\"instr\": -1"), std::string::npos);
}

TEST(Diagnostics, RenderingIsDeterministic)
{
    AnalysisReport report;
    report.addLayer(Severity::warning, "liveness", 1, "Act1", "dead");
    EXPECT_EQ(report.toText(), report.toText());
    EXPECT_EQ(report.toJson(), report.toJson());
}

} // namespace
} // namespace fxhenn::analysis
