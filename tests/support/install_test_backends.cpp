/**
 * @file
 * Linked into every gtest binary (see fxhenn_add_test): registers the
 * "fpga-sim" execution backend at static-initialization time, exactly
 * like the fxhenn CLI does at startup. Without this, running the suite
 * under FXHENN_BACKEND=fpga-sim (the CI backend-matrix lane) would
 * fail every default-constructed Runtime with ConfigError before any
 * assertion runs — the registry only knows the built-ins until someone
 * links the DSE resolver in.
 */
#include "src/dse/sim_backend_install.hpp"

namespace {

const bool installedFpgaSim = fxhenn::dse::installFpgaSimBackend();

} // namespace
