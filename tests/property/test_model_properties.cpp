/**
 * @file
 * Property tests on the FPGA performance model and the DSE:
 * monotonicity of latency/resources in every knob, feasibility of all
 * explorer outputs, non-domination of Pareto fronts, and agreement
 * between the closed-form model and the event-driven simulator across
 * a parameter grid.
 */
#include <gtest/gtest.h>

#include "src/dse/explorer.hpp"
#include "src/dse/pareto.hpp"
#include "src/fpga/pipeline_sim.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn {
namespace {

using fpga::HeOpModule;
using fpga::ModuleAllocation;

ModuleAllocation
makeAlloc(unsigned nc, unsigned rs_intra, unsigned ks_intra,
          unsigned ks_inter)
{
    ModuleAllocation alloc;
    for (auto &op : alloc.ops)
        op = {nc, 1, 1};
    alloc[HeOpModule::rescale].pIntra = rs_intra;
    alloc[HeOpModule::keySwitch].pIntra = ks_intra;
    alloc[HeOpModule::keySwitch].pInter = ks_inter;
    return alloc;
}

class ModelGridTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    ModelGridTest()
        : plan_(hecnn::compile(nn::buildMnistNetwork(),
                               ckks::mnistParams()))
    {}
    hecnn::HeNetworkPlan plan_;
};

TEST_P(ModelGridTest, LatencyMonotoneInIntraAcrossGrid)
{
    const auto [nc, ks_inter] = GetParam();
    double prev = -1.0;
    for (unsigned intra = 1; intra <= 7; ++intra) {
        const auto alloc = makeAlloc(nc, 1, intra, ks_inter);
        const auto perf =
            fpga::evaluateNetworkShared(plan_, alloc);
        if (prev >= 0.0)
            EXPECT_LE(perf.totalCycles, prev * 1.0000001)
                << "nc=" << nc << " intra=" << intra;
        prev = perf.totalCycles;
    }
}

TEST_P(ModelGridTest, BramMonotoneInIntraAcrossGrid)
{
    const auto [nc, ks_inter] = GetParam();
    double prev = -1.0;
    for (unsigned intra = 1; intra <= 7; ++intra) {
        const auto alloc = makeAlloc(nc, 1, intra, ks_inter);
        const auto perf =
            fpga::evaluateNetworkShared(plan_, alloc);
        if (prev >= 0.0)
            EXPECT_GE(perf.bramPhysical, prev)
                << "nc=" << nc << " intra=" << intra;
        prev = perf.bramPhysical;
    }
}

TEST_P(ModelGridTest, SimulatorWithinToleranceAcrossGrid)
{
    const auto [nc, ks_inter] = GetParam();
    const auto alloc = makeAlloc(nc, 2, 3, ks_inter);
    for (const auto &layer : plan_.layers) {
        const double sim =
            fpga::simulateLayer(layer, plan_.params.n, alloc);
        const double model =
            fpga::evaluateLayer(layer, plan_.params.n, alloc).cycles;
        ASSERT_NEAR(sim / model, 1.0, 0.25)
            << layer.name << " nc=" << nc << " inter=" << ks_inter;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGridTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1u, 2u, 4u)));

TEST(DseProperty, EveryCollectedPointIsFeasible)
{
    const auto plan =
        hecnn::compile(nn::buildMnistNetwork(), ckks::mnistParams());
    const auto device = fpga::acu9eg();
    dse::ExploreOptions opts;
    opts.collectAll = true;
    const auto result = dse::explore(plan, device, opts);
    ASSERT_FALSE(result.all.empty());
    for (const auto &p : result.all) {
        EXPECT_LE(p.perf.dspPhysical, device.dspSlices);
        EXPECT_LE(p.dspFraction, 1.0);
        EXPECT_LE(p.bramFraction, 1.0 + 1e-12);
        EXPECT_GT(p.latencySeconds, 0.0);
    }
}

TEST(DseProperty, ExplorerParetoFrontIsInternallyConsistent)
{
    const auto plan =
        hecnn::compile(nn::buildMnistNetwork(), ckks::mnistParams());
    dse::ExploreOptions opts;
    opts.collectAll = true;
    opts.bramBudgetBlocks = 1200.0;
    const auto result = dse::explore(plan, fpga::acu9eg(), opts);

    std::vector<dse::ParetoSample> samples;
    for (const auto &p : result.all)
        samples.push_back({p.perf.bramPhysical, p.latencySeconds});
    const auto front = dse::paretoFront(samples);
    ASSERT_FALSE(front.empty());

    // No collected sample may dominate a front member.
    for (const auto &s : samples) {
        for (const auto &f : front)
            EXPECT_FALSE(dse::dominates(s, f));
    }
    // The best latency overall must be the front's right endpoint.
    EXPECT_DOUBLE_EQ(front.back().latencySeconds,
                     result.best->latencySeconds);
}

TEST(DseProperty, BudgetMonotonicity)
{
    // Increasing BRAM budget can only help.
    const auto plan =
        hecnn::compile(nn::buildMnistNetwork(), ckks::mnistParams());
    double prev = -1.0;
    for (double budget : {500.0, 700.0, 900.0, 1100.0, 1300.0}) {
        dse::ExploreOptions opts;
        opts.bramBudgetBlocks = budget;
        const auto result = dse::explore(plan, fpga::acu9eg(), opts);
        ASSERT_TRUE(result.best.has_value()) << budget;
        if (prev >= 0.0)
            EXPECT_LE(result.best->latencySeconds, prev + 1e-12)
                << budget;
        prev = result.best->latencySeconds;
    }
}

TEST(DseProperty, SharedNeverUsesMoreDspThanDedicated)
{
    const auto plan =
        hecnn::compile(nn::buildMnistNetwork(), ckks::mnistParams());
    const auto alloc = makeAlloc(2, 2, 2, 2);
    const auto shared = fpga::evaluateNetworkShared(plan, alloc);
    std::vector<ModuleAllocation> per_layer(plan.layers.size(), alloc);
    const auto dedicated =
        fpga::evaluateNetworkDedicated(plan, per_layer);
    EXPECT_LE(shared.dspPhysical, dedicated.dspPhysical);
    EXPECT_LE(shared.bramPhysical, dedicated.bramPhysical);
    // Same per-layer latency either way (identical allocations).
    EXPECT_NEAR(shared.totalCycles, dedicated.totalCycles,
                shared.totalCycles * 1e-9);
}

} // namespace
} // namespace fxhenn
