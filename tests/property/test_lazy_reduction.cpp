/**
 * @file
 * Property tests for the lazy-reduction keyswitch arithmetic: at every
 * prime a real parameter chain can produce (30..60-bit NTT primes plus
 * the wider special prime), a lazy 128-bit accumulation followed by a
 * single Modulus::reduceWide() must be bitwise identical to the eager
 * add(mul()) chain — including at the worst-case accumulation depth
 * the overflow budget permits for the widest primes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/modarith/modulus.hpp"
#include "src/modarith/primes.hpp"
#include "src/rns/lazy_accumulator.hpp"

namespace fxhenn {
namespace {

/** Every prime width the parameter presets use, plus the extremes. */
std::vector<Modulus>
chainPrimes()
{
    std::vector<Modulus> primes;
    for (unsigned bits : {30u, 36u, 42u, 50u, 55u, 60u}) {
        for (std::uint64_t q : generateNttPrimes(bits, 4096, 2))
            primes.emplace_back(q);
    }
    return primes;
}

TEST(LazyReductionProperty, LazyEqualsEagerAtEveryChainPrime)
{
    Rng rng(20260805);
    const std::size_t n = 16;
    for (const Modulus &q : chainPrimes()) {
        std::vector<std::uint64_t> a(n), b(n), eager(n, 0);
        rns::LazyLimbAccumulator acc(n);
        // Depth 32 covers every level count the presets reach.
        for (int depth = 0; depth < 32; ++depth) {
            for (std::size_t k = 0; k < n; ++k) {
                a[k] = rng.uniform(q.value());
                b[k] = rng.uniform(q.value());
                eager[k] = q.add(eager[k], q.mul(a[k], b[k]));
            }
            acc.fma(a, b);
        }
        std::vector<std::uint64_t> lazy(n);
        acc.reduceInto(lazy, q);
        ASSERT_EQ(lazy, eager) << "prime " << q.value();
    }
}

TEST(LazyReductionProperty, WorstCaseDepthAtMaximalOperands)
{
    // Saturate the overflow budget: accumulate (q-1)^2 terms up to the
    // advertised maxLazyDepth() (capped for narrow primes where the
    // budget exceeds any feasible loop). For 60-bit primes the budget
    // is 2^8 = 256, so this runs AT the worst-case depth; the single
    // deferred reduction must still match the eager chain exactly.
    for (const Modulus &q : chainPrimes()) {
        const std::uint64_t depth =
            std::min<std::uint64_t>(q.maxLazyDepth(), 4096);
        const std::size_t n = 4;
        std::vector<std::uint64_t> worst(n, q.value() - 1);
        std::vector<std::uint64_t> eager(n, 0);
        rns::LazyLimbAccumulator acc(n);
        for (std::uint64_t d = 0; d < depth; ++d) {
            acc.fma(worst, worst);
            for (std::size_t k = 0; k < n; ++k)
                eager[k] =
                    q.add(eager[k], q.mul(worst[k], worst[k]));
        }
        EXPECT_EQ(acc.depth(), depth);
        std::vector<std::uint64_t> lazy(n);
        acc.reduceInto(lazy, q);
        ASSERT_EQ(lazy, eager)
            << "prime " << q.value() << " depth " << depth;
    }
}

TEST(LazyReductionProperty, ReduceWideMatchesNativeModAtChainPrimes)
{
    Rng rng(99);
    for (const Modulus &q : chainPrimes()) {
        for (int i = 0; i < 500; ++i) {
            const unsigned __int128 x =
                (static_cast<unsigned __int128>(rng.next()) << 64) |
                rng.next();
            const std::uint64_t expect = static_cast<std::uint64_t>(
                x % static_cast<unsigned __int128>(q.value()));
            ASSERT_EQ(q.reduceWide(x), expect)
                << "prime " << q.value() << " iter " << i;
        }
    }
}

TEST(LazyReductionProperty, MulShoupMatchesPlainMulAtChainPrimes)
{
    Rng rng(7);
    for (const Modulus &q : chainPrimes()) {
        for (int i = 0; i < 200; ++i) {
            const std::uint64_t a = rng.uniform(q.value());
            const std::uint64_t b = rng.uniform(q.value());
            const std::uint64_t bShoup = q.shoupConstant(b);
            ASSERT_EQ(q.mulShoup(a, b, bShoup), q.mul(a, b))
                << "prime " << q.value();
        }
    }
}

} // namespace
} // namespace fxhenn
