/**
 * @file
 * Fuzz-style robustness tests for the wire formats: random byte flips
 * and truncations of serialized ciphertexts, keys and plans must never
 * crash the loaders — they either throw ConfigError or (for payload
 * bytes whose corruption is semantically invisible to framing) produce
 * a structurally valid object.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/keygen.hpp"
#include "src/ckks/serialization.hpp"
#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_io.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn {
namespace {

/**
 * Every strict prefix of a well-formed blob must be detected as
 * truncated (the loaders consume the entire stream, so missing bytes
 * are never survivable). Dense near the framed header, then a seeded
 * random sample of longer prefixes to keep the test fast.
 */
template <typename LoadFn>
void
checkTruncationCorpus(const std::string &blob, LoadFn load,
                      std::uint64_t seed)
{
    auto mustThrow = [&](std::size_t len) {
        std::stringstream ss(blob.substr(0, len));
        EXPECT_THROW(
            {
                try {
                    load(ss);
                } catch (const InternalError &) {
                    throw ConfigError("invariant caught truncation");
                }
            },
            ConfigError)
            << "prefix of " << len << " / " << blob.size()
            << " bytes was accepted";
    };
    const std::size_t dense = std::min<std::size_t>(blob.size(), 96);
    for (std::size_t len = 0; len < dense; ++len)
        mustThrow(len);
    Rng rng(seed);
    for (int i = 0; i < 160; ++i)
        mustThrow(dense + rng.uniform(blob.size() - dense));
}

/**
 * Flip every bit of the first @p headerBytes bytes, one at a time:
 * each one corrupts a framed, validated field (magic, version, tag or
 * parameter fingerprint) and must be rejected.
 */
template <typename LoadFn>
void
checkHeaderBitFlips(const std::string &blob, std::size_t headerBytes,
                    LoadFn load)
{
    ASSERT_LE(headerBytes, blob.size());
    for (std::size_t byte = 0; byte < headerBytes; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = blob;
            mutated[byte] =
                static_cast<char>(mutated[byte] ^ (1 << bit));
            std::stringstream ss(mutated);
            EXPECT_THROW(
                {
                    try {
                        load(ss);
                    } catch (const InternalError &) {
                        throw ConfigError("invariant caught flip");
                    }
                },
                ConfigError)
                << "flip of byte " << byte << " bit " << bit
                << " was accepted";
        }
    }
}

/** Apply @p mutate to a serialized blob and check the loader behaves. */
template <typename LoadFn>
void
fuzzBlob(const std::string &blob, LoadFn load, std::uint64_t seed,
         int iterations)
{
    Rng rng(seed);
    for (int i = 0; i < iterations; ++i) {
        std::string mutated = blob;
        switch (rng.uniform(3)) {
          case 0: { // flip one byte
            const std::size_t pos = rng.uniform(mutated.size());
            mutated[pos] = static_cast<char>(rng.uniform(256));
            break;
          }
          case 1: { // truncate
            mutated.resize(rng.uniform(mutated.size()));
            break;
          }
          default: { // flip several bytes
            for (int k = 0; k < 8; ++k) {
                const std::size_t pos = rng.uniform(mutated.size());
                mutated[pos] = static_cast<char>(rng.uniform(256));
            }
            break;
          }
        }
        std::stringstream ss(mutated);
        try {
            load(ss);
        } catch (const ConfigError &) {
            // detected corruption — the desired outcome
        } catch (const InternalError &) {
            // also acceptable: an invariant caught it
        }
        // Any other exception or a crash fails the test.
    }
}

TEST(SerializationFuzz, CiphertextLoaderNeverCrashes)
{
    ckks::CkksContext ctx(ckks::testParams(1024, 3, 30));
    Rng rng(1);
    ckks::KeyGenerator keygen(ctx, rng);
    ckks::Encoder encoder(ctx);
    ckks::Encryptor encryptor(ctx, keygen.makePublicKey(), rng);
    std::vector<double> v{1.0, 2.0};
    const auto ct = encryptor.encrypt(encoder.encode(
        std::span<const double>(v), ctx.params().scale, 3));

    std::stringstream ss;
    ckks::saveCiphertext(ct, ctx, ss);
    fuzzBlob(ss.str(),
             [&](std::istream &is) {
                 return ckks::loadCiphertext(ctx, is);
             },
             11, 60);
}

TEST(SerializationFuzz, RelinKeyLoaderNeverCrashes)
{
    ckks::CkksContext ctx(ckks::testParams(1024, 3, 30));
    Rng rng(2);
    ckks::KeyGenerator keygen(ctx, rng);
    std::stringstream ss;
    ckks::saveRelinKey(keygen.makeRelinKey(), ctx, ss);
    fuzzBlob(ss.str(),
             [&](std::istream &is) {
                 return ckks::loadRelinKey(ctx, is);
             },
             13, 40);
}

TEST(SerializationFuzz, PlanLoaderNeverCrashes)
{
    const auto plan = hecnn::compile(nn::buildTestNetwork(),
                                     ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    hecnn::savePlan(plan, ss);
    fuzzBlob(ss.str(),
             [](std::istream &is) { return hecnn::loadPlan(is); }, 17,
             80);
}

/** Shared small context + key material for the remaining targets. */
struct FuzzFixture
{
    FuzzFixture()
        : ctx(ckks::testParams(1024, 3, 30)), rng(5), keygen(ctx, rng),
          encoder(ctx)
    {}

    ckks::CkksContext ctx;
    Rng rng;
    ckks::KeyGenerator keygen;
    ckks::Encoder encoder;
};

TEST(SerializationFuzz, PublicKeyLoaderNeverCrashes)
{
    FuzzFixture f;
    std::stringstream ss;
    ckks::savePublicKey(f.keygen.makePublicKey(), f.ctx, ss);
    fuzzBlob(ss.str(),
             [&](std::istream &is) {
                 return ckks::loadPublicKey(f.ctx, is);
             },
             19, 40);
}

TEST(SerializationFuzz, GaloisKeysLoaderNeverCrashes)
{
    FuzzFixture f;
    std::stringstream ss;
    ckks::saveGaloisKeys(f.keygen.makeGaloisKeys({1, 2}), f.ctx, ss);
    fuzzBlob(ss.str(),
             [&](std::istream &is) {
                 return ckks::loadGaloisKeys(f.ctx, is);
             },
             23, 40);
}

TEST(SerializationFuzz, PlaintextLoaderNeverCrashes)
{
    FuzzFixture f;
    std::vector<double> v{0.5, -0.25, 3.0};
    const auto pt = f.encoder.encode(std::span<const double>(v),
                                     f.ctx.params().scale, 3);
    std::stringstream ss;
    ckks::savePlaintext(pt, f.ctx, ss);
    fuzzBlob(ss.str(),
             [&](std::istream &is) {
                 return ckks::loadPlaintext(f.ctx, is);
             },
             29, 60);
}

TEST(SerializationFuzz, CiphertextTruncationCorpusAlwaysRejected)
{
    FuzzFixture f;
    ckks::Encryptor encryptor(f.ctx, f.keygen.makePublicKey(), f.rng);
    std::vector<double> v{1.5, -2.0};
    const auto ct = encryptor.encrypt(f.encoder.encode(
        std::span<const double>(v), f.ctx.params().scale, 3));
    std::stringstream ss;
    ckks::saveCiphertext(ct, f.ctx, ss);
    checkTruncationCorpus(ss.str(),
                          [&](std::istream &is) {
                              return ckks::loadCiphertext(f.ctx, is);
                          },
                          101);
}

TEST(SerializationFuzz, PlanTruncationCorpusAlwaysRejected)
{
    const auto plan = hecnn::compile(nn::buildTestNetwork(),
                                     ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    hecnn::savePlan(plan, ss);
    checkTruncationCorpus(
        ss.str(), [](std::istream &is) { return hecnn::loadPlan(is); },
        103);
}

TEST(SerializationFuzz, CiphertextHeaderBitFlipsAlwaysRejected)
{
    // The framed CKKS header — magic(8) + version(4) + tag(4) +
    // fingerprint n(8)/levels(8)/qBits(4)/specialBits(4) — is 40 bytes,
    // all validated, so every single-bit flip must be rejected.
    FuzzFixture f;
    ckks::Encryptor encryptor(f.ctx, f.keygen.makePublicKey(), f.rng);
    std::vector<double> v{0.75};
    const auto ct = encryptor.encrypt(f.encoder.encode(
        std::span<const double>(v), f.ctx.params().scale, 3));
    std::stringstream ss;
    ckks::saveCiphertext(ct, f.ctx, ss);
    checkHeaderBitFlips(ss.str(), 40, [&](std::istream &is) {
        return ckks::loadCiphertext(f.ctx, is);
    });
}

TEST(SerializationFuzz, PlanHeaderBitFlipsAlwaysRejected)
{
    // Plan framing is magic(8) + version(4) = 12 validated bytes.
    const auto plan = hecnn::compile(nn::buildTestNetwork(),
                                     ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    hecnn::savePlan(plan, ss);
    checkHeaderBitFlips(ss.str(), 12, [](std::istream &is) {
        return hecnn::loadPlan(is);
    });
}

TEST(SerializationFuzz, OversizedVectorClaimIsRejectedBeforeAllocating)
{
    // Corrupt a plan's first instruction-vector length to a value that
    // clears the element cap but dwarfs the stream: the loader must
    // reject it against the remaining byte count instead of allocating
    // gigabytes for data that cannot be there.
    const auto plan = hecnn::compile(nn::buildTestNetwork(),
                                     ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    hecnn::savePlan(plan, ss);
    std::string blob = ss.str();

    // Replay the writer's layout to locate the u64 length of layer 0's
    // instruction vector, then claim close to the 2^26-element cap —
    // far more bytes than the stream holds.
    std::size_t off = 12;                  // magic + version
    off += 4 + plan.name.size();           // plan name
    off += 8 + 8 + 4 + 4 + 8 + 8;          // params fields
    off += 1 + 4;                          // elided flag + regCount
    off += 4;                              // batchLanes (v4)
    off += 8;                              // gather count
    for (const auto &gather : plan.inputGather)
        off += 8 + gather.size() * sizeof(std::int32_t);
    off += 8;                              // layer count
    off += 4 + plan.layers[0].name.size(); // layer name
    off += 8 + 8 + 8;                      // levelIn, levelOut, nIn
    ASSERT_LE(off + 8, blob.size());
    std::uint64_t value;
    std::memcpy(&value, blob.data() + off, 8);
    ASSERT_EQ(value, plan.layers[0].instrs.size())
        << "layout replay drifted from the writer";
    const std::uint64_t huge = (1u << 26) - 1;
    std::memcpy(blob.data() + off, &huge, 8);
    std::stringstream in(blob);
    EXPECT_THROW(
        {
            try {
                hecnn::loadPlan(in);
            } catch (const InternalError &) {
                throw ConfigError("invariant caught it");
            }
        },
        ConfigError);
}

} // namespace
} // namespace fxhenn
