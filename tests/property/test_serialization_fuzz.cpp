/**
 * @file
 * Fuzz-style robustness tests for the wire formats: random byte flips
 * and truncations of serialized ciphertexts, keys and plans must never
 * crash the loaders — they either throw ConfigError or (for payload
 * bytes whose corruption is semantically invisible to framing) produce
 * a structurally valid object.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/keygen.hpp"
#include "src/ckks/serialization.hpp"
#include "src/common/assert.hpp"
#include "src/common/rng.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_io.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn {
namespace {

/** Apply @p mutate to a serialized blob and check the loader behaves. */
template <typename LoadFn>
void
fuzzBlob(const std::string &blob, LoadFn load, std::uint64_t seed,
         int iterations)
{
    Rng rng(seed);
    for (int i = 0; i < iterations; ++i) {
        std::string mutated = blob;
        switch (rng.uniform(3)) {
          case 0: { // flip one byte
            const std::size_t pos = rng.uniform(mutated.size());
            mutated[pos] = static_cast<char>(rng.uniform(256));
            break;
          }
          case 1: { // truncate
            mutated.resize(rng.uniform(mutated.size()));
            break;
          }
          default: { // flip several bytes
            for (int k = 0; k < 8; ++k) {
                const std::size_t pos = rng.uniform(mutated.size());
                mutated[pos] = static_cast<char>(rng.uniform(256));
            }
            break;
          }
        }
        std::stringstream ss(mutated);
        try {
            load(ss);
        } catch (const ConfigError &) {
            // detected corruption — the desired outcome
        } catch (const InternalError &) {
            // also acceptable: an invariant caught it
        }
        // Any other exception or a crash fails the test.
    }
}

TEST(SerializationFuzz, CiphertextLoaderNeverCrashes)
{
    ckks::CkksContext ctx(ckks::testParams(1024, 3, 30));
    Rng rng(1);
    ckks::KeyGenerator keygen(ctx, rng);
    ckks::Encoder encoder(ctx);
    ckks::Encryptor encryptor(ctx, keygen.makePublicKey(), rng);
    std::vector<double> v{1.0, 2.0};
    const auto ct = encryptor.encrypt(encoder.encode(
        std::span<const double>(v), ctx.params().scale, 3));

    std::stringstream ss;
    ckks::saveCiphertext(ct, ctx, ss);
    fuzzBlob(ss.str(),
             [&](std::istream &is) {
                 return ckks::loadCiphertext(ctx, is);
             },
             11, 60);
}

TEST(SerializationFuzz, RelinKeyLoaderNeverCrashes)
{
    ckks::CkksContext ctx(ckks::testParams(1024, 3, 30));
    Rng rng(2);
    ckks::KeyGenerator keygen(ctx, rng);
    std::stringstream ss;
    ckks::saveRelinKey(keygen.makeRelinKey(), ctx, ss);
    fuzzBlob(ss.str(),
             [&](std::istream &is) {
                 return ckks::loadRelinKey(ctx, is);
             },
             13, 40);
}

TEST(SerializationFuzz, PlanLoaderNeverCrashes)
{
    const auto plan = hecnn::compile(nn::buildTestNetwork(),
                                     ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    hecnn::savePlan(plan, ss);
    fuzzBlob(ss.str(),
             [](std::istream &is) { return hecnn::loadPlan(is); }, 17,
             80);
}

} // namespace
} // namespace fxhenn
