/**
 * @file
 * Property-style sweeps over CKKS parameter grids: the homomorphic
 * identities must hold for every (N, L, qBits) combination, not just
 * the fixtures the unit tests pin down.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/ckks/decryptor.hpp"
#include "src/ckks/encoder.hpp"
#include "src/ckks/encryptor.hpp"
#include "src/ckks/evaluator.hpp"
#include "src/ckks/keygen.hpp"

namespace fxhenn::ckks {
namespace {

using ParamTuple = std::tuple<std::uint64_t /*n*/, std::size_t /*L*/,
                              unsigned /*qBits*/>;

class CkksPropertyTest : public ::testing::TestWithParam<ParamTuple>
{
  protected:
    CkksPropertyTest()
        : params_(testParams(std::get<0>(GetParam()),
                             std::get<1>(GetParam()),
                             std::get<2>(GetParam()))),
          ctx_(params_), rng_(0xF00D), keygen_(ctx_, rng_),
          encoder_(ctx_),
          encryptor_(ctx_, keygen_.makePublicKey(), rng_),
          decryptor_(ctx_, keygen_.secretKey()), eval_(ctx_)
    {}

    std::vector<double>
    randomValues(double mag, std::uint64_t seed)
    {
        Rng r(seed);
        std::vector<double> v(ctx_.slots());
        for (auto &x : v)
            x = r.uniformReal(-mag, mag);
        return v;
    }

    Ciphertext
    enc(const std::vector<double> &v)
    {
        return encryptor_.encrypt(
            encoder_.encode(std::span<const double>(v), params_.scale,
                            params_.levels));
    }

    std::vector<double>
    dec(const Ciphertext &ct)
    {
        return encoder_.decodeReal(decryptor_.decrypt(ct));
    }

    CkksParams params_;
    CkksContext ctx_;
    Rng rng_;
    KeyGenerator keygen_;
    Encoder encoder_;
    Encryptor encryptor_;
    Decryptor decryptor_;
    Evaluator eval_;
};

TEST_P(CkksPropertyTest, AdditionIsSlotwise)
{
    const auto a = randomValues(3.0, 1);
    const auto b = randomValues(3.0, 2);
    const auto got = dec(eval_.add(enc(a), enc(b)));
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(got[i], a[i] + b[i], 1e-3) << i;
}

TEST_P(CkksPropertyTest, PlainMultiplyDistributesOverAdd)
{
    // w * (a + b) == w*a + w*b under the evaluator.
    const auto a = randomValues(1.0, 3);
    const auto b = randomValues(1.0, 4);
    const auto w = randomValues(1.0, 5);
    const auto pw = encoder_.encode(std::span<const double>(w),
                                    params_.scale, params_.levels);

    auto lhs = eval_.mulPlain(eval_.add(enc(a), enc(b)), pw);
    eval_.rescaleInplace(lhs);

    auto wa = eval_.mulPlain(enc(a), pw);
    auto wb = eval_.mulPlain(enc(b), pw);
    auto rhs = eval_.add(wa, wb);
    eval_.rescaleInplace(rhs);

    const auto l = dec(lhs);
    const auto r = dec(rhs);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(l[i], r[i], 1e-2) << i;
}

TEST_P(CkksPropertyTest, SquareMatchesMulSelf)
{
    const auto a = randomValues(1.5, 6);
    const auto rk = keygen_.makeRelinKey();
    auto sq = eval_.square(enc(a), rk);
    eval_.rescaleInplace(sq);
    auto mul = eval_.mul(enc(a), enc(a), rk);
    eval_.rescaleInplace(mul);
    const auto s = dec(sq);
    const auto m = dec(mul);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(s[i], m[i], 1e-2) << i;
}

TEST_P(CkksPropertyTest, RotateComposesAdditively)
{
    // rot(rot(x, 1), 2) == rot(x, 3).
    auto gk = keygen_.makeGaloisKeys({1, 2, 3});
    const auto a = randomValues(2.0, 7);
    auto two_step =
        eval_.rotate(eval_.rotate(enc(a), 1, gk), 2, gk);
    auto one_step = eval_.rotate(enc(a), 3, gk);
    const auto x = dec(two_step);
    const auto y = dec(one_step);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(x[i], y[i], 1e-2) << i;
}

TEST_P(CkksPropertyTest, FullRotationIsIdentity)
{
    const int slots = static_cast<int>(ctx_.slots());
    auto gk = keygen_.makeGaloisKeys({slots / 2});
    const auto a = randomValues(2.0, 8);
    // Two half-rotations bring every slot home.
    auto ct = eval_.rotate(enc(a), slots / 2, gk);
    ct = eval_.rotate(ct, slots / 2, gk);
    const auto got = dec(ct);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(got[i], a[i], 1e-2) << i;
}

TEST_P(CkksPropertyTest, RescaleTracksScaleExactly)
{
    const auto a = randomValues(1.0, 9);
    const auto w = randomValues(1.0, 10);
    const auto pw = encoder_.encode(std::span<const double>(w),
                                    params_.scale, params_.levels);
    auto ct = eval_.mulPlain(enc(a), pw);
    const double before = ct.scale;
    const double q_last = static_cast<double>(
        ctx_.basis().q(ct.level() - 1).value());
    eval_.rescaleInplace(ct);
    EXPECT_DOUBLE_EQ(ct.scale, before / q_last);
}

TEST_P(CkksPropertyTest, FullLevelExhaustionStaysAccurate)
{
    // Consume every available level with squarings: x^(2^(L-1)).
    // The error in message units must stay bounded at every step and
    // the final level must be exactly 1.
    const auto rk = keygen_.makeRelinKey();
    std::vector<double> values(ctx_.slots(), 0.0);
    Rng r(99);
    for (auto &v : values)
        v = r.uniformReal(0.6, 0.95); // stays in (0,1) under squaring

    auto ct = enc(values);
    std::vector<double> expect = values;
    while (ct.level() >= 2) {
        ct = eval_.square(ct, rk);
        eval_.rescaleInplace(ct);
        for (auto &v : expect)
            v *= v;
    }
    EXPECT_EQ(ct.level(), 1u);
    const auto got = dec(ct);
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_NEAR(got[i], expect[i], 5e-2) << i;
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, CkksPropertyTest,
    ::testing::Values(ParamTuple{512, 3, 28}, ParamTuple{1024, 4, 30},
                      ParamTuple{2048, 5, 30}, ParamTuple{2048, 3, 36},
                      ParamTuple{4096, 4, 36}));

} // namespace
} // namespace fxhenn::ckks
