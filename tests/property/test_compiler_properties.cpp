/**
 * @file
 * Randomized-network property tests: the HE-CNN compiler + runtime must
 * agree with plaintext inference for arbitrary small conv/dense
 * topologies, not just the zoo networks. Each seed generates a
 * different 5-layer architecture (conv shape, filter count, hidden
 * width) and the encrypted logits are checked slot-for-slot.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

nn::Network
randomNetwork(std::uint64_t seed)
{
    Rng rng(seed);
    const std::size_t in_hw = 6 + rng.uniform(5);      // 6..10
    const std::size_t kernel = 2 + rng.uniform(2);     // 2..3
    const std::size_t stride = 1 + rng.uniform(2);     // 1..2
    const std::size_t filters = 1 + rng.uniform(3);    // 1..3
    const std::size_t hidden = 4 + rng.uniform(8);     // 4..11
    const std::size_t outputs = 2 + rng.uniform(4);    // 2..5

    nn::Network net("Random-" + std::to_string(seed), 1, in_hw, in_hw);
    auto conv = std::make_unique<nn::Conv2D>("Cnv1", 1, filters, kernel,
                                             stride, in_hw, in_hw);
    conv->randomize(rng, 0.15);
    const std::size_t conv_out = conv->outputSize();
    net.addLayer(std::move(conv));
    net.addLayer(std::make_unique<nn::SquareActivation>("Act1",
                                                        conv_out));
    auto fc1 = std::make_unique<nn::Dense>("Fc1", conv_out, hidden);
    fc1->randomize(rng, 0.08);
    net.addLayer(std::move(fc1));
    net.addLayer(std::make_unique<nn::SquareActivation>("Act2",
                                                        hidden));
    auto fc2 = std::make_unique<nn::Dense>("Fc2", hidden, outputs);
    fc2->randomize(rng, 0.12);
    net.addLayer(std::move(fc2));
    return net;
}

class RandomNetworkTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomNetworkTest, EncryptedMatchesPlaintext)
{
    const std::uint64_t seed = GetParam();
    const auto net = randomNetwork(seed);
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);

    // Structural invariants first.
    EXPECT_EQ(plan.layers.size(), net.layerCount());
    EXPECT_LE(plan.depth(), params.levels - 1);
    EXPECT_GE(plan.layers.back().levelOut, 1u);
    for (const auto &layer : plan.layers) {
        EXPECT_GT(layer.instrs.size(), 0u) << layer.name;
        EXPECT_EQ(layer.levelIn - layer.levelOut <= 2, true)
            << layer.name;
    }

    // Behavioural check.
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, seed);
    const nn::Tensor input = nn::syntheticInput(net, seed + 100);
    const nn::Tensor expected = net.forward(input);
    const auto logits = runtime.infer(input);

    ASSERT_EQ(logits.size(), expected.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        ASSERT_NEAR(logits[i], expected[i], 1e-2)
            << "seed " << seed << " logit " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

TEST(CompilerProperty, DenseFirstNetworkVerifiesUnderEncryption)
{
    // MLP-style networks (no convolution) use the contiguous input
    // packing path; the replicated dense lowering must work directly
    // on the client-packed vector.
    Rng rng(23);
    nn::Network net("MLP", 1, 1, 48);
    auto fc1 = std::make_unique<nn::Dense>("Fc1", 48, 12);
    fc1->randomize(rng, 0.1);
    net.addLayer(std::move(fc1));
    net.addLayer(std::make_unique<nn::SquareActivation>("Act1", 12));
    auto fc2 = std::make_unique<nn::Dense>("Fc2", 12, 3);
    fc2->randomize(rng, 0.15);
    net.addLayer(std::move(fc2));

    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    EXPECT_EQ(plan.inputCiphertexts(), 1u);

    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, 23);
    const nn::Tensor input = nn::syntheticInput(net, 8);
    const nn::Tensor expected = net.forward(input);
    const auto logits = runtime.infer(input);
    ASSERT_EQ(logits.size(), 3u);
    for (std::size_t i = 0; i < logits.size(); ++i)
        ASSERT_NEAR(logits[i], expected[i], 1e-2) << i;
}

TEST(CompilerProperty, PaddedConvolutionVerifiesUnderEncryption)
{
    // Padding routes -1 gather entries (zero slots) through the whole
    // pipeline; the encrypted result must still match plaintext.
    Rng rng(17);
    nn::Network net("Padded", 1, 6, 6);
    auto conv =
        std::make_unique<nn::Conv2D>("Cnv1", 1, 2, 3, 1, 6, 6, 1);
    conv->randomize(rng, 0.12);
    const std::size_t conv_out = conv->outputSize(); // 2 x 6 x 6 = 72
    net.addLayer(std::move(conv));
    net.addLayer(std::make_unique<nn::SquareActivation>("Act1",
                                                        conv_out));
    auto fc = std::make_unique<nn::Dense>("Fc1", conv_out, 4);
    fc->randomize(rng, 0.08);
    net.addLayer(std::move(fc));

    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, 17);

    const nn::Tensor input = nn::syntheticInput(net, 3);
    const nn::Tensor expected = net.forward(input);
    const auto logits = runtime.infer(input);
    ASSERT_EQ(logits.size(), 4u);
    for (std::size_t i = 0; i < logits.size(); ++i)
        ASSERT_NEAR(logits[i], expected[i], 1e-2) << i;
}

TEST(CompilerProperty, HopCountScalesWithFilters)
{
    // More conv filters must never reduce the plan's operation count.
    std::uint64_t prev = 0;
    for (std::size_t filters : {1u, 2u, 4u}) {
        Rng rng(9);
        nn::Network net("F" + std::to_string(filters), 1, 8, 8);
        auto conv = std::make_unique<nn::Conv2D>("Cnv1", 1, filters, 3,
                                                 1, 8, 8);
        conv->randomize(rng, 0.1);
        const std::size_t conv_out = conv->outputSize();
        net.addLayer(std::move(conv));
        net.addLayer(std::make_unique<nn::SquareActivation>("Act1",
                                                            conv_out));
        auto fc = std::make_unique<nn::Dense>("Fc1", conv_out, 3);
        fc->randomize(rng, 0.1);
        net.addLayer(std::move(fc));

        const auto plan =
            compile(net, ckks::testParams(2048, 7, 30));
        const std::uint64_t hops = plan.totalCounts().total();
        EXPECT_GE(hops, prev) << filters;
        prev = hops;
    }
}

TEST(CompilerProperty, ElidedAndFullPlansHaveIdenticalStructure)
{
    // elideValues must change nothing except the payloads.
    const auto net = nn::buildMnistNetwork();
    const auto full = compile(net, ckks::mnistParams());
    CompileOptions opts;
    opts.elideValues = true;
    const auto elided = compile(net, ckks::mnistParams(), opts);

    ASSERT_EQ(full.layers.size(), elided.layers.size());
    for (std::size_t i = 0; i < full.layers.size(); ++i) {
        EXPECT_EQ(full.layers[i].instrs.size(),
                  elided.layers[i].instrs.size());
        EXPECT_EQ(full.layers[i].counts().total(),
                  elided.layers[i].counts().total());
        EXPECT_EQ(full.layers[i].levelOut, elided.layers[i].levelOut);
    }
    EXPECT_EQ(full.plaintexts.size(), elided.plaintexts.size());
    EXPECT_EQ(full.rotationSteps(), elided.rotationSteps());
}

} // namespace
} // namespace fxhenn::hecnn
