/**
 * @file
 * Property tests for the SIMD modarith dispatch levels: boundary
 * coefficients (0, 1, q-1), the worst-case lazy accumulation depth
 * Modulus::maxLazyDepth() permits, and ragged tails (lengths that are
 * not a multiple of any vector width) must all be bitwise identical
 * to the scalar reference at every preset NTT prime x every dispatch
 * level reachable on this host. These are the edges the randomized
 * differential matrix (tests/modarith/test_simd_differential.cpp) is
 * least likely to sample.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/common/rng.hpp"
#include "src/modarith/ntt.hpp"
#include "src/modarith/primes.hpp"
#include "src/modarith/simd_dispatch.hpp"

namespace fxhenn {
namespace {

/** Every prime width the parameter presets use, plus the extremes. */
std::vector<Modulus>
chainPrimes()
{
    std::vector<Modulus> primes;
    for (unsigned bits : {30u, 36u, 42u, 50u, 55u, 60u}) {
        for (std::uint64_t q : generateNttPrimes(bits, 4096, 2))
            primes.emplace_back(q);
    }
    return primes;
}

std::vector<simd::Level>
reachableLevels()
{
    std::vector<simd::Level> levels;
    for (simd::Level level :
         {simd::Level::scalar, simd::Level::avx2, simd::Level::avx512})
        if (simd::available(level))
            levels.push_back(level);
    return levels;
}

/** A vector mixing the boundary residues 0, 1 and q-1 with random
 * coefficients so every vector lane sees an edge value somewhere. */
std::vector<std::uint64_t>
boundaryResidues(Rng &rng, std::size_t n, std::uint64_t q)
{
    std::vector<std::uint64_t> v(n);
    for (std::size_t k = 0; k < n; ++k) {
        switch (k % 4) {
        case 0:
            v[k] = 0;
            break;
        case 1:
            v[k] = 1;
            break;
        case 2:
            v[k] = q - 1;
            break;
        default:
            v[k] = rng.uniform(q);
            break;
        }
    }
    return v;
}

TEST(SimdProperty, BoundaryCoefficientsAtEveryPrimeAndWidth)
{
    Rng rng(20260808);
    const auto &ref = simd::kernelsFor(simd::Level::scalar);
    // One span per interesting tail class: aligned to the widest
    // vector, one short of it, one past it, sub-width, and single.
    for (const std::size_t n : {64ull, 63ull, 65ull, 7ull, 1ull}) {
        for (const Modulus &q : chainPrimes()) {
            const auto a = boundaryResidues(rng, n, q.value());
            auto b = boundaryResidues(rng, n, q.value());
            // Reverse so (0, q-1) and (q-1, 0) pairs both occur.
            std::reverse(b.begin(), b.end());
            for (simd::Level level : reachableLevels()) {
                const auto &kern = simd::kernelsFor(level);
                std::vector<std::uint64_t> want(n), got(n);
                ref.addArray(want.data(), a.data(), b.data(), n, q);
                kern.addArray(got.data(), a.data(), b.data(), n, q);
                ASSERT_EQ(want, got)
                    << "addArray n=" << n << " q=" << q.value() << " @"
                    << simd::levelName(level);
                ref.subArray(want.data(), a.data(), b.data(), n, q);
                kern.subArray(got.data(), a.data(), b.data(), n, q);
                ASSERT_EQ(want, got)
                    << "subArray n=" << n << " q=" << q.value() << " @"
                    << simd::levelName(level);
                ref.mulArray(want.data(), a.data(), b.data(), n, q);
                kern.mulArray(got.data(), a.data(), b.data(), n, q);
                ASSERT_EQ(want, got)
                    << "mulArray n=" << n << " q=" << q.value() << " @"
                    << simd::levelName(level);
                want = a;
                got = a;
                ref.fmaModArray(want.data(), b.data(), b.data(), n, q);
                kern.fmaModArray(got.data(), b.data(), b.data(), n, q);
                ASSERT_EQ(want, got)
                    << "fmaModArray n=" << n << " q=" << q.value()
                    << " @" << simd::levelName(level);
            }
        }
    }
}

TEST(SimdProperty, ReduceBoundariesIncludeBarrettEdgeInputs)
{
    // reduce()'s contract is src < 2^(2*bits); feed the extremes of
    // that range (0, 1, q-1, q, q+1, 2^(2*bits)-1) at every prime and
    // level, padded to a ragged length.
    Rng rng(31337);
    const auto &ref = simd::kernelsFor(simd::Level::scalar);
    for (const Modulus &q : chainPrimes()) {
        const unsigned twob = 2 * q.bits();
        const std::uint64_t top =
            twob >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << twob) - 1;
        std::vector<std::uint64_t> src = {
            0, 1, q.value() - 1, q.value(), q.value() + 1, top};
        while (src.size() < 21)
            src.push_back(rng.next() % (top == ~std::uint64_t{0}
                                            ? top
                                            : top + 1));
        const std::size_t n = src.size();
        std::vector<std::uint64_t> want(n);
        ref.reduceArray(want.data(), src.data(), n, q);
        for (simd::Level level : reachableLevels()) {
            std::vector<std::uint64_t> got(n);
            simd::kernelsFor(level).reduceArray(got.data(), src.data(),
                                                n, q);
            ASSERT_EQ(want, got) << "reduceArray q=" << q.value()
                                 << " @" << simd::levelName(level);
        }
    }
}

TEST(SimdProperty, WorstCaseLazyDepthAtEveryPrimeAndWidth)
{
    // Saturate the 128-bit overflow budget with (q-1)^2 terms at the
    // advertised maxLazyDepth() (capped for narrow primes), then
    // compare both the raw 128-bit accumulator bytes and the deferred
    // reduction against scalar, over a ragged length.
    const auto &ref = simd::kernelsFor(simd::Level::scalar);
    const std::size_t n = 13;
    for (const Modulus &q : chainPrimes()) {
        const std::uint64_t depth =
            std::min<std::uint64_t>(q.maxLazyDepth(), 1024);
        const std::vector<std::uint64_t> worst(n, q.value() - 1);
        for (simd::Level level : reachableLevels()) {
            const auto &kern = simd::kernelsFor(level);
            std::vector<unsigned __int128> want(n, 0), got(n, 0);
            for (std::uint64_t d = 0; d < depth; ++d) {
                ref.fmaLazy(want.data(), worst.data(), worst.data(), n);
                kern.fmaLazy(got.data(), worst.data(), worst.data(), n);
            }
            ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                     n * sizeof(unsigned __int128)))
                << "accumulator bytes q=" << q.value() << " depth "
                << depth << " @" << simd::levelName(level);
            std::vector<std::uint64_t> wantR(n), gotR(n);
            ref.reduceWideArray(wantR.data(), want.data(), n, q);
            kern.reduceWideArray(gotR.data(), got.data(), n, q);
            ASSERT_EQ(wantR, gotR)
                << "reduceWide q=" << q.value() << " depth " << depth
                << " @" << simd::levelName(level);
        }
    }
}

TEST(SimdProperty, GatherFmaRaggedTailsAndBoundaries)
{
    Rng rng(4242);
    const auto &ref = simd::kernelsFor(simd::Level::scalar);
    for (const std::size_t n : {8ull, 9ull, 17ull, 33ull}) {
        for (const Modulus &q : chainPrimes()) {
            std::vector<std::uint32_t> perm(n);
            std::iota(perm.begin(), perm.end(), 0u);
            // Rotate rather than shuffle: the Galois maps the real
            // keyswitch feeds are permutations with long cycles.
            std::rotate(perm.begin(), perm.begin() + (n / 2),
                        perm.end());
            const auto a = boundaryResidues(rng, n, q.value());
            const auto b = boundaryResidues(rng, n, q.value());
            for (simd::Level level : reachableLevels()) {
                std::vector<unsigned __int128> want(n, 7), got(n, 7);
                ref.fmaLazyGather(want.data(), a.data(), perm.data(),
                                  b.data(), n);
                simd::kernelsFor(level).fmaLazyGather(
                    got.data(), a.data(), perm.data(), b.data(), n);
                ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                         n * sizeof(unsigned __int128)))
                    << "fmaLazyGather n=" << n << " q=" << q.value()
                    << " @" << simd::levelName(level);
            }
        }
    }
}

TEST(SimdProperty, NttBoundaryVectorsAtEveryPrimeAndWidth)
{
    // Impulse, constant-max and boundary-mixed inputs through
    // forward+inverse at each level: outputs must equal scalar
    // bitwise, and the roundtrip must restore the input.
    Rng rng(606);
    const std::uint64_t n = 64;
    for (unsigned bits : {30u, 36u, 42u, 50u, 55u, 60u}) {
        const Modulus q(generateNttPrimes(bits, n, 1)[0]);
        const NttTables ntt(n, q);
        std::vector<std::vector<std::uint64_t>> inputs;
        inputs.emplace_back(n, 0);
        inputs.back()[0] = 1; // impulse
        inputs.emplace_back(n, q.value() - 1);
        inputs.push_back(boundaryResidues(rng, n, q.value()));
        for (const auto &input : inputs) {
            auto fwdRef = input;
            {
                simd::ScopedLevel pin(simd::Level::scalar);
                ntt.forward(std::span<std::uint64_t>(fwdRef));
            }
            for (simd::Level level : reachableLevels()) {
                simd::ScopedLevel pin(level);
                auto buf = input;
                ntt.forward(std::span<std::uint64_t>(buf));
                ASSERT_EQ(fwdRef, buf)
                    << "forward bits=" << bits << " @"
                    << simd::levelName(level);
                ntt.inverse(std::span<std::uint64_t>(buf));
                ASSERT_EQ(input, buf)
                    << "roundtrip bits=" << bits << " @"
                    << simd::levelName(level);
            }
        }
    }
}

} // namespace
} // namespace fxhenn
