/**
 * @file
 * Full-scale end-to-end integration test: encrypted FxHENN-MNIST
 * inference under the paper's production parameter set (N = 8192,
 * L = 7, 30-bit primes, lambda = 128), verified against plaintext
 * inference. This is the costliest test in the suite (~15 s).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/fxhenn/framework.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn {
namespace {

TEST(MnistEndToEnd, EncryptedInferenceMatchesPlaintext)
{
    const auto net = nn::buildMnistNetwork();
    const auto params = ckks::mnistParams();
    ASSERT_EQ(params.securityLevel(), 128u);

    const auto plan = hecnn::compile(net, params);
    ckks::CkksContext ctx(params);
    hecnn::Runtime runtime(plan, ctx, 2023);

    const nn::Tensor input = nn::syntheticInput(net, 7);
    const nn::Tensor expected = net.forward(input);

    // Record the run: the telemetry differential below reuses this one
    // (costly) inference instead of running a second.
    telemetry::reset();
    telemetry::setEnabled(true);
    const auto logits = runtime.infer(input);
    telemetry::setEnabled(false);

    ASSERT_EQ(logits.size(), 10u);
    double max_err = 0.0;
    std::size_t argmax_he = 0, argmax_pt = 0;
    for (std::size_t i = 0; i < 10; ++i) {
        max_err = std::max(max_err, std::abs(logits[i] - expected[i]));
        if (logits[i] > logits[argmax_he])
            argmax_he = i;
        if (expected[i] > expected[argmax_pt])
            argmax_pt = i;
    }
    EXPECT_LT(max_err, 5e-3)
        << "full-depth CKKS noise exceeded the budget";
    EXPECT_EQ(argmax_he, argmax_pt);

    // The plan the FPGA model consumed is the plan that actually ran.
    const auto &run = runtime.executedCounts();
    const auto planned = plan.totalCounts();
    EXPECT_EQ(run.pcMult, planned.pcMult);
    EXPECT_EQ(run.rotate, planned.rotate);
    EXPECT_EQ(run.relinearize, planned.relin);

    // Telemetry differential at full MNIST scale: the recorded op
    // counters must equal the static plan counts, and every layer must
    // have produced a timing sample.
    if (telemetry::compiledIn()) {
        EXPECT_EQ(telemetry::counter("ckks.op.pc_mult").value(),
                  planned.pcMult);
        EXPECT_EQ(telemetry::counter("ckks.op.cc_mult").value(),
                  planned.ccMult);
        EXPECT_EQ(telemetry::counter("ckks.op.rescale").value(),
                  planned.rescale);
        EXPECT_EQ(telemetry::counter("ckks.op.relinearize").value(),
                  planned.relin);
        EXPECT_EQ(telemetry::counter("ckks.op.rotate").value(),
                  planned.rotate);
        EXPECT_EQ(telemetry::counter("ckks.op.cc_add").value() +
                      telemetry::counter("ckks.op.pc_add").value(),
                  planned.ccAdd);
        EXPECT_EQ(telemetry::counter("hecnn.inferences").value(), 1u);
        for (const auto &layer : plan.layers)
            EXPECT_EQ(telemetry::histogram("hecnn.layer." +
                                           layer.name + ".ns")
                          .count(),
                      1u)
                << "layer " << layer.name;
        telemetry::reset();
    }
}

TEST(MnistEndToEnd, FrameworkSolutionIsConsistentWithPlan)
{
    const auto net = nn::buildMnistNetwork();
    const auto params = ckks::mnistParams();
    const auto sol =
        Fxhenn::generate(net, params, fpga::acu9eg());

    // The solution's embedded plan matches a fresh compile.
    const auto fresh = hecnn::compile(net, params);
    EXPECT_EQ(sol.plan.totalCounts().total(),
              fresh.totalCounts().total());
    EXPECT_EQ(sol.plan.layers.size(), fresh.layers.size());

    // Per-layer latencies sum to the reported total.
    double sum = 0.0;
    for (const auto &lp : sol.design.perf.layers)
        sum += lp.cycles;
    EXPECT_NEAR(sum, sol.design.perf.totalCycles,
                sol.design.perf.totalCycles * 1e-9);
}

} // namespace
} // namespace fxhenn
