/**
 * @file
 * Static-vs-measured noise differential over the model zoo: at every
 * layer of every plan, the certified worst-case headroom must lower-
 * bound the headroom actually measured with the secret key (soundness
 * of the abstract interpretation). The rewritten (waterline) plans are
 * held to the same standard — a rescale rewrite that broke soundness
 * would be caught here even if its certificate claimed otherwise.
 */
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/hecnn/client_session.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/noise_cert.hpp"
#include "src/hecnn/plan_executor.hpp"
#include "src/hecnn/rescale_rewriter.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

/**
 * Slack granted to the measurement, not the bound: the measured
 * headroom uses the exact decrypted noise while the certificate rounds
 * through per-op RSS composition, so equality is the worst legal case
 * and a certificate exceeding measurement by more than this is a
 * soundness bug.
 */
constexpr double kSlackBits = 0.5;

void
expectCertifiedHeadroomIsSound(const nn::Network &net,
                               const HeNetworkPlan &plan,
                               std::uint64_t seed)
{
    const auto cert = certifyPlan(plan);
    ASSERT_TRUE(cert.valid) << cert.invalidReason;
    ASSERT_TRUE(cert.certified()) << cert.renderText();
    ASSERT_EQ(cert.layers.size(), plan.layers.size());

    ckks::CkksContext ctx(plan.params);
    ClientSession session(plan, ctx, seed);
    const PlaintextPool pool(plan, ctx);
    const PlanExecutor exec(plan, ctx, session.relinKey(),
                            session.galoisKeys(), pool);

    std::vector<double> measured(
        plan.layers.size(), std::numeric_limits<double>::infinity());
    RunControl control;
    control.layerProbe =
        [&](std::size_t li,
            std::span<const std::optional<ckks::Ciphertext>> regs) {
            for (std::int32_t reg :
                 plan.layers[li].outputLayout.regs) {
                const auto &slot =
                    regs[static_cast<std::size_t>(reg)];
                ASSERT_TRUE(slot.has_value());
                measured[li] = std::min(
                    measured[li], session.headroomBits(*slot));
            }
        };

    const auto input = nn::syntheticInput(net, seed);
    const auto result =
        exec.execute(session.encryptInput(input, 0), control);
    ASSERT_FALSE(result.degraded());

    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        EXPECT_LE(cert.layers[i].headroomBits,
                  measured[i] + kSlackBits)
            << "certificate overclaims headroom at layer '"
            << plan.layers[i].name << "' (certified "
            << cert.layers[i].headroomBits << " bits, measured "
            << measured[i] << " bits)";
    }
}

TEST(NoiseDifferential, TestNetworkCertificateIsSound)
{
    const auto net = nn::buildTestNetwork();
    const auto plan = compile(net, ckks::testParams(2048, 7, 30));
    expectCertifiedHeadroomIsSound(net, plan, 11);
}

TEST(NoiseDifferential, RewrittenTestNetworkCertificateIsSound)
{
    const auto net = nn::buildTestNetwork();
    auto plan = compile(net, ckks::testParams(2048, 7, 30));
    const auto summary = rewriteRescales(plan);
    ASSERT_TRUE(summary.applied) << summary.reason;
    expectCertifiedHeadroomIsSound(net, plan, 13);
}

TEST(NoiseDifferential, MnistCertificateIsSound)
{
    const auto net = nn::buildMnistNetwork();
    const auto plan = compile(net, ckks::mnistParams());
    expectCertifiedHeadroomIsSound(net, plan, 5);
}

} // namespace
} // namespace fxhenn::hecnn
