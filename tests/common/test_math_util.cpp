#include <gtest/gtest.h>

#include "src/common/math_util.hpp"

namespace fxhenn {
namespace {

TEST(MathUtil, PowerOfTwoDetection)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(MathUtil, FloorAndCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(MathUtil, DivCeil)
{
    EXPECT_EQ(divCeil(10, 5), 2u);
    EXPECT_EQ(divCeil(11, 5), 3u);
    EXPECT_EQ(divCeil(1, 7), 1u);
    EXPECT_EQ(divCeil(0, 7), 0u);
}

TEST(MathUtil, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    EXPECT_EQ(reverseBits(1, 13), 1ull << 12);
    // Involution property on a sample of widths/values.
    for (unsigned bits = 1; bits <= 16; ++bits) {
        for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull}) {
            const std::uint64_t masked = v & ((1ull << bits) - 1);
            EXPECT_EQ(reverseBits(reverseBits(masked, bits), bits), masked);
        }
    }
}

} // namespace
} // namespace fxhenn
