#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.hpp"

namespace fxhenn {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_seed = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        all_equal &= (va == b.next());
        any_diff_seed |= (va != c.next());
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, UniformRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 17ull, 1000003ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.uniform(bound), bound);
    }
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(11);
    std::vector<int> histogram(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++histogram[rng.uniform(8)];
    for (int count : histogram) {
        EXPECT_GT(count, 800);  // expect ~1000 per bucket
        EXPECT_LT(count, 1200);
    }
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng rng(5);
    const double sigma = 3.2;
    double sum = 0.0, sum_sq = 0.0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) {
        const double v = static_cast<double>(rng.gaussian(sigma));
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / samples;
    const double var = sum_sq / samples - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), sigma, 0.2);
}

TEST(Rng, TernaryOnlyProducesMinusOneZeroOne)
{
    Rng rng(9);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 3000; ++i) {
        const auto v = rng.ternary();
        ASSERT_GE(v, -1);
        ASSERT_LE(v, 1);
        ++counts[v + 1];
    }
    for (int c : counts)
        EXPECT_GT(c, 800);
}

} // namespace
} // namespace fxhenn
