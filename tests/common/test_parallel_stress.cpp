/**
 * Thread-safety stress for the shared pool + telemetry registry.
 *
 * These tests are value-checked under every build, but their real
 * purpose is the tsan preset (cmake --preset tsan): many workers
 * hammering the same counters, histograms and registry lookups is
 * exactly the interleaving a data race needs to surface.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/parallel.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn {
namespace {

class ParallelStress : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = threadCount();
        telemetry::setEnabled(true);
        telemetry::reset();
    }

    void
    TearDown() override
    {
        telemetry::setEnabled(false);
        setThreadCount(saved_);
    }

    unsigned saved_ = 1;
};

TEST_F(ParallelStress, ConcurrentCounterUpdatesAreExact)
{
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    setThreadCount(8);
    constexpr std::size_t kIters = 20000;
    auto &hits = telemetry::counter("stress.parallel.hits");
    parallelFor(kIters, [&](std::size_t i) {
        hits.add(1);
        // Exercise the macro path too: registry lookup + cached ref.
        FXHENN_TELEM_COUNT("stress.parallel.macro", i % 2);
    });
    EXPECT_EQ(hits.value(), kIters);
    EXPECT_EQ(telemetry::counter("stress.parallel.macro").value(),
              kIters / 2);
}

TEST_F(ParallelStress, ConcurrentHistogramRecordsLoseNothing)
{
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    setThreadCount(8);
    constexpr std::size_t kIters = 20000;
    auto &hist = telemetry::histogram("stress.parallel.hist");
    parallelFor(kIters, [&](std::size_t i) {
        hist.record(static_cast<std::uint64_t>(i & 0xff));
    });
    EXPECT_EQ(hist.count(), kIters);
    EXPECT_EQ(hist.max(), 255u);
    EXPECT_EQ(hist.min(), 0u);
    std::uint64_t bucketed = 0;
    for (std::size_t b = 0; b < telemetry::Histogram::kBuckets; ++b)
        bucketed += hist.bucket(b);
    EXPECT_EQ(bucketed, kIters);
}

TEST_F(ParallelStress, ConcurrentRegistryLookupsYieldOneMetric)
{
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";
    setThreadCount(8);
    // Every worker resolves the same names for the first time at once;
    // the registry must hand all of them the same instances.
    parallelFor(512, [](std::size_t i) {
        telemetry::counter("stress.registry.shared").add(1);
        telemetry::histogram("stress.registry.hist").record(i);
        telemetry::counter("stress.registry.per" + std::to_string(i % 7))
            .add(1);
    });
    EXPECT_EQ(telemetry::counter("stress.registry.shared").value(), 512u);
    EXPECT_EQ(telemetry::histogram("stress.registry.hist").count(), 512u);
}

TEST_F(ParallelStress, NestedParallelForRunsInlineWithoutDeadlock)
{
    setThreadCount(4);
    std::atomic<std::uint64_t> total{0};
    parallelFor(16, [&](std::size_t) {
        parallelFor(16, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), 256u);
}

TEST_F(ParallelStress, SerialAndParallelAgree)
{
    constexpr std::size_t kIters = 4096;
    auto run = [&] {
        std::atomic<std::uint64_t> sum{0};
        parallelFor(kIters, [&](std::size_t i) {
            sum.fetch_add(i * i, std::memory_order_relaxed);
        });
        return sum.load();
    };
    setThreadCount(1);
    const std::uint64_t serial = run();
    setThreadCount(8);
    EXPECT_EQ(run(), serial);
}

} // namespace
} // namespace fxhenn
