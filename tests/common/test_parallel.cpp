#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/parallel.hpp"

namespace fxhenn {
namespace {

TEST(Parallel, RunsEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroCountIsNoOp)
{
    bool ran = false;
    parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(Parallel, SerialModeMatchesParallelResults)
{
    auto compute = [](std::vector<double> &out) {
        parallelFor(out.size(), [&](std::size_t i) {
            double acc = 0.0;
            for (int k = 0; k < 100; ++k)
                acc += static_cast<double>(i * k % 17);
            out[i] = acc;
        });
    };
    std::vector<double> parallel_out(256), serial_out(256);
    const unsigned original = threadCount();
    compute(parallel_out);
    setThreadCount(1);
    compute(serial_out);
    setThreadCount(original);
    EXPECT_EQ(parallel_out, serial_out);
}

TEST(Parallel, NestedCallsExecuteInline)
{
    std::atomic<int> total{0};
    parallelFor(8, [&](std::size_t) {
        parallelFor(8, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, ExceptionsPropagate)
{
    EXPECT_THROW(parallelFor(16,
                             [](std::size_t i) {
                                 if (i == 7)
                                     throw ConfigError("boom");
                             }),
                 ConfigError);
}

TEST(Parallel, ThreadCountIsConfigurable)
{
    const unsigned original = threadCount();
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3u);
    setThreadCount(0); // clamps to 1
    EXPECT_EQ(threadCount(), 1u);
    setThreadCount(original);
}

} // namespace
} // namespace fxhenn
