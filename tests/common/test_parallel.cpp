#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <span>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn {
namespace {

TEST(Parallel, RunsEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroCountIsNoOp)
{
    bool ran = false;
    parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(Parallel, SerialModeMatchesParallelResults)
{
    auto compute = [](std::vector<double> &out) {
        parallelFor(out.size(), [&](std::size_t i) {
            double acc = 0.0;
            for (int k = 0; k < 100; ++k)
                acc += static_cast<double>(i * k % 17);
            out[i] = acc;
        });
    };
    std::vector<double> parallel_out(256), serial_out(256);
    const unsigned original = threadCount();
    compute(parallel_out);
    setThreadCount(1);
    compute(serial_out);
    setThreadCount(original);
    EXPECT_EQ(parallel_out, serial_out);
}

TEST(Parallel, NestedCallsExecuteInline)
{
    std::atomic<int> total{0};
    parallelFor(8, [&](std::size_t) {
        parallelFor(8, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, ExceptionsPropagate)
{
    EXPECT_THROW(parallelFor(16,
                             [](std::size_t i) {
                                 if (i == 7)
                                     throw ConfigError("boom");
                             }),
                 ConfigError);
}

TEST(Parallel, EncryptedInferenceIsThreadCountInvariant)
{
    // The pool only distributes work across RNS limbs — it must never
    // change results. Same seeds, thread count 1 vs 8: the ciphertext
    // polynomials coming out of the HE pipeline must be bit-identical,
    // and so must every decrypted logit.
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = hecnn::compile(net, params);
    const nn::Tensor input = nn::syntheticInput(net, 77);

    // Both runs share one context: RnsPoly::operator== includes basis
    // identity, so comparing ciphertexts only makes sense within a
    // single basis instance.
    ckks::CkksContext ctx(params);
    ckks::CkksContext ctx2(params);

    auto runOnce = [&](unsigned threads, ckks::Ciphertext &lastCt) {
        setThreadCount(threads);
        // A standalone kernel chain, checked at the ciphertext level.
        Rng rng(42);
        ckks::KeyGenerator keygen(ctx2, rng);
        ckks::Encoder encoder(ctx2);
        ckks::Encryptor encryptor(ctx2, keygen.makePublicKey(), rng);
        ckks::Evaluator evaluator(ctx2);
        const auto relin = keygen.makeRelinKey();
        const auto galois = keygen.makeGaloisKeys({1, 3});
        std::vector<double> v(ctx2.slots(), 0.125);
        const auto pt = encoder.encode(std::span<const double>(v),
                                       ctx2.params().scale, 7);
        auto ct = encryptor.encrypt(pt);
        ct = evaluator.mulPlain(ct, pt);
        evaluator.rescaleInplace(ct);
        ct = evaluator.relinearize(evaluator.mulNoRelin(ct, ct), relin);
        evaluator.rescaleInplace(ct);
        ct = evaluator.rotate(ct, 3, galois);
        lastCt = ct;
        // And the full runtime path, checked at the logit level.
        hecnn::Runtime runtime(plan, ctx, /*seed=*/9);
        return runtime.infer(input);
    };

    const unsigned original = threadCount();
    ckks::Ciphertext serialCt, parallelCt;
    const auto serialLogits = runOnce(1, serialCt);
    const auto parallelLogits = runOnce(8, parallelCt);
    setThreadCount(original);

    ASSERT_EQ(serialCt.parts.size(), parallelCt.parts.size());
    EXPECT_EQ(serialCt.scale, parallelCt.scale);
    for (std::size_t k = 0; k < serialCt.parts.size(); ++k)
        EXPECT_TRUE(serialCt.parts[k] == parallelCt.parts[k])
            << "ciphertext part " << k
            << " differs between serial and parallel execution";
    ASSERT_EQ(serialLogits.size(), parallelLogits.size());
    for (std::size_t i = 0; i < serialLogits.size(); ++i)
        EXPECT_EQ(serialLogits[i], parallelLogits[i])
            << "logit " << i << " is not bit-identical";
}

TEST(Parallel, ThreadCountIsConfigurable)
{
    const unsigned original = threadCount();
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3u);
    setThreadCount(0); // clamps to 1
    EXPECT_EQ(threadCount(), 1u);
    setThreadCount(original);
}

} // namespace
} // namespace fxhenn
