#include <gtest/gtest.h>

#include <sstream>

#include "src/common/assert.hpp"
#include "src/common/table_printer.hpp"

namespace fxhenn {
namespace {

TEST(TablePrinter, RendersAlignedColumns)
{
    TablePrinter t({"Layer", "DSP"});
    t.addRow({"Cnv1", "10"});
    t.addRow({"Fc1-long-name", "15"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("Layer"), std::string::npos);
    EXPECT_NE(out.find("Fc1-long-name"), std::string::npos);
    // Every content line has the same width.
    std::istringstream iss(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(iss, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TablePrinter, RejectsWrongArity)
{
    TablePrinter t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
}

TEST(TablePrinter, FormatHelpers)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(2.0, 0), "2");
    EXPECT_EQ(fmtI(-7), "-7");
    EXPECT_EQ(fmtPct(0.6525), "65.25");
}

TEST(TablePrinter, SeparatorDoesNotBreakAlignment)
{
    TablePrinter t({"A"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find('+'), std::string::npos);
}

} // namespace
} // namespace fxhenn
