/**
 * @file
 * Unit tests for rotation-group detection: maximal same-source rotate
 * runs, group termination when a member clobbers the shared source,
 * and the hoisted decomposition count the lint pass cross-checks
 * against runtime telemetry.
 */
#include <gtest/gtest.h>

#include <vector>

#include "src/hecnn/rotation_groups.hpp"

namespace fxhenn::hecnn {
namespace {

HeInstr
rot(std::int32_t dst, std::int32_t src, std::int32_t step)
{
    return HeInstr{HeOpKind::rotate, dst, src, -1, step};
}

HeInstr
relin(std::int32_t dst, std::int32_t src)
{
    return HeInstr{HeOpKind::relinearize, dst, src, -1, 0};
}

HeInstr
add(std::int32_t dst, std::int32_t src)
{
    return HeInstr{HeOpKind::ccAdd, dst, src, -1, 0};
}

TEST(RotationGroups, EmptyStreamHasNoGroups)
{
    EXPECT_TRUE(findRotationGroups({}).empty());
    EXPECT_EQ(countHoistedDecompositions({}), 0u);
}

TEST(RotationGroups, ConsecutiveSameSourceRotatesFormOneGroup)
{
    const std::vector<HeInstr> instrs{
        rot(1, 0, 1), rot(2, 0, 2), rot(3, 0, 4)};
    const auto groups = findRotationGroups(instrs);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].begin, 0u);
    EXPECT_EQ(groups[0].count, 3u);
    EXPECT_TRUE(groups[0].hoistable());
    EXPECT_EQ(countHoistedDecompositions(instrs), 1u);
}

TEST(RotationGroups, DifferentSourceStartsANewGroup)
{
    const std::vector<HeInstr> instrs{
        rot(1, 0, 1), rot(2, 0, 2), rot(3, 5, 1), rot(4, 5, 2)};
    const auto groups = findRotationGroups(instrs);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].begin, 0u);
    EXPECT_EQ(groups[0].count, 2u);
    EXPECT_EQ(groups[1].begin, 2u);
    EXPECT_EQ(groups[1].count, 2u);
    EXPECT_EQ(countHoistedDecompositions(instrs), 2u);
}

TEST(RotationGroups, InterveningNonRotateSplitsTheRun)
{
    // Rotate-and-sum: each rotation feeds an add before the next
    // rotation of the same register. The adds read the accumulator,
    // not the rotation source, but they still break consecutiveness —
    // so the zoo's reduction trees never form hoistable groups.
    const std::vector<HeInstr> instrs{
        rot(1, 0, 1), add(2, 1), rot(3, 0, 2), add(2, 3)};
    const auto groups = findRotationGroups(instrs);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].count, 1u);
    EXPECT_FALSE(groups[0].hoistable());
    EXPECT_EQ(groups[1].count, 1u);
    EXPECT_EQ(countHoistedDecompositions(instrs), 2u);
}

TEST(RotationGroups, SourceClobberEndsGroupAfterThatMember)
{
    // dst == src: the in-place member may only be the LAST of its
    // group — the next rotate of r0 reads a rotated value and needs a
    // fresh decomposition.
    const std::vector<HeInstr> instrs{
        rot(1, 0, 1), rot(0, 0, 2), rot(2, 0, 4), rot(3, 0, 8)};
    const auto groups = findRotationGroups(instrs);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].begin, 0u);
    EXPECT_EQ(groups[0].count, 2u); // rot(1,0) + the clobbering rot(0,0)
    EXPECT_EQ(groups[1].begin, 2u);
    EXPECT_EQ(groups[1].count, 2u);
    EXPECT_EQ(countHoistedDecompositions(instrs), 2u);
}

TEST(RotationGroups, LeadingClobberIsASingletonGroup)
{
    const std::vector<HeInstr> instrs{rot(0, 0, 1), rot(1, 0, 2)};
    const auto groups = findRotationGroups(instrs);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].count, 1u);
    EXPECT_EQ(groups[1].count, 1u);
}

TEST(RotationGroups, RelinearizeCountsOneDecompositionEach)
{
    const std::vector<HeInstr> instrs{
        relin(0, 0), rot(1, 0, 1), rot(2, 0, 2), relin(3, 3)};
    // 2 relinearizations + 1 hoisted group.
    EXPECT_EQ(countHoistedDecompositions(instrs), 3u);
}

TEST(RotationGroups, GroupsPartitionExactlyTheRotateInstructions)
{
    const std::vector<HeInstr> instrs{
        rot(1, 0, 1),  add(2, 1),   rot(3, 0, 2), rot(4, 0, 4),
        relin(5, 5),   rot(6, 4, 1), rot(4, 4, 2), rot(7, 4, 1)};
    const auto groups = findRotationGroups(instrs);
    std::size_t covered = 0;
    for (const auto &g : groups) {
        for (std::size_t i = 0; i < g.count; ++i)
            EXPECT_EQ(instrs[g.begin + i].kind, HeOpKind::rotate);
        covered += g.count;
    }
    std::size_t rotates = 0;
    for (const auto &in : instrs)
        rotates += in.kind == HeOpKind::rotate ? 1 : 0;
    EXPECT_EQ(covered, rotates);
}

} // namespace
} // namespace fxhenn::hecnn
