/**
 * @file
 * Unit tests of the static noise-budget certifier (noise_cert.hpp) and
 * the certified waterline rescale rewriter (rescale_rewriter.hpp).
 *
 * The soundness of the certificate against *measured* noise is proven
 * at scale by tests/integration/test_noise_differential.cpp; here we
 * pin the structural contract: certificate shape, monotonicity in the
 * assumptions, graceful invalidity (never throws), the rewriter's
 * accept/reject rule and its idempotence.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "src/ckks/params.hpp"
#include "src/hecnn/client_session.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/noise_cert.hpp"
#include "src/hecnn/plan_executor.hpp"
#include "src/hecnn/plan_io.hpp"
#include "src/analysis/verifier.hpp"
#include "src/hecnn/rescale_rewriter.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

HeNetworkPlan
testPlan()
{
    return compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
}

std::string
planBytes(const HeNetworkPlan &plan)
{
    std::ostringstream os;
    savePlan(plan, os);
    return os.str();
}

TEST(NoiseCert, CertifiesTestNetworkLayerByLayer)
{
    const auto plan = testPlan();
    const auto cert = certifyPlan(plan);

    ASSERT_TRUE(cert.valid) << cert.invalidReason;
    EXPECT_TRUE(cert.certified());
    EXPECT_EQ(cert.plan, plan.name);
    EXPECT_EQ(cert.levels, plan.params.levels);
    ASSERT_EQ(cert.layers.size(), plan.layers.size());

    double min_seen = cert.layers.front().headroomBits;
    for (std::size_t i = 0; i < cert.layers.size(); ++i) {
        EXPECT_EQ(cert.layers[i].layer, plan.layers[i].name);
        EXPECT_EQ(cert.layers[i].level, plan.layers[i].levelOut);
        EXPECT_GT(cert.layers[i].scaleBits, 0.0);
        min_seen = std::min(min_seen, cert.layers[i].headroomBits);
    }
    EXPECT_DOUBLE_EQ(cert.minHeadroomBits, min_seen);
}

TEST(NoiseCert, HeadroomIsMonotoneInMessageAssumption)
{
    const auto plan = testPlan();
    CertifyOptions small; // default: message <= 2^-2
    CertifyOptions large;
    large.messageBits = 2.0;

    const auto a = certifyPlan(plan, small);
    const auto b = certifyPlan(plan, large);
    ASSERT_TRUE(a.valid && b.valid);
    // A larger promised message can only cost headroom.
    EXPECT_LE(b.minHeadroomBits, a.minHeadroomBits);
    for (std::size_t i = 0; i < a.layers.size(); ++i)
        EXPECT_LE(b.layers[i].headroomBits, a.layers[i].headroomBits);
}

TEST(NoiseCert, LevelShiftShortensTheChainAndCostsHeadroom)
{
    const auto plan = testPlan();
    const auto base = certifyPlan(plan);
    ASSERT_TRUE(base.valid);

    CertifyOptions shifted;
    shifted.levelShift = 1;
    const auto one = certifyPlan(plan, shifted);
    if (one.valid) {
        EXPECT_EQ(one.levels, plan.params.levels - 1);
        EXPECT_LE(one.minHeadroomBits, base.minHeadroomBits + 1e-9);
    }

    // Shifting past the plan's own depth cannot certify and must
    // report invalidity instead of throwing.
    CertifyOptions absurd;
    absurd.levelShift = plan.params.levels;
    const auto bad = certifyPlan(plan, absurd);
    EXPECT_FALSE(bad.valid);
    EXPECT_FALSE(bad.invalidReason.empty());
    EXPECT_FALSE(bad.certified());
}

TEST(NoiseCert, InvalidParamsAreReportedNotThrown)
{
    auto plan = testPlan();
    plan.params.n = 0; // prime-chain generation cannot succeed
    const auto cert = certifyPlan(plan);
    EXPECT_FALSE(cert.valid);
    EXPECT_FALSE(cert.certified());
    EXPECT_FALSE(cert.invalidReason.empty());
    EXPECT_NE(cert.renderText().find("NOT CERTIFIED"),
              std::string::npos);
}

TEST(NoiseCert, RenderJsonCarriesSchemaAndArtifact)
{
    const auto plan = testPlan();
    auto cert = certifyPlan(plan);
    ASSERT_TRUE(cert.valid);

    const auto bare = cert.renderJson();
    EXPECT_NE(bare.find("\"schema\": \"fxhenn-noise-cert-v1\""),
              std::string::npos);
    EXPECT_NE(bare.find("\"headroom_bits\""), std::string::npos);
    EXPECT_EQ(bare.find("\"plan_file\""), std::string::npos);

    cert.hasArtifact = true;
    cert.artifactPath = "plans/test.plan";
    cert.artifactCrc32 = 0xdeadbeef;
    const auto traced = cert.renderJson();
    EXPECT_NE(traced.find("\"plan_file\": \"plans/test.plan\""),
              std::string::npos);
    EXPECT_NE(traced.find("\"plan_crc32\": 3735928559"),
              std::string::npos);
    EXPECT_NE(cert.renderText().find("plans/test.plan"),
              std::string::npos);
}

TEST(NoiseRewriter, AcceptsOnlyWithFewerRescalesAndNoWorseHeadroom)
{
    auto plan = testPlan();
    const auto before = certifyPlan(plan);
    ASSERT_TRUE(before.certified());

    const auto summary = rewriteRescales(plan);
    ASSERT_TRUE(summary.applied) << summary.reason;
    EXPECT_LT(summary.rescalesAfter, summary.rescalesBefore);
    EXPECT_GE(summary.minHeadroomAfter,
              summary.minHeadroomBefore - 1e-9);
    EXPECT_FALSE(summary.describe().empty());

    // The rewritten plan re-certifies to what the summary claims and
    // still passes the full standard verifier.
    const auto after = certifyPlan(plan);
    ASSERT_TRUE(after.valid) << after.invalidReason;
    EXPECT_NEAR(after.minHeadroomBits, summary.minHeadroomAfter, 1e-9);
    EXPECT_EQ(analysis::verifyPlan(plan).errorCount(), 0u);
}

TEST(NoiseRewriter, RewrittenPlanDecryptsToTheSameLogits)
{
    auto rewritten = testPlan();
    const auto original = testPlan();
    const auto summary = rewriteRescales(rewritten);
    ASSERT_TRUE(summary.applied) << summary.reason;

    ckks::CkksContext ctx(original.params);
    ClientSession session(original, ctx, /*seed=*/31);
    const PlaintextPool pool_a(original, ctx);
    const PlaintextPool pool_b(rewritten, ctx);
    const PlanExecutor exec_a(original, ctx, session.relinKey(),
                              session.galoisKeys(), pool_a);
    const PlanExecutor exec_b(rewritten, ctx, session.relinKey(),
                              session.galoisKeys(), pool_b);

    const auto input = nn::syntheticInput(nn::buildTestNetwork(), 9);
    const auto a = exec_a.execute(session.encryptInput(input, 0));
    const auto b = exec_b.execute(session.encryptInput(input, 0));
    ASSERT_FALSE(a.degraded());
    ASSERT_FALSE(b.degraded());

    const auto la = session.decryptLogits(a.regs);
    const auto lb = session.decryptLogits(b.regs);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_NEAR(la[i], lb[i], 1e-4) << "logit " << i;
}

TEST(NoiseRewriter, IsIdempotent)
{
    auto plan = testPlan();
    const auto first = rewriteRescales(plan);
    ASSERT_TRUE(first.applied) << first.reason;

    const auto frozen = planBytes(plan);
    const auto second = rewriteRescales(plan);
    EXPECT_FALSE(second.applied);
    EXPECT_FALSE(second.reason.empty());
    EXPECT_EQ(planBytes(plan), frozen)
        << "a rejected rewrite must leave the plan byte-identical";
}

TEST(NoiseCert, NegativeHeadroomIsReportedNotThrown)
{
    // Two chained pcMults with no rescale on a 2-prime chain push the
    // register scale to 2^90 >= Q: valid certificate, UNSAFE verdict.
    HeNetworkPlan plan;
    plan.name = "hot";
    plan.params = ckks::testParams(1024, 2, 30);
    const std::size_t slots = plan.params.n / 2;
    plan.regCount = 2;
    plan.inputGather.emplace_back(slots, -1);
    plan.inputGather[0][0] = 0;

    PlanPlaintext pt;
    pt.values.assign(slots, 0.5);
    pt.level = plan.params.levels;
    pt.atSchemeScale = true;
    plan.plaintexts.push_back(std::move(pt));

    HeLayerPlan layer;
    layer.name = "Hot0";
    layer.levelIn = plan.params.levels;
    layer.levelOut = plan.params.levels;
    layer.nIn = 1;
    layer.instrs.push_back({HeOpKind::pcMult, 1, 0, 0, 0});
    layer.instrs.push_back({HeOpKind::pcMult, 1, 1, 0, 0});
    layer.outputLayout.pos.emplace_back(1, 0);
    layer.outputLayout.regs.push_back(1);
    layer.classify();
    plan.layers.push_back(std::move(layer));
    plan.outputLayout = plan.layers.back().outputLayout;

    const auto cert = certifyPlan(plan);
    ASSERT_TRUE(cert.valid) << cert.invalidReason;
    EXPECT_FALSE(cert.certified());
    EXPECT_LT(cert.minHeadroomBits, 0.0);
    EXPECT_NE(cert.renderText().find("UNSAFE"), std::string::npos);
}

} // namespace
} // namespace fxhenn::hecnn
