/**
 * @file
 * Differential tests over PlanExecutor's execution strategies: the
 * hoisted-rotation + lazy-keyswitch fast path must produce bitwise the
 * same ciphertexts as the serial + eager reference path on real plans,
 * and the runtime's keyswitch telemetry must agree with the lint
 * pass's static decomposition model (countHoistedDecompositions).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "src/hecnn/client_session.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_executor.hpp"
#include "src/hecnn/rotation_groups.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::hecnn {
namespace {

bool
sameRegs(const std::vector<std::optional<ckks::Ciphertext>> &a,
         const std::vector<std::optional<ckks::Ciphertext>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t r = 0; r < a.size(); ++r) {
        if (a[r].has_value() != b[r].has_value())
            return false;
        if (!a[r])
            continue;
        if (a[r]->parts.size() != b[r]->parts.size())
            return false;
        for (std::size_t p = 0; p < a[r]->parts.size(); ++p)
            if (!(a[r]->parts[p] == b[r]->parts[p]))
                return false;
    }
    return true;
}

std::size_t
plannedDecompositions(const HeNetworkPlan &plan)
{
    std::size_t total = 0;
    for (const auto &layer : plan.layers)
        total += countHoistedDecompositions(layer.instrs);
    return total;
}

/**
 * A hand-built plan whose single layer holds a hoistable rotation
 * group (three rotations of r0) feeding a reduction — the shape the
 * model zoo never produces (its rotate-and-sum interleaves adds), so
 * the executor's group dispatch needs its own plan.
 */
HeNetworkPlan
rotationGroupPlan()
{
    HeNetworkPlan plan;
    plan.name = "rotgroup";
    plan.params = ckks::testParams(1024, 4, 30);
    const std::size_t slots = plan.params.n / 2;
    plan.regCount = 4;
    plan.inputGather.emplace_back(slots, -1);
    for (std::int32_t s = 0; s < 8; ++s)
        plan.inputGather[0][static_cast<std::size_t>(s)] = s;

    HeLayerPlan layer;
    layer.name = "L0";
    layer.levelIn = plan.params.levels;
    layer.levelOut = plan.params.levels;
    layer.nIn = 1;
    layer.instrs.push_back({HeOpKind::rotate, 1, 0, -1, 1});
    layer.instrs.push_back({HeOpKind::rotate, 2, 0, -1, 2});
    layer.instrs.push_back({HeOpKind::rotate, 3, 0, -1, 3});
    layer.instrs.push_back({HeOpKind::ccAdd, 1, 2, -1, 0});
    layer.instrs.push_back({HeOpKind::ccAdd, 1, 3, -1, 0});
    for (std::int32_t s = 0; s < 4; ++s)
        layer.outputLayout.pos.emplace_back(1, s);
    layer.outputLayout.regs.push_back(1);
    layer.classify();
    plan.layers.push_back(std::move(layer));
    plan.outputLayout = plan.layers.back().outputLayout;
    return plan;
}

TEST(HoistDifferential, ZooInferenceIsBitwiseIdenticalAcrossStrategies)
{
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    ClientSession session(plan, ctx, /*seed=*/17);
    PlaintextPool pool(plan, ctx);

    ExecOptions fast; // defaults: hoisting on, lazy keyswitch
    ExecOptions reference;
    reference.hoistRotations = false;
    reference.kswMode = ckks::KswMode::eager;
    const PlanExecutor optimized(plan, ctx, session.relinKey(),
                                 session.galoisKeys(), pool, {}, fast);
    const PlanExecutor eager(plan, ctx, session.relinKey(),
                             session.galoisKeys(), pool, {}, reference);

    const auto input = nn::syntheticInput(net, 12);
    const auto a = optimized.execute(session.encryptInput(input, 0));
    const auto b = eager.execute(session.encryptInput(input, 0));

    ASSERT_FALSE(a.degraded());
    ASSERT_FALSE(b.degraded());
    EXPECT_TRUE(sameRegs(a.regs, b.regs))
        << "lazy/hoisted path diverged from the eager reference";
    EXPECT_EQ(session.decryptLogits(a.regs), session.decryptLogits(b.regs));
}

TEST(HoistDifferential, HoistedGroupPlanMatchesSerialExecutionBitwise)
{
    const auto plan = rotationGroupPlan();
    ckks::CkksContext ctx(plan.params);
    ClientSession session(plan, ctx, 23);
    PlaintextPool pool(plan, ctx);

    ASSERT_EQ(plannedDecompositions(plan), 1u)
        << "fixture must hold exactly one hoistable group";

    ExecOptions serial;
    serial.hoistRotations = false;
    const PlanExecutor hoisted(plan, ctx, session.relinKey(),
                               session.galoisKeys(), pool);
    const PlanExecutor unhoisted(plan, ctx, session.relinKey(),
                                 session.galoisKeys(), pool, {}, serial);

    nn::Tensor input(8);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = 0.1 * static_cast<double>(i + 1);
    const auto a = hoisted.execute(session.encryptInput(input, 0));
    const auto b = unhoisted.execute(session.encryptInput(input, 0));
    ASSERT_FALSE(a.degraded());
    ASSERT_FALSE(b.degraded());
    EXPECT_TRUE(sameRegs(a.regs, b.regs));
    EXPECT_EQ(a.executed.rotate, 3u);
    EXPECT_EQ(b.executed.rotate, 3u);
}

TEST(HoistDifferential, DecompositionTelemetryMatchesLintModel)
{
    // The lint OpCountPass predicts keyswitch decompositions with
    // countHoistedDecompositions; the runtime must report exactly that
    // via "ckks.keyswitch.decompositions" when hoisting is on — the
    // group-of-k-rotations = 1-decomposition contract.
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";

    for (const auto &plan :
         {rotationGroupPlan(),
          compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30))}) {
        ckks::CkksContext ctx(plan.params);
        ClientSession session(plan, ctx, 29);
        PlaintextPool pool(plan, ctx);
        const PlanExecutor executor(plan, ctx, session.relinKey(),
                                    session.galoisKeys(), pool);

        std::int32_t maxIndex = -1;
        for (const auto &gather : plan.inputGather)
            for (std::int32_t idx : gather)
                maxIndex = std::max(maxIndex, idx);
        nn::Tensor input(static_cast<std::size_t>(maxIndex + 1));
        for (std::size_t i = 0; i < input.size(); ++i)
            input[i] = 0.05 * static_cast<double>(i % 16 + 1);
        const auto encrypted = session.encryptInput(input, 0);

        telemetry::reset();
        telemetry::setEnabled(true);
        const auto result = executor.execute(encrypted);
        telemetry::setEnabled(false);

        ASSERT_FALSE(result.degraded());
        EXPECT_EQ(
            telemetry::counter("ckks.keyswitch.decompositions").value(),
            plannedDecompositions(plan))
            << "plan " << plan.name;
        // Satellite contract re-checked at plan scope: every executed
        // rotate pairs one op count with one timer sample.
        EXPECT_EQ(telemetry::counter("ckks.op.rotate").value(),
                  result.executed.rotate);
        EXPECT_EQ(telemetry::histogram("ckks.time.rotate.ns").count(),
                  result.executed.rotate);
        telemetry::reset();
    }
}

} // namespace
} // namespace fxhenn::hecnn
