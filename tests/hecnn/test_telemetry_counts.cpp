/**
 * @file
 * Differential telemetry tests: for every model in the zoo the
 * encrypted runtime must (a) reproduce the plaintext forward pass
 * within the noise budget and (b) report telemetry op-counts that are
 * exactly the static op-counts of the compiled plan. CIFAR-10 compiles
 * with elideValues=true and cannot execute, so it is checked statically.
 * The full-parameter MNIST run lives in the slow integration suite.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/telemetry/telemetry.hpp"

namespace fxhenn::hecnn {
namespace {

/** Sum the measured per-layer op breakdown of the last inference. */
ckks::OpCounts
sumLayerCounts(const std::vector<MeasuredLayerStats> &rows)
{
    ckks::OpCounts total;
    for (const auto &row : rows) {
        total.ccAdd += row.executed.ccAdd;
        total.pcAdd += row.executed.pcAdd;
        total.pcMult += row.executed.pcMult;
        total.ccMult += row.executed.ccMult;
        total.rescale += row.executed.rescale;
        total.relinearize += row.executed.relinearize;
        total.rotate += row.executed.rotate;
    }
    return total;
}

TEST(TelemetryCounts, TestNetworkTelemetryMatchesStaticPlan)
{
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";

    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, /*seed=*/31);

    const nn::Tensor input = nn::syntheticInput(net, 32);
    const nn::Tensor expected = net.forward(input);

    telemetry::reset();
    telemetry::setEnabled(true);
    const auto logits = runtime.infer(input);
    telemetry::setEnabled(false);

    // (a) encrypted output within the noise bound of plaintext.
    ASSERT_EQ(logits.size(), expected.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_LT(std::abs(logits[i] - expected[i]), 1e-2)
            << "logit " << i;

    // (b) telemetry op counters == the plan's static counts.
    const HeOpCounts planned = plan.totalCounts();
    EXPECT_EQ(telemetry::counter("ckks.op.pc_mult").value(),
              planned.pcMult);
    EXPECT_EQ(telemetry::counter("ckks.op.cc_mult").value(),
              planned.ccMult);
    EXPECT_EQ(telemetry::counter("ckks.op.rescale").value(),
              planned.rescale);
    EXPECT_EQ(telemetry::counter("ckks.op.relinearize").value(),
              planned.relin);
    EXPECT_EQ(telemetry::counter("ckks.op.rotate").value(),
              planned.rotate);
    // The compiler folds bias adds into OP1, the evaluator splits them.
    EXPECT_EQ(telemetry::counter("ckks.op.cc_add").value() +
                  telemetry::counter("ckks.op.pc_add").value(),
              planned.ccAdd);

    // Every key-switch op ran through the key-switch core.
    EXPECT_EQ(telemetry::counter("ckks.op.keyswitch_core").value(),
              planned.keySwitch());

    // The run itself is accounted for.
    EXPECT_EQ(telemetry::counter("hecnn.inferences").value(), 1u);
    EXPECT_EQ(telemetry::histogram("hecnn.infer.ns").count(), 1u);

    // Per-layer timing histograms exist for every plan layer, and the
    // measured per-layer op breakdown sums back to the plan totals.
    for (const auto &layer : plan.layers)
        EXPECT_EQ(telemetry::histogram("hecnn.layer." + layer.name +
                                       ".ns")
                      .count(),
                  1u)
            << "layer " << layer.name;
    ASSERT_EQ(runtime.lastLayerStats().size(), plan.layers.size());
    const ckks::OpCounts measured =
        sumLayerCounts(runtime.lastLayerStats());
    EXPECT_EQ(measured.pcMult, planned.pcMult);
    EXPECT_EQ(measured.ccMult, planned.ccMult);
    EXPECT_EQ(measured.rescale, planned.rescale);
    EXPECT_EQ(measured.relinearize, planned.relin);
    EXPECT_EQ(measured.rotate, planned.rotate);
    EXPECT_EQ(measured.ccAdd + measured.pcAdd, planned.ccAdd);

    // NTT activity was observed (every HE op runs on NTT-form limbs).
    EXPECT_GT(telemetry::counter("modarith.ntt.forward").value(), 0u);
    telemetry::reset();
}

TEST(TelemetryCounts, TelemetryDisabledRunChangesNoCounters)
{
    if (!telemetry::compiledIn())
        GTEST_SKIP() << "telemetry compiled out";

    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, 33);

    telemetry::reset();
    telemetry::setEnabled(false);
    runtime.infer(nn::syntheticInput(net, 34));

    EXPECT_EQ(telemetry::counter("ckks.op.pc_mult").value(), 0u);
    EXPECT_EQ(telemetry::counter("hecnn.inferences").value(), 0u);
    EXPECT_EQ(telemetry::histogram("hecnn.infer.ns").count(), 0u);
    // The always-on measured layer stats still work without telemetry.
    EXPECT_EQ(runtime.lastLayerStats().size(), plan.layers.size());
}

TEST(TelemetryCounts, MnistStaticLayerCountsSumToPlanTotal)
{
    // Full-parameter MNIST executes in the slow integration suite;
    // here we pin down the static side of the differential: per-layer
    // counts must sum to the plan total for the real model too.
    const auto plan =
        compile(nn::buildMnistNetwork(), ckks::mnistParams());
    HeOpCounts sum;
    for (const auto &layer : plan.layers) {
        const auto c = layer.counts();
        sum.ccAdd += c.ccAdd;
        sum.pcMult += c.pcMult;
        sum.ccMult += c.ccMult;
        sum.rescale += c.rescale;
        sum.relin += c.relin;
        sum.rotate += c.rotate;
    }
    const auto total = plan.totalCounts();
    EXPECT_EQ(sum.ccAdd, total.ccAdd);
    EXPECT_EQ(sum.pcMult, total.pcMult);
    EXPECT_EQ(sum.ccMult, total.ccMult);
    EXPECT_EQ(sum.rescale, total.rescale);
    EXPECT_EQ(sum.relin, total.relin);
    EXPECT_EQ(sum.rotate, total.rotate);
    EXPECT_GT(total.total(), 0u);
}

TEST(TelemetryCounts, Cifar10StaticLayerCountsSumToPlanTotal)
{
    // CIFAR-10 plans are compiled values-elided (weights too large for
    // the test jig) and cannot execute — the static op accounting must
    // still be self-consistent, since the DSE consumes it.
    CompileOptions opts;
    opts.elideValues = true;
    const auto plan =
        compile(nn::buildCifar10Network(), ckks::cifar10Params(), opts);
    HeOpCounts sum;
    for (const auto &layer : plan.layers) {
        const auto c = layer.counts();
        sum.ccAdd += c.ccAdd;
        sum.pcMult += c.pcMult;
        sum.ccMult += c.ccMult;
        sum.rescale += c.rescale;
        sum.relin += c.relin;
        sum.rotate += c.rotate;
    }
    const auto total = plan.totalCounts();
    EXPECT_EQ(sum.total(), total.total());
    EXPECT_EQ(sum.keySwitch(), total.keySwitch());
    EXPECT_GT(total.total(), 0u);
    EXPECT_FALSE(plan.rotationSteps().empty());
}

} // namespace
} // namespace fxhenn::hecnn
