#include <gtest/gtest.h>

#include "src/common/assert.hpp"

#include <cstring>
#include <sstream>

#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_io.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/hecnn/stats.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

TEST(PlanIo, RoundTripPreservesStructureAndPayloads)
{
    const auto plan =
        compile(nn::buildMnistNetwork(), ckks::mnistParams());
    std::stringstream ss;
    savePlan(plan, ss);
    const auto loaded = loadPlan(ss);

    EXPECT_EQ(loaded.name, plan.name);
    EXPECT_EQ(loaded.params.n, plan.params.n);
    EXPECT_EQ(loaded.regCount, plan.regCount);
    ASSERT_EQ(loaded.layers.size(), plan.layers.size());
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        EXPECT_EQ(loaded.layers[i].name, plan.layers[i].name);
        EXPECT_EQ(loaded.layers[i].cls, plan.layers[i].cls);
        EXPECT_EQ(loaded.layers[i].instrs.size(),
                  plan.layers[i].instrs.size());
        EXPECT_EQ(loaded.layers[i].counts().total(),
                  plan.layers[i].counts().total());
    }
    ASSERT_EQ(loaded.plaintexts.size(), plan.plaintexts.size());
    EXPECT_EQ(loaded.plaintexts[0].values, plan.plaintexts[0].values);
    EXPECT_EQ(loaded.rotationSteps(), plan.rotationSteps());
    EXPECT_EQ(loaded.outputLayout.pos, plan.outputLayout.pos);
}

TEST(PlanIo, LoadedPlanExecutesIdentically)
{
    // The deployment property: a shipped plan must produce the same
    // encrypted inference results as the locally compiled one.
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);

    std::stringstream ss;
    savePlan(plan, ss);
    const auto loaded = loadPlan(ss);

    ckks::CkksContext ctx(params);
    Runtime local(plan, ctx, 7);
    Runtime shipped(loaded, ctx, 7);

    const nn::Tensor input = nn::syntheticInput(net, 3);
    const auto a = local.infer(input);
    const auto b = shipped.infer(input);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i])
            << "same keys + same plan must be bit-identical";
}

TEST(PlanIo, ElidedPlansRoundTripWithoutPayloads)
{
    CompileOptions opts;
    opts.elideValues = true;
    const auto plan = compile(nn::buildCifar10Network(),
                              ckks::cifar10Params(), opts);
    std::stringstream ss;
    savePlan(plan, ss);
    const auto loaded = loadPlan(ss);
    EXPECT_TRUE(loaded.valuesElided);
    EXPECT_EQ(loaded.totalCounts().total(),
              plan.totalCounts().total());
    // Stats-only plans stay compact on the wire (< 32 MiB even for
    // the 60K-op CIFAR10 plan).
    EXPECT_LT(ss.str().size(), 32u << 20);
}

TEST(PlanIo, RejectsGarbageAndTruncation)
{
    std::stringstream garbage("not a plan at all, sorry");
    EXPECT_THROW(loadPlan(garbage), ConfigError);

    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    savePlan(plan, ss);
    const std::string full = ss.str();
    std::stringstream truncated(full.substr(0, full.size() / 3));
    EXPECT_THROW(loadPlan(truncated), ConfigError);
}

TEST(PlanIo, RejectsCorruptRegisterReferences)
{
    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    savePlan(plan, ss);
    std::string bytes = ss.str();
    // Corrupt the register count field (right after magic + version +
    // name + params): easier — set regCount bytes to zero by locating
    // the field via a fresh save with a sentinel is brittle; instead
    // just flip a byte deep in the instruction area and expect either
    // a validation failure or a changed-but-valid plan. The strict
    // check: loading must never crash.
    bytes[bytes.size() / 2] = '\xff';
    std::stringstream corrupted(bytes);
    try {
        const auto loaded = loadPlan(corrupted);
        (void)loaded;
    } catch (const ConfigError &) {
        // acceptable: detected corruption
    }
    SUCCEED();
}

TEST(PlanIo, CrcTrailerRejectsPayloadCorruption)
{
    // Version 2 streams carry a CRC-32 trailer: any payload flip —
    // even one that would deserialize into a structurally valid plan —
    // must be rejected as corruption, deterministically.
    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::stringstream ss;
    savePlan(plan, ss);
    std::string bytes = ss.str();
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    std::stringstream corrupted(bytes);
    try {
        loadPlan(corrupted);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PlanIo, ReadsVersion1StreamsWithoutTrailer)
{
    // Backward compatibility: a v1 stream (no CRC trailer, no maxAbs
    // fields) produced by older builds must still load.
    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::stringstream legacy;
    savePlanAsVersion(plan, legacy, 1);
    const auto loaded = loadPlan(legacy);
    EXPECT_EQ(loaded.name, plan.name);
    EXPECT_EQ(loaded.layers.size(), plan.layers.size());
}

TEST(PlanIo, Version2StreamsDeriveMaxAbsFromValues)
{
    // v2 streams predate the maxAbs field; the loader reconstructs it
    // from the stored slot values so old plans stay certifiable.
    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::stringstream v2;
    savePlanAsVersion(plan, v2, 2);
    const auto loaded = loadPlan(v2);
    ASSERT_EQ(loaded.plaintexts.size(), plan.plaintexts.size());
    for (std::size_t i = 0; i < loaded.plaintexts.size(); ++i)
        EXPECT_DOUBLE_EQ(loaded.plaintexts[i].maxAbs,
                         plan.plaintexts[i].maxAbs)
            << "plaintext " << i;
}

TEST(PlanIo, BatchedPlanRoundtripsLaneCount)
{
    CompileOptions options;
    options.batchLanes = 4;
    const auto plan = compile(nn::buildTestNetwork(),
                              ckks::testParams(2048, 7, 30), options);
    ASSERT_EQ(plan.batchLanes, 4u);
    std::stringstream ss;
    savePlan(plan, ss);
    const auto loaded = loadPlan(ss);
    EXPECT_EQ(loaded.batchLanes, 4u);
    EXPECT_EQ(loaded.outputLayout.pos, plan.outputLayout.pos);
    // Stride-4 rotation steps must survive the roundtrip exactly.
    EXPECT_EQ(loaded.rotationSteps(), plan.rotationSteps());
    ASSERT_EQ(loaded.layers.size(), plan.layers.size());
    for (std::size_t li = 0; li < plan.layers.size(); ++li)
        EXPECT_EQ(loaded.layers[li].instrs.size(),
                  plan.layers[li].instrs.size());
}

TEST(PlanIo, LegacyStreamsLoadAsSingleLane)
{
    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::stringstream v3;
    savePlanAsVersion(plan, v3, 3);
    const auto loaded = loadPlan(v3);
    EXPECT_EQ(loaded.batchLanes, 1u);
}

TEST(PlanIo, RefusesToDowngradeBatchedPlan)
{
    // A v3 stream has no lane field, so saving a batched plan there
    // would silently produce a plan that decodes garbage: refuse.
    CompileOptions options;
    options.batchLanes = 4;
    const auto plan = compile(nn::buildTestNetwork(),
                              ckks::testParams(2048, 7, 30), options);
    std::stringstream v3;
    EXPECT_THROW(savePlanAsVersion(plan, v3, 3), ConfigError);
}

TEST(PlanIo, RejectsCorruptLaneCount)
{
    CompileOptions options;
    options.batchLanes = 4;
    const auto plan = compile(nn::buildTestNetwork(),
                              ckks::testParams(2048, 7, 30), options);
    std::stringstream ss;
    savePlan(plan, ss);
    std::string bytes = ss.str();
    // The u32 lane field sits right after magic + version + name +
    // params(40) + elided(1) + regCount(4).
    const std::size_t off = 12 + 4 + plan.name.size() + 40 + 1 + 4;
    std::uint32_t lanes = 0;
    std::memcpy(&lanes, bytes.data() + off, sizeof(lanes));
    ASSERT_EQ(lanes, 4u) << "lane-field offset drifted from the writer";
    const std::uint32_t bogus = 3; // does not divide 1024 slots
    std::memcpy(bytes.data() + off, &bogus, sizeof(bogus));
    std::stringstream corrupted(bytes);
    // CRC sees the flip first; a hand-recomputed trailer would then
    // hit the divisibility check. Either way: ConfigError, no crash.
    EXPECT_THROW(loadPlan(corrupted), ConfigError);
}

} // namespace
} // namespace fxhenn::hecnn
