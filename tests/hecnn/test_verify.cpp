#include <gtest/gtest.h>

#include "src/hecnn/verify.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

TEST(Verify, TestNetworkPassesAcrossSeeds)
{
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    for (std::uint64_t seed : {1ull, 9ull, 42ull}) {
        const auto result =
            verifyAgainstPlaintext(net, params, seed, seed);
        EXPECT_TRUE(result.passed()) << "seed " << seed << " err "
                                     << result.maxAbsError;
        EXPECT_GT(result.hopsExecuted, 0u);
        EXPECT_EQ(result.encryptedLogits.size(),
                  result.plaintextLogits.size());
    }
}

TEST(Verify, ReportsFailureOnTamperedLogits)
{
    // passed() must reject a result with a broken argmax or big error.
    VerifyResult bad;
    bad.maxAbsError = 0.5;
    bad.argmaxMatches = true;
    EXPECT_FALSE(bad.passed());
    bad.maxAbsError = 1e-5;
    bad.argmaxMatches = false;
    EXPECT_FALSE(bad.passed());
    bad.argmaxMatches = true;
    EXPECT_TRUE(bad.passed());
}

TEST(Verify, CustomToleranceIsRespected)
{
    VerifyResult r;
    r.maxAbsError = 0.05;
    r.argmaxMatches = true;
    EXPECT_FALSE(r.passed(0.01));
    EXPECT_TRUE(r.passed(0.1));
}

} // namespace
} // namespace fxhenn::hecnn
