/**
 * @file
 * Invariants of the batched compilation mode (CompileOptions
 * ::batchLanes): the stride-B slot layout, lane-broadcast weight
 * encodings and lane-preserving rotations that make packing B
 * independent requests into one ciphertext sound. See
 * docs/ARCHITECTURE.md section 15.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "src/analysis/pass_manager.hpp"
#include "src/common/assert.hpp"
#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_io.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

HeNetworkPlan
compileBatched(std::size_t lanes)
{
    CompileOptions options;
    options.batchLanes = lanes;
    return compile(nn::buildTestNetwork(),
                   ckks::testParams(2048, 7, 30), options);
}

TEST(BatchedCompiler, SingleLaneIsByteIdenticalToUnbatched)
{
    // batchLanes = 1 must be a strict no-op: the serialized plan is
    // byte-for-byte the plan compiled without the option, so existing
    // deployments cannot drift when the flag defaults in.
    const auto unbatched = compile(nn::buildTestNetwork(),
                                   ckks::testParams(2048, 7, 30));
    const auto lanes1 = compileBatched(1);
    std::stringstream a;
    std::stringstream b;
    savePlan(unbatched, a);
    savePlan(lanes1, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(BatchedCompiler, RotationStepsScaleByLaneCount)
{
    // Batched compilation happens in VIRTUAL slot space: reduction
    // trees are sized by the per-request slot count, so a lanes = 4
    // compile on n = 2048 (1024/4 = 256 virtual slots) does not emit
    // 4x the steps of a lanes = 1 compile on the same ring (whose
    // reductions span all 1024 slots). The sound scaling invariant is
    // against an unbatched compile with the SAME virtual geometry: a
    // 256-slot ring (n = 512). Its steps, times 4, must be exactly
    // the batched plan's physical steps.
    const auto batched = compileBatched(4);
    const auto sameGeometry = compile(nn::buildTestNetwork(),
                                      ckks::testParams(512, 7, 30));
    std::set<std::int32_t> expected;
    for (const std::int32_t step : sameGeometry.rotationSteps())
        expected.insert(step * 4);
    EXPECT_EQ(batched.rotationSteps(), expected);
}

TEST(BatchedCompiler, EveryRotationIsLaneAligned)
{
    const auto plan = compileBatched(4);
    for (const auto &layer : plan.layers)
        for (const auto &instr : layer.instrs)
            if (instr.kind == HeOpKind::rotate) {
                EXPECT_EQ(instr.step % 4, 0)
                    << layer.name << ": rotation by " << instr.step
                    << " would move data between requests";
            }
}

TEST(BatchedCompiler, LayoutsAddressLaneZeroOnly)
{
    const auto plan = compileBatched(4);
    auto checkLayout = [](const SlotLayout &layout,
                          const std::string &where) {
        for (const auto &[reg, slot] : layout.pos)
            EXPECT_EQ(slot % 4, 0)
                << where << ": slot " << slot << " is not lane 0";
    };
    checkLayout(plan.outputLayout, "network output");
    for (const auto &layer : plan.layers)
        checkLayout(layer.outputLayout, layer.name);
}

TEST(BatchedCompiler, GatherTouchesLaneZeroOnly)
{
    // Lane 0 carries the compiled virtual layout; sibling lanes are
    // filled at encrypt time by ClientSession::encryptInputBatch, so
    // the gather map must leave them unmapped (-1).
    const auto plan = compileBatched(4);
    const std::size_t physSlots = plan.params.n / 2;
    for (const auto &gather : plan.inputGather) {
        ASSERT_EQ(gather.size(), physSlots);
        for (std::size_t s = 0; s < gather.size(); ++s) {
            if (s % 4 != 0) {
                EXPECT_EQ(gather[s], -1)
                    << "slot " << s << " is a sibling lane";
            }
        }
    }
}

TEST(BatchedCompiler, PlaintextsBroadcastAcrossLanes)
{
    // Weight encodings must be lane-constant: every request multiplies
    // by the same weights, so v[s*B + b] == v[s*B] for all lanes b.
    const auto plan = compileBatched(4);
    ASSERT_FALSE(plan.plaintexts.empty());
    for (const auto &pt : plan.plaintexts) {
        if (pt.values.empty())
            continue;
        for (std::size_t s = 0; s < pt.values.size(); ++s)
            ASSERT_EQ(pt.values[s], pt.values[(s / 4) * 4])
                << "plaintext slot " << s << " is not lane-constant";
    }
}

TEST(BatchedCompiler, StandardLintPipelineAcceptsBatchedPlans)
{
    for (const std::size_t lanes : {2u, 4u, 16u}) {
        const auto plan = compileBatched(lanes);
        const auto report =
            analysis::PassManager::standard().run(plan);
        EXPECT_TRUE(report.clean())
            << "lanes " << lanes << ": " << report.errorCount()
            << " error(s)";
    }
}

TEST(BatchedCompiler, RejectsZeroLanes)
{
    EXPECT_THROW(compileBatched(0), ConfigError);
}

TEST(BatchedCompiler, RejectsLaneCountNotDividingTheRing)
{
    // 3 does not divide the 1024 slots of n = 2048.
    EXPECT_THROW(compileBatched(3), ConfigError);
}

TEST(BatchedCompiler, RejectsCapacityOverflow)
{
    // 32 lanes leave 1024/32 = 32 virtual slots — fewer than the test
    // network's 36 input pixels, so no request fits its lane.
    EXPECT_THROW(compileBatched(32), ConfigError);
}

} // namespace
} // namespace fxhenn::hecnn
