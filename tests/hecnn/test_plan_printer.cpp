#include <gtest/gtest.h>

#include "src/common/assert.hpp"

#include <sstream>

#include "src/hecnn/compiler.hpp"
#include "src/hecnn/plan_printer.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

TEST(PlanPrinter, SummaryListsEveryLayerAndTotals)
{
    const auto plan =
        compile(nn::buildMnistNetwork(), ckks::mnistParams());
    std::ostringstream oss;
    summarize(plan, oss);
    const std::string out = oss.str();
    for (const char *name : {"Cnv1", "Act1", "Fc1", "Act2", "Fc2",
                             "Total", "KS", "NKS"})
        EXPECT_NE(out.find(name), std::string::npos) << name;
    EXPECT_NE(out.find("FxHENN-MNIST"), std::string::npos);
}

TEST(PlanPrinter, FormatInstrCoversEveryOpcode)
{
    EXPECT_EQ(formatInstr({HeOpKind::pcMult, 5, 2, 17, 0}),
              "PCmult r5 <- r2 * pt17");
    EXPECT_EQ(formatInstr({HeOpKind::pcAdd, 1, 1, 3, 0}),
              "PCadd r1 <- r1 + pt3");
    EXPECT_EQ(formatInstr({HeOpKind::ccAdd, 4, 7, -1, 0}),
              "CCadd r4 += r7");
    EXPECT_EQ(formatInstr({HeOpKind::ccMult, 2, 2, -1, 0}),
              "CCmult r2 <- r2^2");
    EXPECT_EQ(formatInstr({HeOpKind::relinearize, 2, 2, -1, 0}),
              "Relinearize r2 <- r2");
    EXPECT_EQ(formatInstr({HeOpKind::rescale, 2, 2, -1, 0}),
              "Rescale r2 <- r2");
    EXPECT_EQ(formatInstr({HeOpKind::rotate, 9, 8, -1, -12}),
              "Rotate r9 <- rot(r8, -12)");
    EXPECT_EQ(formatInstr({HeOpKind::copy, 3, 1, -1, 0}),
              "Copy r3 <- r1");
}

TEST(PlanPrinter, DisassembleTruncatesAtLimit)
{
    const auto plan =
        compile(nn::buildMnistNetwork(), ckks::mnistParams());
    std::ostringstream oss;
    disassemble(plan, 0, oss, 5);
    const std::string out = oss.str();
    EXPECT_NE(out.find("Cnv1"), std::string::npos);
    EXPECT_NE(out.find("more)"), std::string::npos);
    // 5 instruction lines + header + ellipsis.
    EXPECT_LE(std::count(out.begin(), out.end(), '\n'), 8);
}

TEST(PlanPrinter, DisassembleFullLayerMatchesInstrCount)
{
    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::ostringstream oss;
    disassemble(plan, 1, oss);
    const std::string out = oss.str();
    const auto lines = std::count(out.begin(), out.end(), '\n');
    EXPECT_EQ(static_cast<std::size_t>(lines),
              plan.layers[1].instrs.size() + 1);
}

TEST(PlanPrinter, RejectsBadLayerIndex)
{
    const auto plan =
        compile(nn::buildTestNetwork(), ckks::testParams(2048, 7, 30));
    std::ostringstream oss;
    EXPECT_THROW(disassemble(plan, 99, oss), ConfigError);
}

TEST(PlanPrinter, FirstConvInstructionIsListingOneShaped)
{
    // Listing 1 of the paper: the conv layer is a PCmult/Rescale/CCadd
    // loop — check the instruction stream starts exactly that way.
    const auto plan =
        compile(nn::buildMnistNetwork(), ckks::mnistParams());
    const auto &instrs = plan.layers[0].instrs;
    ASSERT_GE(instrs.size(), 6u);
    EXPECT_EQ(instrs[0].kind, HeOpKind::pcMult);
    EXPECT_EQ(instrs[1].kind, HeOpKind::rescale);
    EXPECT_EQ(instrs[2].kind, HeOpKind::pcMult);
    EXPECT_EQ(instrs[3].kind, HeOpKind::rescale);
    EXPECT_EQ(instrs[4].kind, HeOpKind::ccAdd);
}

} // namespace
} // namespace fxhenn::hecnn
