#include <gtest/gtest.h>

#include "src/common/assert.hpp"

#include <cmath>

#include "src/hecnn/compiler.hpp"
#include "src/hecnn/runtime.hpp"
#include "src/nn/model_zoo.hpp"

namespace fxhenn::hecnn {
namespace {

/** Max absolute error between two logit vectors. */
double
maxAbsError(const std::vector<double> &a, const nn::Tensor &b)
{
    double err = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        err = std::max(err, std::abs(a[i] - b[i]));
    return err;
}

TEST(Runtime, TestNetworkEncryptedInferenceMatchesPlaintext)
{
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);

    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, /*seed=*/99);

    const nn::Tensor input = nn::syntheticInput(net, 21);
    const nn::Tensor expect = net.forward(input);
    const auto logits = runtime.infer(input);

    ASSERT_EQ(logits.size(), expect.size());
    EXPECT_LT(maxAbsError(logits, expect), 1e-2)
        << "encrypted inference diverged from plaintext";
}

TEST(Runtime, ExecutedCountsMatchStaticPlanCounts)
{
    // The runtime must execute exactly the operations the static plan
    // promises — this ties the FPGA model's inputs to reality.
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);

    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, 3);
    runtime.infer(nn::syntheticInput(net, 4));

    const auto &run = runtime.executedCounts();
    const HeOpCounts planned = plan.totalCounts();
    EXPECT_EQ(run.pcMult, planned.pcMult);
    EXPECT_EQ(run.ccMult, planned.ccMult);
    EXPECT_EQ(run.rescale, planned.rescale);
    EXPECT_EQ(run.relinearize, planned.relin);
    EXPECT_EQ(run.rotate, planned.rotate);
    EXPECT_EQ(run.ccAdd + run.pcAdd, planned.ccAdd);
}

TEST(Runtime, RepeatedInferenceTracksPlaintextDeltas)
{
    // A second infer() on the same Runtime must not inherit stale
    // register state: the encrypted outputs of two different inputs
    // must each match their own plaintext ground truth.
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, 5);

    const nn::Tensor in1 = nn::syntheticInput(net, 1, 0.25);
    const nn::Tensor in2 = nn::syntheticInput(net, 2, 0.05);
    const auto l1 = runtime.infer(in1);
    const auto l2 = runtime.infer(in2);
    const nn::Tensor p1 = net.forward(in1);
    const nn::Tensor p2 = net.forward(in2);
    EXPECT_LT(maxAbsError(l1, p1), 1e-2);
    EXPECT_LT(maxAbsError(l2, p2), 1e-2);
    // The two inputs have very different ranges, so both the encrypted
    // and plaintext logit vectors must differ by the same amount.
    double he_diff = 0.0, pt_diff = 0.0;
    for (std::size_t i = 0; i < l1.size(); ++i) {
        he_diff = std::max(he_diff, std::abs(l1[i] - l2[i]));
        pt_diff = std::max(pt_diff, std::abs(p1[i] - p2[i]));
    }
    EXPECT_NEAR(he_diff, pt_diff, 1e-2);
}

TEST(Runtime, PredictionAgreesWithPlaintextArgmax)
{
    // Across several synthetic inputs the encrypted argmax must match
    // the plaintext argmax — the HE-CNN "accuracy preservation" check.
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, 6);

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const nn::Tensor input = nn::syntheticInput(net, seed);
        const nn::Tensor expect = net.forward(input);
        const auto logits = runtime.infer(input);

        std::size_t argmax_he = 0, argmax_pt = 0;
        for (std::size_t i = 1; i < logits.size(); ++i) {
            if (logits[i] > logits[argmax_he])
                argmax_he = i;
            if (expect[i] > expect[argmax_pt])
                argmax_pt = i;
        }
        EXPECT_EQ(argmax_he, argmax_pt) << "seed " << seed;
    }
}

TEST(Runtime, RejectsElidedPlan)
{
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    CompileOptions opts;
    opts.elideValues = true;
    const auto plan = compile(net, params, opts);
    ckks::CkksContext ctx(params);
    EXPECT_THROW(Runtime(plan, ctx), ConfigError);
}

TEST(Runtime, GaloisKeyCountMatchesPlanSteps)
{
    const auto net = nn::buildTestNetwork();
    const auto params = ckks::testParams(2048, 7, 30);
    const auto plan = compile(net, params);
    ckks::CkksContext ctx(params);
    Runtime runtime(plan, ctx, 8);
    // Distinct steps can map to the same Galois element (e.g. step s
    // and s - slots), so the key count is at most the step count.
    EXPECT_GE(runtime.galoisKeyCount(), 1u);
    EXPECT_LE(runtime.galoisKeyCount(), plan.rotationSteps().size());
}

} // namespace
} // namespace fxhenn::hecnn
